/**
 * @file
 * rana_obs: load, merge, diff and pretty-print the observability
 * artifacts the pipeline emits — "rana-metrics-1" snapshots
 * (--metrics-json), "rana-postmortem-1" incident dumps
 * (--postmortem-dir) and the merged multi-process documents the
 * sharded sweep coordinator produces.
 *
 * Usage:
 *   rana_obs show FILE
 *       Pretty-print a metrics snapshot or a postmortem dump
 *       (schema-detected), including the flight-recorder ring.
 *   rana_obs top FILE [--by=counter|gauge|histogram] [-n N]
 *       The N largest instruments of one snapshot (default 10
 *       counters).
 *   rana_obs diff A B [--counters-only] [--ignore SUBSTR]...
 *       Instrument-level differences between two snapshots.
 *       Missing instruments read as 0; --ignore skips any
 *       instrument whose name contains SUBSTR (repeatable).
 *       Exit 0 when identical, 1 when they differ.
 *   rana_obs merge FILE...
 *       Merge snapshots (counters add, gauges keep the max,
 *       histograms add bucket-wise) and print the merged
 *       "rana-metrics-1" document to stdout.
 *   rana_obs check FILE
 *       Verify the cross-process accounting invariant of a merged
 *       sharded-sweep snapshot:
 *         worker_cells_completed_total_worker_sum ==
 *             shard_cells_completed_total
 *             - shard_degraded_cells_total
 *             + shard_corrupt_frames_total
 *             + shard_stale_results_total
 *       and that at least one telemetry frame arrived. Exit 0 when
 *       the invariant holds, 1 when violated.
 *
 * Postmortem dumps are accepted wherever a snapshot is: their
 * embedded last-known metrics are used. Exit code 2 is any usage,
 * I/O or parse error.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "util/json_reader.hh"

namespace {

using namespace rana;

int
fail(const std::string &message)
{
    std::cerr << "rana_obs: " << message << "\n";
    return 2;
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return makeError(ErrorCode::IoError, "cannot open ", path);
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        return makeError(ErrorCode::IoError, "failed reading ", path);
    return text.str();
}

/** The document's "schema" member ("" when absent). */
std::string
documentSchema(const std::string &text)
{
    Result<JsonValue> parsed = JsonValue::parse(text);
    if (!parsed.ok() || !parsed.value().isObject())
        return "";
    const JsonValue *schema = parsed.value().find("schema");
    if (schema == nullptr || !schema->isString())
        return "";
    return schema->asString();
}

/**
 * Load FILE as a snapshot: a metrics document directly, a
 * postmortem dump through its embedded last-known metrics.
 */
Result<MetricsSnapshot>
loadSnapshot(const std::string &path)
{
    Result<std::string> text = readFile(path);
    if (!text.ok())
        return text.error();
    if (documentSchema(text.value()) == "rana-postmortem-1") {
        Result<PostmortemReport> report =
            parsePostmortem(text.value());
        if (!report.ok())
            return report.error();
        return std::move(report).value().lastMetrics;
    }
    return parseMetricsDocument(text.value());
}

void
printSnapshot(const MetricsSnapshot &snap)
{
    std::cout << "counters (" << snap.counters.size() << "):\n";
    for (const auto &counter : snap.counters) {
        std::cout << "  " << counter.name << " = " << counter.value
                  << "\n";
    }
    std::cout << "gauges (" << snap.gauges.size() << "):\n";
    for (const auto &gauge : snap.gauges) {
        std::cout << "  " << gauge.name << " = " << gauge.value
                  << "\n";
    }
    std::cout << "histograms (" << snap.histograms.size() << "):\n";
    for (const auto &histogram : snap.histograms) {
        std::cout << "  " << histogram.name
                  << " count=" << histogram.count
                  << " sum=" << histogram.sum << "\n";
    }
}

void
printFlight(const std::vector<FlightEvent> &flight)
{
    std::cout << "flight ring (" << flight.size() << " events):\n";
    for (const FlightEvent &event : flight) {
        std::cout << "  #" << event.seq << " t=" << event.tsMicros
                  << "us " << event.phase << " cell=" << event.cell
                  << " attempt=" << event.attempt
                  << " frame=" << event.frameSeq << "\n";
    }
}

int
cmdShow(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return fail("show expects exactly one FILE");
    Result<std::string> text = readFile(args[0]);
    if (!text.ok())
        return fail(text.error().describe());
    const std::string schema = documentSchema(text.value());
    if (schema == "rana-postmortem-1") {
        Result<PostmortemReport> parsed =
            parsePostmortem(text.value());
        if (!parsed.ok())
            return fail(parsed.error().describe());
        const PostmortemReport &report = parsed.value();
        std::cout << "postmortem: worker " << report.worker
                  << " incident " << report.incident << " ("
                  << report.reason << ")\n";
        if (report.exited) {
            std::cout << "  exited with code " << report.exitCode
                      << "\n";
        }
        if (report.signaled) {
            std::cout << "  killed by signal " << report.termSignal
                      << "\n";
        }
        if (report.busy) {
            std::cout << "  busy on cell " << report.lastCell
                      << " attempt " << report.lastAttempt << "\n";
        } else {
            std::cout << "  idle at death\n";
        }
        std::cout << "  telemetry frames received: "
                  << report.telemetryFrames << "\n";
        printFlight(report.flight);
        printSnapshot(report.lastMetrics);
        return 0;
    }
    if (schema == "rana-metrics-1") {
        Result<MetricsSnapshot> snap =
            parseMetricsDocument(text.value());
        if (!snap.ok())
            return fail(snap.error().describe());
        printSnapshot(snap.value());
        return 0;
    }
    return fail("unrecognized document schema in " + args[0]);
}

int
cmdTop(const std::vector<std::string> &args)
{
    std::string path;
    std::string by = "counter";
    std::size_t limit = 10;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg.rfind("--by=", 0) == 0) {
            by = arg.substr(5);
        } else if (arg == "-n") {
            if (i + 1 >= args.size())
                return fail("missing value after -n");
            limit = static_cast<std::size_t>(
                std::strtoul(args[++i].c_str(), nullptr, 10));
        } else if (path.empty()) {
            path = arg;
        } else {
            return fail("unknown top argument " + arg);
        }
    }
    if (path.empty())
        return fail("top expects a FILE");
    if (by != "counter" && by != "gauge" && by != "histogram")
        return fail("--by expects counter, gauge or histogram");
    Result<MetricsSnapshot> loaded = loadSnapshot(path);
    if (!loaded.ok())
        return fail(loaded.error().describe());
    const MetricsSnapshot &snap = loaded.value();

    struct Row
    {
        std::string name;
        double value = 0.0;
    };
    std::vector<Row> rows;
    if (by == "counter") {
        for (const auto &counter : snap.counters) {
            rows.push_back(
                {counter.name, static_cast<double>(counter.value)});
        }
    } else if (by == "gauge") {
        for (const auto &gauge : snap.gauges)
            rows.push_back({gauge.name, gauge.value});
    } else {
        for (const auto &histogram : snap.histograms) {
            rows.push_back(
                {histogram.name,
                 static_cast<double>(histogram.count)});
        }
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.value > b.value;
                     });
    if (rows.size() > limit)
        rows.resize(limit);
    for (const Row &row : rows)
        std::cout << row.value << "  " << row.name << "\n";
    return 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    std::vector<std::string> paths;
    std::vector<std::string> ignores;
    bool countersOnly = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (arg == "--counters-only") {
            countersOnly = true;
        } else if (arg == "--ignore") {
            if (i + 1 >= args.size())
                return fail("missing value after --ignore");
            ignores.push_back(args[++i]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2)
        return fail("diff expects exactly two FILEs");
    Result<MetricsSnapshot> a = loadSnapshot(paths[0]);
    if (!a.ok())
        return fail(a.error().describe());
    Result<MetricsSnapshot> b = loadSnapshot(paths[1]);
    if (!b.ok())
        return fail(b.error().describe());
    const std::vector<SnapshotDiffEntry> entries =
        diffSnapshots(a.value(), b.value(), countersOnly, ignores);
    for (const SnapshotDiffEntry &entry : entries) {
        std::cout << entry.kind << " " << entry.name << ": "
                  << entry.a << " != " << entry.b << "\n";
    }
    if (entries.empty()) {
        std::cout << "identical\n";
        return 0;
    }
    std::cout << entries.size() << " difference"
              << (entries.size() == 1 ? "" : "s") << "\n";
    return 1;
}

int
cmdMerge(const std::vector<std::string> &args)
{
    if (args.empty())
        return fail("merge expects at least one FILE");
    std::vector<MetricsSnapshot> snapshots;
    for (const std::string &path : args) {
        Result<MetricsSnapshot> snap = loadSnapshot(path);
        if (!snap.ok())
            return fail(snap.error().describe());
        snapshots.push_back(std::move(snap).value());
    }
    std::cout << metricsDocumentFromSnapshot(
                     mergeSnapshots(snapshots))
              << "\n";
    return 0;
}

int
cmdCheck(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return fail("check expects exactly one FILE");
    Result<MetricsSnapshot> loaded = loadSnapshot(args[0]);
    if (!loaded.ok())
        return fail(loaded.error().describe());
    const MetricsSnapshot &snap = loaded.value();
    if (!hasCounter(snap, "worker_cells_completed_total_worker_sum")) {
        return fail("no worker_cells_completed_total_worker_sum "
                    "counter: not a merged sharded-sweep snapshot");
    }
    const std::uint64_t workerSum =
        counterValue(snap, "worker_cells_completed_total_worker_sum");
    const std::uint64_t completed =
        counterValue(snap, "shard_cells_completed_total");
    const std::uint64_t degraded =
        counterValue(snap, "shard_degraded_cells_total");
    const std::uint64_t corrupt =
        counterValue(snap, "shard_corrupt_frames_total");
    const std::uint64_t stale =
        counterValue(snap, "shard_stale_results_total");
    const std::uint64_t telemetryFrames =
        counterValue(snap, "telemetry_frames_total");
    bool good = true;
    if (telemetryFrames == 0) {
        std::cout << "FAIL: no telemetry frames were received\n";
        good = false;
    }
    const std::uint64_t expected =
        completed - degraded + corrupt + stale;
    if (workerSum != expected) {
        std::cout << "FAIL: worker-reported completions ("
                  << workerSum << ") != stored - degraded + corrupt"
                  << " + stale (" << completed << " - " << degraded
                  << " + " << corrupt << " + " << stale << " = "
                  << expected << ")\n";
        good = false;
    }
    if (!good)
        return 1;
    std::cout << "ok: " << workerSum
              << " worker-reported completions match ("
              << completed << " stored, " << degraded
              << " degraded, " << corrupt << " corrupt, " << stale
              << " stale; " << telemetryFrames
              << " telemetry frames)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr
            << "usage: rana_obs <show|top|diff|merge|check> ...\n";
        return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "show")
        return cmdShow(args);
    if (command == "top")
        return cmdTop(args);
    if (command == "diff")
        return cmdDiff(args);
    if (command == "merge")
        return cmdMerge(args);
    if (command == "check")
        return cmdCheck(args);
    return fail("unknown command " + command);
}
