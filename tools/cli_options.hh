/**
 * @file
 * Command-line options shared by the rana_compile and rana_faultsim
 * front ends: design-name parsing, the observability outputs
 * (--metrics-json / --chrome-trace) and the reliability-guard flags
 * (--guard / --guard-policy / --guard-k / --guard-bins), with one
 * usage/error path instead of a copy per tool.
 */

#ifndef RANA_TOOLS_CLI_OPTIONS_HH_
#define RANA_TOOLS_CLI_OPTIONS_HH_

#include <string>
#include <vector>

#include "core/design_point.hh"
#include "edram/guard_policy.hh"
#include "sim/dataflow.hh"
#include "util/result.hh"

namespace rana {
namespace cli {

/** Parse a Table-IV design-point name ("RANA*", "eD+ID", ...). */
Result<DesignKind> parseDesign(const std::string &name);

/**
 * Parse a --dataflow option value: "auto" selects the full
 * six-dataflow search axis, any other token names a single dataflow
 * (id | od | wd | sys-os | sys-is | sys-ws, legacy names
 * case-insensitive). Errors name the accepted tokens.
 */
Result<std::vector<DataflowKind>>
parseDataflowList(const std::string &value);

/** Options every tool accepts, filled by consumeCommonOption. */
struct CommonOptions
{
    /** Metrics-registry JSON snapshot path ("" = none). */
    std::string metricsJsonPath;
    /** Chrome trace_event timeline path ("" = none). */
    std::string chromeTracePath;
    /** Attach the runtime reliability guard. */
    bool guard = false;
    /** Decision policy of the attached guard. */
    GuardPolicySpec guardPolicy;

    /** Whether any observability output was requested. */
    bool
    wantsObservability() const
    {
        return !metricsJsonPath.empty() || !chromeTracePath.empty();
    }
};

/** Usage-line fragment documenting the shared options. */
const char *commonOptionsUsage();

/**
 * Try to consume argv[i] (plus its value, advancing `i`) as one of
 * the shared options. Returns true when consumed, false when the
 * argument belongs to the tool, and an error on a missing or
 * malformed value.
 */
Result<bool> consumeCommonOption(int argc, char **argv, int &i,
                                 CommonOptions &options);

/**
 * Flush the requested observability outputs. Returns an error when a
 * file cannot be written; otherwise the number of outputs written.
 */
Result<int> writeObservability(const CommonOptions &options);

/** Print "<tool>: <error>" on stderr; returns the exit code 1. */
int fail(const char *tool, const Error &error);

} // namespace cli
} // namespace rana

#endif // RANA_TOOLS_CLI_OPTIONS_HH_
