#!/usr/bin/env python3
"""Benchmark-regression gate for the CI release job.

Compares the machine-readable benchmark outputs against a checked-in
baseline with explicit tolerances:

    check_bench.py <baseline.json> <fault_campaign.json> \
                   [sched_scaling.json]

The fault-campaign gate reads the "gate" object that
bench_fault_campaign emits for its retrained operating point
(failure rate 1e-5) and fails if the p50 relative accuracy drops by
more than the baseline's tolerance. Tolerance-based rather than
exact comparison: accuracies differ in the last few ULPs across
compilers (FMA contraction), so only a real regression trips the
gate.

The guard-policy gate reads the "guard_policies" array (the
permanent/hysteresis/binned comparison under an injected scan
stall): every baseline policy must be present, must have absorbed
its watchdog trips without corrupted-word events, and must hold the
same p50 relative-accuracy floor as the main gate.

The optional sched-scaling check is a sanity gate, not a performance
gate (CI runners have noisy, heterogeneous CPUs): every lane must
have produced an identical schedule and a positive runtime.

Exit codes: 0 pass, 1 regression or malformed input.
"""

import json
import sys


def fail(message):
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    return 1


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_fault_campaign(baseline, report):
    gate = report.get("gate")
    if gate is None:
        return fail("fault campaign JSON has no 'gate' object")
    expected = baseline["fault_campaign"]
    tolerance = expected["tolerance"]
    for key in ("p50_relative_accuracy", "worst_relative_accuracy"):
        if key not in gate:
            return fail(f"gate object missing '{key}'")
        floor = expected[key] - tolerance
        if gate[key] < floor:
            return fail(
                f"{key} {gate[key]:.6f} below baseline "
                f"{expected[key]:.6f} - tolerance {tolerance:.3f} "
                f"(floor {floor:.6f})"
            )
        print(
            f"check_bench: {key} {gate[key]:.6f} >= floor "
            f"{floor:.6f} (baseline {expected[key]:.6f})"
        )
    rate = gate.get("failure_rate")
    if rate != expected["failure_rate"]:
        return fail(
            f"gate failure rate {rate} != baseline "
            f"{expected['failure_rate']}"
        )
    return 0


def check_guard_policies(baseline, report):
    expected = baseline.get("guard_policies")
    if expected is None:
        return 0
    rows = {
        row.get("policy"): row
        for row in report.get("guard_policies", [])
    }
    tolerance = expected["tolerance"]
    floor = expected["p50_relative_accuracy"] - tolerance
    for policy in expected["policies"]:
        row = rows.get(policy)
        if row is None:
            return fail(
                f"guard_policies array is missing policy "
                f"'{policy}'"
            )
        if row.get("trips", 0) <= 0:
            return fail(
                f"policy '{policy}' recorded no watchdog trips "
                "(the stall no longer provokes the guard)"
            )
        if row.get("retention_violations", 0) != 0:
            return fail(
                f"policy '{policy}' leaked "
                f"{row['retention_violations']} corrupted-word "
                "events"
            )
        p50 = row.get("p50_relative_accuracy", 0.0)
        if p50 < floor:
            return fail(
                f"policy '{policy}' p50 relative accuracy "
                f"{p50:.6f} below floor {floor:.6f}"
            )
        print(
            f"check_bench: guard policy '{policy}' "
            f"{row['trips']} trips, 0 violations, p50 "
            f"{p50:.6f} >= floor {floor:.6f}"
        )
    return 0


def check_sched_scaling(report):
    points = report.get("points", [])
    if not points:
        return fail("sched scaling JSON has no 'points'")
    for point in points:
        if not point.get("identical", False):
            return fail(
                f"lane count {point.get('jobs')} produced a "
                "non-identical schedule"
            )
        if point.get("seconds", 0.0) <= 0.0:
            return fail(
                f"lane count {point.get('jobs')} reported a "
                "non-positive runtime"
            )
    print(
        f"check_bench: sched scaling sane across "
        f"{len(points)} lane counts"
    )
    return 0


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_bench.py <baseline.json> "
            "<fault_campaign.json> [sched_scaling.json]",
            file=sys.stderr,
        )
        return 1
    try:
        baseline = load(argv[1])
        campaign = load(argv[2])
    except (OSError, json.JSONDecodeError) as error:
        return fail(str(error))
    status = check_fault_campaign(baseline, campaign)
    if status != 0:
        return status
    status = check_guard_policies(baseline, campaign)
    if status != 0:
        return status
    if len(argv) > 3:
        try:
            sched = load(argv[3])
        except (OSError, json.JSONDecodeError) as error:
            return fail(str(error))
        status = check_sched_scaling(sched)
        if status != 0:
            return status
    print("check_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
