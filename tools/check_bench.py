#!/usr/bin/env python3
"""Benchmark-regression gate for the CI release and chaos jobs.

Compares machine-readable benchmark outputs against a checked-in
baseline with explicit tolerances:

    check_bench.py <baseline.json> <BENCH_*.json> [BENCH_*.json ...]

Every artifact must carry the unified rana_bench envelope: a known
"harness" name, a "mode" of correctness or perf and a non-empty
"samples" array. Artifacts are dispatched to their gate by that
"harness" field, so argument order does not matter; passing the same
harness twice or a harness without a gate fails loudly.

Every gate failure names the failing metric and prints the actual
value, the expected value and the tolerance that was applied, so a
red CI run says what regressed without re-running anything. Checking
never short-circuits: every file is examined and every failing gate
prints its line before the nonzero exit, so one red run lists every
regression at once.

Gates:

* fault_campaign - the "gate" object bench_fault_campaign emits for
  the paper's retrained operating point (failure rate 1e-5) must
  hold the baseline's relative-accuracy floors; tolerance-based
  rather than exact because accuracies differ in the last few ULPs
  across compilers (FMA contraction). The campaign-throughput gate
  (baseline key "campaign_throughput") holds the trial-batched sweep
  to min_speedup x the recorded scalar cells-per-second baseline,
  and the guard-policy gate checks the permanent/hysteresis/binned
  comparison (trips absorbed, no corrupted words, same p50 floor).

* sweep_shard - the crash-tolerant sharded sweep must merge
  byte-identically with the single-process reference, both clean and
  under seeded chaos, the injected kill/stall/corruption must all
  have fired, and no cell may degrade past the baseline's
  max_degraded_cells (exact counts, no tolerance: determinism is the
  contract). The observability plane is gated too: the clean run
  must stream at least min_telemetry_frames worker telemetry frames
  and the chaos run must dump at least min_postmortem_dumps
  postmortems (one per incident - the kill and the stall timeout).

* sched_scaling - sanity gate, not a performance gate (CI runners
  have noisy, heterogeneous CPUs): every lane count must produce an
  identical schedule and a positive runtime.

* serving - the multi-tenant serving SLO gate: replays across
  data-plane pool sizes must be byte-identical
  (deterministic_replay), the worst per-tenant p99 latency must stay
  under the baseline's max_p99_ms ceiling and total virtual
  throughput must hold the min_throughput_rps floor. Latency and
  throughput are virtual-time quantities, deterministic per seed, so
  the SLO bounds are tight without being runner-sensitive.

* dataflow_search - the widened systolic dataflow axis must keep
  paying off: across the benchmark suite the six-dataflow search
  must choose a systolic dataflow for at least
  min_systolic_win_layers layers, at least one network must
  strictly improve simulated refresh energy over the best legacy
  ID/OD/WD schedule (best_refresh_energy_delta_j floor), and per
  network the widened search must never produce a worse total
  energy than the legacy axis it contains (a superset search that
  regresses means the scheduler's reduction broke).

Exit codes: 0 pass, 1 one or more gate regressions, 2 malformed
input (unreadable or unparseable JSON, a broken envelope, a repeated
or ungated harness, or bad usage). Malformed input takes precedence
over gate failures in the exit code; both are fully reported either
way.
"""

import json
import sys

# Every harness the unified rana_bench driver can emit. An artifact
# naming anything else is either stale or misrouted, and the gate
# says so instead of silently passing it through.
KNOWN_HARNESSES = (
    "table1_storage",
    "table2_memory_tech",
    "table3_energy_costs",
    "fig1_breakdown",
    "fig7_lifetime",
    "fig8_retention",
    "fig11_training",
    "fig12_layer_sizes",
    "fig15_total_energy",
    "fig16_rt_sweep",
    "fig17_vgg_layerwise",
    "fig18_capacity_sweep",
    "fig19_dadiannao",
    "ablations",
    "dataflow_search",
    "interlayer_reuse",
    "resolution_sweep",
    "sched_scaling",
    "fault_campaign",
    "campaign_batch",
    "serving",
    "sweep_shard",
    "micro",
)


def fail(message):
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    return 1


def fail_metric(metric, actual, expected, tolerance, detail=""):
    """The uniform gate-failure line: which metric regressed, the
    value it produced, the value the baseline expects and the
    tolerance that was applied before comparing."""
    suffix = f" ({detail})" if detail else ""
    return fail(
        f"metric '{metric}': actual={actual} expected={expected} "
        f"tolerance={tolerance}{suffix}"
    )


def passed(metric, actual, expected, tolerance):
    print(
        f"check_bench: metric '{metric}': actual={actual} "
        f"expected={expected} tolerance={tolerance}: ok"
    )
    return 0


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_unified_schema(report, path):
    """Validate the unified BENCH_*.json envelope the rana_bench
    driver writes: a known "harness" name, a valid "mode" and a
    well-formed "samples" array. Returns (malformed, harness)."""
    harness = report.get("harness")
    if harness is None:
        return (
            fail(
                f"{path} is missing the 'harness' field (not "
                f"written by rana_bench?); known harnesses: "
                f"{', '.join(KNOWN_HARNESSES)}"
            ),
            None,
        )
    if harness not in KNOWN_HARNESSES:
        return (
            fail(
                f"{path} names unknown harness '{harness}'; known "
                f"harnesses: {', '.join(KNOWN_HARNESSES)}"
            ),
            None,
        )
    mode = report.get("mode")
    if mode not in ("correctness", "perf"):
        return (
            fail(
                f"{path} has invalid mode '{mode}' (expect "
                "'correctness' or 'perf')"
            ),
            None,
        )
    samples = report.get("samples")
    if not isinstance(samples, list) or not samples:
        return (fail(f"{path} has no 'samples' array"), None)
    for sample in samples:
        if not all(key in sample for key in ("metric", "value", "unit")):
            return (
                fail(
                    f"{path} has a malformed perf sample: {sample}"
                ),
                None,
            )
    print(
        f"check_bench: {path}: harness '{harness}', mode '{mode}', "
        f"{len(samples)} perf sample(s)"
    )
    return (0, harness)


def check_campaign_throughput(baseline, report):
    """Gate the trial-batched campaign speed: cells/second over the
    sweep grid must hold min_speedup x the recorded scalar
    (laneBlock=1) baseline."""
    expected = baseline.get("campaign_throughput")
    if expected is None:
        return 0
    throughput = report.get("campaign_throughput")
    if throughput is None:
        return fail(
            "fault campaign JSON has no 'campaign_throughput' "
            "field"
        )
    scalar = expected["baseline_cells_per_second"]
    speedup = expected["min_speedup"]
    floor = scalar * speedup
    metric = "campaign_throughput"
    if throughput < floor:
        return fail_metric(
            metric,
            f"{throughput:.3f} cells/s",
            f">= {floor:.3f} cells/s",
            f"{speedup:.1f}x scalar baseline {scalar:.3f}",
        )
    return passed(
        metric,
        f"{throughput:.3f} cells/s",
        f">= {floor:.3f} cells/s",
        f"{speedup:.1f}x scalar baseline {scalar:.3f}",
    )


def check_fault_campaign(baseline, report):
    gate = report.get("gate")
    if gate is None:
        return fail("fault campaign JSON has no 'gate' object")
    expected = baseline["fault_campaign"]
    tolerance = expected["tolerance"]
    failures = 0
    for key in ("p50_relative_accuracy", "worst_relative_accuracy"):
        metric = f"gate.{key}"
        if key not in gate:
            failures += fail(f"gate object missing '{key}'")
            continue
        floor = expected[key] - tolerance
        if gate[key] < floor:
            failures += fail_metric(
                metric,
                f"{gate[key]:.6f}",
                f"{expected[key]:.6f}",
                f"{tolerance:.3f}",
                f"floor {floor:.6f}",
            )
            continue
        passed(metric, f"{gate[key]:.6f}", f"{expected[key]:.6f}",
               f"{tolerance:.3f}")
    rate = gate.get("failure_rate")
    if rate != expected["failure_rate"]:
        failures += fail_metric(
            "gate.failure_rate",
            f"{rate}",
            f"{expected['failure_rate']}",
            "exact",
        )
    return failures


def check_guard_policies(baseline, report):
    expected = baseline.get("guard_policies")
    if expected is None:
        return 0
    rows = {
        row.get("policy"): row
        for row in report.get("guard_policies", [])
    }
    tolerance = expected["tolerance"]
    floor = expected["p50_relative_accuracy"] - tolerance
    failures = 0
    for policy in expected["policies"]:
        row = rows.get(policy)
        if row is None:
            failures += fail(
                f"guard_policies array is missing policy "
                f"'{policy}'"
            )
            continue
        trips = row.get("trips", 0)
        if trips <= 0:
            failures += fail_metric(
                f"guard_policies[{policy}].trips",
                f"{trips}",
                "> 0",
                "exact",
                "the stall no longer provokes the guard",
            )
        violations = row.get("retention_violations", 0)
        if violations != 0:
            failures += fail_metric(
                f"guard_policies[{policy}].retention_violations",
                f"{violations}",
                "0",
                "exact",
                "corrupted-word events leaked past the guard",
            )
        p50 = row.get("p50_relative_accuracy", 0.0)
        metric = f"guard_policies[{policy}].p50_relative_accuracy"
        if p50 < floor:
            failures += fail_metric(
                metric,
                f"{p50:.6f}",
                f"{expected['p50_relative_accuracy']:.6f}",
                f"{tolerance:.3f}",
                f"floor {floor:.6f}",
            )
        else:
            passed(metric, f"{p50:.6f}",
                   f"{expected['p50_relative_accuracy']:.6f}",
                   f"{tolerance:.3f}")
    return failures


def check_sweep_shard(baseline, report):
    """Gate the crash-tolerant sharded sweep: byte-identical merges
    (clean and under chaos), chaos faults that actually fired, and a
    bounded number of degraded (in-process fallback) cells. Exact
    comparisons throughout - determinism is the contract."""
    expected = baseline.get("sweep_shard", {})
    max_degraded = expected.get("max_degraded_cells", 0)
    failures = 0

    identical = report.get("merge_identical")
    if identical is not True:
        failures += fail_metric(
            "merge_identical",
            f"{identical}",
            "true",
            "exact",
            "sharded merge diverged from the single-process sweep",
        )
    else:
        passed("merge_identical", "true", "true", "exact")

    exercised = report.get("chaos_exercised")
    if exercised is not True:
        failures += fail_metric(
            "chaos_exercised",
            f"{exercised}",
            "true",
            "exact",
            "seeded kill/stall/corruption no longer fires",
        )
    else:
        passed("chaos_exercised", "true", "true", "exact")

    chaos = report.get("chaos")
    if not isinstance(chaos, dict):
        return failures + fail(
            "sweep shard JSON has no 'chaos' object"
        )
    for counter in ("worker_crashes", "timeouts", "corrupt_frames"):
        value = chaos.get(counter, 0)
        if value < 1:
            failures += fail_metric(
                f"chaos.{counter}",
                f"{value}",
                ">= 1",
                "exact",
                "the injected fault did not fire",
            )
    degraded = chaos.get("degraded_cells", 0)
    metric = "chaos.degraded_cells"
    if degraded > max_degraded:
        failures += fail_metric(
            metric,
            f"{degraded}",
            f"<= {max_degraded}",
            "exact",
            "cells fell back to in-process execution",
        )
    else:
        passed(metric, f"{degraded}", f"<= {max_degraded}", "exact")

    # Observability-plane gates: the clean run must have streamed
    # telemetry frames (one per worker at startup, per cell and at
    # clean exit), and every chaos incident (the kill plus the stall
    # timeout) must have produced a postmortem dump.
    min_frames = expected.get("min_telemetry_frames", 8)
    clean = report.get("clean")
    if not isinstance(clean, dict):
        return failures + fail(
            "sweep shard JSON has no 'clean' object"
        )
    frames = clean.get("telemetry_frames", 0)
    metric = "clean.telemetry_frames"
    if frames < min_frames:
        failures += fail_metric(
            metric,
            f"{frames}",
            f">= {min_frames}",
            "exact",
            "worker telemetry export stopped flowing",
        )
    else:
        passed(metric, f"{frames}", f">= {min_frames}", "exact")

    min_dumps = expected.get("min_postmortem_dumps", 2)
    dumps = chaos.get("postmortem_dumps", 0)
    metric = "chaos.postmortem_dumps"
    if dumps < min_dumps:
        failures += fail_metric(
            metric,
            f"{dumps}",
            f">= {min_dumps}",
            "exact",
            "a chaos incident left no postmortem dump",
        )
    else:
        passed(metric, f"{dumps}", f">= {min_dumps}", "exact")
    return failures


def check_sched_scaling(report):
    points = report.get("points", [])
    if not points:
        return fail("sched scaling JSON has no 'points'")
    failures = 0
    for point in points:
        jobs = point.get("jobs")
        if not point.get("identical", False):
            failures += fail_metric(
                f"points[jobs={jobs}].identical",
                f"{point.get('identical')}",
                "true",
                "exact",
                "non-identical schedule across lane counts",
            )
        seconds = point.get("seconds", 0.0)
        if seconds <= 0.0:
            failures += fail_metric(
                f"points[jobs={jobs}].seconds",
                f"{seconds}",
                "> 0",
                "exact",
                "non-positive runtime",
            )
    if failures == 0:
        print(
            f"check_bench: sched scaling sane across "
            f"{len(points)} lane counts"
        )
    return failures


def check_dataflow_search(baseline, report):
    """Gate the widened dataflow search: systolic dataflows must
    still win layers, at least one network must strictly improve
    refresh energy over the best legacy schedule, and a superset
    search must never regress any network's total energy."""
    expected = baseline["dataflow_search"]
    failures = 0

    win_layers = report.get("systolic_win_layers", 0)
    min_wins = expected["min_systolic_win_layers"]
    if win_layers < min_wins:
        failures += fail_metric(
            "systolic_win_layers",
            f"{win_layers}",
            f">= {min_wins}",
            "exact",
            "the widened search stopped choosing systolic dataflows",
        )
    else:
        passed("systolic_win_layers", f"{win_layers}",
               f">= {min_wins}", "exact")

    delta = report.get("best_refresh_energy_delta_j")
    floor = expected["min_refresh_energy_delta_j"]
    if delta is None or delta <= floor:
        failures += fail_metric(
            "best_refresh_energy_delta_j",
            f"{delta}",
            f"> {floor}",
            "exact",
            "no network improved refresh energy with a systolic win",
        )
    else:
        passed(
            "best_refresh_energy_delta_j",
            f"{delta:.6e}",
            f"> {floor}",
            "exact",
        )

    for entry in report.get("networks", []):
        name = entry.get("network", "?")
        legacy = entry.get("legacy_total_energy_j")
        widened = entry.get("widened_total_energy_j")
        metric = f"{name}_widened_total_energy_j"
        if legacy is None or widened is None or widened > legacy:
            failures += fail_metric(
                metric,
                f"{widened}",
                f"<= {legacy}",
                "exact",
                "a superset search produced a worse schedule",
            )
        else:
            passed(metric, f"{widened:.6e}", f"<= {legacy:.6e}",
                   "exact")
    return failures


def check_serving(baseline, report):
    """Gate the multi-tenant serving SLOs: deterministic replay,
    a worst-tenant p99 latency ceiling and a total-throughput
    floor. Latencies are virtual-time, so exact bounds hold on any
    runner."""
    expected = baseline["serving"]
    failures = 0

    deterministic = report.get("deterministic_replay")
    if deterministic is not True:
        failures += fail_metric(
            "deterministic_replay",
            f"{deterministic}",
            "true",
            "exact",
            "replays diverged across data-plane pool sizes",
        )
    else:
        passed("deterministic_replay", "true", "true", "exact")

    p99 = report.get("worst_p99_ms")
    ceiling = expected["max_p99_ms"]
    if p99 is None or p99 > ceiling:
        failures += fail_metric(
            "worst_p99_ms",
            f"{p99}",
            f"<= {ceiling}",
            "exact",
            "worst per-tenant p99 latency broke the SLO ceiling",
        )
    else:
        passed("worst_p99_ms", f"{p99:.3f}", f"<= {ceiling}",
               "exact")

    rps = report.get("throughput_rps")
    floor = expected["min_throughput_rps"]
    if rps is None or rps < floor:
        failures += fail_metric(
            "throughput_rps",
            f"{rps}",
            f">= {floor}",
            "exact",
            "total serving throughput fell below the SLO floor",
        )
    else:
        passed("throughput_rps", f"{rps:.3f}", f">= {floor}",
               "exact")

    completed = report.get("total_completed", 0)
    min_completed = expected.get("min_completed", 1)
    if completed < min_completed:
        failures += fail_metric(
            "total_completed",
            f"{completed}",
            f">= {min_completed}",
            "exact",
            "the workload served almost nothing",
        )
    else:
        passed("total_completed", f"{completed}",
               f">= {min_completed}", "exact")
    return failures


# The harnesses this gate knows how to check, keyed by the artifact's
# own "harness" field (so argument order never matters). Each gate
# returns its failure count; composed gates all run so every failing
# metric prints its line.
GATES = {
    "fault_campaign": lambda baseline, report: (
        check_fault_campaign(baseline, report)
        + check_campaign_throughput(baseline, report)
        + check_guard_policies(baseline, report)
    ),
    "sweep_shard": check_sweep_shard,
    "sched_scaling": lambda baseline, report: check_sched_scaling(
        report
    ),
    "serving": check_serving,
    "dataflow_search": check_dataflow_search,
}


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_bench.py <baseline.json> <BENCH_*.json> "
            "[BENCH_*.json ...]",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = load(argv[1])
    except (OSError, json.JSONDecodeError) as error:
        fail(str(error))
        return 2
    malformed = 0
    gate_failures = 0
    seen = set()
    for path in argv[2:]:
        try:
            report = load(path)
        except (OSError, json.JSONDecodeError) as error:
            malformed += fail(str(error))
            continue
        bad, harness = check_unified_schema(report, path)
        if bad:
            malformed += bad
            continue
        if harness in seen:
            malformed += fail(f"{path} repeats harness '{harness}'")
            continue
        seen.add(harness)
        gate = GATES.get(harness)
        if gate is None:
            malformed += fail(
                f"{path} holds harness '{harness}', which has no "
                f"regression gate; gated harnesses: "
                f"{', '.join(sorted(GATES))}"
            )
            continue
        gate_failures += gate(baseline, report)
    if malformed:
        return 2
    if gate_failures:
        return 1
    print("check_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
