#!/usr/bin/env python3
"""Benchmark-regression gate for the CI release job.

Compares the machine-readable benchmark outputs against a checked-in
baseline with explicit tolerances:

    check_bench.py <baseline.json> <fault_campaign.json> \
                   [sched_scaling.json]

Every artifact must carry the unified rana_bench envelope: a known
"harness" name matching its argument slot, a "mode" of correctness
or perf and a non-empty "samples" array; anything else fails with
the list of known harnesses.

The fault-campaign gate reads the "gate" object that
bench_fault_campaign emits for its retrained operating point
(failure rate 1e-5) and fails if the p50 relative accuracy drops by
more than the baseline's tolerance. Tolerance-based rather than
exact comparison: accuracies differ in the last few ULPs across
compilers (FMA contraction), so only a real regression trips the
gate.

The campaign-throughput gate (baseline key "campaign_throughput")
holds the trial-batched sweep to min_speedup x the recorded scalar
(laneBlock=1) cells-per-second baseline, so a regression in the
batched forward path trips CI even while accuracies stay identical.

The guard-policy gate reads the "guard_policies" array (the
permanent/hysteresis/binned comparison under an injected scan
stall): every baseline policy must be present, must have absorbed
its watchdog trips without corrupted-word events, and must hold the
same p50 relative-accuracy floor as the main gate.

The optional sched-scaling check is a sanity gate, not a performance
gate (CI runners have noisy, heterogeneous CPUs): every lane must
have produced an identical schedule and a positive runtime.

Exit codes: 0 pass, 1 regression or malformed input.
"""

import json
import sys

# Every harness the unified rana_bench driver can emit. An artifact
# naming anything else is either stale or misrouted, and the gate
# says so instead of silently passing it through.
KNOWN_HARNESSES = (
    "table1_storage",
    "table2_memory_tech",
    "table3_energy_costs",
    "fig1_breakdown",
    "fig7_lifetime",
    "fig8_retention",
    "fig11_training",
    "fig12_layer_sizes",
    "fig15_total_energy",
    "fig16_rt_sweep",
    "fig17_vgg_layerwise",
    "fig18_capacity_sweep",
    "fig19_dadiannao",
    "ablations",
    "interlayer_reuse",
    "resolution_sweep",
    "sched_scaling",
    "fault_campaign",
    "campaign_batch",
    "micro",
)


def fail(message):
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    return 1


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_unified_schema(report, path, expected_harness):
    """Validate the unified BENCH_*.json envelope the rana_bench
    driver writes: a known "harness" name (expected_harness for this
    slot), a valid "mode" and a well-formed "samples" array."""
    harness = report.get("harness")
    if harness is None:
        return fail(
            f"{path} is missing the 'harness' field (not written "
            f"by rana_bench?); known harnesses: "
            f"{', '.join(KNOWN_HARNESSES)}"
        )
    if harness not in KNOWN_HARNESSES:
        return fail(
            f"{path} names unknown harness '{harness}'; known "
            f"harnesses: {', '.join(KNOWN_HARNESSES)}"
        )
    if harness != expected_harness:
        return fail(
            f"{path} holds harness '{harness}' but this argument "
            f"slot expects '{expected_harness}'"
        )
    mode = report.get("mode")
    if mode not in ("correctness", "perf"):
        return fail(
            f"{path} has invalid mode '{mode}' (expect "
            "'correctness' or 'perf')"
        )
    samples = report.get("samples")
    if not isinstance(samples, list) or not samples:
        return fail(f"{path} has no 'samples' array")
    for sample in samples:
        if not all(key in sample for key in ("metric", "value", "unit")):
            return fail(
                f"{path} has a malformed perf sample: {sample}"
            )
    print(
        f"check_bench: {path}: harness '{harness}', mode '{mode}', "
        f"{len(samples)} perf sample(s)"
    )
    return 0


def check_campaign_throughput(baseline, report):
    """Gate the trial-batched campaign speed: cells/second over the
    sweep grid must hold min_speedup x the recorded scalar
    (laneBlock=1) baseline."""
    expected = baseline.get("campaign_throughput")
    if expected is None:
        return 0
    throughput = report.get("campaign_throughput")
    if throughput is None:
        return fail(
            "fault campaign JSON has no 'campaign_throughput' "
            "field"
        )
    floor = (
        expected["baseline_cells_per_second"]
        * expected["min_speedup"]
    )
    if throughput < floor:
        return fail(
            f"campaign_throughput {throughput:.3f} cells/s below "
            f"{expected['min_speedup']:.1f}x scalar baseline "
            f"{expected['baseline_cells_per_second']:.3f} "
            f"(floor {floor:.3f})"
        )
    print(
        f"check_bench: campaign_throughput {throughput:.3f} "
        f"cells/s >= floor {floor:.3f} "
        f"({expected['min_speedup']:.1f}x scalar baseline)"
    )
    return 0


def check_fault_campaign(baseline, report):
    gate = report.get("gate")
    if gate is None:
        return fail("fault campaign JSON has no 'gate' object")
    expected = baseline["fault_campaign"]
    tolerance = expected["tolerance"]
    for key in ("p50_relative_accuracy", "worst_relative_accuracy"):
        if key not in gate:
            return fail(f"gate object missing '{key}'")
        floor = expected[key] - tolerance
        if gate[key] < floor:
            return fail(
                f"{key} {gate[key]:.6f} below baseline "
                f"{expected[key]:.6f} - tolerance {tolerance:.3f} "
                f"(floor {floor:.6f})"
            )
        print(
            f"check_bench: {key} {gate[key]:.6f} >= floor "
            f"{floor:.6f} (baseline {expected[key]:.6f})"
        )
    rate = gate.get("failure_rate")
    if rate != expected["failure_rate"]:
        return fail(
            f"gate failure rate {rate} != baseline "
            f"{expected['failure_rate']}"
        )
    return 0


def check_guard_policies(baseline, report):
    expected = baseline.get("guard_policies")
    if expected is None:
        return 0
    rows = {
        row.get("policy"): row
        for row in report.get("guard_policies", [])
    }
    tolerance = expected["tolerance"]
    floor = expected["p50_relative_accuracy"] - tolerance
    for policy in expected["policies"]:
        row = rows.get(policy)
        if row is None:
            return fail(
                f"guard_policies array is missing policy "
                f"'{policy}'"
            )
        if row.get("trips", 0) <= 0:
            return fail(
                f"policy '{policy}' recorded no watchdog trips "
                "(the stall no longer provokes the guard)"
            )
        if row.get("retention_violations", 0) != 0:
            return fail(
                f"policy '{policy}' leaked "
                f"{row['retention_violations']} corrupted-word "
                "events"
            )
        p50 = row.get("p50_relative_accuracy", 0.0)
        if p50 < floor:
            return fail(
                f"policy '{policy}' p50 relative accuracy "
                f"{p50:.6f} below floor {floor:.6f}"
            )
        print(
            f"check_bench: guard policy '{policy}' "
            f"{row['trips']} trips, 0 violations, p50 "
            f"{p50:.6f} >= floor {floor:.6f}"
        )
    return 0


def check_sched_scaling(report):
    points = report.get("points", [])
    if not points:
        return fail("sched scaling JSON has no 'points'")
    for point in points:
        if not point.get("identical", False):
            return fail(
                f"lane count {point.get('jobs')} produced a "
                "non-identical schedule"
            )
        if point.get("seconds", 0.0) <= 0.0:
            return fail(
                f"lane count {point.get('jobs')} reported a "
                "non-positive runtime"
            )
    print(
        f"check_bench: sched scaling sane across "
        f"{len(points)} lane counts"
    )
    return 0


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_bench.py <baseline.json> "
            "<fault_campaign.json> [sched_scaling.json]",
            file=sys.stderr,
        )
        return 1
    try:
        baseline = load(argv[1])
        campaign = load(argv[2])
    except (OSError, json.JSONDecodeError) as error:
        return fail(str(error))
    status = check_unified_schema(campaign, argv[2], "fault_campaign")
    if status != 0:
        return status
    status = check_fault_campaign(baseline, campaign)
    if status != 0:
        return status
    status = check_campaign_throughput(baseline, campaign)
    if status != 0:
        return status
    status = check_guard_policies(baseline, campaign)
    if status != 0:
        return status
    if len(argv) > 3:
        try:
            sched = load(argv[3])
        except (OSError, json.JSONDecodeError) as error:
            return fail(str(error))
        status = check_unified_schema(sched, argv[3], "sched_scaling")
        if status != 0:
            return status
        status = check_sched_scaling(sched)
        if status != 0:
            return status
    print("check_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
