#!/usr/bin/env python3
"""Benchmark-regression gate for the CI release and chaos jobs.

Compares machine-readable benchmark outputs against a checked-in
baseline with explicit tolerances:

    check_bench.py <baseline.json> <BENCH_*.json> [BENCH_*.json ...]

Every artifact must carry the unified rana_bench envelope: a known
"harness" name, a "mode" of correctness or perf and a non-empty
"samples" array. Artifacts are dispatched to their gate by that
"harness" field, so argument order does not matter; passing the same
harness twice or a harness without a gate fails loudly.

Every gate failure names the failing metric and prints the actual
value, the expected value and the tolerance that was applied, so a
red CI run says what regressed without re-running anything.

Gates:

* fault_campaign - the "gate" object bench_fault_campaign emits for
  the paper's retrained operating point (failure rate 1e-5) must
  hold the baseline's relative-accuracy floors; tolerance-based
  rather than exact because accuracies differ in the last few ULPs
  across compilers (FMA contraction). The campaign-throughput gate
  (baseline key "campaign_throughput") holds the trial-batched sweep
  to min_speedup x the recorded scalar cells-per-second baseline,
  and the guard-policy gate checks the permanent/hysteresis/binned
  comparison (trips absorbed, no corrupted words, same p50 floor).

* sweep_shard - the crash-tolerant sharded sweep must merge
  byte-identically with the single-process reference, both clean and
  under seeded chaos, the injected kill/stall/corruption must all
  have fired, and no cell may degrade past the baseline's
  max_degraded_cells (exact counts, no tolerance: determinism is the
  contract).

* sched_scaling - sanity gate, not a performance gate (CI runners
  have noisy, heterogeneous CPUs): every lane count must produce an
  identical schedule and a positive runtime.

Exit codes: 0 pass, 1 regression or malformed input.
"""

import json
import sys

# Every harness the unified rana_bench driver can emit. An artifact
# naming anything else is either stale or misrouted, and the gate
# says so instead of silently passing it through.
KNOWN_HARNESSES = (
    "table1_storage",
    "table2_memory_tech",
    "table3_energy_costs",
    "fig1_breakdown",
    "fig7_lifetime",
    "fig8_retention",
    "fig11_training",
    "fig12_layer_sizes",
    "fig15_total_energy",
    "fig16_rt_sweep",
    "fig17_vgg_layerwise",
    "fig18_capacity_sweep",
    "fig19_dadiannao",
    "ablations",
    "interlayer_reuse",
    "resolution_sweep",
    "sched_scaling",
    "fault_campaign",
    "campaign_batch",
    "sweep_shard",
    "micro",
)


def fail(message):
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    return 1


def fail_metric(metric, actual, expected, tolerance, detail=""):
    """The uniform gate-failure line: which metric regressed, the
    value it produced, the value the baseline expects and the
    tolerance that was applied before comparing."""
    suffix = f" ({detail})" if detail else ""
    return fail(
        f"metric '{metric}': actual={actual} expected={expected} "
        f"tolerance={tolerance}{suffix}"
    )


def passed(metric, actual, expected, tolerance):
    print(
        f"check_bench: metric '{metric}': actual={actual} "
        f"expected={expected} tolerance={tolerance}: ok"
    )
    return 0


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_unified_schema(report, path):
    """Validate the unified BENCH_*.json envelope the rana_bench
    driver writes: a known "harness" name, a valid "mode" and a
    well-formed "samples" array. Returns (status, harness)."""
    harness = report.get("harness")
    if harness is None:
        return (
            fail(
                f"{path} is missing the 'harness' field (not "
                f"written by rana_bench?); known harnesses: "
                f"{', '.join(KNOWN_HARNESSES)}"
            ),
            None,
        )
    if harness not in KNOWN_HARNESSES:
        return (
            fail(
                f"{path} names unknown harness '{harness}'; known "
                f"harnesses: {', '.join(KNOWN_HARNESSES)}"
            ),
            None,
        )
    mode = report.get("mode")
    if mode not in ("correctness", "perf"):
        return (
            fail(
                f"{path} has invalid mode '{mode}' (expect "
                "'correctness' or 'perf')"
            ),
            None,
        )
    samples = report.get("samples")
    if not isinstance(samples, list) or not samples:
        return (fail(f"{path} has no 'samples' array"), None)
    for sample in samples:
        if not all(key in sample for key in ("metric", "value", "unit")):
            return (
                fail(
                    f"{path} has a malformed perf sample: {sample}"
                ),
                None,
            )
    print(
        f"check_bench: {path}: harness '{harness}', mode '{mode}', "
        f"{len(samples)} perf sample(s)"
    )
    return (0, harness)


def check_campaign_throughput(baseline, report):
    """Gate the trial-batched campaign speed: cells/second over the
    sweep grid must hold min_speedup x the recorded scalar
    (laneBlock=1) baseline."""
    expected = baseline.get("campaign_throughput")
    if expected is None:
        return 0
    throughput = report.get("campaign_throughput")
    if throughput is None:
        return fail(
            "fault campaign JSON has no 'campaign_throughput' "
            "field"
        )
    scalar = expected["baseline_cells_per_second"]
    speedup = expected["min_speedup"]
    floor = scalar * speedup
    metric = "campaign_throughput"
    if throughput < floor:
        return fail_metric(
            metric,
            f"{throughput:.3f} cells/s",
            f">= {floor:.3f} cells/s",
            f"{speedup:.1f}x scalar baseline {scalar:.3f}",
        )
    return passed(
        metric,
        f"{throughput:.3f} cells/s",
        f">= {floor:.3f} cells/s",
        f"{speedup:.1f}x scalar baseline {scalar:.3f}",
    )


def check_fault_campaign(baseline, report):
    gate = report.get("gate")
    if gate is None:
        return fail("fault campaign JSON has no 'gate' object")
    expected = baseline["fault_campaign"]
    tolerance = expected["tolerance"]
    for key in ("p50_relative_accuracy", "worst_relative_accuracy"):
        metric = f"gate.{key}"
        if key not in gate:
            return fail(f"gate object missing '{key}'")
        floor = expected[key] - tolerance
        if gate[key] < floor:
            return fail_metric(
                metric,
                f"{gate[key]:.6f}",
                f"{expected[key]:.6f}",
                f"{tolerance:.3f}",
                f"floor {floor:.6f}",
            )
        passed(metric, f"{gate[key]:.6f}", f"{expected[key]:.6f}",
               f"{tolerance:.3f}")
    rate = gate.get("failure_rate")
    if rate != expected["failure_rate"]:
        return fail_metric(
            "gate.failure_rate",
            f"{rate}",
            f"{expected['failure_rate']}",
            "exact",
        )
    return 0


def check_guard_policies(baseline, report):
    expected = baseline.get("guard_policies")
    if expected is None:
        return 0
    rows = {
        row.get("policy"): row
        for row in report.get("guard_policies", [])
    }
    tolerance = expected["tolerance"]
    floor = expected["p50_relative_accuracy"] - tolerance
    for policy in expected["policies"]:
        row = rows.get(policy)
        if row is None:
            return fail(
                f"guard_policies array is missing policy "
                f"'{policy}'"
            )
        trips = row.get("trips", 0)
        if trips <= 0:
            return fail_metric(
                f"guard_policies[{policy}].trips",
                f"{trips}",
                "> 0",
                "exact",
                "the stall no longer provokes the guard",
            )
        violations = row.get("retention_violations", 0)
        if violations != 0:
            return fail_metric(
                f"guard_policies[{policy}].retention_violations",
                f"{violations}",
                "0",
                "exact",
                "corrupted-word events leaked past the guard",
            )
        p50 = row.get("p50_relative_accuracy", 0.0)
        metric = f"guard_policies[{policy}].p50_relative_accuracy"
        if p50 < floor:
            return fail_metric(
                metric,
                f"{p50:.6f}",
                f"{expected['p50_relative_accuracy']:.6f}",
                f"{tolerance:.3f}",
                f"floor {floor:.6f}",
            )
        passed(metric, f"{p50:.6f}",
               f"{expected['p50_relative_accuracy']:.6f}",
               f"{tolerance:.3f}")
    return 0


def check_sweep_shard(baseline, report):
    """Gate the crash-tolerant sharded sweep: byte-identical merges
    (clean and under chaos), chaos faults that actually fired, and a
    bounded number of degraded (in-process fallback) cells. Exact
    comparisons throughout - determinism is the contract."""
    expected = baseline.get("sweep_shard", {})
    max_degraded = expected.get("max_degraded_cells", 0)

    identical = report.get("merge_identical")
    if identical is not True:
        return fail_metric(
            "merge_identical",
            f"{identical}",
            "true",
            "exact",
            "sharded merge diverged from the single-process sweep",
        )
    passed("merge_identical", "true", "true", "exact")

    exercised = report.get("chaos_exercised")
    if exercised is not True:
        return fail_metric(
            "chaos_exercised",
            f"{exercised}",
            "true",
            "exact",
            "seeded kill/stall/corruption no longer fires",
        )
    passed("chaos_exercised", "true", "true", "exact")

    chaos = report.get("chaos")
    if not isinstance(chaos, dict):
        return fail("sweep shard JSON has no 'chaos' object")
    for counter in ("worker_crashes", "timeouts", "corrupt_frames"):
        value = chaos.get(counter, 0)
        if value < 1:
            return fail_metric(
                f"chaos.{counter}",
                f"{value}",
                ">= 1",
                "exact",
                "the injected fault did not fire",
            )
    degraded = chaos.get("degraded_cells", 0)
    metric = "chaos.degraded_cells"
    if degraded > max_degraded:
        return fail_metric(
            metric,
            f"{degraded}",
            f"<= {max_degraded}",
            "exact",
            "cells fell back to in-process execution",
        )
    return passed(metric, f"{degraded}", f"<= {max_degraded}",
                  "exact")


def check_sched_scaling(report):
    points = report.get("points", [])
    if not points:
        return fail("sched scaling JSON has no 'points'")
    for point in points:
        jobs = point.get("jobs")
        if not point.get("identical", False):
            return fail_metric(
                f"points[jobs={jobs}].identical",
                f"{point.get('identical')}",
                "true",
                "exact",
                "non-identical schedule across lane counts",
            )
        seconds = point.get("seconds", 0.0)
        if seconds <= 0.0:
            return fail_metric(
                f"points[jobs={jobs}].seconds",
                f"{seconds}",
                "> 0",
                "exact",
                "non-positive runtime",
            )
    print(
        f"check_bench: sched scaling sane across "
        f"{len(points)} lane counts"
    )
    return 0


# The harnesses this gate knows how to check, keyed by the artifact's
# own "harness" field (so argument order never matters).
GATES = {
    "fault_campaign": lambda baseline, report: (
        check_fault_campaign(baseline, report)
        or check_campaign_throughput(baseline, report)
        or check_guard_policies(baseline, report)
    ),
    "sweep_shard": check_sweep_shard,
    "sched_scaling": lambda baseline, report: check_sched_scaling(
        report
    ),
}


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_bench.py <baseline.json> <BENCH_*.json> "
            "[BENCH_*.json ...]",
            file=sys.stderr,
        )
        return 1
    try:
        baseline = load(argv[1])
    except (OSError, json.JSONDecodeError) as error:
        return fail(str(error))
    seen = set()
    for path in argv[2:]:
        try:
            report = load(path)
        except (OSError, json.JSONDecodeError) as error:
            return fail(str(error))
        status, harness = check_unified_schema(report, path)
        if status != 0:
            return status
        if harness in seen:
            return fail(f"{path} repeats harness '{harness}'")
        seen.add(harness)
        gate = GATES.get(harness)
        if gate is None:
            return fail(
                f"{path} holds harness '{harness}', which has no "
                f"regression gate; gated harnesses: "
                f"{', '.join(sorted(GATES))}"
            )
        status = gate(baseline, report)
        if status != 0:
            return status
    print("check_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
