#!/usr/bin/env python3
"""Benchmark-regression gate for the CI release job.

Compares the machine-readable benchmark outputs against a checked-in
baseline with explicit tolerances:

    check_bench.py <baseline.json> <fault_campaign.json> \
                   [sched_scaling.json]

The fault-campaign gate reads the "gate" object that
bench_fault_campaign emits for its retrained operating point
(failure rate 1e-5) and fails if the p50 relative accuracy drops by
more than the baseline's tolerance. Tolerance-based rather than
exact comparison: accuracies differ in the last few ULPs across
compilers (FMA contraction), so only a real regression trips the
gate.

The optional sched-scaling check is a sanity gate, not a performance
gate (CI runners have noisy, heterogeneous CPUs): every lane must
have produced an identical schedule and a positive runtime.

Exit codes: 0 pass, 1 regression or malformed input.
"""

import json
import sys


def fail(message):
    print(f"check_bench: FAIL: {message}", file=sys.stderr)
    return 1


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_fault_campaign(baseline, report):
    gate = report.get("gate")
    if gate is None:
        return fail("fault campaign JSON has no 'gate' object")
    expected = baseline["fault_campaign"]
    tolerance = expected["tolerance"]
    for key in ("p50_relative_accuracy", "worst_relative_accuracy"):
        if key not in gate:
            return fail(f"gate object missing '{key}'")
        floor = expected[key] - tolerance
        if gate[key] < floor:
            return fail(
                f"{key} {gate[key]:.6f} below baseline "
                f"{expected[key]:.6f} - tolerance {tolerance:.3f} "
                f"(floor {floor:.6f})"
            )
        print(
            f"check_bench: {key} {gate[key]:.6f} >= floor "
            f"{floor:.6f} (baseline {expected[key]:.6f})"
        )
    rate = gate.get("failure_rate")
    if rate != expected["failure_rate"]:
        return fail(
            f"gate failure rate {rate} != baseline "
            f"{expected['failure_rate']}"
        )
    return 0


def check_sched_scaling(report):
    points = report.get("points", [])
    if not points:
        return fail("sched scaling JSON has no 'points'")
    for point in points:
        if not point.get("identical", False):
            return fail(
                f"lane count {point.get('jobs')} produced a "
                "non-identical schedule"
            )
        if point.get("seconds", 0.0) <= 0.0:
            return fail(
                f"lane count {point.get('jobs')} reported a "
                "non-positive runtime"
            )
    print(
        f"check_bench: sched scaling sane across "
        f"{len(points)} lane counts"
    )
    return 0


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_bench.py <baseline.json> "
            "<fault_campaign.json> [sched_scaling.json]",
            file=sys.stderr,
        )
        return 1
    try:
        baseline = load(argv[1])
        campaign = load(argv[2])
    except (OSError, json.JSONDecodeError) as error:
        return fail(str(error))
    status = check_fault_campaign(baseline, campaign)
    if status != 0:
        return status
    if len(argv) > 3:
        try:
            sched = load(argv[3])
        except (OSError, json.JSONDecodeError) as error:
            return fail(str(error))
        status = check_sched_scaling(sched)
        if status != 0:
            return status
    print("check_bench: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
