/**
 * @file
 * Implementation of the shared command-line options.
 */

#include "cli_options.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"

namespace rana {
namespace cli {

namespace {

/** The next argument value, or an error naming the option. */
Result<std::string>
nextValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        return makeError(ErrorCode::InvalidArgument,
                         "missing value after ", argv[i]);
    }
    return std::string(argv[++i]);
}

/** Parse a non-negative integer option value. */
Result<std::uint32_t>
parseCount(const std::string &option, const std::string &value)
{
    char *end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return makeError(ErrorCode::InvalidArgument, option,
                         " expects a non-negative integer, got '",
                         value, "'");
    }
    return static_cast<std::uint32_t>(parsed);
}

} // namespace

Result<std::vector<DataflowKind>>
parseDataflowList(const std::string &value)
{
    if (value == "auto") {
        const auto all = allDataflows();
        return std::vector<DataflowKind>(all.begin(), all.end());
    }
    const Result<DataflowKind> kind = parseDataflowName(value);
    if (!kind.ok()) {
        return makeError(ErrorCode::InvalidArgument,
                         "unknown dataflow '", value,
                         "' (expected auto, id, od, wd, sys-os, "
                         "sys-is or sys-ws)");
    }
    return std::vector<DataflowKind>{kind.value()};
}

Result<DesignKind>
parseDesign(const std::string &name)
{
    if (name == "S+ID")
        return DesignKind::SramId;
    if (name == "eD+ID")
        return DesignKind::EdramId;
    if (name == "eD+OD")
        return DesignKind::EdramOd;
    if (name == "RANA0")
        return DesignKind::Rana0;
    if (name == "RANAE5")
        return DesignKind::RanaE5;
    if (name == "RANA*")
        return DesignKind::RanaStarE5;
    return makeError(ErrorCode::InvalidArgument, "unknown design '",
                     name,
                     "' (expected S+ID, eD+ID, eD+OD, RANA0, RANAE5 "
                     "or RANA*)");
}

const char *
commonOptionsUsage()
{
    return "[--guard] [--guard-policy permanent|hysteresis|binned] "
           "[--guard-k N] [--guard-bins N] [--metrics-json PATH] "
           "[--chrome-trace PATH]";
}

Result<bool>
consumeCommonOption(int argc, char **argv, int &i,
                    CommonOptions &options)
{
    const std::string arg = argv[i];
    if (arg == "--metrics-json") {
        Result<std::string> value = nextValue(argc, argv, i);
        if (!value.ok())
            return value.error();
        options.metricsJsonPath = std::move(value).value();
        return true;
    }
    if (arg == "--chrome-trace") {
        Result<std::string> value = nextValue(argc, argv, i);
        if (!value.ok())
            return value.error();
        options.chromeTracePath = std::move(value).value();
        return true;
    }
    if (arg == "--guard") {
        options.guard = true;
        return true;
    }
    if (arg == "--guard-policy") {
        Result<std::string> value = nextValue(argc, argv, i);
        if (!value.ok())
            return value.error();
        const Result<GuardPolicyKind> kind =
            parseGuardPolicyKind(value.value());
        if (!kind.ok())
            return kind.error();
        options.guard = true;
        options.guardPolicy.kind = kind.value();
        return true;
    }
    if (arg == "--guard-k") {
        Result<std::string> value = nextValue(argc, argv, i);
        if (!value.ok())
            return value.error();
        const Result<std::uint32_t> count =
            parseCount(arg, value.value());
        if (!count.ok())
            return count.error();
        options.guardPolicy.hysteresisK = count.value();
        return true;
    }
    if (arg == "--guard-bins") {
        Result<std::string> value = nextValue(argc, argv, i);
        if (!value.ok())
            return value.error();
        const Result<std::uint32_t> count =
            parseCount(arg, value.value());
        if (!count.ok())
            return count.error();
        options.guardPolicy.bins = count.value();
        return true;
    }
    return false;
}

Result<int>
writeObservability(const CommonOptions &options)
{
    int written = 0;
    if (!options.metricsJsonPath.empty()) {
        std::ofstream out(options.metricsJsonPath);
        if (!out) {
            return makeError(ErrorCode::IoError, "cannot open ",
                             options.metricsJsonPath,
                             " for writing");
        }
        out << metricsJsonDocument(MetricsRegistry::global());
        if (!out) {
            return makeError(ErrorCode::IoError, "cannot write ",
                             options.metricsJsonPath);
        }
        ++written;
    }
    if (!options.chromeTracePath.empty()) {
        const Result<bool> wrote =
            TraceRecorder::global().writeFile(
                options.chromeTracePath);
        if (!wrote.ok())
            return wrote.error();
        ++written;
    }
    return written;
}

int
fail(const char *tool, const Error &error)
{
    std::cerr << tool << ": " << error.describe() << "\n";
    return 1;
}

} // namespace cli
} // namespace rana
