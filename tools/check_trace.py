#!/usr/bin/env python3
"""Structural validator for the observability artifacts.

Checks the Chrome trace_event timeline and the metrics-registry
snapshot that rana_faultsim / rana_compile emit:

    check_trace.py <trace.json> [metrics.json]

The trace check asserts the shape chrome://tracing and Perfetto
load: a top-level "traceEvents" array whose entries carry the
required phase fields, with at least one duration event (B/E or X)
and counter (C) events on at least three distinct tracks. Timestamps
must be finite and non-negative, B/E events must balance per
(pid, tid) track, and metadata (M) events must name their thread or
process.

Merged multi-process traces (a sharded sweep run with --workers N
and --chrome-trace) are validated further: every process named
"rana worker <N>" must own at least one counter track and one
duration event under its own pid, no two processes may share a
name, and no two threads within one process may share a name —
per-worker provenance must survive the merge.

The metrics check asserts the "rana-metrics-1" schema: counters,
gauges and histograms keyed by name, with the refresh-pulse and
eval-cache counters present, at least one span_seconds_* histogram,
and every histogram's counts array one longer than its bounds array
(the overflow bucket) and summing to its count.

Exit codes: 0 pass, 1 malformed artifact.
"""

import json
import math
import re
import sys

WORKER_PROCESS_RE = re.compile(r"^rana worker \d+$")

REQUIRED_COUNTERS = (
    "edram_refresh_pulses_issued_total",
    "edram_refresh_words_total",
    "sched_eval_cache_hits_total",
    "sched_eval_cache_misses_total",
)


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    return 1


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_trace(trace):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("trace has no 'traceEvents' array")
    counter_tracks = set()
    duration_events = 0
    open_spans = {}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ("B", "E", "X", "C", "i", "M"):
            return fail(f"event {index} has unknown phase {phase!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                return fail(f"event {index} missing integer '{key}'")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(
                ts
            ) or ts < 0:
                return fail(f"event {index} has bad ts {ts!r}")
        if not isinstance(event.get("name"), str):
            return fail(f"event {index} missing 'name'")
        track = (event["pid"], event["tid"])
        if phase == "B":
            duration_events += 1
            open_spans[track] = open_spans.get(track, 0) + 1
        elif phase == "E":
            duration_events += 1
            if open_spans.get(track, 0) <= 0:
                return fail(
                    f"event {index} ends a span that never began "
                    f"on track {track}"
                )
            open_spans[track] -= 1
        elif phase == "X":
            duration_events += 1
            if "dur" not in event:
                return fail(f"X event {index} missing 'dur'")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                return fail(f"C event {index} missing 'args'")
            counter_tracks.add((*track, event["name"]))
        elif phase == "M":
            args = event.get("args", {})
            if "name" not in args:
                return fail(f"M event {index} missing args.name")
    unbalanced = {t: n for t, n in open_spans.items() if n != 0}
    if unbalanced:
        return fail(f"unbalanced B/E spans on tracks {unbalanced}")
    if duration_events == 0:
        return fail("trace has no duration (B/E or X) events")
    if len(counter_tracks) < 3:
        return fail(
            f"trace has {len(counter_tracks)} counter tracks, "
            "expected at least 3"
        )
    status = check_processes(events)
    if status != 0:
        return status
    print(
        f"check_trace: {len(events)} events, "
        f"{duration_events} duration events, "
        f"{len(counter_tracks)} counter tracks"
    )
    return 0


def check_processes(events):
    """Per-worker provenance of a merged multi-process trace."""
    process_names = {}
    thread_names = {}
    for index, event in enumerate(events):
        if event.get("ph") != "M":
            continue
        name = event.get("args", {}).get("name")
        track = (event["pid"], event["tid"])
        if event["name"] == "process_name":
            previous = process_names.get(event["pid"])
            if previous is not None and previous != name:
                return fail(
                    f"M event {index} renames pid {event['pid']} "
                    f"from {previous!r} to {name!r}"
                )
            process_names[event["pid"]] = name
        elif event["name"] == "thread_name":
            previous = thread_names.get(track)
            if previous is not None and previous != name:
                return fail(
                    f"M event {index} renames track {track} "
                    f"from {previous!r} to {name!r}"
                )
            thread_names[track] = name
    by_name = {}
    for pid, name in process_names.items():
        if name in by_name:
            return fail(
                f"duplicate process name {name!r} on pids "
                f"{by_name[name]} and {pid}"
            )
        by_name[name] = pid
    per_pid = {}
    for (pid, tid), name in thread_names.items():
        seen = per_pid.setdefault(pid, {})
        if name in seen:
            return fail(
                f"duplicate thread name {name!r} on pid {pid} "
                f"tids {seen[name]} and {tid}"
            )
        seen[name] = tid
    worker_pids = {
        pid
        for pid, name in process_names.items()
        if WORKER_PROCESS_RE.match(name or "")
    }
    if not worker_pids:
        return 0  # single-process trace: nothing more to check
    for pid in sorted(worker_pids):
        samples = [
            e
            for e in events
            if e.get("ph") == "C" and e["pid"] == pid
        ]
        durations = sum(
            1
            for e in events
            if e.get("ph") in ("B", "E", "X") and e["pid"] == pid
        )
        if not samples:
            return fail(
                f"worker process {process_names[pid]!r} (pid {pid}) "
                "has no counter track"
            )
        completed = max(
            max(v for v in e["args"].values()) for e in samples
        )
        if completed > 0 and durations == 0:
            # A worker that completed cells must have exported the
            # spans it recorded while running them; one that died
            # before its first completion legitimately has none.
            return fail(
                f"worker process {process_names[pid]!r} (pid {pid}) "
                f"completed {completed} cells but exported no "
                "duration events"
            )
    print(
        f"check_trace: {len(worker_pids)} worker processes with "
        "counter tracks and duration events"
    )
    return 0


def check_metrics(metrics):
    if metrics.get("schema") != "rana-metrics-1":
        return fail(
            f"metrics schema {metrics.get('schema')!r} != "
            "'rana-metrics-1'"
        )
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        return fail("metrics has no 'counters' object")
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            return fail(f"metrics missing counter '{name}'")
    histograms = metrics.get("histograms")
    if not isinstance(histograms, dict):
        return fail("metrics has no 'histograms' object")
    spans = [n for n in histograms if n.startswith("span_seconds_")]
    if not spans:
        return fail("metrics has no span_seconds_* histogram")
    for name, histogram in histograms.items():
        bounds = histogram.get("bounds", [])
        counts = histogram.get("counts", [])
        if len(counts) != len(bounds) + 1:
            return fail(
                f"histogram '{name}' has {len(counts)} buckets for "
                f"{len(bounds)} bounds (expected bounds + overflow)"
            )
        if sum(counts) != histogram.get("count"):
            return fail(
                f"histogram '{name}' bucket sum {sum(counts)} != "
                f"count {histogram.get('count')}"
            )
    print(
        f"check_trace: {len(counters)} counters, "
        f"{len(histograms)} histograms ({len(spans)} span phases)"
    )
    return 0


def main(argv):
    if len(argv) < 2:
        print(
            "usage: check_trace.py <trace.json> [metrics.json]",
            file=sys.stderr,
        )
        return 1
    try:
        trace = load(argv[1])
    except (OSError, json.JSONDecodeError) as error:
        return fail(str(error))
    status = check_trace(trace)
    if status != 0:
        return status
    if len(argv) > 2:
        try:
            metrics = load(argv[2])
        except (OSError, json.JSONDecodeError) as error:
            return fail(str(error))
        status = check_metrics(metrics)
        if status != 0:
            return status
    print("check_trace: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
