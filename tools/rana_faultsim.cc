/**
 * @file
 * rana_faultsim — command-line front end for the retention-fault
 * campaign engine.
 *
 * Compiles a benchmark network for a design point, executes the
 * schedule on the trace simulator (optionally under injected timing
 * faults and with the runtime reliability guard attached), samples
 * per-bank weak-cell retention times per trial, injects the implied
 * bit errors into the trained stand-in mini model, and reports the
 * end-to-end accuracy degradation:
 *
 *   rana_faultsim <network> [options]
 *
 *   <network>            AlexNet | VGG | GoogLeNet | ResNet
 *   --design NAME        S+ID | eD+ID | eD+OD | RANA0 | RANAE5 |
 *                        RANA*  (default RANAE5)
 *   --model NAME         MiniAlex | MiniVgg | MiniInception |
 *                        MiniRes (default MiniVgg)
 *   --trials N           retention-sampling trials (default 8)
 *   --seed S             master seed (default 1)
 *   --jobs N             trial worker lanes (0 = hardware threads)
 *   --lane-block N       trials fused per batched forward pass
 *                        (0 = tuned default, 1 = scalar reference;
 *                        bit-identical results for any value)
 *   --slowdown FACTOR    multiply every tile's time (timing fault)
 *   --stall SECONDS      stall before each outer scan (timing fault)
 *   --guard              attach the runtime reliability guard
 *   --guard-policy NAME  guard decision policy: permanent |
 *                        hysteresis | binned (implies --guard and
 *                        prints the markdown guard-policy row)
 *   --guard-k N          hysteresis: clean intervals to re-disarm
 *   --guard-bins N       binned: retention-binning divider bins
 *   --compare-policies   run the guarded campaign once per stock
 *                        policy over the --rates x --intervals grid
 *                        and print the markdown comparison table
 *   --no-retrain         skip retention-aware retraining (control)
 *   --markdown           emit the scenario row as a markdown table
 *   --sweep              sweep the failure-rate x refresh-interval
 *                        grid instead of one campaign; prints the
 *                        percentile band per cell and, with
 *                        --markdown, the markdown grid
 *   --rates LIST         comma-separated sweep failure rates
 *                        (default 0,1e-5,1e-4)
 *   --intervals LIST     comma-separated sweep refresh intervals in
 *                        seconds (default 45e-6,734e-6)
 *   --workers N          shard --sweep / --compare-policies over N
 *                        forked worker processes (0 = in-process;
 *                        the merged report is byte-identical to the
 *                        in-process run for any N)
 *   --cell-timeout-ms N  per-cell deadline before the worker is
 *                        declared hung and killed (default 120000)
 *   --max-retries N      retries per cell before degrading it to
 *                        in-process execution (default 2)
 *   --backoff-ms N       first retry delay, doubled per further
 *                        attempt (default 25)
 *   --postmortem-dir P   write one postmortem JSON dump per worker
 *                        crash/timeout incident under directory P
 *                        (created on first use; see rana_obs)
 *   --chaos SPEC         deterministic shard-fault injection, a
 *                        comma-separated list of kill=W:K (kill
 *                        worker W after K cells), stall=C (hang
 *                        cell C's first attempt) and corrupt=C
 *                        (corrupt cell C's first result frame)
 *   --metrics-json PATH  write a metrics-registry snapshot to PATH
 *   --chrome-trace PATH  record a Chrome trace_event timeline
 *                        (chrome://tracing / Perfetto) to PATH
 *
 * RANA_BENCH_VERIFY=1 in the environment makes every batched trial
 * block re-run through the scalar reference path and asserts the
 * per-trial results are bit-identical (slow; debugging aid).
 *
 * Exit codes: 0 success, 1 bad usage or failed campaign, 2 a guarded
 * run still observed corrupted-word events (the guard failed its
 * zero-corruption promise), 3 a sharded sweep completed but one or
 * more cells exhausted their retries and fell back to in-process
 * execution (degraded: the report is still complete and
 * byte-identical, but worker-level fault isolation was lost; exit 2
 * takes precedence when both apply).
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli_options.hh"
#include "obs/chrome_trace.hh"
#include "obs/pool_telemetry.hh"
#include "rana.hh"
#include "robust/sweep_shard.hh"
#include "sim/trace_timeline.hh"

namespace {

using namespace rana;

Result<MiniModelKind>
parseModel(const std::string &name)
{
    if (name == "MiniAlex")
        return MiniModelKind::MiniAlex;
    if (name == "MiniVgg")
        return MiniModelKind::MiniVgg;
    if (name == "MiniInception")
        return MiniModelKind::MiniInception;
    if (name == "MiniRes")
        return MiniModelKind::MiniRes;
    return makeError(ErrorCode::InvalidArgument, "unknown model '",
                     name,
                     "' (expected MiniAlex, MiniVgg, MiniInception "
                     "or MiniRes)");
}

/** Parse a comma-separated list of numbers. */
Result<std::vector<double>>
parseNumberList(const std::string &list)
{
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(start, comma - start);
        char *end = nullptr;
        const double parsed = std::strtod(item.c_str(), &end);
        if (item.empty() || end == item.c_str() || *end != '\0') {
            return makeError(ErrorCode::ParseError,
                             "bad number '", item,
                             "' in list '", list, "'");
        }
        values.push_back(parsed);
        start = comma + 1;
    }
    return values;
}

/** Print a failure and choose the tool's exit code. */
int
fail(const Error &error)
{
    return cli::fail("rana_faultsim", error);
}

/**
 * Parse a --chaos spec: comma-separated kill=W:K, stall=C and
 * corrupt=C items.
 */
Result<ShardChaosConfig>
parseChaosSpec(const std::string &spec)
{
    ShardChaosConfig chaos;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(start, comma - start);
        start = comma + 1;
        const std::size_t equals = item.find('=');
        if (equals == std::string::npos) {
            return makeError(ErrorCode::InvalidArgument,
                             "bad chaos item '", item,
                             "' (expected kill=W:K, stall=C or "
                             "corrupt=C)");
        }
        const std::string key = item.substr(0, equals);
        const std::string value = item.substr(equals + 1);
        char *end = nullptr;
        if (key == "kill") {
            const std::size_t colon = value.find(':');
            if (colon == std::string::npos) {
                return makeError(ErrorCode::InvalidArgument,
                                 "bad kill spec '", value,
                                 "' (expected W:K)");
            }
            chaos.killWorker = static_cast<int>(
                std::strtol(value.c_str(), &end, 10));
            if (end != value.c_str() + colon) {
                return makeError(ErrorCode::InvalidArgument,
                                 "bad kill worker in '", value, "'");
            }
            const std::string after = value.substr(colon + 1);
            chaos.killAfterCells = static_cast<std::uint32_t>(
                std::strtoul(after.c_str(), &end, 10));
            if (after.empty() ||
                end != after.c_str() + after.size()) {
                return makeError(ErrorCode::InvalidArgument,
                                 "bad kill cell count in '", value,
                                 "'");
            }
        } else if (key == "stall" || key == "corrupt") {
            const long cell = std::strtol(value.c_str(), &end, 10);
            if (value.empty() ||
                end != value.c_str() + value.size()) {
                return makeError(ErrorCode::InvalidArgument, "bad ",
                                 key, " cell '", value, "'");
            }
            (key == "stall" ? chaos.stallCell : chaos.corruptCell) =
                static_cast<int>(cell);
        } else {
            return makeError(ErrorCode::InvalidArgument,
                             "unknown chaos key '", key, "'");
        }
    }
    return chaos;
}

/** The comparison-format row of one guarded campaign report. */
GuardPolicyRow
policyRowOf(const FaultCampaignReport &report)
{
    GuardPolicyRow row;
    row.policy = report.guardPolicyName;
    row.trips = report.guardStats.trips;
    row.banksReenabled = report.guardStats.banksReenabled;
    row.redisarms = report.guardStats.redisarms;
    row.escalations = report.guardStats.escalations;
    row.fallbackRefreshOps = report.guardStats.fallbackRefreshOps;
    row.armedRefreshOps = report.guardStats.armedRefreshOps;
    row.violations = report.retentionViolations;
    row.p5RelativeAccuracy = report.p5RelativeAccuracy;
    row.p50RelativeAccuracy = report.p50RelativeAccuracy;
    row.p95RelativeAccuracy = report.p95RelativeAccuracy;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: rana_faultsim <network> [--design NAME] "
                     "[--model NAME] [--trials N] [--seed S] "
                     "[--jobs N] [--lane-block N] "
                     "[--slowdown FACTOR] "
                     "[--stall SECONDS] [--no-retrain] [--markdown] "
                     "[--sweep] [--compare-policies] [--rates LIST] "
                     "[--intervals LIST] [--workers N] "
                     "[--cell-timeout-ms N] [--max-retries N] "
                     "[--backoff-ms N] [--postmortem-dir PATH] "
                     "[--chaos SPEC] "
                  << cli::commonOptionsUsage() << "\n";
        return 1;
    }

    const std::string network_name = argv[1];
    std::string design_name = "RANAE5";
    std::string model_name = "MiniVgg";
    FaultCampaignConfigBuilder builder;
    cli::CommonOptions common;
    bool markdown = false;
    bool sweep = false;
    bool compare = false;
    bool policy_row = false;
    bool sharded = false;
    SweepShardConfig shard;
    std::vector<double> sweep_rates = {0.0, 1e-5, 1e-4};
    std::vector<double> sweep_intervals = {45e-6, 734e-6};
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const Result<bool> consumed =
            cli::consumeCommonOption(argc, argv, i, common);
        if (!consumed.ok())
            return fail(consumed.error());
        if (consumed.value()) {
            if (arg == "--guard-policy")
                policy_row = true;
            continue;
        }
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "rana_faultsim: missing value after "
                          << arg << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        auto number = [&](const std::string &value) -> double {
            char *end = nullptr;
            const double parsed = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                std::cerr << "rana_faultsim: " << arg
                          << " expects a number, got '" << value
                          << "'\n";
                std::exit(1);
            }
            return parsed;
        };
        if (arg == "--design") {
            design_name = next();
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--trials") {
            builder.trials(static_cast<std::uint32_t>(number(next())));
        } else if (arg == "--seed") {
            builder.seed(static_cast<std::uint64_t>(number(next())));
        } else if (arg == "--jobs") {
            builder.jobs(static_cast<unsigned>(number(next())));
        } else if (arg == "--lane-block") {
            builder.laneBlock(
                static_cast<std::uint32_t>(number(next())));
        } else if (arg == "--slowdown") {
            TimingFaults faults = builder.build().timingFaults;
            faults.slowdownFactor = number(next());
            builder.timingFaults(faults);
        } else if (arg == "--stall") {
            TimingFaults faults = builder.build().timingFaults;
            faults.scanStallSeconds = number(next());
            builder.timingFaults(faults);
        } else if (arg == "--no-retrain") {
            builder.retrain(false);
        } else if (arg == "--markdown") {
            markdown = true;
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--compare-policies") {
            compare = true;
        } else if (arg == "--rates") {
            const Result<std::vector<double>> rates =
                parseNumberList(next());
            if (!rates.ok())
                return fail(rates.error());
            sweep_rates = rates.value();
        } else if (arg == "--intervals") {
            const Result<std::vector<double>> intervals =
                parseNumberList(next());
            if (!intervals.ok())
                return fail(intervals.error());
            sweep_intervals = intervals.value();
        } else if (arg == "--workers") {
            shard.workers = static_cast<unsigned>(number(next()));
            sharded = shard.workers > 0;
        } else if (arg == "--cell-timeout-ms") {
            shard.cellTimeoutMs =
                static_cast<std::uint32_t>(number(next()));
        } else if (arg == "--max-retries") {
            shard.maxRetries =
                static_cast<std::uint32_t>(number(next()));
        } else if (arg == "--backoff-ms") {
            shard.backoffBaseMs =
                static_cast<std::uint32_t>(number(next()));
        } else if (arg == "--postmortem-dir") {
            shard.postmortemDir = next();
        } else if (arg == "--chaos") {
            const Result<ShardChaosConfig> chaos =
                parseChaosSpec(next());
            if (!chaos.ok())
                return fail(chaos.error());
            shard.chaos = chaos.value();
        } else {
            return fail(makeError(ErrorCode::InvalidArgument,
                                  "unknown option ", arg));
        }
    }

    const Result<DesignKind> kind = cli::parseDesign(design_name);
    if (!kind.ok())
        return fail(kind.error());
    const Result<MiniModelKind> model = parseModel(model_name);
    if (!model.ok())
        return fail(model.error());
    builder.model(model.value());

    Result<NetworkModel> looked_up =
        makeBenchmarkChecked(network_name);
    if (!looked_up.ok())
        return fail(looked_up.error());
    const NetworkModel network = std::move(looked_up).value();
    const RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    const DesignPoint design =
        makeDesignPoint(kind.value(), retention);
    builder.retention(retention)
        .guard(common.guard)
        .guardPolicy(common.guardPolicy);

    if (common.wantsObservability())
        installPoolTelemetry();
    TimelineTraceSink timeline;
    if (!common.chromeTracePath.empty()) {
        TraceRecorder::global().enable();
        builder.traceSink(&timeline);
    }
    const FaultCampaignConfig config = builder.build();

    if (compare) {
        CampaignSweepConfig sweep_config;
        sweep_config.failureRates = sweep_rates;
        sweep_config.refreshIntervals = sweep_intervals;
        sweep_config.campaign = config;
        // The comparison's hysteresis/binned knobs follow --guard-k
        // and --guard-bins; the policy set is the three stock ones.
        sweep_config.guardPolicies.resize(3, config.guardPolicy);
        sweep_config.guardPolicies[0].kind =
            GuardPolicyKind::Permanent;
        sweep_config.guardPolicies[1].kind =
            GuardPolicyKind::Hysteresis;
        sweep_config.guardPolicies[2].kind = GuardPolicyKind::Binned;
        Result<GuardPolicyComparisonReport> compared =
            makeError(ErrorCode::InvalidArgument, "unreachable");
        SweepShardStats shard_stats;
        if (sharded) {
            Result<ShardedComparisonResult> result =
                runShardedGuardPolicyComparison(design, network,
                                                sweep_config, shard);
            if (!result.ok())
                return fail(result.error());
            shard_stats = result.value().stats;
            std::cerr << "shard: " << shard_stats.describe() << "\n";
            compared = std::move(result).value().report;
        } else {
            compared =
                runGuardPolicyComparison(design, network,
                                         sweep_config);
        }
        if (!compared.ok())
            return fail(compared.error());
        const GuardPolicyComparisonReport &report = compared.value();
        std::cerr << report.designName << " on "
                  << report.networkName << " (" << report.modelName
                  << "): baseline " << report.baselineAccuracy
                  << ", guard-policy comparison over "
                  << report.failureRates.size() << "x"
                  << report.refreshIntervals.size() << " grid, "
                  << config.trials << " trials per cell\n";
        std::cout << report.comparisonTable();
        const Result<int> wrote = cli::writeObservability(common);
        if (!wrote.ok())
            return fail(wrote.error());
        for (const GuardPolicyComparisonCell &cell : report.cells) {
            if (cell.report.retentionViolations > 0)
                return 2;
        }
        return shard_stats.degraded() ? 3 : 0;
    }

    if (sweep) {
        CampaignSweepConfig sweep_config;
        sweep_config.failureRates = sweep_rates;
        sweep_config.refreshIntervals = sweep_intervals;
        sweep_config.campaign = config;
        Result<CampaignSweepReport> swept =
            makeError(ErrorCode::InvalidArgument, "unreachable");
        SweepShardStats shard_stats;
        if (sharded) {
            Result<ShardedSweepResult> result =
                runShardedCampaignSweep(design, network,
                                        sweep_config, shard);
            if (!result.ok())
                return fail(result.error());
            shard_stats = result.value().stats;
            std::cerr << "shard: " << shard_stats.describe() << "\n";
            swept = std::move(result).value().report;
        } else {
            swept = runCampaignSweep(design, network, sweep_config);
        }
        if (!swept.ok())
            return fail(swept.error());
        const CampaignSweepReport &report = swept.value();
        std::cerr << report.designName << " on "
                  << report.networkName << " ("
                  << report.modelName << "): baseline "
                  << report.baselineAccuracy << ", "
                  << report.failureRates.size() << "x"
                  << report.refreshIntervals.size()
                  << " sweep, " << config.trials
                  << " trials per cell\n";
        if (markdown) {
            std::cout << report.percentileTable();
        } else {
            for (const SweepCell &cell : report.cells)
                std::cout << cell.report.describe() << "\n";
        }
        const Result<int> wrote = cli::writeObservability(common);
        if (!wrote.ok())
            return fail(wrote.error());
        return shard_stats.degraded() ? 3 : 0;
    }

    const Result<FaultCampaignReport> campaign =
        runFaultCampaign(design, network, config);
    if (!campaign.ok())
        return fail(campaign.error());
    const FaultCampaignReport &report = campaign.value();

    std::cerr << report.describe() << "\n";
    if (policy_row) {
        // --guard-policy renders the campaign in the comparison's
        // table format, so single-policy runs line up with
        // --compare-policies output.
        std::cout << markdownGuardPolicyTable({policyRowOf(report)});
    }
    if (markdown) {
        ReliabilityScenarioRow row;
        row.name = report.designName + " / " + report.networkName;
        row.executionSeconds = report.executionSeconds;
        row.violations = report.retentionViolations;
        row.guarded = report.guarded;
        row.guardTrips = report.guardStats.trips;
        row.banksReenabled = report.guardStats.banksReenabled;
        row.fallbackRefreshOps = report.guardStats.fallbackRefreshOps;
        row.meanRelativeAccuracy = report.meanRelativeAccuracy;
        row.worstRelativeAccuracy = report.worstRelativeAccuracy;
        std::cout << markdownReliabilityTable({row});
    }

    const Result<int> wrote = cli::writeObservability(common);
    if (!wrote.ok())
        return fail(wrote.error());

    if (report.guarded && report.retentionViolations > 0)
        return 2;
    return 0;
}
