/**
 * @file
 * rana_faultsim — command-line front end for the retention-fault
 * campaign engine.
 *
 * Compiles a benchmark network for a design point, executes the
 * schedule on the trace simulator (optionally under injected timing
 * faults and with the runtime reliability guard attached), samples
 * per-bank weak-cell retention times per trial, injects the implied
 * bit errors into the trained stand-in mini model, and reports the
 * end-to-end accuracy degradation:
 *
 *   rana_faultsim <network> [options]
 *
 *   <network>            AlexNet | VGG | GoogLeNet | ResNet
 *   --design NAME        S+ID | eD+ID | eD+OD | RANA0 | RANAE5 |
 *                        RANA*  (default RANAE5)
 *   --model NAME         MiniAlex | MiniVgg | MiniInception |
 *                        MiniRes (default MiniVgg)
 *   --trials N           retention-sampling trials (default 8)
 *   --seed S             master seed (default 1)
 *   --jobs N             trial worker lanes (0 = hardware threads)
 *   --lane-block N       trials fused per batched forward pass
 *                        (0 = tuned default, 1 = scalar reference;
 *                        bit-identical results for any value)
 *   --slowdown FACTOR    multiply every tile's time (timing fault)
 *   --stall SECONDS      stall before each outer scan (timing fault)
 *   --guard              attach the runtime reliability guard
 *   --guard-policy NAME  guard decision policy: permanent |
 *                        hysteresis | binned (implies --guard and
 *                        prints the markdown guard-policy row)
 *   --guard-k N          hysteresis: clean intervals to re-disarm
 *   --guard-bins N       binned: retention-binning divider bins
 *   --compare-policies   run the guarded campaign once per stock
 *                        policy over the --rates x --intervals grid
 *                        and print the markdown comparison table
 *   --no-retrain         skip retention-aware retraining (control)
 *   --markdown           emit the scenario row as a markdown table
 *   --sweep              sweep the failure-rate x refresh-interval
 *                        grid instead of one campaign; prints the
 *                        percentile band per cell and, with
 *                        --markdown, the markdown grid
 *   --rates LIST         comma-separated sweep failure rates
 *                        (default 0,1e-5,1e-4)
 *   --intervals LIST     comma-separated sweep refresh intervals in
 *                        seconds (default 45e-6,734e-6)
 *   --metrics-json PATH  write a metrics-registry snapshot to PATH
 *   --chrome-trace PATH  record a Chrome trace_event timeline
 *                        (chrome://tracing / Perfetto) to PATH
 *
 * RANA_BENCH_VERIFY=1 in the environment makes every batched trial
 * block re-run through the scalar reference path and asserts the
 * per-trial results are bit-identical (slow; debugging aid).
 *
 * Exit codes: 0 success, 1 bad usage or failed campaign, 2 a guarded
 * run still observed corrupted-word events (the guard failed its
 * zero-corruption promise).
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli_options.hh"
#include "obs/chrome_trace.hh"
#include "obs/pool_telemetry.hh"
#include "rana.hh"
#include "sim/trace_timeline.hh"

namespace {

using namespace rana;

Result<MiniModelKind>
parseModel(const std::string &name)
{
    if (name == "MiniAlex")
        return MiniModelKind::MiniAlex;
    if (name == "MiniVgg")
        return MiniModelKind::MiniVgg;
    if (name == "MiniInception")
        return MiniModelKind::MiniInception;
    if (name == "MiniRes")
        return MiniModelKind::MiniRes;
    return makeError(ErrorCode::InvalidArgument, "unknown model '",
                     name,
                     "' (expected MiniAlex, MiniVgg, MiniInception "
                     "or MiniRes)");
}

/** Parse a comma-separated list of numbers. */
Result<std::vector<double>>
parseNumberList(const std::string &list)
{
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(start, comma - start);
        char *end = nullptr;
        const double parsed = std::strtod(item.c_str(), &end);
        if (item.empty() || end == item.c_str() || *end != '\0') {
            return makeError(ErrorCode::ParseError,
                             "bad number '", item,
                             "' in list '", list, "'");
        }
        values.push_back(parsed);
        start = comma + 1;
    }
    return values;
}

/** Print a failure and choose the tool's exit code. */
int
fail(const Error &error)
{
    return cli::fail("rana_faultsim", error);
}

/** The comparison-format row of one guarded campaign report. */
GuardPolicyRow
policyRowOf(const FaultCampaignReport &report)
{
    GuardPolicyRow row;
    row.policy = report.guardPolicyName;
    row.trips = report.guardStats.trips;
    row.banksReenabled = report.guardStats.banksReenabled;
    row.redisarms = report.guardStats.redisarms;
    row.escalations = report.guardStats.escalations;
    row.fallbackRefreshOps = report.guardStats.fallbackRefreshOps;
    row.armedRefreshOps = report.guardStats.armedRefreshOps;
    row.violations = report.retentionViolations;
    row.p5RelativeAccuracy = report.p5RelativeAccuracy;
    row.p50RelativeAccuracy = report.p50RelativeAccuracy;
    row.p95RelativeAccuracy = report.p95RelativeAccuracy;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: rana_faultsim <network> [--design NAME] "
                     "[--model NAME] [--trials N] [--seed S] "
                     "[--jobs N] [--lane-block N] "
                     "[--slowdown FACTOR] "
                     "[--stall SECONDS] [--no-retrain] [--markdown] "
                     "[--sweep] [--compare-policies] [--rates LIST] "
                     "[--intervals LIST] "
                  << cli::commonOptionsUsage() << "\n";
        return 1;
    }

    const std::string network_name = argv[1];
    std::string design_name = "RANAE5";
    std::string model_name = "MiniVgg";
    FaultCampaignConfigBuilder builder;
    cli::CommonOptions common;
    bool markdown = false;
    bool sweep = false;
    bool compare = false;
    bool policy_row = false;
    std::vector<double> sweep_rates = {0.0, 1e-5, 1e-4};
    std::vector<double> sweep_intervals = {45e-6, 734e-6};
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const Result<bool> consumed =
            cli::consumeCommonOption(argc, argv, i, common);
        if (!consumed.ok())
            return fail(consumed.error());
        if (consumed.value()) {
            if (arg == "--guard-policy")
                policy_row = true;
            continue;
        }
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "rana_faultsim: missing value after "
                          << arg << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        auto number = [&](const std::string &value) -> double {
            char *end = nullptr;
            const double parsed = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                std::cerr << "rana_faultsim: " << arg
                          << " expects a number, got '" << value
                          << "'\n";
                std::exit(1);
            }
            return parsed;
        };
        if (arg == "--design") {
            design_name = next();
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--trials") {
            builder.trials(static_cast<std::uint32_t>(number(next())));
        } else if (arg == "--seed") {
            builder.seed(static_cast<std::uint64_t>(number(next())));
        } else if (arg == "--jobs") {
            builder.jobs(static_cast<unsigned>(number(next())));
        } else if (arg == "--lane-block") {
            builder.laneBlock(
                static_cast<std::uint32_t>(number(next())));
        } else if (arg == "--slowdown") {
            TimingFaults faults = builder.build().timingFaults;
            faults.slowdownFactor = number(next());
            builder.timingFaults(faults);
        } else if (arg == "--stall") {
            TimingFaults faults = builder.build().timingFaults;
            faults.scanStallSeconds = number(next());
            builder.timingFaults(faults);
        } else if (arg == "--no-retrain") {
            builder.retrain(false);
        } else if (arg == "--markdown") {
            markdown = true;
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--compare-policies") {
            compare = true;
        } else if (arg == "--rates") {
            const Result<std::vector<double>> rates =
                parseNumberList(next());
            if (!rates.ok())
                return fail(rates.error());
            sweep_rates = rates.value();
        } else if (arg == "--intervals") {
            const Result<std::vector<double>> intervals =
                parseNumberList(next());
            if (!intervals.ok())
                return fail(intervals.error());
            sweep_intervals = intervals.value();
        } else {
            return fail(makeError(ErrorCode::InvalidArgument,
                                  "unknown option ", arg));
        }
    }

    const Result<DesignKind> kind = cli::parseDesign(design_name);
    if (!kind.ok())
        return fail(kind.error());
    const Result<MiniModelKind> model = parseModel(model_name);
    if (!model.ok())
        return fail(model.error());
    builder.model(model.value());

    Result<NetworkModel> looked_up =
        makeBenchmarkChecked(network_name);
    if (!looked_up.ok())
        return fail(looked_up.error());
    const NetworkModel network = std::move(looked_up).value();
    const RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    const DesignPoint design =
        makeDesignPoint(kind.value(), retention);
    builder.retention(retention)
        .guard(common.guard)
        .guardPolicy(common.guardPolicy);

    if (common.wantsObservability())
        installPoolTelemetry();
    TimelineTraceSink timeline;
    if (!common.chromeTracePath.empty()) {
        TraceRecorder::global().enable();
        builder.traceSink(&timeline);
    }
    const FaultCampaignConfig config = builder.build();

    if (compare) {
        CampaignSweepConfig sweep_config;
        sweep_config.failureRates = sweep_rates;
        sweep_config.refreshIntervals = sweep_intervals;
        sweep_config.campaign = config;
        // The comparison's hysteresis/binned knobs follow --guard-k
        // and --guard-bins; the policy set is the three stock ones.
        sweep_config.guardPolicies.resize(3, config.guardPolicy);
        sweep_config.guardPolicies[0].kind =
            GuardPolicyKind::Permanent;
        sweep_config.guardPolicies[1].kind =
            GuardPolicyKind::Hysteresis;
        sweep_config.guardPolicies[2].kind = GuardPolicyKind::Binned;
        const Result<GuardPolicyComparisonReport> compared =
            runGuardPolicyComparison(design, network, sweep_config);
        if (!compared.ok())
            return fail(compared.error());
        const GuardPolicyComparisonReport &report = compared.value();
        std::cerr << report.designName << " on "
                  << report.networkName << " (" << report.modelName
                  << "): baseline " << report.baselineAccuracy
                  << ", guard-policy comparison over "
                  << report.failureRates.size() << "x"
                  << report.refreshIntervals.size() << " grid, "
                  << config.trials << " trials per cell\n";
        std::cout << report.comparisonTable();
        const Result<int> wrote = cli::writeObservability(common);
        if (!wrote.ok())
            return fail(wrote.error());
        for (const GuardPolicyComparisonCell &cell : report.cells) {
            if (cell.report.retentionViolations > 0)
                return 2;
        }
        return 0;
    }

    if (sweep) {
        CampaignSweepConfig sweep_config;
        sweep_config.failureRates = sweep_rates;
        sweep_config.refreshIntervals = sweep_intervals;
        sweep_config.campaign = config;
        const Result<CampaignSweepReport> swept =
            runCampaignSweep(design, network, sweep_config);
        if (!swept.ok())
            return fail(swept.error());
        const CampaignSweepReport &report = swept.value();
        std::cerr << report.designName << " on "
                  << report.networkName << " ("
                  << report.modelName << "): baseline "
                  << report.baselineAccuracy << ", "
                  << report.failureRates.size() << "x"
                  << report.refreshIntervals.size()
                  << " sweep, " << config.trials
                  << " trials per cell\n";
        if (markdown) {
            std::cout << report.percentileTable();
        } else {
            for (const SweepCell &cell : report.cells)
                std::cout << cell.report.describe() << "\n";
        }
        const Result<int> wrote = cli::writeObservability(common);
        if (!wrote.ok())
            return fail(wrote.error());
        return 0;
    }

    const Result<FaultCampaignReport> campaign =
        runFaultCampaign(design, network, config);
    if (!campaign.ok())
        return fail(campaign.error());
    const FaultCampaignReport &report = campaign.value();

    std::cerr << report.describe() << "\n";
    if (policy_row) {
        // --guard-policy renders the campaign in the comparison's
        // table format, so single-policy runs line up with
        // --compare-policies output.
        std::cout << markdownGuardPolicyTable({policyRowOf(report)});
    }
    if (markdown) {
        ReliabilityScenarioRow row;
        row.name = report.designName + " / " + report.networkName;
        row.executionSeconds = report.executionSeconds;
        row.violations = report.retentionViolations;
        row.guarded = report.guarded;
        row.guardTrips = report.guardStats.trips;
        row.banksReenabled = report.guardStats.banksReenabled;
        row.fallbackRefreshOps = report.guardStats.fallbackRefreshOps;
        row.meanRelativeAccuracy = report.meanRelativeAccuracy;
        row.worstRelativeAccuracy = report.worstRelativeAccuracy;
        std::cout << markdownReliabilityTable({row});
    }

    const Result<int> wrote = cli::writeObservability(common);
    if (!wrote.ok())
        return fail(wrote.error());

    if (report.guarded && report.retentionViolations > 0)
        return 2;
    return 0;
}
