/**
 * @file
 * rana_faultsim — command-line front end for the retention-fault
 * campaign engine.
 *
 * Compiles a benchmark network for a design point, executes the
 * schedule on the trace simulator (optionally under injected timing
 * faults and with the runtime reliability guard attached), samples
 * per-bank weak-cell retention times per trial, injects the implied
 * bit errors into the trained stand-in mini model, and reports the
 * end-to-end accuracy degradation:
 *
 *   rana_faultsim <network> [options]
 *
 *   <network>            AlexNet | VGG | GoogLeNet | ResNet
 *   --design NAME        S+ID | eD+ID | eD+OD | RANA0 | RANAE5 |
 *                        RANA*  (default RANAE5)
 *   --model NAME         MiniAlex | MiniVgg | MiniInception |
 *                        MiniRes (default MiniVgg)
 *   --trials N           retention-sampling trials (default 8)
 *   --seed S             master seed (default 1)
 *   --jobs N             trial worker lanes (0 = hardware threads)
 *   --slowdown FACTOR    multiply every tile's time (timing fault)
 *   --stall SECONDS      stall before each outer scan (timing fault)
 *   --guard              attach the runtime reliability guard
 *   --no-retrain         skip retention-aware retraining (control)
 *   --markdown           emit the scenario row as a markdown table
 *   --sweep              sweep the failure-rate x refresh-interval
 *                        grid instead of one campaign; prints the
 *                        percentile band per cell and, with
 *                        --markdown, the markdown grid
 *   --rates LIST         comma-separated sweep failure rates
 *                        (default 0,1e-5,1e-4)
 *   --intervals LIST     comma-separated sweep refresh intervals in
 *                        seconds (default 45e-6,734e-6)
 *   --metrics-json PATH  write a metrics-registry snapshot to PATH
 *   --chrome-trace PATH  record a Chrome trace_event timeline
 *                        (chrome://tracing / Perfetto) to PATH
 *
 * Exit codes: 0 success, 1 bad usage or failed campaign, 2 a guarded
 * run still observed corrupted-word events (the guard failed its
 * zero-corruption promise).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"
#include "obs/pool_telemetry.hh"
#include "rana.hh"
#include "robust/campaign_sweep.hh"
#include "robust/fault_campaign.hh"
#include "sim/trace_timeline.hh"

namespace {

using namespace rana;

Result<DesignKind>
parseDesign(const std::string &name)
{
    if (name == "S+ID")
        return DesignKind::SramId;
    if (name == "eD+ID")
        return DesignKind::EdramId;
    if (name == "eD+OD")
        return DesignKind::EdramOd;
    if (name == "RANA0")
        return DesignKind::Rana0;
    if (name == "RANAE5")
        return DesignKind::RanaE5;
    if (name == "RANA*")
        return DesignKind::RanaStarE5;
    return makeError(ErrorCode::InvalidArgument, "unknown design '",
                     name,
                     "' (expected S+ID, eD+ID, eD+OD, RANA0, RANAE5 "
                     "or RANA*)");
}

Result<MiniModelKind>
parseModel(const std::string &name)
{
    if (name == "MiniAlex")
        return MiniModelKind::MiniAlex;
    if (name == "MiniVgg")
        return MiniModelKind::MiniVgg;
    if (name == "MiniInception")
        return MiniModelKind::MiniInception;
    if (name == "MiniRes")
        return MiniModelKind::MiniRes;
    return makeError(ErrorCode::InvalidArgument, "unknown model '",
                     name,
                     "' (expected MiniAlex, MiniVgg, MiniInception "
                     "or MiniRes)");
}

/** Parse a comma-separated list of numbers. */
Result<std::vector<double>>
parseNumberList(const std::string &list)
{
    std::vector<double> values;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        const std::string item = list.substr(start, comma - start);
        char *end = nullptr;
        const double parsed = std::strtod(item.c_str(), &end);
        if (item.empty() || end == item.c_str() || *end != '\0') {
            return makeError(ErrorCode::ParseError,
                             "bad number '", item,
                             "' in list '", list, "'");
        }
        values.push_back(parsed);
        start = comma + 1;
    }
    return values;
}

/** Print a failure and choose the tool's exit code. */
int
fail(const Error &error)
{
    std::cerr << "rana_faultsim: " << error.describe() << "\n";
    return 1;
}

/**
 * Flush the requested observability outputs. Returns an error when a
 * file cannot be written; otherwise the number of outputs written.
 */
Result<int>
writeObservability(const std::string &metrics_path,
                   const std::string &trace_path)
{
    int written = 0;
    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        if (!out) {
            return makeError(ErrorCode::IoError, "cannot open ",
                             metrics_path, " for writing");
        }
        out << metricsJsonDocument(MetricsRegistry::global());
        if (!out) {
            return makeError(ErrorCode::IoError, "cannot write ",
                             metrics_path);
        }
        ++written;
    }
    if (!trace_path.empty()) {
        const Result<bool> wrote =
            TraceRecorder::global().writeFile(trace_path);
        if (!wrote.ok())
            return wrote.error();
        ++written;
    }
    return written;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: rana_faultsim <network> [--design NAME] "
                     "[--model NAME] [--trials N] [--seed S] "
                     "[--jobs N] [--slowdown FACTOR] "
                     "[--stall SECONDS] [--guard] [--no-retrain] "
                     "[--markdown] [--sweep] [--rates LIST] "
                     "[--intervals LIST] [--metrics-json PATH] "
                     "[--chrome-trace PATH]\n";
        return 1;
    }

    const std::string network_name = argv[1];
    std::string design_name = "RANAE5";
    std::string model_name = "MiniVgg";
    FaultCampaignConfig config;
    bool markdown = false;
    bool sweep = false;
    std::vector<double> sweep_rates = {0.0, 1e-5, 1e-4};
    std::vector<double> sweep_intervals = {45e-6, 734e-6};
    std::string metrics_path;
    std::string trace_path;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "rana_faultsim: missing value after "
                          << arg << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        auto number = [&](const std::string &value) -> double {
            char *end = nullptr;
            const double parsed = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                std::cerr << "rana_faultsim: " << arg
                          << " expects a number, got '" << value
                          << "'\n";
                std::exit(1);
            }
            return parsed;
        };
        if (arg == "--design") {
            design_name = next();
        } else if (arg == "--model") {
            model_name = next();
        } else if (arg == "--trials") {
            config.trials =
                static_cast<std::uint32_t>(number(next()));
        } else if (arg == "--seed") {
            config.seed = static_cast<std::uint64_t>(number(next()));
        } else if (arg == "--jobs") {
            config.jobs = static_cast<unsigned>(number(next()));
        } else if (arg == "--slowdown") {
            config.timingFaults.slowdownFactor = number(next());
        } else if (arg == "--stall") {
            config.timingFaults.scanStallSeconds = number(next());
        } else if (arg == "--guard") {
            config.guard = true;
        } else if (arg == "--no-retrain") {
            config.retrain = false;
        } else if (arg == "--markdown") {
            markdown = true;
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--rates") {
            const Result<std::vector<double>> rates =
                parseNumberList(next());
            if (!rates.ok())
                return fail(rates.error());
            sweep_rates = rates.value();
        } else if (arg == "--intervals") {
            const Result<std::vector<double>> intervals =
                parseNumberList(next());
            if (!intervals.ok())
                return fail(intervals.error());
            sweep_intervals = intervals.value();
        } else if (arg == "--metrics-json") {
            metrics_path = next();
        } else if (arg == "--chrome-trace") {
            trace_path = next();
        } else {
            return fail(makeError(ErrorCode::InvalidArgument,
                                  "unknown option ", arg));
        }
    }

    const Result<DesignKind> kind = parseDesign(design_name);
    if (!kind.ok())
        return fail(kind.error());
    const Result<MiniModelKind> model = parseModel(model_name);
    if (!model.ok())
        return fail(model.error());
    config.model = model.value();

    Result<NetworkModel> looked_up =
        makeBenchmarkChecked(network_name);
    if (!looked_up.ok())
        return fail(looked_up.error());
    const NetworkModel network = std::move(looked_up).value();
    const RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    const DesignPoint design =
        makeDesignPoint(kind.value(), retention);
    config.retention = retention;

    if (!metrics_path.empty() || !trace_path.empty())
        installPoolTelemetry();
    TimelineTraceSink timeline;
    if (!trace_path.empty()) {
        TraceRecorder::global().enable();
        config.traceSink = &timeline;
    }

    if (sweep) {
        CampaignSweepConfig sweep_config;
        sweep_config.failureRates = sweep_rates;
        sweep_config.refreshIntervals = sweep_intervals;
        sweep_config.campaign = config;
        const Result<CampaignSweepReport> swept =
            runCampaignSweep(design, network, sweep_config);
        if (!swept.ok())
            return fail(swept.error());
        const CampaignSweepReport &report = swept.value();
        std::cerr << report.designName << " on "
                  << report.networkName << " ("
                  << report.modelName << "): baseline "
                  << report.baselineAccuracy << ", "
                  << report.failureRates.size() << "x"
                  << report.refreshIntervals.size()
                  << " sweep, " << config.trials
                  << " trials per cell\n";
        if (markdown) {
            std::cout << report.percentileTable();
        } else {
            for (const SweepCell &cell : report.cells)
                std::cout << cell.report.describe() << "\n";
        }
        const Result<int> wrote =
            writeObservability(metrics_path, trace_path);
        if (!wrote.ok())
            return fail(wrote.error());
        return 0;
    }

    const Result<FaultCampaignReport> campaign =
        runFaultCampaign(design, network, config);
    if (!campaign.ok())
        return fail(campaign.error());
    const FaultCampaignReport &report = campaign.value();

    std::cerr << report.describe() << "\n";
    if (markdown) {
        ReliabilityScenarioRow row;
        row.name = report.designName + " / " + report.networkName;
        row.executionSeconds = report.executionSeconds;
        row.violations = report.retentionViolations;
        row.guarded = report.guarded;
        row.guardTrips = report.guardStats.trips;
        row.banksReenabled = report.guardStats.banksReenabled;
        row.fallbackRefreshOps = report.guardStats.fallbackRefreshOps;
        row.meanRelativeAccuracy = report.meanRelativeAccuracy;
        row.worstRelativeAccuracy = report.worstRelativeAccuracy;
        std::cout << markdownReliabilityTable({row});
    }

    const Result<int> wrote =
        writeObservability(metrics_path, trace_path);
    if (!wrote.ok())
        return fail(wrote.error());

    if (report.guarded && report.retentionViolations > 0)
        return 2;
    return 0;
}
