/**
 * @file
 * Unified benchmark driver: runs the registered table/figure
 * harnesses (bench/harness.hh). `rana_bench --list` enumerates
 * them; --match=<regex> selects a subset; --mode=correctness|perf
 * switches between validation runs and perf-template emission. One
 * BENCH_<harness>.json artifact is written per harness run.
 */

#include "../bench/harness.hh"

int
main(int argc, char **argv)
{
    return rana::bench::benchMain(argc, argv, nullptr);
}
