/**
 * @file
 * rana_compile — command-line front end for the RANA compilation
 * phase.
 *
 * Compiles a benchmark network for a Table-IV design point and
 * writes (or verifies) the layerwise configuration artifact:
 *
 *   rana_compile <network> [options]
 *
 *   <network>            AlexNet | VGG | GoogLeNet | ResNet
 *   --design NAME        S+ID | eD+ID | eD+OD | RANA0 | RANAE5 |
 *                        RANA*  (default RANA*)
 *   --dataflow NAME      override the design's dataflow search axis:
 *                        auto (all six) | id | od | wd | sys-os |
 *                        sys-is | sys-ws  (default: the design's
 *                        legacy pattern list)
 *   --failure-rate R     override the tolerable failure rate
 *   --jobs N             scheduler worker lanes (default: one per
 *                        hardware thread; 1 = serial)
 *   --output FILE        write the config (default stdout)
 *   --verify FILE        load FILE, rebuild the schedule and execute
 *                        it on the trace simulator
 *   --guard              attach the runtime reliability guard to the
 *                        verified execution
 *   --guard-policy NAME  guard decision policy: permanent |
 *                        hysteresis | binned (implies --guard)
 *   --guard-k N          hysteresis: clean intervals to re-disarm
 *   --guard-bins N       binned: retention-binning divider bins
 *   --summary            print the energy summary (and the
 *                        evaluation-cache counters) after compiling
 *   --metrics-json PATH  write a metrics-registry snapshot to PATH
 *   --chrome-trace PATH  record a Chrome trace_event timeline
 *                        (chrome://tracing / Perfetto) to PATH
 *
 * Exit codes: 0 success, 1 bad usage or failed compilation (the
 * error is printed, the process never aborts mid-library), 2 a
 * verified schedule observed retention violations.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli_options.hh"
#include "obs/chrome_trace.hh"
#include "obs/pool_telemetry.hh"
#include "rana.hh"
#include "sim/trace_timeline.hh"

namespace {

using namespace rana;

void
printSummary(const DesignPoint &design, const NetworkModel &network,
             const NetworkSchedule &schedule)
{
    EnergyBreakdown energy;
    for (const auto &layer : schedule.layers)
        energy += layer.energy;
    const EvalCache::Stats cache = EvalCache::global().stats();
    std::ostringstream mix;
    for (DataflowKind dataflow : allDataflows()) {
        const std::size_t count = schedule.dataflowCount(dataflow);
        if (count > 0)
            mix << " " << dataflowName(dataflow) << ":" << count;
    }
    std::cerr << "compiled " << network.name() << " for "
              << design.name << " ("
              << design.config.buffer.describe() << ")\n"
              << "  refresh interval: "
              << formatTime(schedule.refreshIntervalSeconds) << "\n"
              << "  dataflow mix:" << mix.str() << "\n"
              << "  energy: " << energy.describe() << "\n"
              << "  runtime: " << formatTime(schedule.totalSeconds())
              << "\n"
              << "  eval cache: " << cache.hits << " hits / "
              << cache.misses << " misses, " << cache.entries
              << " entries\n";
}

/** Print a failure and choose the tool's exit code. */
int
fail(const Error &error)
{
    return cli::fail("rana_compile", error);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: rana_compile <network> [--design NAME] "
                     "[--dataflow auto|NAME] [--failure-rate R] "
                     "[--jobs N] [--output FILE] [--verify FILE] "
                     "[--summary] "
                  << cli::commonOptionsUsage() << "\n";
        return 1;
    }

    const std::string network_name = argv[1];
    std::string design_name = "RANA*";
    std::string dataflow_name;
    std::string output_path;
    std::string verify_path;
    double failure_rate = -1.0;
    unsigned jobs = hardwareJobs();
    bool summary = false;
    cli::CommonOptions common;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        const Result<bool> consumed =
            cli::consumeCommonOption(argc, argv, i, common);
        if (!consumed.ok())
            return fail(consumed.error());
        if (consumed.value())
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "rana_compile: missing value after "
                          << arg << "\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--design") {
            design_name = next();
        } else if (arg == "--dataflow") {
            dataflow_name = next();
        } else if (arg == "--failure-rate") {
            const std::string value = next();
            char *end = nullptr;
            failure_rate = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                return fail(makeError(
                    ErrorCode::InvalidArgument,
                    "--failure-rate expects a number, got '", value,
                    "'"));
        } else if (arg == "--jobs") {
            const std::string value = next();
            char *end = nullptr;
            const long parsed = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                return fail(makeError(
                    ErrorCode::InvalidArgument,
                    "--jobs expects an integer, got '", value, "'"));
            if (parsed < 0)
                return fail(makeError(ErrorCode::InvalidArgument,
                                      "--jobs must be >= 0"));
            jobs = parsed == 0 ? hardwareJobs()
                               : static_cast<unsigned>(parsed);
        } else if (arg == "--output") {
            output_path = next();
        } else if (arg == "--verify") {
            verify_path = next();
        } else if (arg == "--summary") {
            summary = true;
        } else {
            return fail(makeError(ErrorCode::InvalidArgument,
                                  "unknown option ", arg));
        }
    }

    const Result<DesignKind> kind = cli::parseDesign(design_name);
    if (!kind.ok())
        return fail(kind.error());

    Result<NetworkModel> looked_up =
        makeBenchmarkChecked(network_name);
    if (!looked_up.ok())
        return fail(looked_up.error());
    const NetworkModel network = std::move(looked_up).value();
    const RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    DesignPoint design = makeDesignPoint(kind.value(), retention);
    design.options.jobs = jobs;
    if (!dataflow_name.empty()) {
        Result<std::vector<DataflowKind>> dataflows =
            cli::parseDataflowList(dataflow_name);
        if (!dataflows.ok())
            return fail(dataflows.error());
        design.options.dataflows = std::move(dataflows).value();
    }
    if (failure_rate >= 0.0) {
        design.failureRate = failure_rate;
        design.options.refreshIntervalSeconds =
            failure_rate > 0.0
                ? retention.retentionTimeFor(failure_rate)
                : retention.worstCaseRetention();
    }

    if (common.wantsObservability())
        installPoolTelemetry();
    TimelineTraceSink timeline;
    TraceSink *sink = nullptr;
    if (!common.chromeTracePath.empty()) {
        TraceRecorder::global().enable();
        sink = &timeline;
    }

    if (!verify_path.empty()) {
        std::ifstream in(verify_path);
        if (!in)
            return fail(makeError(ErrorCode::IoError, "cannot open ",
                                  verify_path));
        const Result<NetworkConfigRecord> record =
            readConfigChecked(in);
        if (!record.ok())
            return fail(record.error());
        Result<NetworkSchedule> schedule = rebuildScheduleChecked(
            design.config, network, record.value());
        if (!schedule.ok())
            return fail(schedule.error());
        Result<std::unique_ptr<GuardPolicy>> policy =
            makeGuardPolicy(common.guardPolicy, design.config.buffer,
                            retention, design.failureRate, 1);
        if (!policy.ok())
            return fail(policy.error());
        ReliabilityGuard guard(design.options.refreshIntervalSeconds,
                               std::move(policy).value());
        const Result<ExecutionResult> execution =
            executeScheduleChecked(design, network, schedule.value(),
                                   TimingFaults{},
                                   common.guard ? &guard : nullptr,
                                   sink);
        if (!execution.ok())
            return fail(execution.error());
        const ExecutionResult &executed = execution.value();
        std::cerr << "verified " << verify_path << ": "
                  << schedule.value().layers.size() << " layers, "
                  << executed.violations << " retention violations, "
                  << "energy " << executed.energy.describe() << "\n";
        if (common.guard)
            std::cerr << "  " << guard.describe() << "\n";
        const Result<int> wrote = cli::writeObservability(common);
        if (!wrote.ok())
            return fail(wrote.error());
        return executed.violations == 0 ? 0 : 2;
    }

    const Result<DesignResult> result =
        runDesignChecked(design, network);
    if (!result.ok())
        return fail(result.error());
    const NetworkConfigRecord record =
        toConfigRecord(result.value().schedule);
    if (output_path.empty()) {
        writeConfig(std::cout, record);
    } else {
        std::ofstream out(output_path);
        if (!out)
            return fail(makeError(ErrorCode::IoError, "cannot open ",
                                  output_path, " for writing"));
        writeConfig(out, record);
        std::cerr << "wrote " << output_path << "\n";
    }
    if (summary)
        printSummary(design, network, result.value().schedule);
    const Result<int> wrote = cli::writeObservability(common);
    if (!wrote.ok())
        return fail(wrote.error());
    return 0;
}
