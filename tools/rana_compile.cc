/**
 * @file
 * rana_compile — command-line front end for the RANA compilation
 * phase.
 *
 * Compiles a benchmark network for a Table-IV design point and
 * writes (or verifies) the layerwise configuration artifact:
 *
 *   rana_compile <network> [options]
 *
 *   <network>            AlexNet | VGG | GoogLeNet | ResNet
 *   --design NAME        S+ID | eD+ID | eD+OD | RANA0 | RANAE5 |
 *                        RANA*  (default RANA*)
 *   --failure-rate R     override the tolerable failure rate
 *   --output FILE        write the config (default stdout)
 *   --verify FILE        load FILE, rebuild the schedule and execute
 *                        it on the trace simulator
 *   --summary            print the energy summary after compiling
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/design_point.hh"
#include "core/experiments.hh"
#include "nn/model_zoo.hh"
#include "sched/config_io.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace {

using namespace rana;

DesignKind
parseDesign(const std::string &name)
{
    if (name == "S+ID")
        return DesignKind::SramId;
    if (name == "eD+ID")
        return DesignKind::EdramId;
    if (name == "eD+OD")
        return DesignKind::EdramOd;
    if (name == "RANA0")
        return DesignKind::Rana0;
    if (name == "RANAE5")
        return DesignKind::RanaE5;
    if (name == "RANA*")
        return DesignKind::RanaStarE5;
    fatal("unknown design '", name,
          "' (expected S+ID, eD+ID, eD+OD, RANA0, RANAE5 or RANA*)");
}

void
printSummary(const DesignPoint &design, const NetworkModel &network,
             const NetworkSchedule &schedule)
{
    EnergyBreakdown energy;
    for (const auto &layer : schedule.layers)
        energy += layer.energy;
    std::cerr << "compiled " << network.name() << " for "
              << design.name << " ("
              << design.config.buffer.describe() << ")\n"
              << "  refresh interval: "
              << formatTime(schedule.refreshIntervalSeconds) << "\n"
              << "  pattern mix OD/WD/ID: "
              << schedule.patternCount(ComputationPattern::OD) << "/"
              << schedule.patternCount(ComputationPattern::WD) << "/"
              << schedule.patternCount(ComputationPattern::ID) << "\n"
              << "  energy: " << energy.describe() << "\n"
              << "  runtime: " << formatTime(schedule.totalSeconds())
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: rana_compile <network> [--design NAME] "
                     "[--failure-rate R] [--output FILE] "
                     "[--verify FILE] [--summary]\n";
        return 1;
    }

    const std::string network_name = argv[1];
    std::string design_name = "RANA*";
    std::string output_path;
    std::string verify_path;
    double failure_rate = -1.0;
    bool summary = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", arg);
            return argv[++i];
        };
        if (arg == "--design") {
            design_name = next();
        } else if (arg == "--failure-rate") {
            failure_rate = std::stod(next());
        } else if (arg == "--output") {
            output_path = next();
        } else if (arg == "--verify") {
            verify_path = next();
        } else if (arg == "--summary") {
            summary = true;
        } else {
            fatal("unknown option ", arg);
        }
    }

    const NetworkModel network = makeBenchmark(network_name);
    const RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    DesignPoint design =
        makeDesignPoint(parseDesign(design_name), retention);
    if (failure_rate >= 0.0) {
        design.failureRate = failure_rate;
        design.options.refreshIntervalSeconds =
            failure_rate > 0.0
                ? retention.retentionTimeFor(failure_rate)
                : retention.worstCaseRetention();
    }

    if (!verify_path.empty()) {
        std::ifstream in(verify_path);
        if (!in)
            fatal("cannot open ", verify_path);
        const NetworkConfigRecord record = readConfig(in);
        const NetworkSchedule schedule =
            rebuildSchedule(design.config, network, record);
        const ExecutionResult executed =
            executeSchedule(design, network, schedule);
        std::cerr << "verified " << verify_path << ": "
                  << schedule.layers.size() << " layers, "
                  << executed.violations << " retention violations, "
                  << "energy " << executed.energy.describe() << "\n";
        return executed.violations == 0 ? 0 : 2;
    }

    const DesignResult result = runDesign(design, network);
    const NetworkConfigRecord record =
        toConfigRecord(result.schedule);
    if (output_path.empty()) {
        writeConfig(std::cout, record);
    } else {
        std::ofstream out(output_path);
        if (!out)
            fatal("cannot open ", output_path, " for writing");
        writeConfig(out, record);
        std::cerr << "wrote " << output_path << "\n";
    }
    if (summary)
        printSummary(design, network, result.schedule);
    return 0;
}
