/**
 * @file
 * rana_serve — command-line front end for the multi-tenant serving
 * engine.
 *
 * Builds N tenants over the paper benchmarks (mixed AlexNet/VGG by
 * default), prepares the serving simulation for a design point
 * (schedule simulation for the per-network service time, bank-shard
 * partitioning, stand-in model training) and runs the deterministic
 * virtual-time event loop, reporting per-tenant p50/p95/p99 latency,
 * throughput and QoS counters as a markdown table:
 *
 *   rana_serve [options]
 *
 *   --tenants N          concurrent tenants (default 4; tenant i
 *                        serves AlexNet when i is even, VGG when odd)
 *   --qps RATE           per-tenant open-loop arrival rate in
 *                        requests per virtual second (0 = auto: a
 *                        fair share of ~60% utilization)
 *   --duration S         virtual admission horizon (default 2.0)
 *   --batch-window S     request-coalescing window (default 0.002;
 *                        0 = no batching, exactly sequential)
 *   --max-batch N        max requests fused per batch (default 8)
 *   --queue-capacity N   shared admission-queue bound (default 64)
 *   --closed-loop        closed-loop arrivals instead of open-loop
 *   --clients N          closed-loop clients per tenant (default 4)
 *   --think S            closed-loop think time (default 0.01)
 *   --fault-rate P       per-batch retention-overage probability in
 *                        each tenant's bank shard (default 0)
 *   --design NAME        S+ID | eD+ID | eD+OD | RANA0 | RANAE5 |
 *                        RANA*  (default RANAE5)
 *   --seed S             master seed (default 1)
 *   --jobs N             data-plane worker lanes (0 = hardware)
 *   --no-forwards        skip the batched forwards (timing only)
 *   --canonical-json PATH  write the canonical report JSON (the
 *                        byte-reproducibility artifact) to PATH
 *   --guard-policy NAME  every tenant's guard QoS policy: permanent |
 *                        hysteresis | binned (default permanent;
 *                        permanent/hysteresis shed on a trip, binned
 *                        keeps serving with a refresh service tax)
 *   --guard-k N          hysteresis: clean intervals to re-disarm
 *   --guard-bins N       binned: retention-binning divider bins
 *   --metrics-json PATH  write a metrics-registry snapshot to PATH
 *   --chrome-trace PATH  record the per-tenant serving timeline
 *                        (chrome://tracing / Perfetto) to PATH
 *
 * The report is bit-reproducible: the same seed yields byte-identical
 * canonical JSON for any --jobs value and across repeated runs.
 *
 * Exit codes: 0 success, 1 bad usage or a failed run.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_options.hh"
#include "obs/chrome_trace.hh"
#include "rana.hh"
#include "sim/trace_timeline.hh"

namespace {

using namespace rana;

int
fail(const Error &error)
{
    return cli::fail("rana_serve", error);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t tenant_count = 4;
    double qps = 0.0;
    bool closed_loop = false;
    std::uint32_t clients = 4;
    double think = 0.01;
    double fault_rate = 0.0;
    std::string design_name = "RANAE5";
    std::string canonical_path;
    bool forwards = true;
    ServingConfig config;
    cli::CommonOptions common;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const Result<bool> consumed =
            cli::consumeCommonOption(argc, argv, i, common);
        if (!consumed.ok())
            return fail(consumed.error());
        if (consumed.value())
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "rana_serve: " << arg
                          << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--tenants") {
            tenant_count = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--qps") {
            qps = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--duration") {
            config.durationSeconds =
                std::strtod(next().c_str(), nullptr);
        } else if (arg == "--batch-window") {
            config.batchWindowSeconds =
                std::strtod(next().c_str(), nullptr);
        } else if (arg == "--max-batch") {
            config.maxBatch = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--queue-capacity") {
            config.queueCapacity = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--closed-loop") {
            closed_loop = true;
        } else if (arg == "--clients") {
            clients = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--think") {
            think = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--fault-rate") {
            fault_rate = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--design") {
            design_name = next();
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--jobs") {
            config.jobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--no-forwards") {
            forwards = false;
        } else if (arg == "--canonical-json") {
            canonical_path = next();
        } else {
            std::cerr << "rana_serve: unknown option " << arg
                      << "\nusage: rana_serve [--tenants N] "
                         "[--qps RATE] [--duration S] "
                         "[--batch-window S] [--max-batch N] "
                         "[--queue-capacity N] [--closed-loop] "
                         "[--clients N] [--think S] [--fault-rate P] "
                         "[--design NAME] [--seed S] [--jobs N] "
                         "[--no-forwards] [--canonical-json PATH] "
                      << cli::commonOptionsUsage() << "\n";
            return 1;
        }
    }

    const Result<DesignKind> design = cli::parseDesign(design_name);
    if (!design.ok())
        return fail(design.error());
    config.design = design.value();
    config.runForwards = forwards;
    config.tenants =
        mixedTenantSpecs(tenant_count, common.guardPolicy, fault_rate);
    for (TenantSpec &spec : config.tenants) {
        spec.qps = qps;
        if (closed_loop) {
            spec.arrival = ArrivalKind::ClosedLoop;
            spec.clients = clients;
            spec.thinkSeconds = think;
        }
    }

    Result<ServingSimulation> sim =
        ServingSimulation::prepare(std::move(config));
    if (!sim.ok())
        return fail(sim.error());

    ServingTimeline timeline;
    ServingTimeline *recording =
        common.chromeTracePath.empty() ? nullptr : &timeline;
    if (recording != nullptr)
        TraceRecorder::global().enable();
    const Result<ServingReport> report =
        sim.value().run(0, recording);
    if (!report.ok())
        return fail(report.error());

    std::cout << report.value().describe() << "\n\n"
              << report.value().markdownTable();

    if (!canonical_path.empty()) {
        std::ofstream out(canonical_path);
        if (!out) {
            return fail(makeError(ErrorCode::IoError, "cannot open ",
                                  canonical_path, " for writing"));
        }
        out << canonicalServingJson(report.value()) << "\n";
    }

    const Result<int> wrote = cli::writeObservability(common);
    if (!wrote.ok())
        return fail(wrote.error());
    return 0;
}
