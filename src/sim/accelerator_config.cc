/**
 * @file
 * Accelerator design presets.
 */

#include "sim/accelerator_config.hh"

#include <sstream>

#include "energy/technology.hh"
#include "util/units.hh"

namespace rana {

double
AcceleratorConfig::peakMacsPerSecond() const
{
    return static_cast<double>(macUnits()) * frequencyHz;
}

std::string
AcceleratorConfig::describe() const
{
    std::ostringstream oss;
    oss << name << ": " << macUnits() << " PEs (" << peRows << "x"
        << peCols << ") @ " << frequencyHz / megaHertz << "MHz, buffer "
        << buffer.describe();
    return oss.str();
}

std::string
AcceleratorConfig::fingerprint() const
{
    std::ostringstream oss;
    oss << peRows << ',' << peCols << ','
        << static_cast<int>(mapping) << ','
        << static_cast<int>(timing) << ',' << frequencyHz << ','
        << pipelineEfficiency << ',' << localInputWords << ','
        << localOutputWords << ',' << localWeightWords << ','
        << static_cast<int>(buffer.technology) << ','
        << buffer.numBanks << ',' << buffer.bankBytes;
    return oss.str();
}

AcceleratorConfig
testAcceleratorSram()
{
    AcceleratorConfig config;
    config.name = "test-accelerator-sram";
    config.buffer.technology = MemoryTechnology::Sram;
    config.buffer.numBanks = 12; // 384KB.
    return config;
}

AcceleratorConfig
testAcceleratorEdram()
{
    // Equal silicon area as the 12-bank SRAM buffer (Table II):
    // 12 * 0.181mm^2 / 0.047mm^2 = 46 eDRAM banks ~= 1.45MB.
    return testAcceleratorEdram(equalAreaEdramBanks(12));
}

AcceleratorConfig
testAcceleratorEdram(std::uint32_t num_banks)
{
    AcceleratorConfig config;
    config.name = "test-accelerator-edram";
    config.buffer.technology = MemoryTechnology::Edram;
    config.buffer.numBanks = num_banks;
    return config;
}

AcceleratorConfig
daDianNaoNode()
{
    AcceleratorConfig config;
    config.name = "dadiannao-node";
    config.peRows = 64;
    config.peCols = 64;
    config.mapping = ArrayMapping::InputChannelColumns;
    config.frequencyHz = 606e6;
    // DaDianNao's NFU pipelines Tn=64 inputs into Tm=64 outputs; the
    // per-tile staging storage is generous, so local storage never
    // constrains the fixed <64,64,1,1> tiling.
    config.localInputWords = 1 << 16;
    config.localOutputWords = 1 << 16;
    config.localWeightWords = 1 << 20;
    config.buffer.technology = MemoryTechnology::Edram;
    config.buffer.numBanks = 1152; // 36MB of 32KB banks.
    return config;
}

} // namespace rana
