/**
 * @file
 * Adapter from simulator TraceSink events to Chrome-trace tracks on
 * the simulated-time axis.
 *
 * The loop-nest simulator reports per-tile events in simulated
 * seconds; this sink converts them into the recorder's pid-2
 * ("simulated timeline") process: one X slice per layer, plus
 * counter tracks for bank occupancy, completed tiles, buffer words
 * moved and refresh words issued. Counter tracks are sampled every
 * `sampleStride` events (and always at layer boundaries, refresh
 * pulses and occupancy changes) so multi-million-tile layers stay
 * loadable in Perfetto.
 *
 * The campaign sweep reuses one simulator sink across many
 * simulations, each restarting at t = 0; a LayerBegin whose time
 * jumps backwards starts a new run, which gets its own layer row and
 * counter tracks ("…/run<N>") with tallies reset, so overlapping
 * timelines never corrupt each other. Output depends only on the
 * event sequence — identical simulations produce identical traces.
 */

#ifndef RANA_SIM_TRACE_TIMELINE_HH_
#define RANA_SIM_TRACE_TIMELINE_HH_

#include <cstdint>
#include <string>

#include "obs/chrome_trace.hh"
#include "sim/trace_export.hh"

namespace rana {

/**
 * Serving-engine renderer: per-tenant tracks on the simulated-time
 * axis. The serving event loop runs in virtual seconds like the
 * loop-nest simulator, so its requests land in the recorder's pid-2
 * ("simulated timeline") process next to the per-run simulator
 * tracks: one named thread track per tenant carrying an X slice per
 * served batch and instant markers for sheds, guard trips,
 * re-disarms and escalations, plus one shared counter track
 * sampling the admission-queue depth. Tenant tracks start at tid
 * 1000 so they can never collide with the simulator's per-run
 * tracks (one tid per detected run, starting at 0).
 */
class ServingTimeline
{
  public:
    explicit ServingTimeline(
        TraceRecorder &recorder = TraceRecorder::global());

    /** Name tenant `tenant`'s track ("tenant/<name>"). */
    void addTenantTrack(std::uint32_t tenant, const std::string &name);

    /** One served batch as an X slice on the tenant's track. */
    void batchSpan(std::uint32_t tenant, double startSeconds,
                   double endSeconds, const std::string &name);

    /**
     * One request's admission-to-completion lifetime as an X slice
     * on the tenant's request track, labelled by its span id (the
     * engine-wide unique id threaded through admission, batching
     * and completion).
     */
    void requestSpan(std::uint32_t tenant, std::uint64_t span,
                     double startSeconds, double endSeconds);

    /** An instant marker (shed / trip / ...) on the tenant track. */
    void instant(std::uint32_t tenant, double seconds,
                 const std::string &name);

    /** One admission-queue depth sample on the shared track. */
    void queueDepth(double seconds, double depth);

  private:
    /** First tenant tid; above any plausible simulator run count. */
    static constexpr int kTenantTidBase = 1000;
    /** First per-tenant request track (one per tenant, offset). */
    static constexpr int kRequestTidBase = 5000;

    TraceRecorder &recorder_;
};

/** TraceSink rendering simulator events into a TraceRecorder. */
class TimelineTraceSink : public TraceSink
{
  public:
    /**
     * @param recorder      destination recorder (kept by reference)
     * @param sampleStride  events between counter-track samples
     */
    explicit TimelineTraceSink(
        TraceRecorder &recorder = TraceRecorder::global(),
        std::uint64_t sampleStride = 64);

    void onLayerBegin(const std::string &name) override;
    void onEvent(const TraceEvent &event) override;

    /** Number of simulator events received. */
    std::uint64_t eventsSeen() const { return eventsSeen_; }

    /** Number of simulation runs detected (time restarts). */
    std::uint64_t runs() const { return run_ + 1; }

  private:
    /** Track name with a per-run suffix after the first run. */
    std::string trackName(const char *base) const;

    /** Emit the cumulative counter samples at `seconds`. */
    void sampleCounters(double seconds);

    /** Reset per-run tallies and open run `run_`'s tracks. */
    void beginRun();

    TraceRecorder &recorder_;
    std::uint64_t sampleStride_;
    std::uint64_t eventsSeen_ = 0;
    std::uint64_t run_ = 0;
    bool runOpened_ = false;
    std::string pendingLayer_;
    std::string currentLayer_;
    double layerStart_ = 0.0;
    double lastLayerStart_ = 0.0;
    std::uint64_t tilesCompleted_ = 0;
    std::uint64_t bufferWords_ = 0;
    std::uint64_t refreshWords_ = 0;
};

} // namespace rana

#endif // RANA_SIM_TRACE_TIMELINE_HH_
