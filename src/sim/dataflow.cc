/**
 * @file
 * The six dataflow specifications and their name/parse helpers.
 */

#include "sim/dataflow.hh"

#include "util/logging.hh"

namespace rana {

namespace {

constexpr std::size_t kInput = static_cast<std::size_t>(DataType::Input);
constexpr std::size_t kOutput =
    static_cast<std::size_t>(DataType::Output);
constexpr std::size_t kWeight =
    static_cast<std::size_t>(DataType::Weight);

/** The loop axis a data type does not depend on. */
LoopAxis
freeAxis(DataType type)
{
    switch (type) {
      case DataType::Input:
        return LoopAxis::M;
      case DataType::Output:
        return LoopAxis::N;
      case DataType::Weight:
        return LoopAxis::RC;
    }
    RANA_ASSERT(false, "bad data type");
    return LoopAxis::M;
}

/** Position of an axis in a loop order. */
int
positionOf(const std::array<LoopAxis, 3> &order, LoopAxis axis)
{
    for (int i = 0; i < 3; ++i) {
        if (order[static_cast<std::size_t>(i)] == axis)
            return i;
    }
    RANA_ASSERT(false, "axis missing from loop order");
    return 0;
}

/** Residency class implied by a reuse level. */
Residency
residencyOfLevel(int level)
{
    switch (level) {
      case 0:
        return Residency::Whole;
      case 1:
        return Residency::Slab;
      default:
        return Residency::Tile;
    }
}

/** Build one spec; reuse levels and residency derive from the order. */
DataflowSpec
makeSpec(DataflowKind kind, const char *name,
         std::array<LoopAxis, 3> order, bool systolic,
         DataType stationary)
{
    DataflowSpec spec;
    spec.kind = kind;
    spec.name = name;
    spec.order = order;
    spec.systolic = systolic;
    spec.stationary = stationary;
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        const auto type = static_cast<DataType>(i);
        const int level = positionOf(order, freeAxis(type));
        spec.reuseLevel[i] = level;
        // Outputs at reuse level 2 complete inside the core: their
        // natural residency is one tile, like any level-2 operand.
        spec.residency[i] = residencyOfLevel(level);
    }
    return spec;
}

/** The six specs, indexed by DataflowKind. */
const std::array<DataflowSpec, numDataflowKinds> &
specTable()
{
    static const std::array<DataflowSpec, numDataflowKinds> table = {
        makeSpec(DataflowKind::ID, "ID",
                 {LoopAxis::M, LoopAxis::RC, LoopAxis::N}, false,
                 DataType::Input),
        makeSpec(DataflowKind::OD, "OD",
                 {LoopAxis::N, LoopAxis::M, LoopAxis::RC}, false,
                 DataType::Output),
        makeSpec(DataflowKind::WD, "WD",
                 {LoopAxis::RC, LoopAxis::M, LoopAxis::N}, false,
                 DataType::Weight),
        makeSpec(DataflowKind::SystolicWS, "sys-ws",
                 {LoopAxis::M, LoopAxis::N, LoopAxis::RC}, true,
                 DataType::Weight),
        makeSpec(DataflowKind::SystolicIS, "sys-is",
                 {LoopAxis::RC, LoopAxis::N, LoopAxis::M}, true,
                 DataType::Input),
        makeSpec(DataflowKind::SystolicOS, "sys-os",
                 {LoopAxis::N, LoopAxis::RC, LoopAxis::M}, true,
                 DataType::Output),
    };
    return table;
}

} // namespace

ComputationPattern
DataflowSpec::legacyPattern() const
{
    switch (kind) {
      case DataflowKind::ID:
        return ComputationPattern::ID;
      case DataflowKind::OD:
        return ComputationPattern::OD;
      case DataflowKind::WD:
        return ComputationPattern::WD;
      default:
        break;
    }
    RANA_ASSERT(false, "legacyPattern() of a systolic dataflow");
    return ComputationPattern::ID;
}

DataType
DataflowSpec::arrayTile() const
{
    if (reuseLevel[kWeight] == 2)
        return DataType::Weight;
    RANA_ASSERT(reuseLevel[kInput] == 2 || reuseLevel[kOutput] == 2,
                "loop order without a level-2 operand");
    // When outputs complete innermost (ID/WD), weights are still the
    // per-tile array operand; otherwise the input tile is pinned.
    return reuseLevel[kInput] == 2 ? DataType::Input
                                   : DataType::Weight;
}

const DataflowSpec &
dataflowSpec(DataflowKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    RANA_ASSERT(index < numDataflowKinds, "bad dataflow kind");
    return specTable()[index];
}

const DataflowSpec &
dataflowSpec(ComputationPattern pattern)
{
    return dataflowSpec(dataflowOf(pattern));
}

DataflowKind
dataflowOf(ComputationPattern pattern)
{
    switch (pattern) {
      case ComputationPattern::ID:
        return DataflowKind::ID;
      case ComputationPattern::OD:
        return DataflowKind::OD;
      case ComputationPattern::WD:
        return DataflowKind::WD;
    }
    RANA_ASSERT(false, "bad computation pattern");
    return DataflowKind::ID;
}

const char *
dataflowName(DataflowKind kind)
{
    return dataflowSpec(kind).name;
}

Result<DataflowKind>
parseDataflowName(const std::string &token)
{
    for (DataflowKind kind : allDataflows()) {
        if (token == dataflowName(kind))
            return kind;
    }
    if (token == "id")
        return DataflowKind::ID;
    if (token == "od")
        return DataflowKind::OD;
    if (token == "wd")
        return DataflowKind::WD;
    return makeError(ErrorCode::ParseError, "unknown dataflow '",
                     token,
                     "' (expected ID, OD, WD, sys-ws, sys-is or "
                     "sys-os)");
}

const std::array<DataflowKind, numDataflowKinds> &
allDataflows()
{
    static const std::array<DataflowKind, numDataflowKinds> kinds = {
        DataflowKind::ID,         DataflowKind::OD,
        DataflowKind::WD,         DataflowKind::SystolicWS,
        DataflowKind::SystolicIS, DataflowKind::SystolicOS,
    };
    return kinds;
}

std::vector<DataflowKind>
legacyDataflows()
{
    return {DataflowKind::ID, DataflowKind::OD, DataflowKind::WD};
}

} // namespace rana
