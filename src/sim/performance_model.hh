/**
 * @file
 * Performance model extension: bounds the paper's claim that RANA's
 * performance loss is negligible.
 *
 * The baseline timing model assumes off-chip transfers and refresh
 * are fully hidden behind computation (double-buffered tiles and
 * idle-cycle refresh slots). This extension computes, per layer:
 *
 *  - the compute time (PE array model),
 *  - the off-chip transfer time at a finite DDR3 bandwidth,
 *  - the buffer time the refresh controller occupies banks,
 *
 * and reports the bandwidth-bound runtime max(compute, memory) plus
 * the worst-case refresh interference, so a design point's true
 * slowdown can be quantified instead of assumed away.
 */

#ifndef RANA_SIM_PERFORMANCE_MODEL_HH_
#define RANA_SIM_PERFORMANCE_MODEL_HH_

#include <cstdint>

#include "edram/refresh_controller.hh"
#include "sim/pattern_analytics.hh"

namespace rana {

/** Parameters of the performance extension. */
struct PerformanceParams
{
    /** Sustained off-chip bandwidth in bytes per second (DDR3-1600
     *  single channel ~= 12.8GB/s peak; default assumes 80%
     *  efficiency). */
    double dramBandwidthBytesPerSecond = 0.8 * 12.8e9;
    /**
     * Cycles one bank is busy refreshing one row of 64 words
     * (retention-aware eDRAM macros refresh a row per pulse slot).
     */
    double refreshCyclesPerRow = 4.0;
    /** Words per refreshed row. */
    std::uint64_t wordsPerRow = 64;
};

/**
 * Injected timing perturbations for robustness studies.
 *
 * Real deployments deviate from the analytical timing model: a
 * congested DRAM channel slows every tile, a host-side hiccup stalls
 * a whole buffer scan. Both stretch observed data lifetimes past the
 * scheduler's predictions, which is exactly the scenario the
 * reliability guard must cover. The defaults (factor 1.0, stall 0.0)
 * are exact no-ops: multiplying by 1.0 and adding 0.0 preserve every
 * float bit, so fault-free simulations stay bit-identical.
 */
struct TimingFaults
{
    /** Multiplier applied to each tile's nominal time (>= 1.0). */
    double slowdownFactor = 1.0;
    /** Extra stall inserted before each outer-loop scan, seconds. */
    double scanStallSeconds = 0.0;

    /** Whether any perturbation is configured. */
    bool enabled() const
    {
        return slowdownFactor != 1.0 || scanStallSeconds != 0.0;
    }

    /** Perturbed time of one tile with nominal time `nominal`. */
    double tileSeconds(double nominal) const
    {
        return nominal * slowdownFactor;
    }
};

/** Per-layer performance report. */
struct PerformanceReport
{
    /** Compute-bound time (the baseline model's runtime). */
    double computeSeconds = 0.0;
    /** Off-chip transfer time at the configured bandwidth. */
    double memorySeconds = 0.0;
    /** Total time banks spend busy with refresh. */
    double refreshBusySeconds = 0.0;
    /**
     * Bandwidth-bound runtime: max(compute, memory) plus the
     * worst-case refresh interference (refresh cycles that cannot
     * hide in bank idle slots, conservatively all of them when the
     * layer is memory-bound).
     */
    double boundedSeconds = 0.0;

    /** Slowdown of boundedSeconds over computeSeconds. */
    double slowdown() const;

    /** Whether the layer is limited by off-chip bandwidth. */
    bool memoryBound() const { return memorySeconds > computeSeconds; }
};

/**
 * Evaluate the performance report of one analyzed layer under a
 * refresh policy and interval.
 */
PerformanceReport evaluatePerformance(const AcceleratorConfig &config,
                                      const ConvLayerSpec &layer,
                                      const LayerAnalysis &analysis,
                                      RefreshPolicy policy,
                                      double interval_seconds,
                                      const PerformanceParams &params
                                      = {});

/** Accumulate reports (component-wise sums; slowdown recomputed). */
PerformanceReport &operator+=(PerformanceReport &lhs,
                              const PerformanceReport &rhs);

} // namespace rana

#endif // RANA_SIM_PERFORMANCE_MODEL_HH_
