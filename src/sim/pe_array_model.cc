/**
 * @file
 * Implementation of the PE array timing model.
 */

#include "sim/pe_array_model.hh"

#include "util/logging.hh"

namespace rana {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

TileTiming
tileTiming(const AcceleratorConfig &config, const ConvLayerSpec &layer,
           const Tiling &tiling)
{
    RANA_ASSERT(config.pipelineEfficiency > 0.0 &&
                config.pipelineEfficiency <= 1.0,
                "pipeline efficiency out of range");
    const Tiling t = clampTiling(tiling, layer);
    const std::uint64_t k2 =
        static_cast<std::uint64_t>(layer.k) * layer.k;
    const std::uint64_t tile_macs = static_cast<std::uint64_t>(t.tm) *
                                    t.tn * t.tr * t.tc * k2;

    if (config.timing == TimingModel::AggregateEfficiency) {
        TileTiming timing;
        timing.cycles = static_cast<double>(tile_macs) /
                        (static_cast<double>(config.macUnits()) *
                         config.pipelineEfficiency);
        timing.seconds = timing.cycles / config.frequencyHz;
        timing.macs = tile_macs;
        return timing;
    }

    const std::uint64_t row_groups = ceilDiv(t.tm, config.peRows);

    std::uint64_t active_cycles = 0;
    switch (config.mapping) {
      case ArrayMapping::SpatialColumns: {
        const std::uint64_t col_groups =
            ceilDiv(static_cast<std::uint64_t>(t.tr) * t.tc,
                    config.peCols);
        active_cycles = row_groups * col_groups * t.tn * k2;
        break;
      }
      case ArrayMapping::InputChannelColumns: {
        const std::uint64_t col_groups = ceilDiv(t.tn, config.peCols);
        active_cycles = row_groups * col_groups *
                        static_cast<std::uint64_t>(t.tr) * t.tc * k2;
        break;
      }
    }

    TileTiming timing;
    timing.cycles = static_cast<double>(active_cycles) /
                    config.pipelineEfficiency;
    timing.seconds = timing.cycles / config.frequencyHz;
    timing.macs = tile_macs;
    return timing;
}

SystolicTiming
dataflowTileTiming(const AcceleratorConfig &config,
                   const ConvLayerSpec &layer, const Tiling &tiling,
                   const DataflowSpec &spec)
{
    SystolicTiming timing;
    timing.tile = tileTiming(config, layer, tiling);
    if (!spec.systolic)
        return timing;

    const Tiling t = clampTiling(tiling, layer);
    const TileSizes tiles = tileSizes(layer, t);

    // Array skew: the diagonal wavefront of a peRows x peCols array
    // needs (rows + cols - 2) cycles to fill and drain per tile.
    timing.skewCycles =
        static_cast<double>(config.peRows + config.peCols - 2);
    timing.tile.cycles += timing.skewCycles;
    timing.tile.seconds = timing.tile.cycles / config.frequencyHz;

    // Stationary-tile preload: one word per column lane per cycle.
    std::uint64_t stationary_words = 0;
    switch (spec.arrayTile()) {
      case DataType::Input:
        stationary_words = tiles.input;
        break;
      case DataType::Weight:
        stationary_words = tiles.weight;
        break;
      case DataType::Output:
        stationary_words = tiles.output;
        break;
    }
    timing.preloadCycles = static_cast<double>(
        ceilDiv(stationary_words, config.peCols));
    timing.preloadSeconds = timing.preloadCycles / config.frequencyHz;
    return timing;
}

double
layerSeconds(const AcceleratorConfig &config, const ConvLayerSpec &layer,
             const Tiling &tiling)
{
    const Tiling t = clampTiling(tiling, layer);
    const TripCounts trips = tripCounts(layer, t);
    return static_cast<double>(trips.total()) *
           tileTiming(config, layer, t).seconds;
}

double
layerUtilization(const AcceleratorConfig &config,
                 const ConvLayerSpec &layer, const Tiling &tiling)
{
    const double seconds = layerSeconds(config, layer, tiling);
    const double peak = config.peakMacsPerSecond();
    return static_cast<double>(layer.macs()) / (seconds * peak);
}

} // namespace rana
