/**
 * @file
 * First-class dataflow specifications: the search axis behind the
 * computation patterns.
 *
 * A DataflowSpec fixes the ordering of the three memory-control
 * loops and, derived from it, each data type's residency class,
 * reuse level and buffer lifetime. The paper's ID/OD/WD computation
 * patterns are three of the six loop-order permutations; the other
 * three are the systolic weight-/input-/output-stationary dataflows
 * (the CADOSys family), which run the same core tile on a skewed
 * systolic schedule with a double-buffered scratchpad:
 *
 *   | Dataflow | Loop order (outer..inner) | Stationary | Style    |
 *   |----------|---------------------------|------------|----------|
 *   | ID       | M, RC, N                  | inputs     | legacy   |
 *   | OD       | N, M, RC                  | outputs    | legacy   |
 *   | WD       | RC, M, N                  | weights    | legacy   |
 *   | sys-ws   | M, N, RC                  | weights    | systolic |
 *   | sys-is   | RC, N, M                  | inputs     | systolic |
 *   | sys-os   | N, RC, M                  | outputs    | systolic |
 *
 * Residency semantics: each data type has exactly one loop axis it
 * does not depend on (inputs: Loop M, weights: Loop RC, outputs:
 * Loop N). The position p of that axis in the loop order is the
 * type's *reuse level*; it determines the natural buffer working
 * set (Whole for p=0, a Slab for p=1, one Tile for p=2) and the
 * buffer lifetime (the time of one pass of the loop level the data
 * is reused across). Reordering loops therefore moves refresh
 * exposure between data types without touching the core computing
 * part: e.g. sys-is pins only one input tile (lifetime T1) where WD
 * pins an N-deep input slab for a whole 2nd-level pass (T2).
 *
 * Systolic dataflows additionally model the array skew (fill/drain
 * of the peRows x peCols wavefront per tile) and the preload of the
 * array-stationary tile per 1st-level pass, with double-buffered
 * staging hiding the DRAM fetch of the next stationary tile behind
 * the current pass.
 */

#ifndef RANA_SIM_DATAFLOW_HH_
#define RANA_SIM_DATAFLOW_HH_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "edram/buffer_system.hh"
#include "sim/pattern.hh"
#include "util/result.hh"

namespace rana {

/** The six dataflows: three legacy patterns, three systolic. */
enum class DataflowKind : std::uint8_t {
    ID,
    OD,
    WD,
    SystolicWS,
    SystolicIS,
    SystolicOS,
};

/** Number of dataflow kinds. */
constexpr std::size_t numDataflowKinds = 6;

/** Natural buffer residency class of one data type. */
enum class Residency : std::uint8_t {
    /** The type's whole layer set stays buffer-resident. */
    Whole,
    /** A slab (one outer iteration's working set) stays resident. */
    Slab,
    /** Only the current tile is staged (double-buffered). */
    Tile,
};

/**
 * A fully specified dataflow: loop order plus the per-type residency
 * and reuse structure the order implies.
 */
struct DataflowSpec
{
    DataflowKind kind = DataflowKind::ID;
    /** Canonical name: "ID", "OD", "WD", "sys-ws/is/os". */
    const char *name = "ID";
    /** Loop order from outermost (index 0) to innermost (index 2). */
    std::array<LoopAxis, 3> order = {LoopAxis::M, LoopAxis::RC,
                                     LoopAxis::N};
    /** Whether the core runs a skewed systolic schedule. */
    bool systolic = false;
    /**
     * Whether per-pass staged tiles are double-buffered (prefetched
     * one 1st-level pass ahead so DRAM latency hides behind
     * compute). Always true: OD's weight staging already follows
     * this convention, and the systolic scratchpad requires it.
     */
    bool doubleBuffered = true;
    /** The operand held stationary on chip across its reuse scan. */
    DataType stationary = DataType::Input;
    /**
     * Reuse level p per data type: the position (0 = outermost) of
     * the one loop axis the type does not depend on. Lifetime and
     * natural storage derive from it (see file comment).
     */
    std::array<int, numDataTypes> reuseLevel = {0, 2, 1};
    /** Natural residency class per data type, derived from p. */
    std::array<Residency, numDataTypes> residency = {
        Residency::Whole, Residency::Tile, Residency::Slab};

    /** Whether this is one of the paper's ID/OD/WD patterns. */
    bool legacy() const { return !systolic; }
    /** The equivalent ComputationPattern (legacy kinds only). */
    ComputationPattern legacyPattern() const;
    /** Reuse level of one data type. */
    int reuseOf(DataType type) const
    {
        return reuseLevel[static_cast<std::size_t>(type)];
    }
    /** Residency class of one data type. */
    Residency residencyOf(DataType type) const
    {
        return residency[static_cast<std::size_t>(type)];
    }
    /**
     * The input-or-weight operand whose tile is pinned in the PE
     * array across the innermost scan (reuse level 2). For systolic
     * dataflows this is the tile the array preloads per 1st-level
     * pass; OD's double-buffered weight staging is the legacy
     * equivalent.
     */
    DataType arrayTile() const;
    /**
     * Whether outputs accumulate across the outermost loop (reuse
     * level 0): partial sums live a whole 2nd-level pass and the
     * final results finish spread over the last outer pass (OD and
     * sys-os).
     */
    bool outputsAccumulateAcrossOuter() const
    {
        return reuseOf(DataType::Output) == 0;
    }
};

/** The immutable spec of a dataflow kind. */
const DataflowSpec &dataflowSpec(DataflowKind kind);

/** The canonical spec of a legacy computation pattern. */
const DataflowSpec &dataflowSpec(ComputationPattern pattern);

/** The dataflow kind of a legacy computation pattern. */
DataflowKind dataflowOf(ComputationPattern pattern);

/** Canonical name ("ID", "OD", "WD", "sys-ws", "sys-is", "sys-os"). */
const char *dataflowName(DataflowKind kind);

/**
 * Parse a canonical dataflow name. Legacy pattern names are accepted
 * both uppercase ("OD", the config-file spelling) and lowercase
 * ("od", the CLI spelling).
 */
Result<DataflowKind> parseDataflowName(const std::string &token);

/** All six dataflow kinds, legacy first. */
const std::array<DataflowKind, numDataflowKinds> &allDataflows();

/** The three legacy kinds (ID, OD, WD). */
std::vector<DataflowKind> legacyDataflows();

} // namespace rana

#endif // RANA_SIM_DATAFLOW_HH_
