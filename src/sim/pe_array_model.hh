/**
 * @file
 * Timing model of the PE array's core computing part.
 *
 * The core computes one tile (Tm output channels, Tr x Tc output
 * positions, reduced over Tn input channels and the K x K window)
 * per inner iteration. The array processes peRows output channels in
 * parallel; its columns cover either spatial positions (test
 * accelerator) or input channels (DaDianNao). Cycles per tile are
 * the serialized row/column group passes divided by the pipeline
 * efficiency eta.
 *
 * RANA never changes the core computing part, so the tile time is
 * identical for the ID, OD and WD patterns and performance is
 * preserved across design points (Section IV-A).
 */

#ifndef RANA_SIM_PE_ARRAY_MODEL_HH_
#define RANA_SIM_PE_ARRAY_MODEL_HH_

#include <cstdint>

#include "nn/conv_layer_spec.hh"
#include "sim/accelerator_config.hh"
#include "sim/dataflow.hh"
#include "sim/pattern.hh"

namespace rana {

/** Timing of one inner tile on the PE array. */
struct TileTiming
{
    /** Cycles to compute one full tile (including pipeline bubbles). */
    double cycles = 0.0;
    /** Seconds to compute one full tile. */
    double seconds = 0.0;
    /** Useful MACs in a full tile. */
    std::uint64_t macs = 0;
};

/**
 * Compute the per-tile timing for a layer under a (clamped) tiling.
 */
TileTiming tileTiming(const AcceleratorConfig &config,
                      const ConvLayerSpec &layer, const Tiling &tiling);

/**
 * Total layer execution time in seconds: all tiles of all memory
 * control loops (ceil trip counts; edge tiles cost a full tile).
 */
double layerSeconds(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer, const Tiling &tiling);

/**
 * Achieved PE utilization: useful MACs per cycle over peak,
 * including pipeline efficiency and tile-mapping losses.
 */
double layerUtilization(const AcceleratorConfig &config,
                        const ConvLayerSpec &layer,
                        const Tiling &tiling);

/**
 * Timing of one tile under a systolic dataflow's skewed schedule.
 *
 * The legacy patterns keep the dense tile time (RANA never changes
 * the core computing part). A systolic dataflow adds two stall
 * terms on top of the same MAC work:
 *
 *  - the array skew: the peRows x peCols wavefront fills and drains
 *    once per tile, costing (peRows + peCols - 2) extra cycles;
 *  - the stationary-tile preload: the array-stationary operand's
 *    tile is written into the PE registers once per 1st-level pass,
 *    one word per column lane per cycle. Double-buffered staging
 *    hides the DRAM fetch, not the register-file preload.
 */
struct SystolicTiming
{
    /** Per-tile timing with the skew stall folded in. */
    TileTiming tile;
    /** Skew stall cycles added to every tile (0 for legacy). */
    double skewCycles = 0.0;
    /** Preload cycles paid once per 1st-level pass (0 for legacy). */
    double preloadCycles = 0.0;
    /** Preload time per 1st-level pass in seconds. */
    double preloadSeconds = 0.0;
};

/**
 * Per-tile timing under a dataflow. Legacy specs return tileTiming()
 * unchanged; systolic specs fold in the skew and preload stalls.
 */
SystolicTiming dataflowTileTiming(const AcceleratorConfig &config,
                                  const ConvLayerSpec &layer,
                                  const Tiling &tiling,
                                  const DataflowSpec &spec);

} // namespace rana

#endif // RANA_SIM_PE_ARRAY_MODEL_HH_
