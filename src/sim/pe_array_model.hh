/**
 * @file
 * Timing model of the PE array's core computing part.
 *
 * The core computes one tile (Tm output channels, Tr x Tc output
 * positions, reduced over Tn input channels and the K x K window)
 * per inner iteration. The array processes peRows output channels in
 * parallel; its columns cover either spatial positions (test
 * accelerator) or input channels (DaDianNao). Cycles per tile are
 * the serialized row/column group passes divided by the pipeline
 * efficiency eta.
 *
 * RANA never changes the core computing part, so the tile time is
 * identical for the ID, OD and WD patterns and performance is
 * preserved across design points (Section IV-A).
 */

#ifndef RANA_SIM_PE_ARRAY_MODEL_HH_
#define RANA_SIM_PE_ARRAY_MODEL_HH_

#include <cstdint>

#include "nn/conv_layer_spec.hh"
#include "sim/accelerator_config.hh"
#include "sim/pattern.hh"

namespace rana {

/** Timing of one inner tile on the PE array. */
struct TileTiming
{
    /** Cycles to compute one full tile (including pipeline bubbles). */
    double cycles = 0.0;
    /** Seconds to compute one full tile. */
    double seconds = 0.0;
    /** Useful MACs in a full tile. */
    std::uint64_t macs = 0;
};

/**
 * Compute the per-tile timing for a layer under a (clamped) tiling.
 */
TileTiming tileTiming(const AcceleratorConfig &config,
                      const ConvLayerSpec &layer, const Tiling &tiling);

/**
 * Total layer execution time in seconds: all tiles of all memory
 * control loops (ceil trip counts; edge tiles cost a full tile).
 */
double layerSeconds(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer, const Tiling &tiling);

/**
 * Achieved PE utilization: useful MACs per cycle over peak,
 * including pipeline efficiency and tile-mapping losses.
 */
double layerUtilization(const AcceleratorConfig &config,
                        const ConvLayerSpec &layer,
                        const Tiling &tiling);

} // namespace rana

#endif // RANA_SIM_PE_ARRAY_MODEL_HH_
