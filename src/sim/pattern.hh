/**
 * @file
 * Computation patterns and tiling parameters (Section IV-C,
 * Figure 10).
 *
 * A computation pattern is an ordering of the three memory-control
 * loops around the core computing part:
 *
 *   - ID (input dominant):  Loop M (3rd) / Loop RC (2nd) / Loop N (1st)
 *   - OD (output dominant): Loop N (3rd) / Loop M (2nd) / Loop RC (1st)
 *   - WD (weight dominant): Loop RC (3rd) / Loop M (2nd) / Loop N (1st)
 *
 * The ordering determines which data type dominates buffer storage
 * and data lifetime. The tiling <Tm, Tn, Tr, Tc> sets the tile shape
 * processed by the core's local storage per inner iteration.
 */

#ifndef RANA_SIM_PATTERN_HH_
#define RANA_SIM_PATTERN_HH_

#include <array>
#include <cstdint>
#include <string>

#include "nn/conv_layer_spec.hh"

namespace rana {

/** Loop ordering of the memory control part. */
enum class ComputationPattern {
    /** Input dominant: the typical pattern, Loop M outermost. */
    ID,
    /** Output dominant: Loop N outermost; outputs self-refresh. */
    OD,
    /** Weight dominant: Loop RC outermost; weights stay resident. */
    WD,
};

/** Short name ("ID", "OD", "WD"). */
const char *patternName(ComputationPattern pattern);

/** The three memory-control loops. */
enum class LoopAxis {
    M,
    RC,
    N,
};

/**
 * Loop order of a pattern from outermost (index 0, the 3rd-level
 * loop) to innermost (index 2, the 1st-level loop).
 */
std::array<LoopAxis, 3> loopOrder(ComputationPattern pattern);

/** Tiling parameters of the core computing part. */
struct Tiling
{
    std::uint32_t tm = 1;
    std::uint32_t tn = 1;
    std::uint32_t tr = 1;
    std::uint32_t tc = 1;

    /** "<Tm,Tn,Tr,Tc>" string. */
    std::string describe() const;

    bool operator==(const Tiling &other) const = default;
};

/**
 * Tiling clamped to the layer's dimensions (a tile never exceeds
 * M/N/R/C).
 */
Tiling clampTiling(const Tiling &tiling, const ConvLayerSpec &layer);

/** Loop trip counts of a tiled layer (ceil division). */
struct TripCounts
{
    std::uint64_t nm = 1;
    std::uint64_t nn = 1;
    std::uint64_t nr = 1;
    std::uint64_t nc = 1;

    /** Nrc = Nr * Nc. */
    std::uint64_t nrc() const { return nr * nc; }
    /** Total inner tiles Nm * Nn * Nrc. */
    std::uint64_t total() const { return nm * nn * nrc(); }
};

/** Compute trip counts for a layer under a tiling. */
TripCounts tripCounts(const ConvLayerSpec &layer, const Tiling &tiling);

/** Trip count of one loop axis. */
std::uint64_t tripOf(const TripCounts &trips, LoopAxis axis);

/** Per-tile word counts for the three data types. */
struct TileSizes
{
    /** Input patch Tn * Th * Tl where Th/Tl include the halo. */
    std::uint64_t input = 0;
    /** Output tile Tm * Tr * Tc. */
    std::uint64_t output = 0;
    /** Weight tile Tm * Tn * K^2. */
    std::uint64_t weight = 0;
};

/** Compute per-tile sizes for a layer under a (clamped) tiling. */
TileSizes tileSizes(const ConvLayerSpec &layer, const Tiling &tiling);

} // namespace rana

#endif // RANA_SIM_PATTERN_HH_
