/**
 * @file
 * Accelerator hardware configuration and the two evaluated designs:
 * the 256-PE test accelerator (Section III-A, Figure 5) and one node
 * of DaDianNao (Section V-C).
 */

#ifndef RANA_SIM_ACCELERATOR_CONFIG_HH_
#define RANA_SIM_ACCELERATOR_CONFIG_HH_

#include <cstdint>
#include <string>

#include "edram/buffer_system.hh"

namespace rana {

/** How the core's tile time is modelled. */
enum class TimingModel {
    /**
     * The paper's model: the core sustains a fixed fraction eta of
     * peak MAC throughput for any tiling (Equations 4-5, 9-10 divide
     * by MAC * Frequency * eta). Tile time is therefore independent
     * of the loop ordering and tiling, so RANA preserves performance
     * exactly.
     */
    AggregateEfficiency,
    /**
     * Detailed model: serialized row/column group passes on the PE
     * array, exposing mapping losses when tiles do not fill the
     * array (used by the timing-model ablation benchmark).
     */
    ArrayMapped,
};

/** How the 2D PE array maps loop dimensions to its columns. */
enum class ArrayMapping {
    /**
     * Rows compute Tm output channels, columns cover spatial output
     * positions (Envision-like, the test accelerator).
     */
    SpatialColumns,
    /**
     * Rows compute Tm output channels, columns reduce Tn input
     * channels through an adder tree (DaDianNao-like).
     */
    InputChannelColumns,
};

/** Static hardware parameters of a CNN accelerator. */
struct AcceleratorConfig
{
    /** Design name. */
    std::string name;
    /** PE array rows (parallel output channels). */
    std::uint32_t peRows = 16;
    /** PE array columns. */
    std::uint32_t peCols = 16;
    /** Column mapping style (ArrayMapped timing only). */
    ArrayMapping mapping = ArrayMapping::SpatialColumns;
    /** Tile timing model. */
    TimingModel timing = TimingModel::AggregateEfficiency;
    /** Working frequency in Hz. */
    double frequencyHz = 200e6;
    /**
     * Fraction of peak MAC throughput sustained by the pipeline
     * (fill/drain and control bubbles). The paper's measured layer
     * lifetimes imply eta ~= 0.875 on the test accelerator.
     */
    double pipelineEfficiency = 0.875;
    /** Core local input storage Ri, in 16-bit words. */
    std::uint64_t localInputWords = 8192;
    /** Core local output storage Ro, in 16-bit words. */
    std::uint64_t localOutputWords = 4096;
    /** Core local weight storage Rw, in 16-bit words. */
    std::uint64_t localWeightWords = 6144;
    /** On-chip unified buffer geometry. */
    BufferGeometry buffer;

    /** Total MAC units (= peRows * peCols). */
    std::uint32_t macUnits() const { return peRows * peCols; }

    /** Peak MAC throughput in operations per second. */
    double peakMacsPerSecond() const;

    /** Human-readable one-line summary. */
    std::string describe() const;

    /**
     * Stable identity string covering every field that influences
     * analysis, timing or energy (the name is deliberately excluded:
     * designs that differ only in label evaluate identically). Used
     * as a memoization-cache key component by the scheduler.
     */
    std::string fingerprint() const;
};

/**
 * The test CNN accelerator of Section III-A with an SRAM buffer:
 * 256 PEs (16x16) at 200MHz, 36KB core local storage, 384KB SRAM
 * buffer (12 x 32KB banks), 5.682mm^2 in 65nm.
 */
AcceleratorConfig testAcceleratorSram();

/**
 * The same test accelerator with the equal-area eDRAM buffer
 * (46 x 32KB banks ~= 1.45MB, Table II's area ratio).
 */
AcceleratorConfig testAcceleratorEdram();

/**
 * The test accelerator with an arbitrary number of eDRAM banks
 * (used by the Figure 18 buffer-capacity sweep).
 */
AcceleratorConfig testAcceleratorEdram(std::uint32_t num_banks);

/**
 * One node of DaDianNao: 4096 PEs in a 64x64 tree-like organization
 * at 606MHz with 36MB of on-chip eDRAM; the fixed tiling is
 * Tm = Tn = 64, Tr = Tc = 1.
 */
AcceleratorConfig daDianNaoNode();

} // namespace rana

#endif // RANA_SIM_ACCELERATOR_CONFIG_HH_
