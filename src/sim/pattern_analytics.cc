/**
 * @file
 * Implementation of the closed-form layer analysis.
 */

#include "sim/pattern_analytics.hh"

#include <algorithm>
#include <cmath>

#include "sim/pe_array_model.hh"
#include "util/logging.hh"

namespace rana {

namespace {

constexpr std::size_t kInput = static_cast<std::size_t>(DataType::Input);
constexpr std::size_t kOutput =
    static_cast<std::size_t>(DataType::Output);
constexpr std::size_t kWeight =
    static_cast<std::size_t>(DataType::Weight);

/** Natural and fully-streamed traffic for one data type. */
struct TrafficBounds
{
    double naturalReads = 0.0;
    double streamedReads = 0.0;
    double naturalWrites = 0.0;
    double streamedWrites = 0.0;
};

} // namespace

const TypeAnalysis &
LayerAnalysis::of(DataType type) const
{
    return types[static_cast<std::size_t>(type)];
}

TypeAnalysis &
LayerAnalysis::of(DataType type)
{
    return types[static_cast<std::size_t>(type)];
}

double
LayerAnalysis::totalDramWords() const
{
    double total = 0.0;
    for (const auto &type : types)
        total += type.dramReadWords + type.dramWriteWords;
    return total;
}

double
LayerAnalysis::totalBufferWords() const
{
    double total = 0.0;
    for (const auto &type : types) {
        total += type.coreLoadWords + type.coreStoreWords +
                 type.dramReadWords + type.dramWriteWords;
    }
    return total;
}

bool
LayerAnalysis::spilled() const
{
    for (const auto &type : types) {
        if (type.residentFraction < 1.0)
            return true;
    }
    return false;
}

std::array<double, numDataTypes>
LayerAnalysis::lifetimes() const
{
    return {types[0].lifetimeSeconds, types[1].lifetimeSeconds,
            types[2].lifetimeSeconds};
}

namespace {

/**
 * The paper's closed forms for the legacy ID/OD/WD patterns. This is
 * the historical implementation, kept verbatim so canonical specs
 * stay byte-identical to the pre-dataflow scheduler output.
 */
LayerAnalysis
analyzeLayerLegacy(const AcceleratorConfig &config,
                   const ConvLayerSpec &layer,
                   ComputationPattern pattern, const Tiling &tiling,
                   bool promote_inputs)
{
    const bool promote =
        promote_inputs && pattern == ComputationPattern::WD;
    LayerAnalysis analysis;
    analysis.dataflow = dataflowOf(pattern);
    analysis.pattern = pattern;
    analysis.inputsPromoted = promote;
    analysis.tiling = clampTiling(tiling, layer);
    const Tiling &t = analysis.tiling;

    const TileSizes tiles = tileSizes(layer, t);

    // Core local storage constraints (Figure 13).
    if (tiles.input > config.localInputWords) {
        analysis.infeasibleReason = "input tile exceeds Ri";
        return analysis;
    }
    if (tiles.output > config.localOutputWords) {
        analysis.infeasibleReason = "output tile exceeds Ro";
        return analysis;
    }
    if (tiles.weight > config.localWeightWords) {
        analysis.infeasibleReason = "weight tile exceeds Rw";
        return analysis;
    }

    // Timing: tile time and the nested loop level times.
    const TripCounts trips = tripCounts(layer, t);
    const TileTiming timing = tileTiming(config, layer, t);
    const auto order = loopOrder(pattern);
    const double t1 =
        static_cast<double>(tripOf(trips, order[2])) * timing.seconds;
    const double t2 = static_cast<double>(tripOf(trips, order[1])) * t1;
    const double t3 = static_cast<double>(tripOf(trips, order[0])) * t2;
    analysis.levelSeconds = {t1, t2, t3};
    analysis.layerSeconds = t3;
    analysis.utilization = static_cast<double>(layer.macs()) /
                           (t3 * config.peakMacsPerSecond());

    const auto nm = static_cast<double>(trips.nm);
    const auto nn = static_cast<double>(trips.nn);
    const auto nrc = static_cast<double>(trips.nrc());
    const auto total_tiles = static_cast<double>(trips.total());

    const auto in_words = static_cast<double>(layer.inputWords());
    const auto w_words = static_cast<double>(layer.weightWords());
    const auto tile_in = static_cast<double>(tiles.input);
    const auto tile_out = static_cast<double>(tiles.output);
    const auto tile_w = static_cast<double>(tiles.weight);

    // Core traffic (independent of buffer residency). A tile is
    // re-fetched once per iteration of the innermost loop the data
    // type depends on.
    double core_load_in = total_tiles * tile_in;
    double core_load_w = 0.0;
    double core_store_out = 0.0;
    double partial_reload_out = 0.0;
    switch (pattern) {
      case ComputationPattern::ID:
      case ComputationPattern::WD:
        // Loop N is innermost: weights re-fetched per tile; outputs
        // complete their accumulation in the core and are stored
        // once per (m, rc).
        core_load_w = total_tiles * tile_w;
        core_store_out = nm * nrc * tile_out;
        break;
      case ComputationPattern::OD:
        // Loop RC is innermost: a weight tile depends on (m, n) only
        // and is re-fetched once per (n, m) iteration. Outputs are
        // partial sums: stored per pass of Loop N and reloaded for
        // accumulation on every pass but the first.
        core_load_w = nn * nm * tile_w;
        core_store_out = total_tiles * tile_out;
        partial_reload_out = (nn - 1.0) * nm * nrc * tile_out;
        break;
    }

    // Natural buffer storage requirements (Equations 1-3, 6-8,
    // 11-13) and traffic bounds per type.
    std::array<std::uint64_t, numDataTypes> natural_bs = {0, 0, 0};
    std::array<std::uint64_t, numDataTypes> floor_bs = {
        tiles.input, tiles.output, tiles.weight};
    std::array<TrafficBounds, numDataTypes> bounds;

    const std::uint64_t th = layer.inputPatchH(t.tr);
    const std::uint64_t tl = layer.inputPatchW(t.tc);

    switch (pattern) {
      case ComputationPattern::ID:
        natural_bs[kInput] = layer.inputWords();
        natural_bs[kOutput] = tiles.output;
        natural_bs[kWeight] =
            static_cast<std::uint64_t>(t.tm) * layer.n * layer.k *
            layer.k;
        bounds[kInput].naturalReads = in_words;
        bounds[kWeight].naturalReads = w_words;
        break;
      case ComputationPattern::OD:
        natural_bs[kInput] =
            static_cast<std::uint64_t>(t.tn) * layer.h * layer.l;
        natural_bs[kOutput] = layer.outputWords();
        natural_bs[kWeight] = tiles.weight;
        bounds[kInput].naturalReads = in_words;
        bounds[kWeight].naturalReads = w_words;
        break;
      case ComputationPattern::WD:
        if (promote) {
            // Whole input set pinned: each input word loads once.
            natural_bs[kInput] = layer.inputWords();
            bounds[kInput].naturalReads = in_words;
        } else {
            natural_bs[kInput] =
                static_cast<std::uint64_t>(layer.n) * th * tl;
            // Input patches are re-read per RC tile with their halo.
            bounds[kInput].naturalReads =
                nrc * static_cast<double>(layer.n) * th * tl;
        }
        natural_bs[kOutput] = tiles.output;
        natural_bs[kWeight] = layer.weightWords();
        bounds[kWeight].naturalReads = w_words;
        break;
    }

    // Fully-streamed bounds: traffic equals the core re-fetch count.
    bounds[kInput].streamedReads = core_load_in;
    bounds[kWeight].streamedReads = core_load_w;

    // Outputs: final results always drain off-chip once; OD spills
    // additionally write and re-read partial sums per Loop N pass.
    bounds[kOutput].naturalWrites = nm * nrc * tile_out;
    if (pattern == ComputationPattern::OD) {
        bounds[kOutput].streamedWrites = total_tiles * tile_out;
        bounds[kOutput].streamedReads = partial_reload_out;
    } else {
        bounds[kOutput].streamedWrites = bounds[kOutput].naturalWrites;
        bounds[kOutput].streamedReads = 0.0;
    }

    // Residency solve. Residency is all-or-nothing per data type: a
    // type either keeps its whole natural set in the buffer or
    // streams it tile-by-tile from off-chip on every reuse scan
    // (double-buffered tile working space only). Types are degraded
    // from the largest natural requirement downward until the
    // bank-granular allocation fits.
    const std::uint64_t bank_words = config.buffer.bankWords();
    std::array<std::uint64_t, numDataTypes> alloc = natural_bs;
    auto banks_needed = [&alloc, bank_words]() {
        std::uint64_t banks = 0;
        for (std::uint64_t words : alloc)
            banks += (words + bank_words - 1) / bank_words;
        return banks;
    };
    if (banks_needed() > config.buffer.numBanks) {
        std::array<std::size_t, numDataTypes> by_size = {0, 1, 2};
        std::sort(by_size.begin(), by_size.end(),
                  [&natural_bs](std::size_t a, std::size_t b) {
                      return natural_bs[a] > natural_bs[b];
                  });
        for (std::size_t idx : by_size) {
            if (banks_needed() <= config.buffer.numBanks)
                break;
            alloc[idx] = std::min(floor_bs[idx], natural_bs[idx]);
        }
        if (banks_needed() > config.buffer.numBanks) {
            analysis.infeasibleReason =
                "streamed working set exceeds buffer capacity";
            return analysis;
        }
        if (promote && alloc[kInput] < natural_bs[kInput]) {
            // Promotion requires the whole input set to stay
            // resident; the caller falls back to the unpromoted
            // variant.
            analysis.infeasibleReason =
                "promoted inputs do not fit the buffer";
            return analysis;
        }
    }

    // Natural lifetimes: the execution time of the loop level at
    // which each data type is reused (Equations 4-5, 9-10).
    std::array<double, numDataTypes> natural_lt = {0.0, 0.0, 0.0};
    switch (pattern) {
      case ComputationPattern::ID:
        natural_lt = {t3, 0.0, t2};
        break;
      case ComputationPattern::OD:
        natural_lt = {t2, t2, t1};
        break;
      case ComputationPattern::WD:
        // Promoted inputs stay resident for the whole layer.
        natural_lt = {promote ? t3 : t2, 0.0, t3};
        break;
    }

    analysis.feasible = true;
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        TypeAnalysis &type = analysis.types[i];
        type.naturalStorageWords = natural_bs[i];
        type.storageWords = alloc[i];
        const std::uint64_t floor_words =
            std::min(floor_bs[i], natural_bs[i]);
        if (natural_bs[i] > floor_words) {
            const double span =
                static_cast<double>(natural_bs[i] - floor_words);
            type.residentFraction =
                static_cast<double>(alloc[i] - floor_words) / span;
        } else {
            type.residentFraction = 1.0;
        }
        const double phi = type.residentFraction;
        const TrafficBounds &b = bounds[i];
        type.dramReadWords =
            b.naturalReads + (1.0 - phi) * (b.streamedReads -
                                            b.naturalReads);
        type.dramWriteWords =
            b.naturalWrites + (1.0 - phi) * (b.streamedWrites -
                                             b.naturalWrites);
        type.lifetimeSeconds =
            phi > 0.0 ? natural_lt[i] : timing.seconds;
    }
    analysis.of(DataType::Input).coreLoadWords = core_load_in;
    analysis.of(DataType::Weight).coreLoadWords = core_load_w;
    analysis.of(DataType::Output).coreLoadWords = partial_reload_out;
    analysis.of(DataType::Output).coreStoreWords = core_store_out;

    return analysis;
}

/**
 * Generic loop-order model for the systolic dataflows. Storage,
 * lifetime and traffic all derive from each data type's reuse level
 * p (the position of the loop axis it does not depend on):
 *
 *  - natural storage: tile extent for dependence axes ordered inside
 *    position p, full extent for those outside (Whole at p=0, a slab
 *    at p=1, one tile at p=2);
 *  - lifetime: inputs and weights are written once per staging and
 *    age across the whole reuse scan (T3/T2/T1 for p=0/1/2);
 *    outputs rewrite themselves every visit, so partial sums age
 *    only one visit pitch (T2/T1 for p=0/1, 0 when they complete
 *    inside the core at p=2);
 *  - off-chip reads: one staging of the natural set per iteration of
 *    the loops outside position p;
 *  - core traffic: a tile is re-fetched per inner tile when the type
 *    depends on the innermost axis, once per 1st-level pass
 *    otherwise (the array-stationary operand).
 *
 * The same rules reproduce the legacy ID/OD/WD closed forms exactly;
 * they stay on analyzeLayerLegacy() only to keep the historical
 * float evaluation order bit-stable.
 */
LayerAnalysis
analyzeLayerSystolic(const AcceleratorConfig &config,
                     const ConvLayerSpec &layer,
                     const DataflowSpec &spec, const Tiling &tiling)
{
    LayerAnalysis analysis;
    analysis.dataflow = spec.kind;
    analysis.tiling = clampTiling(tiling, layer);
    const Tiling &t = analysis.tiling;

    const TileSizes tiles = tileSizes(layer, t);

    // Core local storage constraints (Figure 13), shared with the
    // legacy patterns: the systolic schedule runs the same tile.
    if (tiles.input > config.localInputWords) {
        analysis.infeasibleReason = "input tile exceeds Ri";
        return analysis;
    }
    if (tiles.output > config.localOutputWords) {
        analysis.infeasibleReason = "output tile exceeds Ro";
        return analysis;
    }
    if (tiles.weight > config.localWeightWords) {
        analysis.infeasibleReason = "weight tile exceeds Rw";
        return analysis;
    }

    // Timing: the skewed tile plus the per-pass stationary preload.
    const TripCounts trips = tripCounts(layer, t);
    const SystolicTiming timing =
        dataflowTileTiming(config, layer, t, spec);
    const std::uint64_t trip0 = tripOf(trips, spec.order[0]);
    const std::uint64_t trip1 = tripOf(trips, spec.order[1]);
    const std::uint64_t trip2 = tripOf(trips, spec.order[2]);
    const double t1 =
        static_cast<double>(trip2) * timing.tile.seconds +
        timing.preloadSeconds;
    const double t2 = static_cast<double>(trip1) * t1;
    const double t3 = static_cast<double>(trip0) * t2;
    analysis.levelSeconds = {t1, t2, t3};
    analysis.layerSeconds = t3;
    analysis.utilization = static_cast<double>(layer.macs()) /
                           (t3 * config.peakMacsPerSecond());

    const auto total_tiles = static_cast<double>(trips.total());
    const auto passes = static_cast<double>(trip0 * trip1);

    const auto tile_in = static_cast<double>(tiles.input);
    const auto tile_out = static_cast<double>(tiles.output);
    const auto tile_w = static_cast<double>(tiles.weight);

    const std::uint64_t th = layer.inputPatchH(t.tr);
    const std::uint64_t tl = layer.inputPatchW(t.tc);

    // Reuse levels and per-axis loop positions.
    const int p_in = spec.reuseOf(DataType::Input);
    const int p_out = spec.reuseOf(DataType::Output);
    const int p_w = spec.reuseOf(DataType::Weight);
    const auto pos = [&spec](LoopAxis axis) {
        for (int i = 0; i < 3; ++i) {
            if (spec.order[static_cast<std::size_t>(i)] == axis)
                return i;
        }
        return 0;
    };
    const int pos_m = pos(LoopAxis::M);
    const int pos_n = pos(LoopAxis::N);
    const int pos_rc = pos(LoopAxis::RC);

    // Natural storage: tile extent for dependence axes inside the
    // reuse position, full extent outside it.
    std::array<std::uint64_t, numDataTypes> natural_bs = {0, 0, 0};
    natural_bs[kInput] =
        (pos_n < p_in ? t.tn : layer.n) *
        (pos_rc < p_in ? th * tl
                       : static_cast<std::uint64_t>(layer.h) *
                             layer.l);
    natural_bs[kWeight] =
        static_cast<std::uint64_t>(pos_m < p_w ? t.tm : layer.m) *
        (pos_n < p_w ? t.tn : layer.n) *
        static_cast<std::uint64_t>(layer.k) * layer.k;
    natural_bs[kOutput] =
        (pos_m < p_out ? t.tm : layer.m) *
        (pos_rc < p_out
             ? static_cast<std::uint64_t>(t.tr) * t.tc
             : static_cast<std::uint64_t>(layer.r()) * layer.c());
    std::array<std::uint64_t, numDataTypes> floor_bs = {
        tiles.input, tiles.output, tiles.weight};

    // Staging count per type: one natural-set fetch per iteration of
    // the loops outside the reuse position.
    const auto trip_at = [&](int level) {
        return level == 0 ? trip0 : (level == 1 ? trip1 : trip2);
    };
    const auto stagings = [&](int p) {
        double count = 1.0;
        for (int q = 0; q < p; ++q)
            count *= static_cast<double>(trip_at(q));
        return count;
    };

    // Core traffic: per tile when the type depends on the innermost
    // axis, once per 1st-level pass for the array-stationary tile.
    const bool in_inner = spec.order[2] != LoopAxis::M;
    const bool w_inner = spec.order[2] != LoopAxis::RC;
    const double core_load_in =
        (in_inner ? total_tiles : passes) * tile_in;
    const double core_load_w =
        (w_inner ? total_tiles : passes) * tile_w;

    // Outputs: at p=2 they complete inside the core and store once
    // per tile position; at p<2 partial sums store on every visit
    // and reload on every revisit.
    const auto out_visits = static_cast<double>(trip_at(p_out));
    double core_store_out = 0.0;
    double partial_reload_out = 0.0;
    double natural_out_writes = 0.0;
    if (p_out == 2) {
        core_store_out = passes * tile_out;
        natural_out_writes = core_store_out;
    } else {
        core_store_out = total_tiles * tile_out;
        natural_out_writes = (total_tiles / out_visits) * tile_out;
        partial_reload_out =
            (out_visits - 1.0) * (total_tiles / out_visits) *
            tile_out;
    }

    std::array<TrafficBounds, numDataTypes> bounds;
    bounds[kInput].naturalReads =
        stagings(p_in) * static_cast<double>(natural_bs[kInput]);
    bounds[kWeight].naturalReads =
        stagings(p_w) * static_cast<double>(natural_bs[kWeight]);
    bounds[kInput].streamedReads = core_load_in;
    bounds[kWeight].streamedReads = core_load_w;
    bounds[kOutput].naturalWrites = natural_out_writes;
    bounds[kOutput].streamedWrites = core_store_out;
    bounds[kOutput].streamedReads = partial_reload_out;

    // Residency solve, identical policy to the legacy patterns:
    // all-or-nothing per type, largest natural set degraded first
    // until the bank-granular allocation fits.
    const std::uint64_t bank_words = config.buffer.bankWords();
    std::array<std::uint64_t, numDataTypes> alloc = natural_bs;
    auto banks_needed = [&alloc, bank_words]() {
        std::uint64_t banks = 0;
        for (std::uint64_t words : alloc)
            banks += (words + bank_words - 1) / bank_words;
        return banks;
    };
    if (banks_needed() > config.buffer.numBanks) {
        std::array<std::size_t, numDataTypes> by_size = {0, 1, 2};
        std::sort(by_size.begin(), by_size.end(),
                  [&natural_bs](std::size_t a, std::size_t b) {
                      return natural_bs[a] > natural_bs[b];
                  });
        for (std::size_t idx : by_size) {
            if (banks_needed() <= config.buffer.numBanks)
                break;
            alloc[idx] = std::min(floor_bs[idx], natural_bs[idx]);
        }
        if (banks_needed() > config.buffer.numBanks) {
            analysis.infeasibleReason =
                "streamed working set exceeds buffer capacity";
            return analysis;
        }
    }

    // Natural lifetimes from the reuse levels: read-only operands
    // age across the full reuse scan, self-rewriting partial sums
    // age one visit pitch.
    std::array<double, numDataTypes> natural_lt = {0.0, 0.0, 0.0};
    natural_lt[kInput] = analysis.levelSeconds[2 - p_in];
    natural_lt[kWeight] = analysis.levelSeconds[2 - p_w];
    natural_lt[kOutput] =
        p_out == 2 ? 0.0 : analysis.levelSeconds[1 - p_out];

    analysis.feasible = true;
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        TypeAnalysis &type = analysis.types[i];
        type.naturalStorageWords = natural_bs[i];
        type.storageWords = alloc[i];
        const std::uint64_t floor_words =
            std::min(floor_bs[i], natural_bs[i]);
        if (natural_bs[i] > floor_words) {
            const double span =
                static_cast<double>(natural_bs[i] - floor_words);
            type.residentFraction =
                static_cast<double>(alloc[i] - floor_words) / span;
        } else {
            type.residentFraction = 1.0;
        }
        const double phi = type.residentFraction;
        const TrafficBounds &b = bounds[i];
        type.dramReadWords =
            b.naturalReads + (1.0 - phi) * (b.streamedReads -
                                            b.naturalReads);
        type.dramWriteWords =
            b.naturalWrites + (1.0 - phi) * (b.streamedWrites -
                                             b.naturalWrites);
        type.lifetimeSeconds =
            phi > 0.0 ? natural_lt[i] : timing.tile.seconds;
    }
    analysis.of(DataType::Input).coreLoadWords = core_load_in;
    analysis.of(DataType::Weight).coreLoadWords = core_load_w;
    analysis.of(DataType::Output).coreLoadWords = partial_reload_out;
    analysis.of(DataType::Output).coreStoreWords = core_store_out;

    // Systolic stall/utilization/bandwidth statistics.
    analysis.systolic.skewCyclesPerTile = timing.skewCycles;
    analysis.systolic.preloadCyclesPerPass = timing.preloadCycles;
    analysis.systolic.stallSeconds =
        total_tiles * (timing.skewCycles / config.frequencyHz) +
        passes * timing.preloadSeconds;
    const double dense_seconds = t3 - analysis.systolic.stallSeconds;
    analysis.systolic.denseUtilization =
        dense_seconds > 0.0
            ? static_cast<double>(layer.macs()) /
                  (dense_seconds * config.peakMacsPerSecond())
            : 0.0;
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        analysis.systolic.dramBandwidth[i] =
            (analysis.types[i].dramReadWords +
             analysis.types[i].dramWriteWords) /
            t3;
    }
    return analysis;
}

} // namespace

LayerAnalysis
analyzeLayer(const AcceleratorConfig &config, const ConvLayerSpec &layer,
             const DataflowSpec &spec, const Tiling &tiling,
             bool promote_inputs)
{
    if (spec.legacy()) {
        return analyzeLayerLegacy(config, layer, spec.legacyPattern(),
                                  tiling, promote_inputs);
    }
    return analyzeLayerSystolic(config, layer, spec, tiling);
}

LayerAnalysis
analyzeLayer(const AcceleratorConfig &config, const ConvLayerSpec &layer,
             ComputationPattern pattern, const Tiling &tiling,
             bool promote_inputs)
{
    return analyzeLayer(config, layer, dataflowSpec(pattern), tiling,
                        promote_inputs);
}

BankAllocation
analysisBankAllocation(const AcceleratorConfig &config,
                       const LayerAnalysis &analysis)
{
    RANA_ASSERT(analysis.feasible,
                "bank allocation of an infeasible analysis");
    return allocateBanks(config.buffer,
                         analysis.of(DataType::Input).storageWords,
                         analysis.of(DataType::Output).storageWords,
                         analysis.of(DataType::Weight).storageWords);
}

LayerRefreshDemand
refreshDemand(const AcceleratorConfig &config,
              const LayerAnalysis &analysis)
{
    LayerRefreshDemand demand;
    demand.layerSeconds = analysis.layerSeconds;
    demand.lifetimeSeconds = analysis.lifetimes();
    demand.allocation = analysisBankAllocation(config, analysis);
    return demand;
}

OperationCounts
layerOperationCounts(const AcceleratorConfig &config,
                     const ConvLayerSpec &layer,
                     const LayerAnalysis &analysis,
                     RefreshPolicy policy,
                     double refresh_interval_seconds)
{
    RANA_ASSERT(analysis.feasible,
                "operation counts of an infeasible analysis");
    OperationCounts counts;
    counts.macOps = layer.macs();

    double buffer_words = 0.0;
    double dram_words = 0.0;
    for (const auto &type : analysis.types) {
        buffer_words += type.coreLoadWords + type.coreStoreWords +
                        type.dramReadWords + type.dramWriteWords;
        dram_words += type.dramReadWords + type.dramWriteWords;
    }
    counts.bufferAccesses =
        static_cast<std::uint64_t>(std::llround(buffer_words));
    counts.ddrAccesses =
        static_cast<std::uint64_t>(std::llround(dram_words));

    if (policy != RefreshPolicy::None) {
        counts.refreshOps = refreshOpsForLayer(
            policy, config.buffer, refreshDemand(config, analysis),
            refresh_interval_seconds);
    }
    return counts;
}

} // namespace rana
