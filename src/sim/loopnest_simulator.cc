/**
 * @file
 * Implementation of the loop-nest trace simulator.
 */

#include "sim/loopnest_simulator.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics_registry.hh"
#include "sim/pe_array_model.hh"
#include "util/logging.hh"

namespace rana {

namespace {

constexpr std::size_t kInput = static_cast<std::size_t>(DataType::Input);
constexpr std::size_t kOutput =
    static_cast<std::size_t>(DataType::Output);
constexpr std::size_t kWeight =
    static_cast<std::size_t>(DataType::Weight);

/** Registry instruments for simulator progress (created once). */
struct SimMetrics
{
    MetricsRegistry::Counter &layers;
    MetricsRegistry::Counter &tiles;
    MetricsRegistry::Gauge &banksInUse;
    MetricsRegistry::Gauge &banksInUsePeak;

    static SimMetrics &
    get()
    {
        static SimMetrics *metrics = new SimMetrics{
            MetricsRegistry::global().counter(
                "sim_layers_simulated_total"),
            MetricsRegistry::global().counter(
                "sim_tiles_simulated_total"),
            MetricsRegistry::global().gauge("sim_banks_in_use"),
            MetricsRegistry::global().gauge("sim_banks_in_use_peak"),
        };
        return *metrics;
    }
};

} // namespace

LoopNestSimulator::LoopNestSimulator(const AcceleratorConfig &config,
                                     RefreshPolicy policy,
                                     double interval_seconds)
    : config_(config),
      policy_(policy),
      interval_(interval_seconds),
      controller_(config.buffer, policy, config.frequencyHz,
                  interval_seconds)
{
    // Forward divider ticks to the trace sink so the timeline shows
    // refresh activity alongside compute (emit() drops the event
    // when no sink is attached).
    controller_.setPulseListener(
        [this](double when, std::uint64_t words) {
            emit(TraceEventKind::RefreshPulse, when, DataType::Input,
                 words, 0);
        });
}

std::uint64_t
LoopNestSimulator::totalRefreshOps() const
{
    return controller_.refreshOps();
}

std::uint64_t
LoopNestSimulator::totalViolations() const
{
    return controller_.violations();
}

void
LoopNestSimulator::emit(TraceEventKind kind, double seconds,
                        DataType type, std::uint64_t words,
                        std::uint64_t tile_index)
{
    if (trace_ != nullptr) {
        TraceEvent event;
        event.kind = kind;
        event.seconds = seconds;
        event.type = type;
        event.words = words;
        event.tileIndex = tile_index;
        trace_->onEvent(event);
    }
}

LayerSimResult
LoopNestSimulator::runLayer(const ConvLayerSpec &layer,
                            const LayerAnalysis &analysis)
{
    return runLayerChecked(layer, analysis).valueOrDie();
}

Result<LayerSimResult>
LoopNestSimulator::runLayerChecked(const ConvLayerSpec &layer,
                                   const LayerAnalysis &analysis)
{
    if (!analysis.feasible) {
        return makeError(ErrorCode::InvalidArgument,
                         "cannot simulate layer ", layer.name,
                         ": the analysis is infeasible");
    }
    if (analysis.spec().systolic)
        return runLayerSystolic(layer, analysis);
    const ComputationPattern pattern = analysis.spec().legacyPattern();
    const Tiling &t = analysis.tiling;
    const TileSizes tiles = tileSizes(layer, t);
    const TripCounts trips = tripCounts(layer, t);
    const TileTiming timing = tileTiming(config_, layer, t);
    const auto order = loopOrder(pattern);
    const std::uint64_t trip0 = tripOf(trips, order[0]);
    const std::uint64_t trip1 = tripOf(trips, order[1]);
    const std::uint64_t trip2 = tripOf(trips, order[2]);

    const double layer_start = now_;
    // Injected timing faults stretch each tile and stall each outer
    // scan. At the default TimingFaults both terms are exact float
    // no-ops (x*1.0 and x+0.0), keeping fault-free timing
    // bit-identical to the analytical model.
    const double t_tile = faults_.tileSeconds(timing.seconds);
    const double stall = faults_.scanStallSeconds;
    const double t1 = static_cast<double>(trip2) * t_tile;
    const double t2 = static_cast<double>(trip1) * t1;

    // Layer configuration load: allocation and refresh flags from
    // the analysis (the compiled layerwise configuration).
    const LayerRefreshDemand demand = refreshDemand(config_, analysis);
    const auto flags = refreshFlagsForLayer(demand, interval_);
    const bool gate_on = flags[0] || flags[1] || flags[2];
    const std::uint64_t refresh_before = controller_.refreshOps();
    const std::uint64_t violations_before = controller_.violations();
    const std::uint64_t guard_trips_before =
        guard_ != nullptr ? guard_->stats().trips : 0;
    controller_.beginLayer(demand.allocation, flags, gate_on,
                           layer_start);
    if (trace_ != nullptr)
        trace_->onLayerBegin(layer.name);
    emit(TraceEventKind::LayerBegin, layer_start, DataType::Input, 0,
         0);
    const std::uint64_t banks_in_use =
        config_.buffer.numBanks - demand.allocation.unusedBanks;
    emit(TraceEventKind::BankOccupancy, layer_start, DataType::Input,
         banks_in_use, 0);
    SimMetrics &sim_metrics = SimMetrics::get();
    sim_metrics.banksInUse.set(static_cast<double>(banks_in_use));
    sim_metrics.banksInUsePeak.setMax(
        static_cast<double>(banks_in_use));

    // Per-type staging times following the pattern's natural
    // residency; fully streamed types are always freshly staged.
    const std::array<double, numDataTypes> phi = {
        analysis.types[kInput].residentFraction,
        analysis.types[kOutput].residentFraction,
        analysis.types[kWeight].residentFraction,
    };
    double input_write = layer_start;
    double weight_write = layer_start;
    controller_.onWrite(DataType::Input, layer_start);
    controller_.onWrite(DataType::Weight, layer_start);
    controller_.onWrite(DataType::Output, layer_start);

    // Event tallies.
    double core_load_in = 0.0;
    double core_load_w = 0.0;
    double core_store_out = 0.0;
    double partial_reload_out = 0.0;
    double natural_in_reads = 0.0;
    double natural_out_writes = 0.0;
    std::array<double, numDataTypes> max_age = {0.0, 0.0, 0.0};

    const auto tile_in = static_cast<double>(tiles.input);
    const auto tile_out = static_cast<double>(tiles.output);
    const auto tile_w = static_cast<double>(tiles.weight);
    const std::uint64_t th = layer.inputPatchH(t.tr);
    const std::uint64_t tl = layer.inputPatchW(t.tc);

    // Natural (fully resident) input fill: once for ID/OD and for
    // WD with promoted inputs, one halo patch per RC scan for plain
    // WD (tallied inside the loop).
    if (pattern != ComputationPattern::WD || analysis.inputsPromoted)
        natural_in_reads = static_cast<double>(layer.inputWords());

    auto observe_read = [&](DataType type, double now,
                            double write_time) {
        controller_.onRead(type, now, write_time);
        max_age[static_cast<std::size_t>(type)] =
            std::max(max_age[static_cast<std::size_t>(type)],
                     now - write_time);
    };

    std::uint64_t tile_index = 0;
    for (std::uint64_t i0 = 0; i0 < trip0; ++i0) {
        const double scan_start =
            layer_start + static_cast<double>(i0) * t2 +
            static_cast<double>(i0 + 1) * stall;
        // Staging at the outer loop boundary.
        switch (pattern) {
          case ComputationPattern::ID:
            // Loop M: the m-group's weights are staged here.
            weight_write = scan_start;
            controller_.onWrite(DataType::Weight, scan_start);
            break;
          case ComputationPattern::OD:
            // Loop N: the input slab is staged here.
            input_write = scan_start;
            controller_.onWrite(DataType::Input, scan_start);
            break;
          case ComputationPattern::WD:
            if (analysis.inputsPromoted) {
                // Inputs were staged whole at layer start.
                break;
            }
            // Loop RC: the input halo patch is staged here.
            input_write = scan_start;
            controller_.onWrite(DataType::Input, scan_start);
            natural_in_reads +=
                static_cast<double>(layer.n) * th * tl;
            break;
        }
        for (std::uint64_t i1 = 0; i1 < trip1; ++i1) {
            const double pass_start =
                scan_start + static_cast<double>(i1) * t1;
            if (pattern == ComputationPattern::OD) {
                // Loop M: the (n, m) weight tile is staged one
                // 1st-level pass ahead of its use.
                weight_write = std::max(layer_start, pass_start - t1);
                controller_.onWrite(DataType::Weight, pass_start);
                core_load_w += tile_w;
                observe_read(DataType::Weight, pass_start,
                             phi[kWeight] > 0.0 ? weight_write
                                                : pass_start);
                emit(TraceEventKind::CoreLoad, pass_start,
                     DataType::Weight, tiles.weight, tile_index);
            }
            for (std::uint64_t i2 = 0; i2 < trip2; ++i2) {
                const std::uint64_t tile_id = tile_index;
                const double t_start =
                    layer_start +
                    static_cast<double>(i0 + 1) * stall +
                    static_cast<double>(tile_index) * t_tile;
                const double t_end = t_start + t_tile;
                ++tile_index;

                // OD partial sums reload at the tile start: on every
                // pass of Loop N but the first, the tile re-read now
                // was written one full Loop-N pass (t2) ago.
                if (pattern == ComputationPattern::OD && i0 > 0) {
                    partial_reload_out += tile_out;
                    // One full Loop-N pass ago, plus the one scan
                    // stall inserted between the two passes.
                    observe_read(DataType::Output, t_start,
                                 phi[kOutput] > 0.0
                                     ? t_start - t2 - stall
                                     : t_start);
                    emit(TraceEventKind::PartialReload, t_start,
                         DataType::Output, tiles.output, tile_id);
                }

                // Inputs stream buffer -> core every tile.
                core_load_in += tile_in;
                observe_read(DataType::Input, t_end,
                             phi[kInput] > 0.0 ? input_write : t_start);
                emit(TraceEventKind::CoreLoad, t_start,
                     DataType::Input, tiles.input, tile_id);

                if (pattern != ComputationPattern::OD) {
                    // Loop N innermost: weights re-read per tile.
                    core_load_w += tile_w;
                    observe_read(DataType::Weight, t_end,
                                 phi[kWeight] > 0.0 ? weight_write
                                                    : t_start);
                    emit(TraceEventKind::CoreLoad, t_start,
                         DataType::Weight, tiles.weight, tile_id);
                }
                emit(TraceEventKind::TileCompute, t_end,
                     DataType::Input, timing.macs, tile_id);

                switch (pattern) {
                  case ComputationPattern::ID:
                  case ComputationPattern::WD:
                    // Outputs complete after the innermost N loop.
                    if (i2 + 1 == trip2) {
                        core_store_out += tile_out;
                        natural_out_writes += tile_out;
                        controller_.onWrite(DataType::Output, t_end);
                        emit(TraceEventKind::CoreStore, t_end,
                             DataType::Output, tiles.output, tile_id);
                    }
                    break;
                  case ComputationPattern::OD:
                    // Partial sums store on every pass of Loop N.
                    core_store_out += tile_out;
                    controller_.onWrite(DataType::Output, t_end);
                    emit(TraceEventKind::CoreStore, t_end,
                         DataType::Output, tiles.output, tile_id);
                    if (i0 + 1 == trip0)
                        natural_out_writes += tile_out;
                    break;
                }
            }
        }
    }

    const double layer_end =
        layer_start + static_cast<double>(trip0) * stall +
        static_cast<double>(tile_index) * t_tile;
    controller_.advanceTo(layer_end);
    now_ = layer_end;
    emit(TraceEventKind::LayerEnd, layer_end, DataType::Input, 0,
         tile_index);
    sim_metrics.layers.add();
    sim_metrics.tiles.add(tile_index);

    // Assemble DRAM traffic from the event tallies: resident
    // fractions stream their complement on every reuse scan.
    const double natural_w_reads =
        static_cast<double>(layer.weightWords());
    const double streamed_out_writes = core_store_out;

    std::array<double, numDataTypes> dram_reads = {0.0, 0.0, 0.0};
    std::array<double, numDataTypes> dram_writes = {0.0, 0.0, 0.0};
    dram_reads[kInput] =
        natural_in_reads +
        (1.0 - phi[kInput]) * (core_load_in - natural_in_reads);
    dram_reads[kWeight] =
        natural_w_reads +
        (1.0 - phi[kWeight]) * (core_load_w - natural_w_reads);
    dram_reads[kOutput] = (1.0 - phi[kOutput]) * partial_reload_out;
    dram_writes[kOutput] =
        natural_out_writes +
        (1.0 - phi[kOutput]) * (streamed_out_writes -
                                natural_out_writes);

    LayerSimResult result;
    result.layerSeconds = layer_end - layer_start;
    result.utilization =
        static_cast<double>(layer.macs()) /
        (result.layerSeconds * config_.peakMacsPerSecond());
    result.refreshOps = controller_.refreshOps() - refresh_before;
    result.violations = controller_.violations() - violations_before;
    result.guardTrips =
        guard_ != nullptr ? guard_->stats().trips - guard_trips_before
                          : 0;
    result.observedLifetime = max_age;

    double buffer_words = core_load_in + core_load_w + core_store_out +
                          partial_reload_out;
    double dram_words = 0.0;
    for (std::size_t i = 0; i < numDataTypes; ++i)
        dram_words += dram_reads[i] + dram_writes[i];
    buffer_words += dram_words; // Fills and drains stage via buffer.

    result.counts.macOps = layer.macs();
    result.counts.bufferAccesses =
        static_cast<std::uint64_t>(std::llround(buffer_words));
    result.counts.ddrAccesses =
        static_cast<std::uint64_t>(std::llround(dram_words));
    result.counts.refreshOps = result.refreshOps;
    return result;
}

Result<LayerSimResult>
LoopNestSimulator::runLayerSystolic(const ConvLayerSpec &layer,
                                    const LayerAnalysis &analysis)
{
    const DataflowSpec &spec = analysis.spec();
    const Tiling &t = analysis.tiling;
    const TileSizes tiles = tileSizes(layer, t);
    const TripCounts trips = tripCounts(layer, t);
    const SystolicTiming timing =
        dataflowTileTiming(config_, layer, t, spec);
    const std::uint64_t trip0 = tripOf(trips, spec.order[0]);
    const std::uint64_t trip1 = tripOf(trips, spec.order[1]);
    const std::uint64_t trip2 = tripOf(trips, spec.order[2]);

    const double layer_start = now_;
    // Timing faults stretch tiles and stall outer scans exactly like
    // the legacy walk; the preload is a register-file transfer and
    // stays unstretched.
    const double t_tile = faults_.tileSeconds(timing.tile.seconds);
    const double stall = faults_.scanStallSeconds;
    const double preload_s = timing.preloadSeconds;
    const double t1 = static_cast<double>(trip2) * t_tile + preload_s;
    const double t2 = static_cast<double>(trip1) * t1;

    const LayerRefreshDemand demand = refreshDemand(config_, analysis);
    const auto flags = refreshFlagsForLayer(demand, interval_);
    const bool gate_on = flags[0] || flags[1] || flags[2];
    const std::uint64_t refresh_before = controller_.refreshOps();
    const std::uint64_t violations_before = controller_.violations();
    const std::uint64_t guard_trips_before =
        guard_ != nullptr ? guard_->stats().trips : 0;
    controller_.beginLayer(demand.allocation, flags, gate_on,
                           layer_start);
    if (trace_ != nullptr)
        trace_->onLayerBegin(layer.name);
    emit(TraceEventKind::LayerBegin, layer_start, DataType::Input, 0,
         0);
    const std::uint64_t banks_in_use =
        config_.buffer.numBanks - demand.allocation.unusedBanks;
    emit(TraceEventKind::BankOccupancy, layer_start, DataType::Input,
         banks_in_use, 0);
    SimMetrics &sim_metrics = SimMetrics::get();
    sim_metrics.banksInUse.set(static_cast<double>(banks_in_use));
    sim_metrics.banksInUsePeak.setMax(
        static_cast<double>(banks_in_use));

    const std::array<double, numDataTypes> phi = {
        analysis.types[kInput].residentFraction,
        analysis.types[kOutput].residentFraction,
        analysis.types[kWeight].residentFraction,
    };
    const int p_in = spec.reuseOf(DataType::Input);
    const int p_out = spec.reuseOf(DataType::Output);
    const int p_w = spec.reuseOf(DataType::Weight);
    const DataType array_tile = spec.arrayTile();

    double input_write = layer_start;
    double weight_write = layer_start;
    controller_.onWrite(DataType::Input, layer_start);
    controller_.onWrite(DataType::Weight, layer_start);
    controller_.onWrite(DataType::Output, layer_start);

    double core_load_in = 0.0;
    double core_load_w = 0.0;
    double core_store_out = 0.0;
    double partial_reload_out = 0.0;
    // Whole-resident operands (reuse level 0) stage once up front.
    double natural_in_reads =
        p_in == 0 ? static_cast<double>(
                        analysis.types[kInput].naturalStorageWords)
                  : 0.0;
    double natural_w_reads =
        p_w == 0 ? static_cast<double>(
                       analysis.types[kWeight].naturalStorageWords)
                 : 0.0;
    double natural_out_writes = 0.0;
    std::array<double, numDataTypes> max_age = {0.0, 0.0, 0.0};

    const auto tile_in = static_cast<double>(tiles.input);
    const auto tile_out = static_cast<double>(tiles.output);
    const auto tile_w = static_cast<double>(tiles.weight);

    auto observe_read = [&](DataType type, double now,
                            double write_time) {
        controller_.onRead(type, now, write_time);
        max_age[static_cast<std::size_t>(type)] =
            std::max(max_age[static_cast<std::size_t>(type)],
                     now - write_time);
    };

    std::uint64_t tile_index = 0;
    for (std::uint64_t i0 = 0; i0 < trip0; ++i0) {
        const double scan_start =
            layer_start + static_cast<double>(i0) * t2 +
            static_cast<double>(i0 + 1) * stall;
        // Slab operands (reuse level 1) stage at the outer boundary.
        if (p_in == 1) {
            input_write = scan_start;
            controller_.onWrite(DataType::Input, scan_start);
            natural_in_reads += static_cast<double>(
                analysis.types[kInput].naturalStorageWords);
        }
        if (p_w == 1) {
            weight_write = scan_start;
            controller_.onWrite(DataType::Weight, scan_start);
            natural_w_reads += static_cast<double>(
                analysis.types[kWeight].naturalStorageWords);
        }
        for (std::uint64_t i1 = 0; i1 < trip1; ++i1) {
            const double pass_start =
                scan_start + static_cast<double>(i1) * t1;
            // The array-stationary tile preloads at the pass start;
            // its DRAM fetch was double-buffered one pass ahead.
            if (array_tile == DataType::Input) {
                input_write = std::max(layer_start, pass_start - t1);
                controller_.onWrite(DataType::Input, pass_start);
                core_load_in += tile_in;
                natural_in_reads += tile_in;
                observe_read(DataType::Input, pass_start,
                             phi[kInput] > 0.0 ? input_write
                                               : pass_start);
                emit(TraceEventKind::CoreLoad, pass_start,
                     DataType::Input, tiles.input, tile_index);
            } else {
                weight_write = std::max(layer_start, pass_start - t1);
                controller_.onWrite(DataType::Weight, pass_start);
                core_load_w += tile_w;
                natural_w_reads += tile_w;
                observe_read(DataType::Weight, pass_start,
                             phi[kWeight] > 0.0 ? weight_write
                                                : pass_start);
                emit(TraceEventKind::CoreLoad, pass_start,
                     DataType::Weight, tiles.weight, tile_index);
            }
            for (std::uint64_t i2 = 0; i2 < trip2; ++i2) {
                const std::uint64_t tile_id = tile_index;
                const double t_start =
                    pass_start + preload_s +
                    static_cast<double>(i2) * t_tile;
                const double t_end = t_start + t_tile;
                ++tile_index;

                // Partial sums reload on every revisit: one visit
                // pitch ago (T1 across the 2nd-level loop, T2 plus
                // the scan stall across the outermost loop).
                if (p_out == 1 && i1 > 0) {
                    partial_reload_out += tile_out;
                    observe_read(DataType::Output, t_start,
                                 phi[kOutput] > 0.0 ? t_start - t1
                                                    : t_start);
                    emit(TraceEventKind::PartialReload, t_start,
                         DataType::Output, tiles.output, tile_id);
                } else if (p_out == 0 && i0 > 0) {
                    partial_reload_out += tile_out;
                    observe_read(DataType::Output, t_start,
                                 phi[kOutput] > 0.0
                                     ? t_start - t2 - stall
                                     : t_start);
                    emit(TraceEventKind::PartialReload, t_start,
                         DataType::Output, tiles.output, tile_id);
                }

                // Moving operands stream buffer -> array every tile.
                if (array_tile != DataType::Input) {
                    core_load_in += tile_in;
                    observe_read(DataType::Input, t_end,
                                 phi[kInput] > 0.0 ? input_write
                                                   : t_start);
                    emit(TraceEventKind::CoreLoad, t_start,
                         DataType::Input, tiles.input, tile_id);
                }
                if (array_tile != DataType::Weight) {
                    core_load_w += tile_w;
                    observe_read(DataType::Weight, t_end,
                                 phi[kWeight] > 0.0 ? weight_write
                                                    : t_start);
                    emit(TraceEventKind::CoreLoad, t_start,
                         DataType::Weight, tiles.weight, tile_id);
                }
                emit(TraceEventKind::TileCompute, t_end,
                     DataType::Input, timing.tile.macs, tile_id);

                if (p_out == 2) {
                    // Outputs complete inside the core after the
                    // innermost reduction.
                    if (i2 + 1 == trip2) {
                        core_store_out += tile_out;
                        natural_out_writes += tile_out;
                        controller_.onWrite(DataType::Output, t_end);
                        emit(TraceEventKind::CoreStore, t_end,
                             DataType::Output, tiles.output, tile_id);
                    }
                } else {
                    // Partial sums drain from the array every tile.
                    core_store_out += tile_out;
                    controller_.onWrite(DataType::Output, t_end);
                    emit(TraceEventKind::CoreStore, t_end,
                         DataType::Output, tiles.output, tile_id);
                    const bool last_visit = p_out == 1
                                                ? i1 + 1 == trip1
                                                : i0 + 1 == trip0;
                    if (last_visit)
                        natural_out_writes += tile_out;
                }
            }
        }
    }

    const double layer_end =
        layer_start + static_cast<double>(trip0) * stall +
        static_cast<double>(tile_index) * t_tile +
        static_cast<double>(trip0 * trip1) * preload_s;
    controller_.advanceTo(layer_end);
    now_ = layer_end;
    emit(TraceEventKind::LayerEnd, layer_end, DataType::Input, 0,
         tile_index);
    sim_metrics.layers.add();
    sim_metrics.tiles.add(tile_index);

    std::array<double, numDataTypes> dram_reads = {0.0, 0.0, 0.0};
    std::array<double, numDataTypes> dram_writes = {0.0, 0.0, 0.0};
    dram_reads[kInput] =
        natural_in_reads +
        (1.0 - phi[kInput]) * (core_load_in - natural_in_reads);
    dram_reads[kWeight] =
        natural_w_reads +
        (1.0 - phi[kWeight]) * (core_load_w - natural_w_reads);
    dram_reads[kOutput] = (1.0 - phi[kOutput]) * partial_reload_out;
    dram_writes[kOutput] =
        natural_out_writes +
        (1.0 - phi[kOutput]) * (core_store_out - natural_out_writes);

    LayerSimResult result;
    result.layerSeconds = layer_end - layer_start;
    result.utilization =
        static_cast<double>(layer.macs()) /
        (result.layerSeconds * config_.peakMacsPerSecond());
    result.refreshOps = controller_.refreshOps() - refresh_before;
    result.violations = controller_.violations() - violations_before;
    result.guardTrips =
        guard_ != nullptr ? guard_->stats().trips - guard_trips_before
                          : 0;
    result.observedLifetime = max_age;
    result.stallSeconds =
        static_cast<double>(tile_index) *
            (timing.skewCycles / config_.frequencyHz) +
        static_cast<double>(trip0 * trip1) * timing.preloadSeconds;

    double buffer_words = core_load_in + core_load_w + core_store_out +
                          partial_reload_out;
    double dram_words = 0.0;
    for (std::size_t i = 0; i < numDataTypes; ++i)
        dram_words += dram_reads[i] + dram_writes[i];
    buffer_words += dram_words; // Fills and drains stage via buffer.

    result.counts.macOps = layer.macs();
    result.counts.bufferAccesses =
        static_cast<std::uint64_t>(std::llround(buffer_words));
    result.counts.ddrAccesses =
        static_cast<std::uint64_t>(std::llround(dram_words));
    result.counts.refreshOps = result.refreshOps;
    return result;
}

} // namespace rana
