/**
 * @file
 * Implementation of pattern and tiling helpers.
 */

#include "sim/pattern.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace rana {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

const char *
patternName(ComputationPattern pattern)
{
    switch (pattern) {
      case ComputationPattern::ID:
        return "ID";
      case ComputationPattern::OD:
        return "OD";
      case ComputationPattern::WD:
        return "WD";
    }
    panic("unreachable computation pattern");
}

std::array<LoopAxis, 3>
loopOrder(ComputationPattern pattern)
{
    switch (pattern) {
      case ComputationPattern::ID:
        return {LoopAxis::M, LoopAxis::RC, LoopAxis::N};
      case ComputationPattern::OD:
        return {LoopAxis::N, LoopAxis::M, LoopAxis::RC};
      case ComputationPattern::WD:
        return {LoopAxis::RC, LoopAxis::M, LoopAxis::N};
    }
    panic("unreachable computation pattern");
}

std::string
Tiling::describe() const
{
    std::ostringstream oss;
    oss << "<" << tm << "," << tn << "," << tr << "," << tc << ">";
    return oss.str();
}

Tiling
clampTiling(const Tiling &tiling, const ConvLayerSpec &layer)
{
    Tiling clamped;
    clamped.tm = std::min(tiling.tm, layer.m);
    clamped.tn = std::min(tiling.tn, layer.n);
    clamped.tr = std::min(tiling.tr, layer.r());
    clamped.tc = std::min(tiling.tc, layer.c());
    clamped.tm = std::max<std::uint32_t>(clamped.tm, 1);
    clamped.tn = std::max<std::uint32_t>(clamped.tn, 1);
    clamped.tr = std::max<std::uint32_t>(clamped.tr, 1);
    clamped.tc = std::max<std::uint32_t>(clamped.tc, 1);
    return clamped;
}

TripCounts
tripCounts(const ConvLayerSpec &layer, const Tiling &tiling)
{
    TripCounts trips;
    trips.nm = ceilDiv(layer.m, tiling.tm);
    trips.nn = ceilDiv(layer.n, tiling.tn);
    trips.nr = ceilDiv(layer.r(), tiling.tr);
    trips.nc = ceilDiv(layer.c(), tiling.tc);
    return trips;
}

std::uint64_t
tripOf(const TripCounts &trips, LoopAxis axis)
{
    switch (axis) {
      case LoopAxis::M:
        return trips.nm;
      case LoopAxis::RC:
        return trips.nrc();
      case LoopAxis::N:
        return trips.nn;
    }
    panic("unreachable loop axis");
}

TileSizes
tileSizes(const ConvLayerSpec &layer, const Tiling &tiling)
{
    TileSizes sizes;
    const std::uint64_t th = layer.inputPatchH(tiling.tr);
    const std::uint64_t tl = layer.inputPatchW(tiling.tc);
    sizes.input = static_cast<std::uint64_t>(tiling.tn) * th * tl;
    sizes.output =
        static_cast<std::uint64_t>(tiling.tm) * tiling.tr * tiling.tc;
    sizes.weight = static_cast<std::uint64_t>(tiling.tm) * tiling.tn *
                   layer.k * layer.k;
    return sizes;
}

} // namespace rana
