/**
 * @file
 * Closed-form buffer-storage / lifetime / memory-traffic analysis of
 * a CONV layer under a computation pattern and tiling (Sections
 * III-B and IV-C).
 *
 * For the pattern's loop order (L3 outer, L2, L1 inner around the
 * core tile), the model derives for each data type:
 *
 *  - the natural buffer storage requirement (the paper's Equations
 *    1-3 for ID, 6-8 for OD, 11-13 for WD);
 *  - the data lifetime in the buffers (Equations 4-5, 9-10): the
 *    execution time of the loop level at which the type is reused;
 *  - off-chip (DDR) traffic and on-chip buffer traffic. A data
 *    type's tile is re-fetched into the core once per iteration of
 *    the innermost loop it depends on (inputs depend on Loops N and
 *    RC, weights on M and N, outputs on M and RC), which is why OD
 *    re-reads each weight tile only once per (n, m) iteration while
 *    WD re-reads it every output tile.
 *
 * When the natural storage requirements exceed the buffer capacity,
 * residency degrades: the overflowing type keeps a resident fraction
 * phi of its natural set pinned in the buffer and streams the rest
 * from off-chip on every reuse scan, linearly interpolating between
 * the fully-resident and fully-streamed traffic. OD's outputs spill
 * partial sums (read + write per Loop N pass), which is exactly the
 * cost the WD pattern avoids on shallow layers (Section IV-C2).
 *
 * Every entry point in this header is a pure function of its
 * const-ref arguments — no global or thread-local state — so the
 * scheduler's thread pool may evaluate candidates concurrently and
 * re-entrantly.
 */

#ifndef RANA_SIM_PATTERN_ANALYTICS_HH_
#define RANA_SIM_PATTERN_ANALYTICS_HH_

#include <array>
#include <cstdint>
#include <string>

#include "edram/buffer_system.hh"
#include "edram/refresh_controller.hh"
#include "energy/energy_table.hh"
#include "nn/conv_layer_spec.hh"
#include "sim/accelerator_config.hh"
#include "sim/dataflow.hh"
#include "sim/pattern.hh"

namespace rana {

/** Per-data-type results of the layer analysis. */
struct TypeAnalysis
{
    /** Natural buffer storage requirement (paper equations), words. */
    std::uint64_t naturalStorageWords = 0;
    /** Allocated buffer storage after the residency solve, words. */
    std::uint64_t storageWords = 0;
    /** Resident fraction phi of the natural set (1 = no spill). */
    double residentFraction = 1.0;
    /** Buffer data lifetime in seconds. */
    double lifetimeSeconds = 0.0;
    /** Off-chip words read for this type. */
    double dramReadWords = 0.0;
    /** Off-chip words written for this type. */
    double dramWriteWords = 0.0;
    /** Buffer-to-core words loaded. */
    double coreLoadWords = 0.0;
    /** Core-to-buffer words stored. */
    double coreStoreWords = 0.0;
};

/** Stall/utilization/bandwidth statistics of a systolic dataflow. */
struct SystolicStats
{
    /** Total stall time (skew + preload) within the layer, seconds. */
    double stallSeconds = 0.0;
    /** Skew stall cycles added to every tile. */
    double skewCyclesPerTile = 0.0;
    /** Stationary-tile preload cycles per 1st-level pass. */
    double preloadCyclesPerPass = 0.0;
    /** Stall-free utilization: what the dense schedule would reach. */
    double denseUtilization = 0.0;
    /** Average off-chip bandwidth per data type, words/second. */
    std::array<double, numDataTypes> dramBandwidth = {0.0, 0.0, 0.0};
};

/** Full analysis of one layer under one dataflow and tiling. */
struct LayerAnalysis
{
    /** The analyzed dataflow. */
    DataflowKind dataflow = DataflowKind::ID;
    /**
     * Compatibility view of the dataflow: the equivalent computation
     * pattern. Only meaningful when the dataflow is legacy; systolic
     * analyses keep the default. Use `dataflow` for dispatch.
     */
    ComputationPattern pattern = ComputationPattern::ID;
    Tiling tiling;

    /** Whether the configuration fits the hardware at all. */
    bool feasible = false;
    /** Reason when infeasible. */
    std::string infeasibleReason;

    /** Layer execution time in seconds. */
    double layerSeconds = 0.0;
    /** Achieved PE utilization. */
    double utilization = 0.0;
    /** Execution time of one pass of loop level 1/2/3 (T1,T2,T3). */
    std::array<double, 3> levelSeconds = {0.0, 0.0, 0.0};

    /** Per-type results, indexed by DataType. */
    std::array<TypeAnalysis, numDataTypes> types;

    /** Access to a type's results. */
    const TypeAnalysis &of(DataType type) const;
    TypeAnalysis &of(DataType type);

    /** Total off-chip traffic in words (reads + writes). */
    double totalDramWords() const;
    /** Total on-chip buffer traffic in words (reads + writes). */
    double totalBufferWords() const;
    /** Whether any type had to spill (phi < 1). */
    bool spilled() const;

    /**
     * Whether the inputs were promoted to full residency (WD only):
     * the whole input set is pinned in spare buffer capacity so the
     * per-RC-tile halo re-reads come from on-chip instead of DRAM,
     * at the cost of a whole-layer input lifetime.
     */
    bool inputsPromoted = false;

    /** Systolic stall/bandwidth statistics (zeros for legacy). */
    SystolicStats systolic;

    /** The dataflow's immutable specification. */
    const DataflowSpec &spec() const { return dataflowSpec(dataflow); }

    /** Lifetimes as an array for refresh-demand assembly. */
    std::array<double, numDataTypes> lifetimes() const;
};

/**
 * Analyze a layer under a dataflow and tiling on the given hardware.
 *
 * Legacy dataflows (ID/OD/WD) evaluate the paper's closed forms
 * unchanged — a canonical spec is byte-identical to the historical
 * pattern enum path. Systolic dataflows evaluate the generic
 * loop-order model (storage/lifetime/traffic derived from each
 * type's reuse level) with the skew and preload stalls of
 * dataflowTileTiming() and fill LayerAnalysis::systolic.
 *
 * The result is marked infeasible when the tile exceeds the core's
 * local storage (Tn*Th*Tl <= Ri, Tm*Tr*Tc <= Ro, Tm*Tn*K^2 <= Rw) or
 * the minimum streamed working set exceeds the buffer.
 *
 * @param promote_inputs WD only: pin the whole input set in spare
 *        buffer capacity (see LayerAnalysis::inputsPromoted). The
 *        variant is infeasible when the promoted set does not fit.
 *        ID and OD inputs already stream from DRAM exactly once, so
 *        promotion is meaningful only for WD; requesting it for
 *        other dataflows is ignored.
 */
LayerAnalysis analyzeLayer(const AcceleratorConfig &config,
                           const ConvLayerSpec &layer,
                           const DataflowSpec &spec,
                           const Tiling &tiling,
                           bool promote_inputs = false);

/**
 * Compatibility shim: analyze under a bare computation pattern.
 * Forwards to the canonical DataflowSpec of the pattern; kept so
 * pre-dataflow call sites (and the paper's vocabulary) keep
 * compiling without duplicating the enum-to-spec switch.
 */
LayerAnalysis analyzeLayer(const AcceleratorConfig &config,
                           const ConvLayerSpec &layer,
                           ComputationPattern pattern,
                           const Tiling &tiling,
                           bool promote_inputs = false);

/**
 * Bank allocation for an analyzed layer (bank-granular); the
 * residency solve guarantees it fits.
 */
BankAllocation analysisBankAllocation(const AcceleratorConfig &config,
                                      const LayerAnalysis &analysis);

/** Refresh demand record for the analyzed layer. */
LayerRefreshDemand refreshDemand(const AcceleratorConfig &config,
                                 const LayerAnalysis &analysis);

/**
 * Assemble Equation-14 operation counts for the analyzed layer,
 * including refresh operations under the given policy and interval.
 *
 * Buffer accesses count: core loads and stores, OD partial-sum
 * reloads, buffer fills from DRAM and drains to DRAM.
 */
OperationCounts layerOperationCounts(const AcceleratorConfig &config,
                                     const ConvLayerSpec &layer,
                                     const LayerAnalysis &analysis,
                                     RefreshPolicy policy,
                                     double refresh_interval_seconds);

} // namespace rana

#endif // RANA_SIM_PATTERN_ANALYTICS_HH_
