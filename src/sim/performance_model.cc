/**
 * @file
 * Implementation of the performance model extension.
 */

#include "sim/performance_model.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

double
PerformanceReport::slowdown() const
{
    return computeSeconds > 0.0 ? boundedSeconds / computeSeconds
                                : 1.0;
}

PerformanceReport
evaluatePerformance(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer,
                    const LayerAnalysis &analysis,
                    RefreshPolicy policy, double interval_seconds,
                    const PerformanceParams &params)
{
    (void)layer; // Shapes already folded into the analysis.
    RANA_ASSERT(analysis.feasible,
                "performance of an infeasible analysis");
    RANA_ASSERT(params.dramBandwidthBytesPerSecond > 0.0,
                "bandwidth must be positive");

    PerformanceReport report;
    report.computeSeconds = analysis.layerSeconds;
    report.memorySeconds =
        analysis.totalDramWords() * bytesPerWord /
        params.dramBandwidthBytesPerSecond;

    const std::uint64_t refresh_ops = refreshOpsForLayer(
        policy, config.buffer, refreshDemand(config, analysis),
        interval_seconds);
    const double rows = static_cast<double>(refresh_ops) /
                        static_cast<double>(params.wordsPerRow);
    report.refreshBusySeconds =
        rows * params.refreshCyclesPerRow / config.frequencyHz;

    // Banks refresh in parallel with computation when the buffer is
    // otherwise idle; the conservative bound charges the full busy
    // time on top of the binding resource.
    report.boundedSeconds =
        std::max(report.computeSeconds, report.memorySeconds) +
        report.refreshBusySeconds /
            std::max<double>(1.0, config.buffer.numBanks);
    return report;
}

PerformanceReport &
operator+=(PerformanceReport &lhs, const PerformanceReport &rhs)
{
    lhs.computeSeconds += rhs.computeSeconds;
    lhs.memorySeconds += rhs.memorySeconds;
    lhs.refreshBusySeconds += rhs.refreshBusySeconds;
    lhs.boundedSeconds += rhs.boundedSeconds;
    return lhs;
}

} // namespace rana
