/**
 * @file
 * Implementation of the trace sinks.
 */

#include "sim/trace_export.hh"

#include <ostream>

#include "util/logging.hh"

namespace rana {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::LayerBegin:
        return "layer_begin";
      case TraceEventKind::TileCompute:
        return "tile_compute";
      case TraceEventKind::CoreLoad:
        return "core_load";
      case TraceEventKind::CoreStore:
        return "core_store";
      case TraceEventKind::PartialReload:
        return "partial_reload";
      case TraceEventKind::LayerEnd:
        return "layer_end";
      case TraceEventKind::RefreshPulse:
        return "refresh_pulse";
      case TraceEventKind::BankOccupancy:
        return "bank_occupancy";
      case TraceEventKind::Count:
        break;
    }
    panic("unreachable trace event kind");
}

CsvTraceWriter::CsvTraceWriter(std::ostream &os) : os_(os)
{
    os_ << "layer,kind,seconds,type,words,tile\n";
}

void
CsvTraceWriter::onLayerBegin(const std::string &name)
{
    currentLayer_ = name;
}

void
CsvTraceWriter::onEvent(const TraceEvent &event)
{
    os_ << currentLayer_ << "," << traceEventKindName(event.kind)
        << "," << event.seconds << "," << dataTypeName(event.type)
        << "," << event.words << "," << event.tileIndex << "\n";
    ++rows_;
}

void
CountingTraceSink::onLayerBegin(const std::string &)
{
    ++layers_;
}

void
CountingTraceSink::onEvent(const TraceEvent &event)
{
    const auto index = static_cast<std::size_t>(event.kind);
    RANA_ASSERT(index < numTraceEventKinds,
                "trace kind out of range");
    ++counts_[index];
    words_[index] += event.words;
}

std::uint64_t
CountingTraceSink::count(TraceEventKind kind) const
{
    return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t
CountingTraceSink::wordsOf(TraceEventKind kind) const
{
    return words_[static_cast<std::size_t>(kind)];
}

} // namespace rana
