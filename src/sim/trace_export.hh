/**
 * @file
 * Memory-access trace export from the loop-nest simulator.
 *
 * The paper's evaluation platform performs "memory access tracing"
 * on the RTL simulation; this module provides the equivalent for
 * the trace simulator: an observer interface receiving every tile
 * compute / buffer transfer event with its timestamp, and a CSV
 * writer for offline analysis (lifetime histograms, traffic
 * waterfalls, refresh-window visualization).
 */

#ifndef RANA_SIM_TRACE_EXPORT_HH_
#define RANA_SIM_TRACE_EXPORT_HH_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "edram/buffer_system.hh"

namespace rana {

/** Kind of a traced event. */
enum class TraceEventKind {
    /** A layer's configuration was loaded. */
    LayerBegin,
    /** One inner tile finished computing. */
    TileCompute,
    /** A tile moved buffer -> core. */
    CoreLoad,
    /** A tile moved core -> buffer. */
    CoreStore,
    /** An OD partial-sum tile was reloaded for accumulation. */
    PartialReload,
    /** A layer completed. */
    LayerEnd,
    /** The refresh controller issued a refresh pulse. */
    RefreshPulse,
    /** Bank-occupancy sample (words = banks currently allocated). */
    BankOccupancy,
    /** Sentinel: number of kinds. Keep last; never emitted. */
    Count,
};

/** Number of real TraceEventKind values (excludes the sentinel). */
constexpr std::size_t numTraceEventKinds =
    static_cast<std::size_t>(TraceEventKind::Count);

/** Name string for a TraceEventKind. */
const char *traceEventKindName(TraceEventKind kind);

/** One traced event. */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::TileCompute;
    /** Simulated time in seconds. */
    double seconds = 0.0;
    /** Data type involved (meaningful for load/store events). */
    DataType type = DataType::Input;
    /** Words moved (or computed MACs for TileCompute). */
    std::uint64_t words = 0;
    /** Linear tile index within the layer. */
    std::uint64_t tileIndex = 0;
};

/** Observer interface for simulator events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** A new layer starts; `name` is the layer's name. */
    virtual void onLayerBegin(const std::string &name) = 0;

    /** One event within the current layer. */
    virtual void onEvent(const TraceEvent &event) = 0;
};

/**
 * Writes events as CSV rows:
 * `layer,kind,seconds,type,words,tile`.
 */
class CsvTraceWriter : public TraceSink
{
  public:
    /** @param os destination stream (kept by reference). */
    explicit CsvTraceWriter(std::ostream &os);

    void onLayerBegin(const std::string &name) override;
    void onEvent(const TraceEvent &event) override;

    /** Number of event rows written. */
    std::uint64_t rowsWritten() const { return rows_; }

  private:
    std::ostream &os_;
    std::string currentLayer_;
    std::uint64_t rows_ = 0;
};

/**
 * Counts events per kind without storing them (cheap aggregate
 * sink for tests and sanity checks).
 */
class CountingTraceSink : public TraceSink
{
  public:
    void onLayerBegin(const std::string &name) override;
    void onEvent(const TraceEvent &event) override;

    std::uint64_t layers() const { return layers_; }
    std::uint64_t count(TraceEventKind kind) const;
    std::uint64_t wordsOf(TraceEventKind kind) const;

  private:
    std::uint64_t layers_ = 0;
    std::uint64_t counts_[numTraceEventKinds] = {};
    std::uint64_t words_[numTraceEventKinds] = {};
};

} // namespace rana

#endif // RANA_SIM_TRACE_EXPORT_HH_
