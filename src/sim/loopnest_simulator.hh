/**
 * @file
 * Trace-driven loop-nest simulator of the accelerator's memory
 * control part.
 *
 * The simulator walks the three memory-control loops of the chosen
 * dataflow tile by tile, advancing a cycle-derived clock, tallying
 * core/buffer/DRAM traffic from individual events, staging data with
 * the dataflow's natural residency, and driving the event-driven
 * eDRAM refresh controller (which counts refresh operations and
 * detects retention violations: reads of data that aged past the
 * tolerable retention time without a refresh). Systolic dataflows
 * additionally serialize the array-skew stall into every tile and
 * the stationary-tile preload into every 1st-level pass.
 *
 * It is the operational counterpart of the closed-form
 * PatternAnalytics model: the test suite asserts that both agree on
 * runtime, traffic, lifetimes and refresh counts across randomized
 * layers, tilings and dataflows, and that correctly scheduled
 * designs never read stale data.
 */

#ifndef RANA_SIM_LOOPNEST_SIMULATOR_HH_
#define RANA_SIM_LOOPNEST_SIMULATOR_HH_

#include <array>
#include <cstdint>

#include "edram/refresh_controller.hh"
#include "edram/reliability_guard.hh"
#include "energy/energy_table.hh"
#include "nn/conv_layer_spec.hh"
#include "sim/accelerator_config.hh"
#include "sim/pattern_analytics.hh"
#include "sim/performance_model.hh"
#include "sim/trace_export.hh"
#include "util/result.hh"

namespace rana {

/** Results of simulating one layer. */
struct LayerSimResult
{
    /** Equation-14 operation counts (including refresh ops). */
    OperationCounts counts;
    /** Layer execution time in seconds. */
    double layerSeconds = 0.0;
    /** Achieved PE utilization. */
    double utilization = 0.0;
    /** Refresh operations issued during this layer. */
    std::uint64_t refreshOps = 0;
    /** Retention violations observed during this layer. */
    std::uint64_t violations = 0;
    /** Reliability-guard trips during this layer (guarded runs). */
    std::uint64_t guardTrips = 0;
    /**
     * Largest observed read age per data type (the measured data
     * lifetime), in seconds.
     */
    std::array<double, numDataTypes> observedLifetime = {0.0, 0.0, 0.0};
    /**
     * Time lost to systolic skew and preload stalls (0 for the
     * legacy patterns).
     */
    double stallSeconds = 0.0;
};

/**
 * Simulates a sequence of layers against one refresh controller.
 */
class LoopNestSimulator
{
  public:
    /**
     * @param config           accelerator hardware
     * @param policy           refresh policy of the buffer controller
     * @param interval_seconds programmed refresh interval (the
     *                         tolerable retention time)
     */
    LoopNestSimulator(const AcceleratorConfig &config,
                      RefreshPolicy policy, double interval_seconds);

    /**
     * Simulate one layer under a previously computed analysis (which
     * fixes the pattern, tiling and buffer residency). Fails with
     * InvalidArgument when the analysis is infeasible instead of
     * aborting the process.
     */
    Result<LayerSimResult>
    runLayerChecked(const ConvLayerSpec &layer,
                    const LayerAnalysis &analysis);

    /**
     * Abort-on-failure wrapper around runLayerChecked() for callers
     * that validated the analysis themselves.
     */
    LayerSimResult runLayer(const ConvLayerSpec &layer,
                            const LayerAnalysis &analysis);

    /** Total refresh ops across all layers simulated so far. */
    std::uint64_t totalRefreshOps() const;

    /** Total retention violations across all layers so far. */
    std::uint64_t totalViolations() const;

    /** Current simulated time in seconds. */
    double now() const { return now_; }

    /**
     * Attach a trace sink receiving every event of subsequent
     * layers (nullptr detaches). The sink is not owned.
     */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    /**
     * Inject timing perturbations into subsequent layers. The
     * defaults are exact no-ops, so a default-constructed
     * TimingFaults reproduces the unperturbed timing bit for bit.
     */
    void setTimingFaults(const TimingFaults &faults)
    {
        faults_ = faults;
    }

    /**
     * Attach a reliability guard to the refresh controller (nullptr
     * detaches; not owned). Guarded runs convert retention overages
     * into per-bank refresh fallbacks instead of violations.
     */
    void attachGuard(ReliabilityGuard *guard)
    {
        guard_ = guard;
        controller_.attachGuard(guard);
    }

  private:
    /** Emit one event to the attached sink, if any. */
    void emit(TraceEventKind kind, double seconds, DataType type,
              std::uint64_t words, std::uint64_t tile_index);

    /** The generic skewed walk for systolic dataflows. */
    Result<LayerSimResult>
    runLayerSystolic(const ConvLayerSpec &layer,
                     const LayerAnalysis &analysis);

    AcceleratorConfig config_;
    RefreshPolicy policy_;
    double interval_;
    RefreshControllerSim controller_;
    double now_ = 0.0;
    TraceSink *trace_ = nullptr;
    TimingFaults faults_;
    ReliabilityGuard *guard_ = nullptr;
};

} // namespace rana

#endif // RANA_SIM_LOOPNEST_SIMULATOR_HH_
