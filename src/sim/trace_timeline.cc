/**
 * @file
 * Implementation of the simulated-time Chrome-trace adapter.
 */

#include "sim/trace_timeline.hh"

namespace rana {

namespace {

/** Simulated seconds to trace microseconds. */
double
toMicros(double seconds)
{
    return seconds * 1e6;
}

} // namespace

ServingTimeline::ServingTimeline(TraceRecorder &recorder)
    : recorder_(recorder)
{
}

void
ServingTimeline::addTenantTrack(std::uint32_t tenant,
                                const std::string &name)
{
    recorder_.setThreadName(TraceRecorder::kSimPid,
                            kTenantTidBase + static_cast<int>(tenant),
                            "tenant/" + name);
    recorder_.setThreadName(
        TraceRecorder::kSimPid,
        kRequestTidBase + static_cast<int>(tenant),
        "tenant/" + name + "/requests");
}

void
ServingTimeline::batchSpan(std::uint32_t tenant, double startSeconds,
                           double endSeconds, const std::string &name)
{
    recorder_.completeEvent(
        TraceRecorder::kSimPid,
        kTenantTidBase + static_cast<int>(tenant),
        toMicros(startSeconds), toMicros(endSeconds - startSeconds),
        "serving", name);
}

void
ServingTimeline::requestSpan(std::uint32_t tenant,
                             std::uint64_t span,
                             double startSeconds, double endSeconds)
{
    recorder_.completeEvent(
        TraceRecorder::kSimPid,
        kRequestTidBase + static_cast<int>(tenant),
        toMicros(startSeconds), toMicros(endSeconds - startSeconds),
        "serving", "request span=" + std::to_string(span));
}

void
ServingTimeline::instant(std::uint32_t tenant, double seconds,
                         const std::string &name)
{
    recorder_.instantEvent(TraceRecorder::kSimPid,
                           kTenantTidBase + static_cast<int>(tenant),
                           toMicros(seconds), "serving", name);
}

void
ServingTimeline::queueDepth(double seconds, double depth)
{
    recorder_.counterEvent(TraceRecorder::kSimPid,
                           "serving_queue_depth", toMicros(seconds),
                           "requests", depth);
}

TimelineTraceSink::TimelineTraceSink(TraceRecorder &recorder,
                                     std::uint64_t sampleStride)
    : recorder_(recorder),
      sampleStride_(sampleStride > 0 ? sampleStride : 1)
{
}

std::string
TimelineTraceSink::trackName(const char *base) const
{
    if (run_ == 0)
        return base;
    return std::string(base) + "/run" + std::to_string(run_);
}

void
TimelineTraceSink::beginRun()
{
    tilesCompleted_ = 0;
    bufferWords_ = 0;
    refreshWords_ = 0;
    recorder_.setThreadName(TraceRecorder::kSimPid,
                            static_cast<int>(run_),
                            "sim run " + std::to_string(run_));
    runOpened_ = true;
}

void
TimelineTraceSink::sampleCounters(double seconds)
{
    const double ts = toMicros(seconds);
    recorder_.counterEvent(TraceRecorder::kSimPid,
                           trackName("tiles_completed"), ts, "tiles",
                           static_cast<double>(tilesCompleted_));
    recorder_.counterEvent(TraceRecorder::kSimPid,
                           trackName("buffer_words"), ts, "words",
                           static_cast<double>(bufferWords_));
    recorder_.counterEvent(TraceRecorder::kSimPid,
                           trackName("refresh_words"), ts, "words",
                           static_cast<double>(refreshWords_));
}

void
TimelineTraceSink::onLayerBegin(const std::string &name)
{
    pendingLayer_ = name;
}

void
TimelineTraceSink::onEvent(const TraceEvent &event)
{
    ++eventsSeen_;
    if (!runOpened_)
        beginRun();
    switch (event.kind) {
      case TraceEventKind::LayerBegin:
        // A layer starting earlier than the previous one means the
        // producer restarted simulated time (the sweep runs many
        // simulations through one sink): open a fresh set of tracks.
        if (event.seconds + 1e-12 < lastLayerStart_) {
            ++run_;
            beginRun();
        }
        lastLayerStart_ = event.seconds;
        layerStart_ = event.seconds;
        currentLayer_ = pendingLayer_;
        sampleCounters(event.seconds);
        break;
      case TraceEventKind::LayerEnd:
        recorder_.completeEvent(
            TraceRecorder::kSimPid, static_cast<int>(run_),
            toMicros(layerStart_),
            toMicros(event.seconds - layerStart_), "layer",
            currentLayer_.empty() ? "layer" : currentLayer_);
        sampleCounters(event.seconds);
        break;
      case TraceEventKind::TileCompute:
        ++tilesCompleted_;
        if (eventsSeen_ % sampleStride_ == 0)
            sampleCounters(event.seconds);
        break;
      case TraceEventKind::CoreLoad:
      case TraceEventKind::CoreStore:
      case TraceEventKind::PartialReload:
        bufferWords_ += event.words;
        if (eventsSeen_ % sampleStride_ == 0)
            sampleCounters(event.seconds);
        break;
      case TraceEventKind::RefreshPulse:
        refreshWords_ += event.words;
        recorder_.counterEvent(
            TraceRecorder::kSimPid, trackName("refresh_words"),
            toMicros(event.seconds), "words",
            static_cast<double>(refreshWords_));
        break;
      case TraceEventKind::BankOccupancy:
        recorder_.counterEvent(
            TraceRecorder::kSimPid, trackName("banks_in_use"),
            toMicros(event.seconds), "banks",
            static_cast<double>(event.words));
        break;
      case TraceEventKind::Count:
        break;
    }
}

} // namespace rana
