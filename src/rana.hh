/**
 * @file
 * Umbrella header for the RANA library: configure hardware, schedule
 * a network, simulate the schedule and report the results with one
 * include, instead of reaching into five subdirectory headers.
 *
 *   #include "rana.hh"
 *
 *   auto options = rana::SchedulerOptionsBuilder()
 *                      .policy(rana::RefreshPolicy::PerBank)
 *                      .refreshInterval(734e-6)
 *                      .jobs(0) // one lane per hardware thread
 *                      .build();
 *   auto schedule = rana::scheduleNetwork(
 *       rana::testAcceleratorEdram(), rana::makeVgg16(), options);
 *   if (!schedule.ok())
 *       handle(schedule.error());
 *
 * The facade only aggregates; every declaration still lives in its
 * subsystem header, which remains the include of choice inside the
 * library itself.
 */

#ifndef RANA_RANA_HH_
#define RANA_RANA_HH_

// Hardware configuration.
#include "edram/refresh_controller.hh"
#include "edram/retention_distribution.hh"
#include "sim/accelerator_config.hh"

// Networks.
#include "nn/model_zoo.hh"
#include "nn/network_model.hh"

// Scheduling.
#include "sched/config_io.hh"
#include "sched/eval_cache.hh"
#include "sched/layer_scheduler.hh"
#include "sched/schedule_types.hh"
#include "sched/tiling_search.hh"

// Simulation and the full pipeline.
#include "core/design_point.hh"
#include "core/experiments.hh"
#include "core/rana_pipeline.hh"
#include "sim/dataflow.hh"
#include "sim/loopnest_simulator.hh"
#include "sim/performance_model.hh"

// Robustness: fault campaigns, the campaign sweep, retention
// binning and the runtime reliability guard with its policies.
#include "edram/guard_policy.hh"
#include "edram/reliability_guard.hh"
#include "edram/retention_binning.hh"
#include "robust/campaign_sweep.hh"
#include "robust/fault_campaign.hh"

// Multi-tenant serving: admission control, per-tenant bank
// sharding and the virtual-time serving simulation.
#include "edram/bank_sharding.hh"
#include "serving/admission.hh"
#include "serving/serving.hh"

// Reporting, observability and infrastructure.
#include "core/report.hh"
#include "obs/metrics_registry.hh"
#include "util/result.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/units.hh"

namespace rana {

/**
 * Fluent builder for SchedulerOptions, for call sites that configure
 * several fields at once (quickstarts, service endpoints):
 * every setter returns *this, build() yields the finished options.
 */
class SchedulerOptionsBuilder
{
  public:
    /** Dataflows explored per layer (see sim/dataflow.hh). */
    SchedulerOptionsBuilder &dataflows(std::vector<DataflowKind> value)
    {
        options_.dataflows = std::move(value);
        return *this;
    }

    /**
     * Computation patterns explored per layer. Compatibility shim
     * for pre-dataflow call sites: each pattern names its canonical
     * legacy dataflow; superseded by dataflows() when both are set.
     */
    SchedulerOptionsBuilder &
    patterns(std::vector<ComputationPattern> value)
    {
        options_.patterns = std::move(value);
        return *this;
    }

    /** Refresh policy of the target design's controller. */
    SchedulerOptionsBuilder &policy(RefreshPolicy value)
    {
        options_.policy = value;
        return *this;
    }

    /** Programmed refresh interval in seconds. */
    SchedulerOptionsBuilder &refreshInterval(double seconds)
    {
        options_.refreshIntervalSeconds = seconds;
        return *this;
    }

    /** Fix the tiling instead of exploring the space. */
    SchedulerOptionsBuilder &fixedTiling(const Tiling &value)
    {
        options_.fixedTiling = value;
        return *this;
    }

    /** Worker lanes for the search (0 = hardware width, 1 = serial). */
    SchedulerOptionsBuilder &jobs(unsigned value)
    {
        options_.jobs = value;
        return *this;
    }

    /** Toggle the process-wide evaluation memoization cache. */
    SchedulerOptionsBuilder &memoize(bool value)
    {
        options_.memoize = value;
        return *this;
    }

    /** The assembled options. */
    SchedulerOptions build() const { return options_; }

  private:
    SchedulerOptions options_;
};

} // namespace rana

#endif // RANA_RANA_HH_
