/**
 * @file
 * Implementation of the crash-tolerant sharded sweep engine.
 */

#include "robust/sweep_shard.hh"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <type_traits>

#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>

#include "obs/chrome_trace.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics_registry.hh"
#include "obs/telemetry.hh"
#include "util/json_reader.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"
#include "util/subprocess.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

/** Trace track ids: the coordinator plus one track per worker. */
constexpr int kCoordinatorTrack = 1000;

/** Worker ordinal -> its Chrome-trace thread track. */
int
workerTrack(unsigned ordinal)
{
    return kCoordinatorTrack + 1 + static_cast<int>(ordinal);
}

/**
 * Worker ordinal -> the process ids its exported trace events merge
 * under. Each worker owns a (host, simulated) pid pair well clear of
 * the coordinator's kHostPid/kSimPid, so the merged trace shows one
 * named process group per worker.
 */
int
workerHostPid(unsigned ordinal)
{
    return 100 + 2 * static_cast<int>(ordinal);
}

int
workerSimPid(unsigned ordinal)
{
    return workerHostPid(ordinal) + 1;
}

/** Milliseconds since an arbitrary steady epoch. */
std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// --------------------------------------------------------------------
// Cell-report JSON (the CellResult frame payload and the canonical
// comparison form).
// --------------------------------------------------------------------

void
writeTrial(JsonWriter &json, const TrialResult &trial)
{
    json.beginObject();
    json.field("seed", trial.seed);
    json.field("weightFailureRate", trial.weightFailureRate);
    json.field("activationFailureRate", trial.activationFailureRate);
    json.field("exposedBanks", trial.exposedBanks);
    json.field("exposedWords", trial.exposedWords);
    json.field("accuracy", trial.accuracy);
    json.field("relativeAccuracy", trial.relativeAccuracy);
    json.endObject();
}

void
writeExposure(JsonWriter &json, const LayerExposure &exposure)
{
    json.beginObject();
    json.field("layerName", exposure.layerName);
    json.beginArray("exposureSeconds");
    for (double v : exposure.exposureSeconds)
        json.element(v);
    json.endArray();
    json.beginArray("observedLifetimeSeconds");
    for (double v : exposure.observedLifetimeSeconds)
        json.element(v);
    json.endArray();
    json.beginArray("banks");
    for (std::uint32_t v : exposure.banks)
        json.element(static_cast<std::uint64_t>(v));
    json.endArray();
    json.beginArray("words");
    for (std::uint64_t v : exposure.words)
        json.element(v);
    json.endArray();
    json.beginArray("bankStart");
    for (std::uint32_t v : exposure.bankStart)
        json.element(static_cast<std::uint64_t>(v));
    json.endArray();
    json.endObject();
}

void
writeGuardStats(JsonWriter &json, const ReliabilityGuard::Stats &stats)
{
    json.beginObject("guardStats");
    json.field("trips", stats.trips);
    json.field("banksReenabled", stats.banksReenabled);
    json.field("fallbackRefreshOps", stats.fallbackRefreshOps);
    json.beginArray("tripsByType");
    for (std::uint64_t v : stats.tripsByType)
        json.element(v);
    json.endArray();
    json.field("worstObservedLifetimeSeconds",
               stats.worstObservedLifetimeSeconds);
    json.field("redisarms", stats.redisarms);
    json.field("escalations", stats.escalations);
    json.field("cleanIntervals", stats.cleanIntervals);
    json.field("armedRefreshOps", stats.armedRefreshOps);
    json.endObject();
}

/**
 * The shared body of the frame payload and the canonical form;
 * `timing` includes the wall-clock throughput fields (frame payloads
 * carry them so a merged report is complete; the canonical form
 * drops them because they differ run to run by construction).
 */
void
writeCellReportFields(JsonWriter &json,
                      const FaultCampaignReport &report, bool timing)
{
    json.field("designName", report.designName);
    json.field("networkName", report.networkName);
    json.field("modelName", report.modelName);
    json.field("baselineAccuracy", report.baselineAccuracy);
    json.field("operatingFailureRate", report.operatingFailureRate);
    json.beginArray("trials");
    for (const TrialResult &trial : report.trials)
        writeTrial(json, trial);
    json.endArray();
    json.beginArray("exposures");
    for (const LayerExposure &exposure : report.exposures)
        writeExposure(json, exposure);
    json.endArray();
    json.field("meanAccuracy", report.meanAccuracy);
    json.field("worstAccuracy", report.worstAccuracy);
    json.field("meanRelativeAccuracy", report.meanRelativeAccuracy);
    json.field("worstRelativeAccuracy", report.worstRelativeAccuracy);
    json.field("p5Accuracy", report.p5Accuracy);
    json.field("p50Accuracy", report.p50Accuracy);
    json.field("p95Accuracy", report.p95Accuracy);
    json.field("p5RelativeAccuracy", report.p5RelativeAccuracy);
    json.field("p50RelativeAccuracy", report.p50RelativeAccuracy);
    json.field("p95RelativeAccuracy", report.p95RelativeAccuracy);
    json.field("meanWeightFailureRate", report.meanWeightFailureRate);
    json.field("meanActivationFailureRate",
               report.meanActivationFailureRate);
    json.field("executionSeconds", report.executionSeconds);
    json.field("retentionViolations", report.retentionViolations);
    json.field("refreshOps", report.refreshOps);
    if (timing) {
        json.field("trialSeconds", report.trialSeconds);
        json.field("trialsPerSecond", report.trialsPerSecond);
    }
    json.field("guarded", report.guarded);
    json.field("guardPolicyName", report.guardPolicyName);
    writeGuardStats(json, report.guardStats);
}

// --------------------------------------------------------------------
// Cell-report parsing. Every helper returns an error instead of
// asserting: the payload may be chaos-corrupted or truncated.
// --------------------------------------------------------------------

std::optional<Error>
missing(const char *key)
{
    return makeError(ErrorCode::ParseError,
                     "cell report field missing or mistyped: ", key);
}

std::optional<Error>
getString(const JsonValue &object, const char *key, std::string *out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || !value->isString())
        return missing(key);
    *out = value->asString();
    return std::nullopt;
}

std::optional<Error>
getDouble(const JsonValue &object, const char *key, double *out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || !value->numberOrSentinel(out))
        return missing(key);
    return std::nullopt;
}

std::optional<Error>
getU64(const JsonValue &object, const char *key, std::uint64_t *out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || !value->asUint(out))
        return missing(key);
    return std::nullopt;
}

std::optional<Error>
getBool(const JsonValue &object, const char *key, bool *out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || !value->isBool())
        return missing(key);
    *out = value->asBool();
    return std::nullopt;
}

template <typename T, std::size_t N>
std::optional<Error>
getArray(const JsonValue &object, const char *key,
         std::array<T, N> *out)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || !value->isArray() ||
        value->items().size() != N)
        return missing(key);
    for (std::size_t i = 0; i < N; ++i) {
        const JsonValue &item = value->items()[i];
        if constexpr (std::is_floating_point_v<T>) {
            double number = 0.0;
            if (!item.numberOrSentinel(&number))
                return missing(key);
            (*out)[i] = number;
        } else {
            std::uint64_t number = 0;
            if (!item.asUint(&number))
                return missing(key);
            (*out)[i] = static_cast<T>(number);
        }
    }
    return std::nullopt;
}

std::optional<Error>
parseTrial(const JsonValue &object, TrialResult *out)
{
    if (!object.isObject())
        return missing("trials[]");
    if (auto bad = getU64(object, "seed", &out->seed))
        return bad;
    if (auto bad = getDouble(object, "weightFailureRate",
                             &out->weightFailureRate))
        return bad;
    if (auto bad = getDouble(object, "activationFailureRate",
                             &out->activationFailureRate))
        return bad;
    if (auto bad = getU64(object, "exposedBanks", &out->exposedBanks))
        return bad;
    if (auto bad = getU64(object, "exposedWords", &out->exposedWords))
        return bad;
    if (auto bad = getDouble(object, "accuracy", &out->accuracy))
        return bad;
    if (auto bad = getDouble(object, "relativeAccuracy",
                             &out->relativeAccuracy))
        return bad;
    return std::nullopt;
}

std::optional<Error>
parseExposure(const JsonValue &object, LayerExposure *out)
{
    if (!object.isObject())
        return missing("exposures[]");
    if (auto bad = getString(object, "layerName", &out->layerName))
        return bad;
    if (auto bad =
            getArray(object, "exposureSeconds", &out->exposureSeconds))
        return bad;
    if (auto bad = getArray(object, "observedLifetimeSeconds",
                            &out->observedLifetimeSeconds))
        return bad;
    if (auto bad = getArray(object, "banks", &out->banks))
        return bad;
    if (auto bad = getArray(object, "words", &out->words))
        return bad;
    if (auto bad = getArray(object, "bankStart", &out->bankStart))
        return bad;
    return std::nullopt;
}

std::optional<Error>
parseGuardStats(const JsonValue &parent, ReliabilityGuard::Stats *out)
{
    const JsonValue *object = parent.find("guardStats");
    if (object == nullptr || !object->isObject())
        return missing("guardStats");
    if (auto bad = getU64(*object, "trips", &out->trips))
        return bad;
    if (auto bad =
            getU64(*object, "banksReenabled", &out->banksReenabled))
        return bad;
    if (auto bad = getU64(*object, "fallbackRefreshOps",
                          &out->fallbackRefreshOps))
        return bad;
    if (auto bad = getArray(*object, "tripsByType", &out->tripsByType))
        return bad;
    if (auto bad = getDouble(*object, "worstObservedLifetimeSeconds",
                             &out->worstObservedLifetimeSeconds))
        return bad;
    if (auto bad = getU64(*object, "redisarms", &out->redisarms))
        return bad;
    if (auto bad = getU64(*object, "escalations", &out->escalations))
        return bad;
    if (auto bad =
            getU64(*object, "cleanIntervals", &out->cleanIntervals))
        return bad;
    if (auto bad =
            getU64(*object, "armedRefreshOps", &out->armedRefreshOps))
        return bad;
    return std::nullopt;
}

// --------------------------------------------------------------------
// The worker body (runs in the forked child).
// --------------------------------------------------------------------

/** The child never returns to main; exit codes are diagnostics. */
constexpr int kWorkerExitOk = 0;
constexpr int kWorkerExitPipe = 10;
constexpr int kWorkerExitChaosKill = 11;

/**
 * Flip payload bytes of an encoded frame *after* its checksum was
 * computed, so the coordinator's checksum verification is the path
 * that catches the corruption.
 */
void
corruptEncodedFrame(std::string &bytes)
{
    const std::size_t header = frameHeaderSize();
    const std::size_t limit =
        std::min(bytes.size(), header + std::size_t{8});
    for (std::size_t i = header; i < limit; ++i)
        bytes[i] = static_cast<char>(bytes[i] ^ 0x5A);
}

int
workerBody(const PreparedSweep &plan, const ShardChaosConfig &chaos,
           unsigned ordinal, bool chaosArmed, int requestFd,
           int responseFd)
{
    // The forked child inherits the parent's registry contents,
    // trace buffer and flight ring copy-on-write. Reset/baseline
    // them so every telemetry export carries only this incarnation's
    // own activity, never a copy of the coordinator's.
    MetricsRegistry &registry = MetricsRegistry::global();
    TraceRecorder &recorder = TraceRecorder::global();
    FlightRecorder &flight = FlightRecorder::global();
    registry.reset();
    flight.reset();
    std::size_t traceBase = recorder.eventCount();
    std::uint64_t telemetrySeq = 0;

    MetricsRegistry::Counter &cellsDone =
        registry.counter("worker_cells_completed_total");
    MetricsRegistry::Counter &cleanExits =
        registry.counter("worker_clean_exits_total");

    // One telemetry frame: cumulative metrics, the full flight ring
    // (so the last frame before an abrupt death still carries it)
    // and the trace events recorded since the previous export.
    const auto sendTelemetry = [&](bool finalFrame) {
        WorkerTelemetry telemetry;
        telemetry.worker = ordinal;
        telemetry.seq = telemetrySeq;
        telemetry.finalFrame = finalFrame;
        telemetry.metrics = registry.snapshot();
        telemetry.flight = flight.snapshot();
        telemetry.trace = recorder.eventsFrom(traceBase);
        Frame frame;
        frame.type = FrameType::Telemetry;
        frame.cell = ordinal;
        frame.attempt = static_cast<std::uint32_t>(telemetrySeq);
        frame.payload = serializeWorkerTelemetry(telemetry);
        if (!writeFrameBlocking(responseFd, frame))
            return false;
        traceBase += telemetry.trace.size();
        ++telemetrySeq;
        return true;
    };

    Frame hello;
    hello.type = FrameType::Hello;
    hello.cell = ordinal;
    if (!writeFrameBlocking(responseFd, hello))
        return kWorkerExitPipe;
    flight.record("hello", ordinal);
    if (!sendTelemetry(false))
        return kWorkerExitPipe;

    std::uint32_t assignments = 0;
    Frame request;
    while (readFrameBlocking(requestFd, request, nullptr)) {
        if (request.type == FrameType::Shutdown) {
            // The clean-exit counter crosses the pipe only inside
            // the final frame: its presence in the merged snapshot
            // is the direct proof the coordinator drained the frame
            // before reaping.
            flight.record("shutdown", ordinal);
            cleanExits.add();
            sendTelemetry(true);
            return kWorkerExitOk;
        }
        if (request.type != FrameType::Assign)
            continue;
        ++assignments;
        flight.record("assign", request.cell, request.attempt);

        Frame heartbeat;
        heartbeat.type = FrameType::Heartbeat;
        heartbeat.cell = request.cell;
        heartbeat.attempt = request.attempt;
        if (!writeFrameBlocking(responseFd, heartbeat))
            return kWorkerExitPipe;

        // Chaos: die abruptly on the (killAfterCells+1)-th
        // assignment of the victim's first incarnation — after the
        // heartbeat, so the coordinator sees a started cell vanish.
        if (chaosArmed && chaos.killWorker >= 0 &&
            ordinal == static_cast<unsigned>(chaos.killWorker) &&
            assignments > chaos.killAfterCells) {
            flight.record("chaos-kill", request.cell,
                          request.attempt);
            return kWorkerExitChaosKill;
        }

        // Chaos: hang the designated cell's first attempt until the
        // coordinator's deadline kills this worker. Retries carry
        // attempt >= 1 and proceed normally.
        if (chaos.stallCell >= 0 &&
            request.cell ==
                static_cast<std::uint32_t>(chaos.stallCell) &&
            request.attempt == 0) {
            flight.record("chaos-stall", request.cell,
                          request.attempt);
            for (;;)
                ::poll(nullptr, 0, 1000);
        }

        // jobs_override=1: the forked child must never touch the
        // inherited thread pool (its worker threads do not exist
        // after fork); the serial path is bit-identical anyway.
        flight.record("run", request.cell, request.attempt);
        Result<FaultCampaignReport> cell =
            plan.runCell(request.cell, /*jobs_override=*/1);

        Frame reply;
        reply.cell = request.cell;
        reply.attempt = request.attempt;
        if (cell.ok()) {
            reply.type = FrameType::CellResult;
            reply.payload = serializeCellReport(cell.value());
            cellsDone.add();
            flight.record("result", request.cell, request.attempt);
        } else {
            reply.type = FrameType::CellError;
            reply.payload = cell.error().describe();
            flight.record("error", request.cell, request.attempt);
        }
        std::string bytes = encodeFrame(reply);
        if (chaos.corruptCell >= 0 &&
            request.cell ==
                static_cast<std::uint32_t>(chaos.corruptCell) &&
            request.attempt == 0) {
            flight.record("chaos-corrupt", request.cell,
                          request.attempt);
            corruptEncodedFrame(bytes);
        }
        if (!writeAllBlocking(responseFd, bytes))
            return kWorkerExitPipe;
        if (!sendTelemetry(false))
            return kWorkerExitPipe;
    }
    // EOF on the request pipe: the coordinator is gone.
    return kWorkerExitOk;
}

// --------------------------------------------------------------------
// The coordinator.
// --------------------------------------------------------------------

/** One pending (cell, attempt) with its backoff eligibility time. */
struct PendingCell
{
    std::uint32_t cell = 0;
    std::uint32_t attempt = 0;
    std::int64_t eligibleAtMs = 0;
};

/** Coordinator-side state of one worker slot. */
struct WorkerSlot
{
    WorkerProcess process;
    FrameDecoder decoder;
    unsigned ordinal = 0;
    bool alive = false;
    bool idle = true;
    std::uint32_t cell = 0;
    std::uint32_t attempt = 0;
    std::int64_t deadlineMs = 0;
    std::int64_t assignedAtMs = 0;
    /** Last telemetry export from this incarnation (if any). */
    WorkerTelemetry lastTelemetry;
    bool haveTelemetry = false;
    /** Telemetry frames received from this incarnation. */
    std::uint64_t telemetryFrames = 0;
};

/** The whole sharded execution of one prepared plan. */
class ShardCoordinator
{
  public:
    ShardCoordinator(const PreparedSweep &plan,
                     const SweepShardConfig &config)
        : plan_(plan), config_(config),
          registry_(MetricsRegistry::global()),
          recorder_(TraceRecorder::global()),
          flight_(FlightRecorder::global())
    {
    }

    Result<std::vector<FaultCampaignReport>>
    run(SweepShardStats *stats)
    {
        const std::size_t cells = plan_.cellCount();
        unsigned workers =
            config_.workers > 0 ? config_.workers : hardwareJobs();
        workers = static_cast<unsigned>(std::min<std::size_t>(
            std::max(1u, workers), cells));

        results_.resize(cells);
        stored_.assign(cells, false);
        remaining_ = cells;
        stats_ = SweepShardStats{};
        stats_.workers = workers;
        stats_.cellsPerWorker.assign(workers, 0);
        fairShare_ = (cells + workers - 1) / workers;
        for (std::size_t cell = 0; cell < cells; ++cell) {
            pending_.push_back(
                {static_cast<std::uint32_t>(cell), 0, nowMs()});
        }

        recorder_.setThreadName(TraceRecorder::kHostPid,
                                kCoordinatorTrack,
                                "shard coordinator");
        workerNamed_.assign(workers, false);
        slots_.resize(workers);
        for (unsigned w = 0; w < workers; ++w) {
            slots_[w].ordinal = w;
            recorder_.setThreadName(
                TraceRecorder::kHostPid, workerTrack(w),
                detail::concat("shard worker ", w));
            spawnSlot(slots_[w], /*firstIncarnation=*/true);
        }

        while (remaining_ > 0) {
            respawnDead();
            if (aliveCount() == 0) {
                // No worker could be (re)started: drain everything
                // still pending in-process so no cell is ever lost.
                drainPendingInProcess();
                continue;
            }
            assignIdle();
            waitAndDrain();
            expireDeadlines();
        }
        shutdownWorkers();
        finalizeWorkerMerge();

        stats_.cells = cells;
        exportMetrics();
        *stats = stats_;

        std::vector<FaultCampaignReport> merged;
        merged.reserve(cells);
        for (std::size_t cell = 0; cell < cells; ++cell) {
            RANA_ASSERT(stored_[cell],
                        "sharded sweep lost cell ", cell);
            merged.push_back(std::move(results_[cell]));
        }
        return merged;
    }

  private:
    unsigned aliveCount() const
    {
        unsigned count = 0;
        for (const WorkerSlot &slot : slots_)
            count += slot.alive ? 1 : 0;
        return count;
    }

    void spawnSlot(WorkerSlot &slot, bool firstIncarnation)
    {
        const PreparedSweep &plan = plan_;
        const ShardChaosConfig chaos = config_.chaos;
        const unsigned ordinal = slot.ordinal;
        Result<WorkerProcess> spawned = WorkerProcess::spawn(
            [&plan, chaos, ordinal,
             firstIncarnation](int requestFd, int responseFd) {
                return workerBody(plan, chaos, ordinal,
                                  firstIncarnation, requestFd,
                                  responseFd);
            });
        if (!spawned.ok()) {
            warn("shard worker ", ordinal,
                 " failed to spawn: ", spawned.error().describe());
            slot.alive = false;
            return;
        }
        slot.process = std::move(spawned).value();
        slot.decoder = FrameDecoder();
        slot.alive = true;
        slot.idle = true;
        slot.lastTelemetry = WorkerTelemetry{};
        slot.haveTelemetry = false;
        slot.telemetryFrames = 0;
    }

    void respawnDead()
    {
        // A dead slot is refilled only while there is queued work it
        // could pick up; tail cells still running elsewhere do not
        // justify a fork.
        for (WorkerSlot &slot : slots_) {
            if (slot.alive || pending_.empty())
                continue;
            spawnSlot(slot, /*firstIncarnation=*/false);
            if (slot.alive) {
                ++stats_.respawns;
                markInstant(workerTrack(slot.ordinal), "respawn");
            }
        }
    }

    /** The eligible pending entry with the lowest cell index. */
    std::optional<std::size_t> nextEligible(std::int64_t now) const
    {
        std::optional<std::size_t> best;
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].eligibleAtMs > now)
                continue;
            if (!best || pending_[i].cell < pending_[*best].cell)
                best = i;
        }
        return best;
    }

    void assignIdle()
    {
        const std::int64_t now = nowMs();
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive || !slot.idle)
                continue;
            std::optional<std::size_t> next = nextEligible(now);
            if (!next)
                break;
            const PendingCell entry = pending_[*next];
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(*next));
            Frame assign;
            assign.type = FrameType::Assign;
            assign.cell = entry.cell;
            assign.attempt = entry.attempt;
            if (!slot.process.writeFrame(assign)) {
                // The worker died between polls; requeue and let the
                // crash path below reap it.
                pending_.push_back(entry);
                declareCrashed(slot, "write-failure");
                continue;
            }
            flight_.record("assign", entry.cell, entry.attempt);
            slot.idle = false;
            slot.cell = entry.cell;
            slot.attempt = entry.attempt;
            slot.assignedAtMs = now;
            slot.deadlineMs =
                now + static_cast<std::int64_t>(config_.cellTimeoutMs);
        }
    }

    void waitAndDrain()
    {
        const std::int64_t now = nowMs();
        std::int64_t timeout = 100;
        for (const WorkerSlot &slot : slots_) {
            if (slot.alive && !slot.idle)
                timeout = std::min(timeout, slot.deadlineMs - now);
        }
        for (const PendingCell &entry : pending_)
            timeout = std::min(timeout, entry.eligibleAtMs - now);
        timeout = std::max<std::int64_t>(1, timeout);

        std::vector<int> fds;
        fds.reserve(slots_.size());
        for (const WorkerSlot &slot : slots_)
            fds.push_back(slot.alive ? slot.process.readFd() : -1);
        std::vector<bool> readable;
        pollReadable(fds, static_cast<int>(timeout), readable);

        for (std::size_t i = 0; i < slots_.size(); ++i) {
            WorkerSlot &slot = slots_[i];
            if (!slot.alive || !readable[i])
                continue;
            const bool open =
                drainInto(slot.process.readFd(), slot.decoder);
            // Frames already buffered are handled even when the
            // stream just hit EOF: a result that raced the crash
            // still counts.
            while (std::optional<FrameDecoder::Decoded> decoded =
                       slot.decoder.next()) {
                handleFrame(slot, *decoded);
                if (!slot.alive)
                    break;
            }
            if (slot.alive &&
                (!open || slot.decoder.desynchronized())) {
                declareCrashed(slot, slot.decoder.desynchronized()
                                         ? "desync"
                                         : "crash");
            }
        }
    }

    void handleFrame(WorkerSlot &slot,
                     const FrameDecoder::Decoded &decoded)
    {
        const Frame &frame = decoded.frame;
        switch (frame.type) {
          case FrameType::Hello:
            return;
          case FrameType::Heartbeat:
            // The worker started the cell; restart the deadline so
            // slow assignment delivery is not charged to compute.
            if (!slot.idle && frame.cell == slot.cell &&
                frame.attempt == slot.attempt) {
                slot.deadlineMs =
                    nowMs() +
                    static_cast<std::int64_t>(config_.cellTimeoutMs);
            }
            return;
          case FrameType::CellResult: {
            if (slot.idle || frame.cell != slot.cell ||
                frame.attempt != slot.attempt) {
                // Stale frame from a superseded attempt. Counted so
                // the cross-process accounting invariant closes:
                // worker-reported completions = stored + corrupt +
                // stale - degraded.
                ++stats_.staleResults;
                registry_.counter("shard_stale_results_total").add();
                return;
            }
            if (!decoded.checksumOk) {
                ++stats_.corruptFrames;
                registry_.counter("shard_corrupt_frames_total").add();
                markInstant(workerTrack(slot.ordinal),
                            "corrupt frame");
                slot.idle = true;
                requeueFailure(slot.cell, slot.attempt);
                return;
            }
            Result<FaultCampaignReport> report =
                parseCellReport(frame.payload);
            if (!report.ok()) {
                ++stats_.corruptFrames;
                registry_.counter("shard_corrupt_frames_total").add();
                markInstant(workerTrack(slot.ordinal),
                            "unparsable frame");
                slot.idle = true;
                requeueFailure(slot.cell, slot.attempt);
                return;
            }
            storeResult(slot.cell, std::move(report).value());
            ++stats_.cellsPerWorker[slot.ordinal];
            if (stats_.cellsPerWorker[slot.ordinal] > fairShare_) {
                ++stats_.stolenCells;
                registry_.counter("shard_stolen_cells_total").add();
            }
            const std::int64_t now = nowMs();
            recorder_.completeEvent(
                TraceRecorder::kHostPid, workerTrack(slot.ordinal),
                recorder_.nowMicros() -
                    1000.0 *
                        static_cast<double>(now - slot.assignedAtMs),
                1000.0 * static_cast<double>(now - slot.assignedAtMs),
                "shard", detail::concat("cell ", slot.cell));
            slot.idle = true;
            return;
          }
          case FrameType::CellError: {
            if (slot.idle || frame.cell != slot.cell ||
                frame.attempt != slot.attempt)
                return;
            warn("shard worker ", slot.ordinal, " failed cell ",
                 frame.cell, ": ", frame.payload);
            slot.idle = true;
            requeueFailure(slot.cell, slot.attempt);
            return;
          }
          case FrameType::Telemetry:
            acceptTelemetry(slot, decoded);
            return;
          case FrameType::Assign:
          case FrameType::Shutdown:
            return; // coordinator-to-worker kinds; ignore echoes
        }
    }

    /** Merge one worker telemetry export into the coordinator. */
    void acceptTelemetry(WorkerSlot &slot,
                         const FrameDecoder::Decoded &decoded)
    {
        if (!decoded.checksumOk) {
            warn("shard worker ", slot.ordinal,
                 " sent a corrupt telemetry frame; dropped");
            return;
        }
        Result<WorkerTelemetry> parsed =
            parseWorkerTelemetry(decoded.frame.payload);
        if (!parsed.ok()) {
            warn("shard worker ", slot.ordinal,
                 " sent unparsable telemetry: ",
                 parsed.error().describe());
            return;
        }
        WorkerTelemetry telemetry = std::move(parsed).value();
        ++slot.telemetryFrames;
        ++stats_.telemetryFrames;
        registry_.counter("telemetry_frames_total").add();
        flight_.record("telemetry", slot.ordinal,
                       static_cast<std::uint32_t>(telemetry.seq));
        if (recorder_.enabled()) {
            ensureWorkerTracks(slot.ordinal);
            importWorkerTrace(slot.ordinal, telemetry.trace);
            recorder_.counterEvent(
                workerHostPid(slot.ordinal),
                "worker cells completed", recorder_.nowMicros(),
                "cells",
                static_cast<double>(counterValue(
                    telemetry.metrics,
                    "worker_cells_completed_total")));
        }
        slot.lastTelemetry = std::move(telemetry);
        slot.haveTelemetry = true;
    }

    /** Name a worker's merged-trace process group once per run. */
    void ensureWorkerTracks(unsigned ordinal)
    {
        if (workerNamed_[ordinal])
            return;
        workerNamed_[ordinal] = true;
        recorder_.setProcessName(
            workerHostPid(ordinal),
            detail::concat("rana worker ", ordinal));
        recorder_.setProcessName(
            workerSimPid(ordinal),
            detail::concat("rana worker ", ordinal, " sim"));
        recorder_.setThreadName(workerHostPid(ordinal), 0, "main");
    }

    /**
     * Import a worker's exported trace events under its own process
     * ids: host-side events merge under workerHostPid, simulated-
     * timeline events under workerSimPid.
     */
    void
    importWorkerTrace(unsigned ordinal,
                      const std::vector<TraceRecorder::Event> &events)
    {
        std::vector<TraceRecorder::Event> remapped = events;
        for (TraceRecorder::Event &event : remapped) {
            event.pid = event.pid == TraceRecorder::kSimPid
                            ? workerSimPid(ordinal)
                            : workerHostPid(ordinal);
        }
        recorder_.importEvents(remapped);
    }

    void expireDeadlines()
    {
        const std::int64_t now = nowMs();
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive || slot.idle || slot.deadlineMs > now)
                continue;
            ++stats_.timeouts;
            registry_.counter("shard_timeouts_total").add();
            markInstant(workerTrack(slot.ordinal),
                        detail::concat("timeout cell ", slot.cell));
            warn("shard worker ", slot.ordinal, " timed out on cell ",
                 slot.cell, " after ", config_.cellTimeoutMs, " ms");
            declareCrashed(slot, "timeout");
        }
    }

    /** A worker died (EOF, desync, write failure or timeout kill). */
    void declareCrashed(WorkerSlot &slot, const char *reason)
    {
        ++stats_.workerCrashes;
        registry_.counter("shard_worker_crashes_total").add();
        markInstant(workerTrack(slot.ordinal), "crash");
        flight_.record(reason, slot.cell, slot.attempt);
        slot.process.kill();
        int status = 0;
        slot.process.reap(&status, /*block=*/true);
        slot.process.closePipes();
        slot.alive = false;
        writePostmortem(slot, reason, status);
        foldWorkerTelemetry(slot);
        if (!slot.idle) {
            slot.idle = true;
            requeueFailure(slot.cell, slot.attempt);
        }
    }

    /** One postmortem incident dump under config_.postmortemDir. */
    void writePostmortem(const WorkerSlot &slot, const char *reason,
                         int status)
    {
        ++incidents_;
        if (config_.postmortemDir.empty())
            return;
        ::mkdir(config_.postmortemDir.c_str(), 0777);
        PostmortemReport report;
        report.worker = slot.ordinal;
        report.incident = incidents_;
        report.reason = reason;
        report.exited = WIFEXITED(status);
        report.exitCode =
            report.exited ? WEXITSTATUS(status) : 0;
        report.signaled = WIFSIGNALED(status);
        report.termSignal =
            report.signaled ? WTERMSIG(status) : 0;
        report.busy = !slot.idle;
        report.lastCell = slot.cell;
        report.lastAttempt = slot.attempt;
        report.telemetryFrames = slot.telemetryFrames;
        if (slot.haveTelemetry) {
            report.lastMetrics = slot.lastTelemetry.metrics;
            report.flight = slot.lastTelemetry.flight;
        }
        const std::string path = detail::concat(
            config_.postmortemDir, "/postmortem-worker",
            slot.ordinal, "-", incidents_, ".json");
        std::ofstream out(path);
        if (!out) {
            warn("cannot write postmortem dump ", path);
            return;
        }
        out << serializePostmortem(report) << "\n";
        if (!out) {
            warn("failed writing postmortem dump ", path);
            return;
        }
        ++stats_.postmortemDumps;
        registry_.counter("postmortem_dumps_total").add();
        markInstant(workerTrack(slot.ordinal), "postmortem");
    }

    /**
     * Retire a dead (or cleanly shut down) incarnation's last
     * telemetry snapshot into the cross-worker accumulation.
     */
    void foldWorkerTelemetry(WorkerSlot &slot)
    {
        if (!slot.haveTelemetry)
            return;
        workerSnapshots_.push_back(
            std::move(slot.lastTelemetry.metrics));
        slot.lastTelemetry = WorkerTelemetry{};
        slot.haveTelemetry = false;
    }

    /**
     * Publish the merged per-worker instruments into the registry
     * under a "_worker_sum" suffix: counters add across workers,
     * gauges keep the maximum, histograms add bucket-wise.
     */
    void finalizeWorkerMerge()
    {
        const MetricsSnapshot merged =
            mergeSnapshots(workerSnapshots_);
        for (const auto &counter : merged.counters) {
            registry_.counter(counter.name + "_worker_sum")
                .add(counter.value);
        }
        for (const auto &gauge : merged.gauges) {
            registry_.gauge(gauge.name + "_worker_sum")
                .setMax(gauge.value);
        }
        for (const auto &histogram : merged.histograms) {
            if (histogram.bounds.empty())
                continue;
            MetricsRegistry::Histogram &target =
                registry_.histogram(histogram.name + "_worker_sum",
                                    histogram.bounds);
            if (target.bounds() == histogram.bounds)
                target.accumulate(histogram.counts, histogram.sum);
        }
    }

    /**
     * A cell attempt failed: requeue with exponential backoff, or —
     * once its retry budget is spent — run it in-process right here.
     * Either way the cell is never lost.
     */
    void requeueFailure(std::uint32_t cell, std::uint32_t attempt)
    {
        if (attempt >= config_.maxRetries) {
            ++stats_.degradedCells;
            registry_.counter("shard_degraded_cells_total").add();
            markInstant(kCoordinatorTrack,
                        detail::concat("degraded cell ", cell));
            warn("shard cell ", cell, " exhausted ",
                 config_.maxRetries,
                 " retries; degrading to in-process execution");
            runInProcess(cell);
            return;
        }
        ++stats_.retries;
        registry_.counter("shard_retries_total").add();
        flight_.record("requeue", cell, attempt + 1);
        PendingCell entry;
        entry.cell = cell;
        entry.attempt = attempt + 1;
        entry.eligibleAtMs =
            nowMs() + (static_cast<std::int64_t>(config_.backoffBaseMs)
                       << attempt);
        pending_.push_back(entry);
    }

    /** In-process (coordinator) execution of one cell. */
    void runInProcess(std::uint32_t cell)
    {
        Result<FaultCampaignReport> report = plan_.runCell(cell);
        if (!report.ok()) {
            // The cell is deterministic, so an in-process failure is
            // a configuration-level error every attempt shared;
            // surfacing it via panic would lose the merged grid.
            panic("sharded sweep cell ", cell,
                  " failed in-process: ", report.error().describe());
        }
        storeResult(cell, std::move(report).value());
    }

    void storeResult(std::uint32_t cell, FaultCampaignReport report)
    {
        RANA_ASSERT(!stored_[cell],
                    "sharded sweep stored cell twice: ", cell);
        results_[cell] = std::move(report);
        stored_[cell] = true;
        --remaining_;
        registry_.counter("shard_cells_completed_total").add();
        flight_.record("store", cell);
    }

    /** No workers left and none spawnable: finish alone. */
    void drainPendingInProcess()
    {
        warn("sharded sweep has no live workers; running ",
             pending_.size() + remainingAssigned(),
             " remaining cells in-process");
        while (!pending_.empty()) {
            const PendingCell entry = pending_.back();
            pending_.pop_back();
            ++stats_.degradedCells;
            registry_.counter("shard_degraded_cells_total").add();
            runInProcess(entry.cell);
        }
    }

    std::size_t remainingAssigned() const
    {
        std::size_t count = 0;
        for (const WorkerSlot &slot : slots_)
            count += (slot.alive && !slot.idle) ? 1 : 0;
        return count;
    }

    void shutdownWorkers()
    {
        // Broadcast Shutdown first so every worker serializes its
        // final telemetry concurrently rather than one at a time.
        Frame shutdown;
        shutdown.type = FrameType::Shutdown;
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive)
                continue;
            if (!slot.process.writeFrame(shutdown))
                declareCrashed(slot, "write-failure");
        }
        // Then drain each response stream to EOF before reaping:
        // the final telemetry frame (carrying the worker's clean-
        // exit counter and flight ring) is still in the pipe, and
        // closing first would discard it. A worker that neither
        // exits nor keeps the pipe open past the deadline is killed.
        const std::int64_t deadlineMs = nowMs() + 10000;
        for (WorkerSlot &slot : slots_) {
            if (!slot.alive)
                continue;
            bool open = true;
            while (open && nowMs() < deadlineMs) {
                std::vector<int> fds{slot.process.readFd()};
                std::vector<bool> readable;
                pollReadable(fds, 50, readable);
                if (!readable[0])
                    continue;
                open = drainInto(slot.process.readFd(),
                                 slot.decoder);
                while (std::optional<FrameDecoder::Decoded>
                           decoded = slot.decoder.next()) {
                    handleFrame(slot, *decoded);
                }
                if (slot.decoder.desynchronized())
                    break;
            }
            if (open)
                slot.process.kill();
            slot.process.closePipes();
            slot.process.reap(nullptr, /*block=*/true);
            slot.alive = false;
            foldWorkerTelemetry(slot);
        }
    }

    void markInstant(int track, const std::string &name)
    {
        recorder_.instantEvent(TraceRecorder::kHostPid, track,
                               recorder_.nowMicros(), "shard", name);
    }

    void exportMetrics()
    {
        registry_.gauge("shard_workers").set(stats_.workers);
    }

    const PreparedSweep &plan_;
    const SweepShardConfig &config_;
    MetricsRegistry &registry_;
    TraceRecorder &recorder_;
    FlightRecorder &flight_;

    std::vector<WorkerSlot> slots_;
    std::vector<PendingCell> pending_;
    std::vector<FaultCampaignReport> results_;
    std::vector<bool> stored_;
    std::size_t remaining_ = 0;
    std::size_t fairShare_ = 0;
    SweepShardStats stats_;
    /** Retired incarnation snapshots awaiting the final merge. */
    std::vector<MetricsSnapshot> workerSnapshots_;
    /** Whether worker ordinal's trace process group is named yet. */
    std::vector<bool> workerNamed_;
    /** Incident counter (postmortem file numbering). */
    std::uint64_t incidents_ = 0;
};

Result<std::vector<FaultCampaignReport>>
runShardedCells(const PreparedSweep &plan,
                const SweepShardConfig &config, SweepShardStats *stats)
{
    ShardCoordinator coordinator(plan, config);
    return coordinator.run(stats);
}

} // namespace

std::string
SweepShardStats::describe() const
{
    std::ostringstream oss;
    oss << cells << " cells over " << workers << " workers ("
        << stolenCells << " stolen, " << retries << " retries, "
        << timeouts << " timeouts, " << corruptFrames
        << " corrupt frames, " << staleResults << " stale, "
        << workerCrashes << " crashes, " << respawns
        << " respawns, " << degradedCells << " degraded, "
        << telemetryFrames << " telemetry frames, "
        << postmortemDumps << " postmortems)";
    return oss.str();
}

Result<ShardedSweepResult>
runShardedCampaignSweep(const DesignPoint &design,
                        const NetworkModel &network,
                        const CampaignSweepConfig &config,
                        const SweepShardConfig &shard)
{
    ScopedSpan span("shard", "sharded_campaign_sweep");
    Result<PreparedSweep> prepared =
        PreparedSweep::prepareSweep(design, network, config);
    if (!prepared.ok())
        return prepared.error();
    ShardedSweepResult result;
    Result<std::vector<FaultCampaignReport>> cells =
        runShardedCells(prepared.value(), shard, &result.stats);
    if (!cells.ok())
        return cells.error();
    result.report =
        prepared.value().assembleSweep(std::move(cells).value());
    return result;
}

Result<ShardedComparisonResult>
runShardedGuardPolicyComparison(const DesignPoint &design,
                                const NetworkModel &network,
                                const CampaignSweepConfig &config,
                                const SweepShardConfig &shard)
{
    ScopedSpan span("shard", "sharded_guard_policy_comparison");
    Result<PreparedSweep> prepared =
        PreparedSweep::prepareComparison(design, network, config);
    if (!prepared.ok())
        return prepared.error();
    ShardedComparisonResult result;
    Result<std::vector<FaultCampaignReport>> cells =
        runShardedCells(prepared.value(), shard, &result.stats);
    if (!cells.ok())
        return cells.error();
    result.report =
        prepared.value().assembleComparison(std::move(cells).value());
    return result;
}

std::string
serializeCellReport(const FaultCampaignReport &report)
{
    JsonWriter json;
    json.beginObject();
    writeCellReportFields(json, report, /*timing=*/true);
    json.endObject();
    return json.str();
}

Result<FaultCampaignReport>
parseCellReport(const std::string &text)
{
    Result<JsonValue> parsed = JsonValue::parse(text);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &object = parsed.value();
    if (!object.isObject()) {
        return makeError(ErrorCode::ParseError,
                         "cell report is not a JSON object");
    }

    FaultCampaignReport report;
    if (auto bad = getString(object, "designName", &report.designName))
        return *bad;
    if (auto bad =
            getString(object, "networkName", &report.networkName))
        return *bad;
    if (auto bad = getString(object, "modelName", &report.modelName))
        return *bad;
    if (auto bad = getDouble(object, "baselineAccuracy",
                             &report.baselineAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "operatingFailureRate",
                             &report.operatingFailureRate))
        return *bad;

    const JsonValue *trials = object.find("trials");
    if (trials == nullptr || !trials->isArray())
        return *missing("trials");
    report.trials.resize(trials->items().size());
    for (std::size_t i = 0; i < report.trials.size(); ++i) {
        if (auto bad =
                parseTrial(trials->items()[i], &report.trials[i]))
            return *bad;
    }

    const JsonValue *exposures = object.find("exposures");
    if (exposures == nullptr || !exposures->isArray())
        return *missing("exposures");
    report.exposures.resize(exposures->items().size());
    for (std::size_t i = 0; i < report.exposures.size(); ++i) {
        if (auto bad = parseExposure(exposures->items()[i],
                                     &report.exposures[i]))
            return *bad;
    }

    if (auto bad =
            getDouble(object, "meanAccuracy", &report.meanAccuracy))
        return *bad;
    if (auto bad =
            getDouble(object, "worstAccuracy", &report.worstAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "meanRelativeAccuracy",
                             &report.meanRelativeAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "worstRelativeAccuracy",
                             &report.worstRelativeAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "p5Accuracy", &report.p5Accuracy))
        return *bad;
    if (auto bad =
            getDouble(object, "p50Accuracy", &report.p50Accuracy))
        return *bad;
    if (auto bad =
            getDouble(object, "p95Accuracy", &report.p95Accuracy))
        return *bad;
    if (auto bad = getDouble(object, "p5RelativeAccuracy",
                             &report.p5RelativeAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "p50RelativeAccuracy",
                             &report.p50RelativeAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "p95RelativeAccuracy",
                             &report.p95RelativeAccuracy))
        return *bad;
    if (auto bad = getDouble(object, "meanWeightFailureRate",
                             &report.meanWeightFailureRate))
        return *bad;
    if (auto bad = getDouble(object, "meanActivationFailureRate",
                             &report.meanActivationFailureRate))
        return *bad;
    if (auto bad = getDouble(object, "executionSeconds",
                             &report.executionSeconds))
        return *bad;
    if (auto bad = getU64(object, "retentionViolations",
                          &report.retentionViolations))
        return *bad;
    if (auto bad = getU64(object, "refreshOps", &report.refreshOps))
        return *bad;
    if (auto bad =
            getDouble(object, "trialSeconds", &report.trialSeconds))
        return *bad;
    if (auto bad = getDouble(object, "trialsPerSecond",
                             &report.trialsPerSecond))
        return *bad;
    if (auto bad = getBool(object, "guarded", &report.guarded))
        return *bad;
    if (auto bad = getString(object, "guardPolicyName",
                             &report.guardPolicyName))
        return *bad;
    if (auto bad = parseGuardStats(object, &report.guardStats))
        return *bad;
    return report;
}

std::string
canonicalSweepJson(const CampaignSweepReport &report)
{
    JsonWriter json;
    json.beginObject();
    json.field("designName", report.designName);
    json.field("networkName", report.networkName);
    json.field("modelName", report.modelName);
    json.field("baselineAccuracy", report.baselineAccuracy);
    json.beginArray("failureRates");
    for (double rate : report.failureRates)
        json.element(rate);
    json.endArray();
    json.beginArray("refreshIntervals");
    for (double interval : report.refreshIntervals)
        json.element(interval);
    json.endArray();
    json.beginArray("cells");
    for (const SweepCell &cell : report.cells) {
        json.beginObject();
        json.field("failureRate", cell.failureRate);
        json.field("refreshIntervalSeconds",
                   cell.refreshIntervalSeconds);
        json.beginObject("report");
        writeCellReportFields(json, cell.report, /*timing=*/false);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::string
canonicalComparisonJson(const GuardPolicyComparisonReport &report)
{
    JsonWriter json;
    json.beginObject();
    json.field("designName", report.designName);
    json.field("networkName", report.networkName);
    json.field("modelName", report.modelName);
    json.field("baselineAccuracy", report.baselineAccuracy);
    // JsonWriter arrays hold numbers only; the name axis is one
    // joined string (names never contain '|').
    std::string policies;
    for (const std::string &name : report.policyNames) {
        if (!policies.empty())
            policies += "|";
        policies += name;
    }
    json.field("policyNames", policies);
    json.beginArray("failureRates");
    for (double rate : report.failureRates)
        json.element(rate);
    json.endArray();
    json.beginArray("refreshIntervals");
    for (double interval : report.refreshIntervals)
        json.element(interval);
    json.endArray();
    json.beginArray("cells");
    for (const GuardPolicyComparisonCell &cell : report.cells) {
        json.beginObject();
        json.field("policyName", cell.policyName);
        json.field("failureRate", cell.failureRate);
        json.field("refreshIntervalSeconds",
                   cell.refreshIntervalSeconds);
        json.beginObject("report");
        writeCellReportFields(json, cell.report, /*timing=*/false);
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

} // namespace rana
