/**
 * @file
 * Implementation of the campaign sweep engine.
 */

#include "robust/campaign_sweep.hh"

#include <iomanip>
#include <sstream>

#include "core/report.hh"
#include "obs/chrome_trace.hh"
#include "util/logging.hh"

namespace rana {

const SweepCell &
CampaignSweepReport::at(std::size_t rate, std::size_t interval) const
{
    RANA_ASSERT(rate < failureRates.size(),
                "sweep rate index out of range: ", rate);
    RANA_ASSERT(interval < refreshIntervals.size(),
                "sweep interval index out of range: ", interval);
    return cells[rate * refreshIntervals.size() + interval];
}

std::string
CampaignSweepReport::percentileTable() const
{
    std::vector<std::string> cols;
    for (double interval : refreshIntervals) {
        std::ostringstream oss;
        oss << std::scientific << std::setprecision(2) << interval
            << " s";
        cols.push_back(oss.str());
    }
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (std::size_t r = 0; r < failureRates.size(); ++r) {
        std::ostringstream label;
        label << std::scientific << std::setprecision(1)
              << failureRates[r];
        rows.push_back(label.str());
        std::vector<std::string> row;
        for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
            const FaultCampaignReport &report = at(r, i).report;
            std::ostringstream oss;
            oss << std::fixed << std::setprecision(3)
                << report.p50RelativeAccuracy << " ["
                << report.p5RelativeAccuracy << ", "
                << report.p95RelativeAccuracy << "]";
            row.push_back(oss.str());
        }
        cells.push_back(std::move(row));
    }
    return markdownValueGrid("Failure rate", rows, cols, cells);
}

Result<CampaignSweepReport>
runCampaignSweep(const DesignPoint &design, const NetworkModel &network,
                 const CampaignSweepConfig &config)
{
    if (config.failureRates.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "campaign sweep needs at least one failure "
                         "rate");
    }
    if (config.refreshIntervals.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "campaign sweep needs at least one refresh "
                         "interval");
    }
    for (double rate : config.failureRates) {
        if (rate < 0.0 || rate >= 1.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "sweep failure rate outside [0, 1): ",
                             rate);
        }
    }
    for (double interval : config.refreshIntervals) {
        if (interval <= 0.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "sweep refresh interval must be "
                             "positive: ",
                             interval);
        }
    }
    if (config.campaign.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }

    ScopedSpan sweep_span("sweep", "campaign_sweep");
    CampaignSweepReport report;
    report.designName = design.name;
    report.networkName = network.name();
    report.failureRates = config.failureRates;
    report.refreshIntervals = config.refreshIntervals;

    // The trace is simulated once per refresh interval; the rate
    // axis reuses these exposures unchanged.
    std::vector<DesignPoint> points;
    std::vector<CampaignExposures> exposures;
    points.reserve(config.refreshIntervals.size());
    exposures.reserve(config.refreshIntervals.size());
    for (double interval : config.refreshIntervals) {
        DesignPoint point = design;
        point.options.refreshIntervalSeconds = interval;
        Result<CampaignExposures> simulated =
            simulateExposures(point, network, config.campaign);
        if (!simulated.ok())
            return simulated.error();
        points.push_back(std::move(point));
        exposures.push_back(std::move(simulated).value());
    }

    // The stand-in model is pretrained once; each rate retrains from
    // the pretrained snapshot and exports one shared store for all
    // of its intervals' trials.
    RetentionAwareTrainer trainer(config.campaign.model,
                                  config.campaign.dataset,
                                  config.campaign.trainer);
    report.baselineAccuracy = trainer.pretrain();
    report.modelName = miniModelName(config.campaign.model);

    report.cells.reserve(config.failureRates.size() *
                         config.refreshIntervals.size());
    for (double rate : config.failureRates) {
        const CampaignModel model =
            prepareCampaignModel(trainer, config.campaign, rate);
        for (std::size_t i = 0; i < config.refreshIntervals.size();
             ++i) {
            DesignPoint point = points[i];
            point.failureRate = rate;
            // A labelled timeline slice per grid cell; the span-
            // duration histograms stay per phase (simulate /
            // retrain / trials), not per cell.
            std::ostringstream cell_label;
            cell_label << "cell rate=" << std::scientific
                       << std::setprecision(1) << rate
                       << " interval=" << config.refreshIntervals[i]
                       << "s";
            TraceRecorder &recorder = TraceRecorder::global();
            recorder.beginSpan("sweep", cell_label.str());
            Result<FaultCampaignReport> cell_report =
                runPreparedCampaign(point, exposures[i], model,
                                    config.campaign);
            recorder.endSpan("sweep", cell_label.str());
            if (!cell_report.ok())
                return cell_report.error();
            SweepCell cell;
            cell.failureRate = rate;
            cell.refreshIntervalSeconds = config.refreshIntervals[i];
            cell.report = std::move(cell_report).value();
            report.cells.push_back(std::move(cell));
        }
    }
    return report;
}

} // namespace rana
