/**
 * @file
 * Implementation of the campaign sweep engine.
 */

#include "robust/campaign_sweep.hh"

#include <iomanip>
#include <optional>
#include <sstream>

#include "core/report.hh"
#include "obs/chrome_trace.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace rana {

namespace {

/** Shared grid validation of the sweep and the policy comparison. */
std::optional<Error>
validateSweepGrid(const CampaignSweepConfig &config)
{
    if (config.failureRates.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "campaign sweep needs at least one failure "
                         "rate");
    }
    if (config.refreshIntervals.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "campaign sweep needs at least one refresh "
                         "interval");
    }
    for (double rate : config.failureRates) {
        if (rate < 0.0 || rate >= 1.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "sweep failure rate outside [0, 1): ",
                             rate);
        }
    }
    for (double interval : config.refreshIntervals) {
        if (interval <= 0.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "sweep refresh interval must be "
                             "positive: ",
                             interval);
        }
    }
    if (config.campaign.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }
    return std::nullopt;
}

} // namespace

const SweepCell &
CampaignSweepReport::at(std::size_t rate, std::size_t interval) const
{
    RANA_ASSERT(rate < failureRates.size(),
                "sweep rate index out of range: ", rate);
    RANA_ASSERT(interval < refreshIntervals.size(),
                "sweep interval index out of range: ", interval);
    return cells[rate * refreshIntervals.size() + interval];
}

std::string
CampaignSweepReport::percentileTable() const
{
    std::vector<std::string> cols;
    for (double interval : refreshIntervals) {
        std::ostringstream oss;
        oss << std::scientific << std::setprecision(2) << interval
            << " s";
        cols.push_back(oss.str());
    }
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (std::size_t r = 0; r < failureRates.size(); ++r) {
        std::ostringstream label;
        label << std::scientific << std::setprecision(1)
              << failureRates[r];
        rows.push_back(label.str());
        std::vector<std::string> row;
        for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
            const FaultCampaignReport &report = at(r, i).report;
            std::ostringstream oss;
            oss << std::fixed << std::setprecision(3)
                << report.p50RelativeAccuracy << " ["
                << report.p5RelativeAccuracy << ", "
                << report.p95RelativeAccuracy << "]";
            row.push_back(oss.str());
        }
        cells.push_back(std::move(row));
    }
    return markdownValueGrid("Failure rate", rows, cols, cells);
}

Result<PreparedSweep>
PreparedSweep::prepareSweep(const DesignPoint &design,
                            const NetworkModel &network,
                            const CampaignSweepConfig &config)
{
    if (std::optional<Error> invalid = validateSweepGrid(config))
        return *invalid;

    PreparedSweep plan;
    plan.comparison_ = false;
    plan.design_ = design;
    plan.networkName_ = network.name();
    plan.failureRates_ = config.failureRates;
    plan.refreshIntervals_ = config.refreshIntervals;
    plan.campaigns_ = {config.campaign};

    // The trace is simulated once per refresh interval; the rate
    // axis reuses these exposures unchanged.
    std::vector<CampaignExposures> per_interval;
    per_interval.reserve(config.refreshIntervals.size());
    for (double interval : config.refreshIntervals) {
        DesignPoint point = design;
        point.options.refreshIntervalSeconds = interval;
        Result<CampaignExposures> simulated =
            simulateExposures(point, network, config.campaign);
        if (!simulated.ok())
            return simulated.error();
        per_interval.push_back(std::move(simulated).value());
    }
    plan.exposures_.push_back(std::move(per_interval));
    plan.prepareModels(config);
    return plan;
}

Result<PreparedSweep>
PreparedSweep::prepareComparison(const DesignPoint &design,
                                 const NetworkModel &network,
                                 const CampaignSweepConfig &config)
{
    if (std::optional<Error> invalid = validateSweepGrid(config))
        return *invalid;

    std::vector<GuardPolicySpec> policies = config.guardPolicies;
    if (policies.empty()) {
        policies.resize(3);
        policies[0].kind = GuardPolicyKind::Permanent;
        policies[1].kind = GuardPolicyKind::Hysteresis;
        policies[2].kind = GuardPolicyKind::Binned;
    }

    PreparedSweep plan;
    plan.comparison_ = true;
    plan.design_ = design;
    plan.networkName_ = network.name();
    plan.failureRates_ = config.failureRates;
    plan.refreshIntervals_ = config.refreshIntervals;

    // The simulated exposures depend on the policy and the interval
    // (the policy steers the controller's fallback pulses), so the
    // trace runs once per (policy, interval) pair and is reused
    // across the rate axis.
    for (const GuardPolicySpec &spec : policies) {
        FaultCampaignConfig campaign = config.campaign;
        campaign.guard = true;
        campaign.guardPolicy = spec;
        std::vector<CampaignExposures> per_interval;
        per_interval.reserve(config.refreshIntervals.size());
        for (double interval : config.refreshIntervals) {
            DesignPoint point = design;
            point.options.refreshIntervalSeconds = interval;
            Result<CampaignExposures> simulated =
                simulateExposures(point, network, campaign);
            if (!simulated.ok())
                return simulated.error();
            per_interval.push_back(std::move(simulated).value());
        }
        plan.policyNames_.push_back(
            per_interval.front().guardPolicyName);
        plan.exposures_.push_back(std::move(per_interval));
        plan.campaigns_.push_back(std::move(campaign));
    }
    plan.prepareModels(config);
    return plan;
}

void
PreparedSweep::prepareModels(const CampaignSweepConfig &config)
{
    // The stand-in model is pretrained once; each rate retrains from
    // the pretrained snapshot and exports one shared store used by
    // every cell (and every policy) at that rate.
    RetentionAwareTrainer trainer(config.campaign.model,
                                  config.campaign.dataset,
                                  config.campaign.trainer);
    baselineAccuracy_ = trainer.pretrain();
    modelName_ = miniModelName(config.campaign.model);
    models_.reserve(config.failureRates.size());
    for (double rate : config.failureRates) {
        models_.push_back(
            prepareCampaignModel(trainer, config.campaign, rate));
    }
}

std::size_t
PreparedSweep::cellCount() const
{
    const std::size_t grid =
        failureRates_.size() * refreshIntervals_.size();
    return comparison_ ? policyNames_.size() * grid : grid;
}

Result<FaultCampaignReport>
PreparedSweep::runCell(std::size_t cell, unsigned jobs_override) const
{
    RANA_ASSERT(cell < cellCount(),
                "sweep cell index out of range: ", cell);
    const std::size_t intervals = refreshIntervals_.size();
    const std::size_t rates = failureRates_.size();
    const std::size_t i = cell % intervals;
    const std::size_t r = (cell / intervals) % rates;
    const std::size_t p = comparison_ ? cell / (intervals * rates) : 0;

    FaultCampaignConfig campaign = campaigns_[p];
    if (jobs_override > 0)
        campaign.jobs = jobs_override;
    DesignPoint point = design_;
    point.options.refreshIntervalSeconds = refreshIntervals_[i];
    point.failureRate = failureRates_[r];
    return runPreparedCampaign(point, exposures_[p][i], models_[r],
                               campaign);
}

CampaignSweepReport
PreparedSweep::assembleSweep(
    std::vector<FaultCampaignReport> cells) const
{
    RANA_ASSERT(!comparison_,
                "assembleSweep on a comparison plan");
    RANA_ASSERT(cells.size() == cellCount(),
                "sweep assembly needs one result per cell, got ",
                cells.size());
    CampaignSweepReport report;
    report.designName = design_.name;
    report.networkName = networkName_;
    report.modelName = modelName_;
    report.baselineAccuracy = baselineAccuracy_;
    report.failureRates = failureRates_;
    report.refreshIntervals = refreshIntervals_;
    report.cells.reserve(cells.size());
    for (std::size_t cell = 0; cell < cells.size(); ++cell) {
        SweepCell entry;
        entry.failureRate =
            failureRates_[cell / refreshIntervals_.size()];
        entry.refreshIntervalSeconds =
            refreshIntervals_[cell % refreshIntervals_.size()];
        entry.report = std::move(cells[cell]);
        report.cells.push_back(std::move(entry));
    }
    return report;
}

GuardPolicyComparisonReport
PreparedSweep::assembleComparison(
    std::vector<FaultCampaignReport> cells) const
{
    RANA_ASSERT(comparison_,
                "assembleComparison on a sweep plan");
    RANA_ASSERT(cells.size() == cellCount(),
                "comparison assembly needs one result per cell, "
                "got ",
                cells.size());
    GuardPolicyComparisonReport report;
    report.designName = design_.name;
    report.networkName = networkName_;
    report.modelName = modelName_;
    report.baselineAccuracy = baselineAccuracy_;
    report.policyNames = policyNames_;
    report.failureRates = failureRates_;
    report.refreshIntervals = refreshIntervals_;
    report.cells.reserve(cells.size());
    const std::size_t intervals = refreshIntervals_.size();
    const std::size_t rates = failureRates_.size();
    for (std::size_t cell = 0; cell < cells.size(); ++cell) {
        GuardPolicyComparisonCell entry;
        entry.policyName =
            policyNames_[cell / (intervals * rates)];
        entry.failureRate =
            failureRates_[(cell / intervals) % rates];
        entry.refreshIntervalSeconds =
            refreshIntervals_[cell % intervals];
        entry.report = std::move(cells[cell]);
        report.cells.push_back(std::move(entry));
    }
    return report;
}

Result<CampaignSweepReport>
runCampaignSweep(const DesignPoint &design, const NetworkModel &network,
                 const CampaignSweepConfig &config)
{
    if (std::optional<Error> invalid = validateSweepGrid(config))
        return *invalid;

    ScopedSpan sweep_span("sweep", "campaign_sweep");
    Result<PreparedSweep> prepared =
        PreparedSweep::prepareSweep(design, network, config);
    if (!prepared.ok())
        return prepared.error();
    const PreparedSweep &plan = prepared.value();

    std::vector<FaultCampaignReport> cells;
    cells.reserve(plan.cellCount());
    for (std::size_t cell = 0; cell < plan.cellCount(); ++cell) {
        const double rate =
            config.failureRates[cell /
                                config.refreshIntervals.size()];
        const double interval =
            config.refreshIntervals[cell %
                                    config.refreshIntervals.size()];
        // A labelled timeline slice per grid cell; the span-
        // duration histograms stay per phase (simulate / retrain /
        // trials), not per cell.
        std::ostringstream cell_label;
        cell_label << "cell rate=" << std::scientific
                   << std::setprecision(1) << rate
                   << " interval=" << interval << "s";
        TraceRecorder &recorder = TraceRecorder::global();
        recorder.beginSpan("sweep", cell_label.str());
        Result<FaultCampaignReport> cell_report = plan.runCell(cell);
        recorder.endSpan("sweep", cell_label.str());
        if (!cell_report.ok())
            return cell_report.error();
        cells.push_back(std::move(cell_report).value());
    }
    return plan.assembleSweep(std::move(cells));
}

const GuardPolicyComparisonCell &
GuardPolicyComparisonReport::at(std::size_t policy, std::size_t rate,
                                std::size_t interval) const
{
    RANA_ASSERT(policy < policyNames.size(),
                "comparison policy index out of range: ", policy);
    RANA_ASSERT(rate < failureRates.size(),
                "comparison rate index out of range: ", rate);
    RANA_ASSERT(interval < refreshIntervals.size(),
                "comparison interval index out of range: ", interval);
    return cells[(policy * failureRates.size() + rate) *
                     refreshIntervals.size() +
                 interval];
}

GuardPolicyRow
GuardPolicyComparisonReport::policyRow(std::size_t policy) const
{
    GuardPolicyRow row;
    row.policy = policyNames[policy];
    std::vector<double> relatives;
    for (std::size_t r = 0; r < failureRates.size(); ++r) {
        for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
            const FaultCampaignReport &report = at(policy, r, i).report;
            for (const TrialResult &trial : report.trials)
                relatives.push_back(trial.relativeAccuracy);
        }
    }
    // The controller counters depend on the interval, not on the
    // retraining rate, so sum them over one rate row only (the rate
    // axis replicates the same simulated exposures).
    for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
        const FaultCampaignReport &report = at(policy, 0, i).report;
        row.trips += report.guardStats.trips;
        row.banksReenabled += report.guardStats.banksReenabled;
        row.redisarms += report.guardStats.redisarms;
        row.escalations += report.guardStats.escalations;
        row.fallbackRefreshOps += report.guardStats.fallbackRefreshOps;
        row.armedRefreshOps += report.guardStats.armedRefreshOps;
        row.violations += report.retentionViolations;
    }
    row.p5RelativeAccuracy = percentile(relatives, 5.0);
    row.p50RelativeAccuracy = percentile(relatives, 50.0);
    row.p95RelativeAccuracy = percentile(relatives, 95.0);
    return row;
}

std::string
GuardPolicyComparisonReport::comparisonTable() const
{
    std::vector<GuardPolicyRow> rows;
    rows.reserve(policyNames.size());
    for (std::size_t p = 0; p < policyNames.size(); ++p)
        rows.push_back(policyRow(p));
    return markdownGuardPolicyTable(rows);
}

Result<GuardPolicyComparisonReport>
runGuardPolicyComparison(const DesignPoint &design,
                         const NetworkModel &network,
                         const CampaignSweepConfig &config)
{
    if (std::optional<Error> invalid = validateSweepGrid(config))
        return *invalid;

    ScopedSpan sweep_span("sweep", "guard_policy_comparison");
    Result<PreparedSweep> prepared =
        PreparedSweep::prepareComparison(design, network, config);
    if (!prepared.ok())
        return prepared.error();
    const PreparedSweep &plan = prepared.value();

    std::vector<FaultCampaignReport> cells;
    cells.reserve(plan.cellCount());
    for (std::size_t cell = 0; cell < plan.cellCount(); ++cell) {
        Result<FaultCampaignReport> cell_report = plan.runCell(cell);
        if (!cell_report.ok())
            return cell_report.error();
        cells.push_back(std::move(cell_report).value());
    }
    return plan.assembleComparison(std::move(cells));
}

} // namespace rana
