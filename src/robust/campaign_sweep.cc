/**
 * @file
 * Implementation of the campaign sweep engine.
 */

#include "robust/campaign_sweep.hh"

#include <iomanip>
#include <optional>
#include <sstream>

#include "core/report.hh"
#include "obs/chrome_trace.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace rana {

namespace {

/** Shared grid validation of the sweep and the policy comparison. */
std::optional<Error>
validateSweepGrid(const CampaignSweepConfig &config)
{
    if (config.failureRates.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "campaign sweep needs at least one failure "
                         "rate");
    }
    if (config.refreshIntervals.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "campaign sweep needs at least one refresh "
                         "interval");
    }
    for (double rate : config.failureRates) {
        if (rate < 0.0 || rate >= 1.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "sweep failure rate outside [0, 1): ",
                             rate);
        }
    }
    for (double interval : config.refreshIntervals) {
        if (interval <= 0.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "sweep refresh interval must be "
                             "positive: ",
                             interval);
        }
    }
    if (config.campaign.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }
    return std::nullopt;
}

} // namespace

const SweepCell &
CampaignSweepReport::at(std::size_t rate, std::size_t interval) const
{
    RANA_ASSERT(rate < failureRates.size(),
                "sweep rate index out of range: ", rate);
    RANA_ASSERT(interval < refreshIntervals.size(),
                "sweep interval index out of range: ", interval);
    return cells[rate * refreshIntervals.size() + interval];
}

std::string
CampaignSweepReport::percentileTable() const
{
    std::vector<std::string> cols;
    for (double interval : refreshIntervals) {
        std::ostringstream oss;
        oss << std::scientific << std::setprecision(2) << interval
            << " s";
        cols.push_back(oss.str());
    }
    std::vector<std::string> rows;
    std::vector<std::vector<std::string>> cells;
    for (std::size_t r = 0; r < failureRates.size(); ++r) {
        std::ostringstream label;
        label << std::scientific << std::setprecision(1)
              << failureRates[r];
        rows.push_back(label.str());
        std::vector<std::string> row;
        for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
            const FaultCampaignReport &report = at(r, i).report;
            std::ostringstream oss;
            oss << std::fixed << std::setprecision(3)
                << report.p50RelativeAccuracy << " ["
                << report.p5RelativeAccuracy << ", "
                << report.p95RelativeAccuracy << "]";
            row.push_back(oss.str());
        }
        cells.push_back(std::move(row));
    }
    return markdownValueGrid("Failure rate", rows, cols, cells);
}

Result<CampaignSweepReport>
runCampaignSweep(const DesignPoint &design, const NetworkModel &network,
                 const CampaignSweepConfig &config)
{
    if (std::optional<Error> invalid = validateSweepGrid(config))
        return *invalid;

    ScopedSpan sweep_span("sweep", "campaign_sweep");
    CampaignSweepReport report;
    report.designName = design.name;
    report.networkName = network.name();
    report.failureRates = config.failureRates;
    report.refreshIntervals = config.refreshIntervals;

    // The trace is simulated once per refresh interval; the rate
    // axis reuses these exposures unchanged.
    std::vector<DesignPoint> points;
    std::vector<CampaignExposures> exposures;
    points.reserve(config.refreshIntervals.size());
    exposures.reserve(config.refreshIntervals.size());
    for (double interval : config.refreshIntervals) {
        DesignPoint point = design;
        point.options.refreshIntervalSeconds = interval;
        Result<CampaignExposures> simulated =
            simulateExposures(point, network, config.campaign);
        if (!simulated.ok())
            return simulated.error();
        points.push_back(std::move(point));
        exposures.push_back(std::move(simulated).value());
    }

    // The stand-in model is pretrained once; each rate retrains from
    // the pretrained snapshot and exports one shared store for all
    // of its intervals' trials.
    RetentionAwareTrainer trainer(config.campaign.model,
                                  config.campaign.dataset,
                                  config.campaign.trainer);
    report.baselineAccuracy = trainer.pretrain();
    report.modelName = miniModelName(config.campaign.model);

    report.cells.reserve(config.failureRates.size() *
                         config.refreshIntervals.size());
    for (double rate : config.failureRates) {
        const CampaignModel model =
            prepareCampaignModel(trainer, config.campaign, rate);
        for (std::size_t i = 0; i < config.refreshIntervals.size();
             ++i) {
            DesignPoint point = points[i];
            point.failureRate = rate;
            // A labelled timeline slice per grid cell; the span-
            // duration histograms stay per phase (simulate /
            // retrain / trials), not per cell.
            std::ostringstream cell_label;
            cell_label << "cell rate=" << std::scientific
                       << std::setprecision(1) << rate
                       << " interval=" << config.refreshIntervals[i]
                       << "s";
            TraceRecorder &recorder = TraceRecorder::global();
            recorder.beginSpan("sweep", cell_label.str());
            Result<FaultCampaignReport> cell_report =
                runPreparedCampaign(point, exposures[i], model,
                                    config.campaign);
            recorder.endSpan("sweep", cell_label.str());
            if (!cell_report.ok())
                return cell_report.error();
            SweepCell cell;
            cell.failureRate = rate;
            cell.refreshIntervalSeconds = config.refreshIntervals[i];
            cell.report = std::move(cell_report).value();
            report.cells.push_back(std::move(cell));
        }
    }
    return report;
}

const GuardPolicyComparisonCell &
GuardPolicyComparisonReport::at(std::size_t policy, std::size_t rate,
                                std::size_t interval) const
{
    RANA_ASSERT(policy < policyNames.size(),
                "comparison policy index out of range: ", policy);
    RANA_ASSERT(rate < failureRates.size(),
                "comparison rate index out of range: ", rate);
    RANA_ASSERT(interval < refreshIntervals.size(),
                "comparison interval index out of range: ", interval);
    return cells[(policy * failureRates.size() + rate) *
                     refreshIntervals.size() +
                 interval];
}

GuardPolicyRow
GuardPolicyComparisonReport::policyRow(std::size_t policy) const
{
    GuardPolicyRow row;
    row.policy = policyNames[policy];
    std::vector<double> relatives;
    for (std::size_t r = 0; r < failureRates.size(); ++r) {
        for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
            const FaultCampaignReport &report = at(policy, r, i).report;
            for (const TrialResult &trial : report.trials)
                relatives.push_back(trial.relativeAccuracy);
        }
    }
    // The controller counters depend on the interval, not on the
    // retraining rate, so sum them over one rate row only (the rate
    // axis replicates the same simulated exposures).
    for (std::size_t i = 0; i < refreshIntervals.size(); ++i) {
        const FaultCampaignReport &report = at(policy, 0, i).report;
        row.trips += report.guardStats.trips;
        row.banksReenabled += report.guardStats.banksReenabled;
        row.redisarms += report.guardStats.redisarms;
        row.escalations += report.guardStats.escalations;
        row.fallbackRefreshOps += report.guardStats.fallbackRefreshOps;
        row.armedRefreshOps += report.guardStats.armedRefreshOps;
        row.violations += report.retentionViolations;
    }
    row.p5RelativeAccuracy = percentile(relatives, 5.0);
    row.p50RelativeAccuracy = percentile(relatives, 50.0);
    row.p95RelativeAccuracy = percentile(relatives, 95.0);
    return row;
}

std::string
GuardPolicyComparisonReport::comparisonTable() const
{
    std::vector<GuardPolicyRow> rows;
    rows.reserve(policyNames.size());
    for (std::size_t p = 0; p < policyNames.size(); ++p)
        rows.push_back(policyRow(p));
    return markdownGuardPolicyTable(rows);
}

Result<GuardPolicyComparisonReport>
runGuardPolicyComparison(const DesignPoint &design,
                         const NetworkModel &network,
                         const CampaignSweepConfig &config)
{
    if (std::optional<Error> invalid = validateSweepGrid(config))
        return *invalid;

    std::vector<GuardPolicySpec> policies = config.guardPolicies;
    if (policies.empty()) {
        policies.resize(3);
        policies[0].kind = GuardPolicyKind::Permanent;
        policies[1].kind = GuardPolicyKind::Hysteresis;
        policies[2].kind = GuardPolicyKind::Binned;
    }

    ScopedSpan sweep_span("sweep", "guard_policy_comparison");
    GuardPolicyComparisonReport report;
    report.designName = design.name;
    report.networkName = network.name();
    report.failureRates = config.failureRates;
    report.refreshIntervals = config.refreshIntervals;

    // The simulated exposures depend on the policy and the interval
    // (the policy steers the controller's fallback pulses), so the
    // trace runs once per (policy, interval) pair and is reused
    // across the rate axis.
    std::vector<std::vector<CampaignExposures>> exposures;
    std::vector<FaultCampaignConfig> campaigns;
    exposures.reserve(policies.size());
    campaigns.reserve(policies.size());
    for (const GuardPolicySpec &spec : policies) {
        FaultCampaignConfig campaign = config.campaign;
        campaign.guard = true;
        campaign.guardPolicy = spec;
        std::vector<CampaignExposures> per_interval;
        per_interval.reserve(config.refreshIntervals.size());
        for (double interval : config.refreshIntervals) {
            DesignPoint point = design;
            point.options.refreshIntervalSeconds = interval;
            Result<CampaignExposures> simulated =
                simulateExposures(point, network, campaign);
            if (!simulated.ok())
                return simulated.error();
            per_interval.push_back(std::move(simulated).value());
        }
        report.policyNames.push_back(
            per_interval.front().guardPolicyName);
        exposures.push_back(std::move(per_interval));
        campaigns.push_back(std::move(campaign));
    }

    // One pretrained stand-in model serves every policy; each rate
    // retrains from the pretrained snapshot once, shared across the
    // policy axis.
    RetentionAwareTrainer trainer(config.campaign.model,
                                  config.campaign.dataset,
                                  config.campaign.trainer);
    report.baselineAccuracy = trainer.pretrain();
    report.modelName = miniModelName(config.campaign.model);

    report.cells.resize(policies.size() * config.failureRates.size() *
                        config.refreshIntervals.size());
    for (std::size_t r = 0; r < config.failureRates.size(); ++r) {
        const double rate = config.failureRates[r];
        const CampaignModel model =
            prepareCampaignModel(trainer, config.campaign, rate);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            for (std::size_t i = 0;
                 i < config.refreshIntervals.size(); ++i) {
                DesignPoint point = design;
                point.options.refreshIntervalSeconds =
                    config.refreshIntervals[i];
                point.failureRate = rate;
                Result<FaultCampaignReport> cell_report =
                    runPreparedCampaign(point, exposures[p][i], model,
                                        campaigns[p]);
                if (!cell_report.ok())
                    return cell_report.error();
                GuardPolicyComparisonCell cell;
                cell.policyName = report.policyNames[p];
                cell.failureRate = rate;
                cell.refreshIntervalSeconds =
                    config.refreshIntervals[i];
                cell.report = std::move(cell_report).value();
                report.cells[(p * config.failureRates.size() + r) *
                                 config.refreshIntervals.size() +
                             i] = std::move(cell);
            }
        }
    }
    return report;
}

} // namespace rana
