/**
 * @file
 * Implementation of the fault-injection campaign engine.
 */

#include "robust/fault_campaign.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "energy/technology.hh"
#include "sched/layer_scheduler.hh"
#include "sim/loopnest_simulator.hh"
#include "train/loss.hh"
#include "train/mini_models.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

constexpr std::size_t kInput = static_cast<std::size_t>(DataType::Input);
constexpr std::size_t kOutput =
    static_cast<std::size_t>(DataType::Output);
constexpr std::size_t kWeight =
    static_cast<std::size_t>(DataType::Weight);

/** Whether `type`'s banks are refreshed under the layer's config. */
bool
typeRefreshed(RefreshPolicy policy, const LayerSchedule &layer,
              std::size_t type)
{
    switch (policy) {
      case RefreshPolicy::None:
        return false;
      case RefreshPolicy::ConventionalAll:
        return true;
      case RefreshPolicy::GatedGlobal:
        return layer.gateOn;
      case RefreshPolicy::PerBank:
        return layer.refreshFlags[type];
    }
    panic("unreachable refresh policy in typeRefreshed");
}

/** Copy exported parameter tensors into a model replica. */
void
importWeights(Sequential &model, const std::vector<Tensor> &weights)
{
    const auto params = model.params();
    RANA_ASSERT(params.size() == weights.size(),
                "exported weights do not match the model replica");
    for (std::size_t i = 0; i < params.size(); ++i)
        *params[i].value = weights[i];
}

} // namespace

std::string
FaultCampaignReport::describe() const
{
    std::ostringstream oss;
    oss << designName << " on " << networkName << " (" << modelName
        << "): baseline " << baselineAccuracy << ", mean accuracy "
        << meanAccuracy << " (worst " << worstAccuracy << ", relative "
        << meanRelativeAccuracy << ") over " << trials.size()
        << " trials, " << retentionViolations
        << " corrupted-word events";
    if (guarded) {
        oss << ", guard trips " << guardStats.trips << " ("
            << guardStats.banksReenabled << " banks re-enabled)";
    }
    return oss.str();
}

Result<FaultCampaignReport>
runFaultCampaign(const DesignPoint &design, const NetworkModel &network,
                 const FaultCampaignConfig &config)
{
    if (config.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }

    Result<NetworkSchedule> scheduled =
        scheduleNetwork(design.config, network, design.options);
    if (!scheduled.ok())
        return scheduled.error();
    const NetworkSchedule schedule = std::move(scheduled).value();

    FaultCampaignReport report;
    report.designName = design.name;
    report.networkName = network.name();
    report.modelName = miniModelName(config.model);
    report.operatingFailureRate = design.failureRate;
    report.guarded = config.guard;

    // Phase 1: execute the schedule on the trace simulator, under
    // the configured timing faults and (optionally) the runtime
    // guard, and take each buffered tensor's observed lifetime from
    // the simulator's read events.
    LoopNestSimulator simulator(design.config, design.options.policy,
                                design.options.refreshIntervalSeconds);
    simulator.setTimingFaults(config.timingFaults);
    ReliabilityGuard guard(design.options.refreshIntervalSeconds);
    if (config.guard)
        simulator.attachGuard(&guard);
    std::vector<LayerSimResult> layer_sims;
    layer_sims.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        layer_sims.push_back(simulator.runLayer(
            network.layer(i), schedule.layers[i].analysis));
        report.executionSeconds += layer_sims.back().layerSeconds;
    }
    report.retentionViolations = simulator.totalViolations();
    report.refreshOps = simulator.totalRefreshOps();
    if (config.guard)
        report.guardStats = guard.stats();

    // Phase 2: exposure per (layer, data type). Refreshed banks age
    // at most one refresh interval; a guarded run caps unrefreshed
    // banks at the interval too (the watchdog fallback recharges
    // them before any longer exposure is read). Unguarded,
    // unrefreshed banks are exposed for the full observed lifetime.
    const double interval = design.options.refreshIntervalSeconds;
    const bool volatile_cells =
        macroParams(design.config.buffer.technology).needsRefresh;
    report.exposures.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        const LayerSchedule &layer = schedule.layers[i];
        const BankAllocation alloc =
            analysisBankAllocation(design.config, layer.analysis);
        LayerExposure exposure;
        exposure.layerName = layer.layerName;
        std::uint32_t bank_start = 0;
        for (std::size_t t = 0; t < numDataTypes; ++t) {
            exposure.banks[t] = alloc.banks[t];
            exposure.words[t] = alloc.words[t];
            exposure.bankStart[t] = bank_start;
            bank_start += alloc.banks[t];
            const double lifetime = layer_sims[i].observedLifetime[t];
            exposure.observedLifetimeSeconds[t] = lifetime;
            if (!volatile_cells || alloc.words[t] == 0)
                continue;
            double exposed = lifetime;
            const bool refreshed = typeRefreshed(
                design.options.policy, layer, t);
            if (refreshed || config.guard)
                exposed = std::min(exposed, interval);
            exposure.exposureSeconds[t] = exposed;
        }
        report.exposures.push_back(std::move(exposure));
    }

    // Phase 3: train the stand-in model. The retrain at the design's
    // operating failure rate is the paper's retention-aware training;
    // skipping it gives the untrained control.
    RetentionAwareTrainer trainer(config.model, config.dataset,
                                  config.trainer);
    report.baselineAccuracy = trainer.pretrain();
    if (config.retrain && design.failureRate > 0.0)
        trainer.retrainAndEvaluate(design.failureRate);
    const std::vector<Tensor> weights = trainer.exportWeights();
    const Batch test = trainer.dataset().testBatch();

    // Denominators of the effective-rate averages: every buffered
    // word of the class across the network, exposed or not.
    double total_weight_words = 0.0;
    double total_act_words = 0.0;
    for (const LayerExposure &exposure : report.exposures) {
        total_weight_words +=
            static_cast<double>(exposure.words[kWeight]);
        total_act_words +=
            static_cast<double>(exposure.words[kInput]) +
            static_cast<double>(exposure.words[kOutput]);
    }

    // Phase 4: trials. Each trial samples one chip (per-bank weakest
    // cells), converts exposed words into effective failure rates,
    // and measures the corrupted forward pass on its own model
    // replica (forward passes mutate layer caches, so replicas keep
    // the fan-out race-free). Results land in per-trial slots, so
    // the report is identical for any lane count.
    const RetentionSampler sampler(
        config.retention, design.config.buffer.bankWords() * 16);
    const std::uint64_t bank_words = design.config.buffer.bankWords();
    const double worst_case = config.retention.worstCaseRetention();
    const unsigned jobs =
        config.jobs == 0 ? hardwareJobs() : config.jobs;
    report.trials.resize(config.trials);
    parallelFor(config.trials, jobs, [&](std::size_t trial) {
        TrialResult result;
        const std::uint64_t trial_seed =
            config.seed * 1000003 + trial;
        result.seed = trial_seed;

        Rng rng(trial_seed);
        const std::vector<double> bank_retention = sampler.sampleBanks(
            design.config.buffer.numBanks, rng);

        double weighted_weight = 0.0;
        double weighted_act = 0.0;
        for (const LayerExposure &exposure : report.exposures) {
            for (std::size_t t = 0; t < numDataTypes; ++t) {
                const double exposed = exposure.exposureSeconds[t];
                if (exposed <= 0.0 || exposure.words[t] == 0 ||
                    exposure.banks[t] == 0) {
                    continue;
                }
                // Below the weakest-cell anchor no cell can fail.
                if (exposed < worst_case)
                    continue;
                const double rate =
                    config.retention.failureRateAt(exposed);
                for (std::uint32_t k = 0; k < exposure.banks[t];
                     ++k) {
                    const std::uint32_t index =
                        exposure.bankStart[t] + k;
                    if (index >= bank_retention.size() ||
                        bank_retention[index] >= exposed) {
                        continue;
                    }
                    const std::uint64_t words_in_bank = std::min(
                        bank_words,
                        exposure.words[t] -
                            std::min<std::uint64_t>(
                                exposure.words[t],
                                static_cast<std::uint64_t>(k) *
                                    bank_words));
                    ++result.exposedBanks;
                    result.exposedWords += words_in_bank;
                    const double contribution =
                        static_cast<double>(words_in_bank) * rate;
                    if (t == kWeight)
                        weighted_weight += contribution;
                    else
                        weighted_act += contribution;
                }
            }
        }
        result.weightFailureRate =
            total_weight_words > 0.0
                ? weighted_weight / total_weight_words
                : 0.0;
        result.activationFailureRate =
            total_act_words > 0.0 ? weighted_act / total_act_words
                                  : 0.0;

        Rng model_rng(trial_seed ^ 0x5851f42d4c957f2dULL);
        auto replica = makeMiniModel(config.model,
                                     config.dataset.imageSize,
                                     config.dataset.numClasses,
                                     model_rng);
        importWeights(*replica, weights);
        BitErrorInjector act_injector(result.activationFailureRate,
                                      trial_seed * 2 + 1);
        BitErrorInjector weight_injector(result.weightFailureRate,
                                         trial_seed * 2 + 2);
        ForwardContext ctx;
        ctx.quant = &config.trainer.format;
        ctx.injector = &act_injector;
        ctx.weightInjector = &weight_injector;
        ctx.training = false;
        const Tensor logits = replica->forward(test.images, ctx);
        const LossResult loss =
            softmaxCrossEntropy(logits, test.labels);
        result.accuracy = static_cast<double>(loss.correct) /
                          static_cast<double>(test.labels.size());
        result.relativeAccuracy =
            report.baselineAccuracy > 0.0
                ? result.accuracy / report.baselineAccuracy
                : 0.0;
        report.trials[trial] = result;
    });

    report.worstAccuracy = 1.0;
    report.worstRelativeAccuracy = 1.0;
    for (const TrialResult &trial : report.trials) {
        report.meanAccuracy += trial.accuracy;
        report.meanRelativeAccuracy += trial.relativeAccuracy;
        report.meanWeightFailureRate += trial.weightFailureRate;
        report.meanActivationFailureRate +=
            trial.activationFailureRate;
        report.worstAccuracy =
            std::min(report.worstAccuracy, trial.accuracy);
        report.worstRelativeAccuracy = std::min(
            report.worstRelativeAccuracy, trial.relativeAccuracy);
    }
    const auto count = static_cast<double>(report.trials.size());
    report.meanAccuracy /= count;
    report.meanRelativeAccuracy /= count;
    report.meanWeightFailureRate /= count;
    report.meanActivationFailureRate /= count;
    return report;
}

} // namespace rana
