/**
 * @file
 * Implementation of the fault-injection campaign engine.
 */

#include "robust/fault_campaign.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "energy/technology.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"
#include "sched/layer_scheduler.hh"
#include "sim/loopnest_simulator.hh"
#include "sim/trace_export.hh"
#include "train/loss.hh"
#include "train/mini_models.hh"
#include "train/trial_batch.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

constexpr std::size_t kInput = static_cast<std::size_t>(DataType::Input);
constexpr std::size_t kOutput =
    static_cast<std::size_t>(DataType::Output);
constexpr std::size_t kWeight =
    static_cast<std::size_t>(DataType::Weight);

/** Whether `type`'s banks are refreshed under the layer's config. */
bool
typeRefreshed(RefreshPolicy policy, const LayerSchedule &layer,
              std::size_t type)
{
    switch (policy) {
      case RefreshPolicy::None:
        return false;
      case RefreshPolicy::ConventionalAll:
        return true;
      case RefreshPolicy::GatedGlobal:
        return layer.gateOn;
      case RefreshPolicy::PerBank:
        return layer.refreshFlags[type];
    }
    panic("unreachable refresh policy in typeRefreshed");
}

/**
 * Scalar reference: the corrupted forward pass and accuracy of one
 * trial, exactly as the pre-batching campaign ran it. Serves the
 * laneBlock=1 path and the RANA_BENCH_VERIFY parity check.
 */
double
scalarTrialAccuracy(Layer &skeleton, const CampaignModel &model,
                    const TrialResult &trial)
{
    BitErrorInjector act_injector(trial.activationFailureRate,
                                  trial.seed * 2 + 1);
    BitErrorInjector weight_injector(trial.weightFailureRate,
                                     trial.seed * 2 + 2);
    ForwardContext ctx;
    ctx.quant = &model.format;
    ctx.injector = &act_injector;
    ctx.weightInjector = &weight_injector;
    ctx.weightsPreQuantized = true;
    ctx.training = false;
    const Tensor logits = skeleton.forward(model.test.images, ctx);
    const LossResult loss =
        softmaxCrossEntropy(logits, model.test.labels);
    return static_cast<double>(loss.correct) /
           static_cast<double>(model.test.labels.size());
}

/**
 * Batched path: fuse `lanes` consecutive trials starting at `first`
 * into one lane-major forward pass and write each lane's accuracy
 * back into its trial slot. Per lane the injector seeds, streams and
 * arithmetic match scalarTrialAccuracy bit for bit.
 */
void
batchedBlockAccuracies(Layer &skeleton, const CampaignModel &model,
                       std::vector<TrialResult> &trials,
                       std::size_t first, std::uint32_t lanes)
{
    std::vector<BitErrorInjector> act_injectors;
    std::vector<BitErrorInjector> weight_injectors;
    act_injectors.reserve(lanes);
    weight_injectors.reserve(lanes);
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const TrialResult &trial = trials[first + l];
        act_injectors.emplace_back(trial.activationFailureRate,
                                   trial.seed * 2 + 1);
        weight_injectors.emplace_back(trial.weightFailureRate,
                                      trial.seed * 2 + 2);
    }
    TrialForwardContext ctx;
    ctx.quant = &model.format;
    ctx.weightsPreQuantized = true;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        ctx.injectors.push_back(&act_injectors[l]);
        ctx.weightInjectors.push_back(&weight_injectors[l]);
    }
    const Tensor stacked = packTrialLanes(model.test.images, lanes);
    const Tensor logits = skeleton.forwardTrials(stacked, ctx);
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const Tensor lane_logits = extractTrialLane(logits, l);
        const LossResult loss =
            softmaxCrossEntropy(lane_logits, model.test.labels);
        trials[first + l].accuracy =
            static_cast<double>(loss.correct) /
            static_cast<double>(model.test.labels.size());
    }
}

} // namespace

std::string
FaultCampaignReport::describe() const
{
    std::ostringstream oss;
    oss << designName << " on " << networkName << " (" << modelName
        << "): baseline " << baselineAccuracy << ", mean accuracy "
        << meanAccuracy << " (p5 " << p5Accuracy << ", p50 "
        << p50Accuracy << ", p95 " << p95Accuracy << ", worst "
        << worstAccuracy << ", relative " << meanRelativeAccuracy
        << ") over " << trials.size() << " trials, "
        << retentionViolations << " corrupted-word events";
    if (guarded) {
        oss << ", guard[" << guardPolicyName << "] trips "
            << guardStats.trips << " (" << guardStats.banksReenabled
            << " banks re-enabled";
        if (guardStats.redisarms > 0)
            oss << ", " << guardStats.redisarms << " re-disarms";
        if (guardStats.escalations > 0)
            oss << ", " << guardStats.escalations << " escalations";
        oss << ")";
    }
    return oss.str();
}

Result<CampaignExposures>
simulateExposures(const DesignPoint &design,
                  const NetworkModel &network,
                  const FaultCampaignConfig &config)
{
    Result<NetworkSchedule> scheduled =
        scheduleNetwork(design.config, network, design.options);
    if (!scheduled.ok())
        return scheduled.error();
    const NetworkSchedule schedule = std::move(scheduled).value();

    CampaignExposures result;
    result.networkName = network.name();
    result.guarded = config.guard;

    // Phase 1: execute the schedule on the trace simulator, under
    // the configured timing faults and (optionally) the runtime
    // guard, and take each buffered tensor's observed lifetime from
    // the simulator's read events.
    ScopedSpan span("campaign", "simulate");
    LoopNestSimulator simulator(design.config, design.options.policy,
                                design.options.refreshIntervalSeconds);
    simulator.setTimingFaults(config.timingFaults);
    if (config.traceSink != nullptr)
        simulator.setTraceSink(config.traceSink);
    Result<std::unique_ptr<GuardPolicy>> policy = makeGuardPolicy(
        config.guardPolicy, design.config.buffer, config.retention,
        design.failureRate, config.seed);
    if (!policy.ok())
        return policy.error();
    ReliabilityGuard guard(design.options.refreshIntervalSeconds,
                           std::move(policy).value());
    if (config.guard) {
        simulator.attachGuard(&guard);
        result.guardPolicyName = guard.policy().name();
    }
    std::vector<LayerSimResult> layer_sims;
    layer_sims.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        layer_sims.push_back(simulator.runLayer(
            network.layer(i), schedule.layers[i].analysis));
        result.executionSeconds += layer_sims.back().layerSeconds;
    }
    result.retentionViolations = simulator.totalViolations();
    result.refreshOps = simulator.totalRefreshOps();
    if (config.guard)
        result.guardStats = guard.stats();

    // Phase 2: exposure per (layer, data type). Refreshed banks age
    // at most one refresh interval; a guarded run caps unrefreshed
    // banks at the interval too (the watchdog fallback recharges
    // them before any longer exposure is read). Unguarded,
    // unrefreshed banks are exposed for the full observed lifetime.
    const double interval = design.options.refreshIntervalSeconds;
    const bool volatile_cells =
        macroParams(design.config.buffer.technology).needsRefresh;
    result.exposures.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        const LayerSchedule &layer = schedule.layers[i];
        const BankAllocation alloc =
            analysisBankAllocation(design.config, layer.analysis);
        LayerExposure exposure;
        exposure.layerName = layer.layerName;
        std::uint32_t bank_start = 0;
        for (std::size_t t = 0; t < numDataTypes; ++t) {
            exposure.banks[t] = alloc.banks[t];
            exposure.words[t] = alloc.words[t];
            exposure.bankStart[t] = bank_start;
            bank_start += alloc.banks[t];
            const double lifetime = layer_sims[i].observedLifetime[t];
            exposure.observedLifetimeSeconds[t] = lifetime;
            if (!volatile_cells || alloc.words[t] == 0)
                continue;
            double exposed = lifetime;
            const bool refreshed = typeRefreshed(
                design.options.policy, layer, t);
            if (refreshed || config.guard)
                exposed = std::min(exposed, interval);
            exposure.exposureSeconds[t] = exposed;
        }
        result.exposures.push_back(std::move(exposure));
    }
    return result;
}

CampaignModel
prepareCampaignModel(RetentionAwareTrainer &trainer,
                     const FaultCampaignConfig &config,
                     double failure_rate)
{
    // Phase 3: train the stand-in model. The retrain at the
    // operating failure rate is the paper's retention-aware
    // training; skipping it gives the untrained control.
    ScopedSpan span("campaign", "retrain");
    trainer.restorePretrained();
    if (config.retrain && failure_rate > 0.0)
        trainer.retrain(failure_rate);

    CampaignModel model;
    model.modelName = miniModelName(config.model);
    model.baselineAccuracy = trainer.baselineAccuracy();
    model.failureRate = failure_rate;
    model.format = config.trainer.format;
    model.weights = trainer.exportWeightsShared(&model.format);
    model.test = trainer.dataset().testBatch();
    return model;
}

Result<FaultCampaignReport>
runPreparedCampaign(const DesignPoint &design,
                    const CampaignExposures &exposures,
                    const CampaignModel &model,
                    const FaultCampaignConfig &config)
{
    if (config.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }
    RANA_ASSERT(model.weights != nullptr,
                "campaign model has no weight store");
    ScopedSpan span("campaign", "trials");

    FaultCampaignReport report;
    report.designName = design.name;
    report.networkName = exposures.networkName;
    report.modelName = model.modelName;
    report.operatingFailureRate = model.failureRate;
    report.baselineAccuracy = model.baselineAccuracy;
    report.guarded = exposures.guarded;
    report.guardPolicyName = exposures.guardPolicyName;
    report.guardStats = exposures.guardStats;
    report.exposures = exposures.exposures;
    report.executionSeconds = exposures.executionSeconds;
    report.retentionViolations = exposures.retentionViolations;
    report.refreshOps = exposures.refreshOps;

    // One skeleton model serves every trial: eval-mode forward
    // passes are re-entrant, the bound store is immutable, and a
    // trial copies the weights only when it actually injects bit
    // errors (copy-on-corrupt).
    Rng skeleton_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
    auto skeleton =
        makeMiniModel(config.model, config.dataset.imageSize,
                      config.dataset.numClasses, skeleton_rng);
    bindSharedWeights(*skeleton, *model.weights);

    // Denominators of the effective-rate averages: every buffered
    // word of the class across the network, exposed or not.
    double total_weight_words = 0.0;
    double total_act_words = 0.0;
    for (const LayerExposure &exposure : report.exposures) {
        total_weight_words +=
            static_cast<double>(exposure.words[kWeight]);
        total_act_words +=
            static_cast<double>(exposure.words[kInput]) +
            static_cast<double>(exposure.words[kOutput]);
    }

    // Phase 4a: per-trial chip sampling. Each trial samples one chip
    // (per-bank weakest cells) and converts exposed words into
    // effective failure rates. Results land in per-trial slots, so
    // the report is identical for any lane count or job count.
    const auto trials_started = std::chrono::steady_clock::now();
    const RetentionSampler sampler(
        config.retention, design.config.buffer.bankWords() * 16);
    const std::uint64_t bank_words = design.config.buffer.bankWords();
    const double worst_case = config.retention.worstCaseRetention();
    const unsigned jobs =
        config.jobs == 0 ? hardwareJobs() : config.jobs;
    report.trials.resize(config.trials);
    parallelFor(config.trials, jobs, [&](std::size_t trial) {
        TrialResult result;
        const std::uint64_t trial_seed =
            config.seed * 1000003 + trial;
        result.seed = trial_seed;

        Rng rng(trial_seed);
        const std::vector<double> bank_retention = sampler.sampleBanks(
            design.config.buffer.numBanks, rng);

        double weighted_weight = 0.0;
        double weighted_act = 0.0;
        for (const LayerExposure &exposure : report.exposures) {
            for (std::size_t t = 0; t < numDataTypes; ++t) {
                const double exposed = exposure.exposureSeconds[t];
                if (exposed <= 0.0 || exposure.words[t] == 0 ||
                    exposure.banks[t] == 0) {
                    continue;
                }
                // Below the weakest-cell anchor no cell can fail.
                if (exposed < worst_case)
                    continue;
                const double rate =
                    config.retention.failureRateAt(exposed);
                for (std::uint32_t k = 0; k < exposure.banks[t];
                     ++k) {
                    const std::uint32_t index =
                        exposure.bankStart[t] + k;
                    if (index >= bank_retention.size() ||
                        bank_retention[index] >= exposed) {
                        continue;
                    }
                    const std::uint64_t words_in_bank = std::min(
                        bank_words,
                        exposure.words[t] -
                            std::min<std::uint64_t>(
                                exposure.words[t],
                                static_cast<std::uint64_t>(k) *
                                    bank_words));
                    ++result.exposedBanks;
                    result.exposedWords += words_in_bank;
                    const double contribution =
                        static_cast<double>(words_in_bank) * rate;
                    if (t == kWeight)
                        weighted_weight += contribution;
                    else
                        weighted_act += contribution;
                }
            }
        }
        result.weightFailureRate =
            total_weight_words > 0.0
                ? weighted_weight / total_weight_words
                : 0.0;
        result.activationFailureRate =
            total_act_words > 0.0 ? weighted_act / total_act_words
                                  : 0.0;
        report.trials[trial] = result;
    });

    // Phase 4b: corrupted forwards. laneBlock trials are fused per
    // lane-major batched pass (the scalar reference path when the
    // block is 1); every lane is bit-identical to the scalar pass,
    // so the choice only moves wall-clock.
    const std::uint32_t lane_block =
        config.laneBlock == 0 ? kDefaultLaneBlock : config.laneBlock;
    if (lane_block <= 1) {
        parallelFor(config.trials, jobs, [&](std::size_t trial) {
            report.trials[trial].accuracy = scalarTrialAccuracy(
                *skeleton, model, report.trials[trial]);
        });
    } else {
        const std::size_t blocks =
            (config.trials + lane_block - 1) / lane_block;
        parallelFor(blocks, jobs, [&](std::size_t block) {
            const std::size_t first = block * lane_block;
            const auto lanes = static_cast<std::uint32_t>(
                std::min<std::size_t>(lane_block,
                                      config.trials - first));
            batchedBlockAccuracies(*skeleton, model, report.trials,
                                   first, lanes);
        });
        // Opt-in parity assertion: re-run every trial through the
        // scalar reference and require bit-equal accuracies.
        const char *verify = std::getenv("RANA_BENCH_VERIFY");
        if (verify != nullptr && verify == std::string("1")) {
            parallelFor(config.trials, jobs, [&](std::size_t trial) {
                const double scalar = scalarTrialAccuracy(
                    *skeleton, model, report.trials[trial]);
                RANA_ASSERT(scalar == report.trials[trial].accuracy,
                            "batched trial ", trial,
                            " diverged from the scalar path: ",
                            report.trials[trial].accuracy, " vs ",
                            scalar);
            });
        }
    }
    for (TrialResult &trial : report.trials) {
        trial.relativeAccuracy =
            report.baselineAccuracy > 0.0
                ? trial.accuracy / report.baselineAccuracy
                : 0.0;
    }
    report.trialSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - trials_started)
            .count();
    report.trialsPerSecond =
        report.trialSeconds > 0.0
            ? static_cast<double>(config.trials) / report.trialSeconds
            : 0.0;

    std::vector<double> accuracies;
    std::vector<double> relatives;
    accuracies.reserve(report.trials.size());
    relatives.reserve(report.trials.size());
    report.worstAccuracy = 1.0;
    report.worstRelativeAccuracy = 1.0;
    for (const TrialResult &trial : report.trials) {
        accuracies.push_back(trial.accuracy);
        relatives.push_back(trial.relativeAccuracy);
        report.meanAccuracy += trial.accuracy;
        report.meanRelativeAccuracy += trial.relativeAccuracy;
        report.meanWeightFailureRate += trial.weightFailureRate;
        report.meanActivationFailureRate +=
            trial.activationFailureRate;
        report.worstAccuracy =
            std::min(report.worstAccuracy, trial.accuracy);
        report.worstRelativeAccuracy = std::min(
            report.worstRelativeAccuracy, trial.relativeAccuracy);
    }
    // Corruption-rate counters, tallied serially from the trial
    // slots so the registry totals are deterministic per seed.
    MetricsRegistry &registry = MetricsRegistry::global();
    std::uint64_t corrupted = 0;
    std::uint64_t exposed_words = 0;
    for (const TrialResult &trial : report.trials) {
        corrupted += trial.exposedBanks > 0 ? 1 : 0;
        exposed_words += trial.exposedWords;
    }
    registry.counter("campaign_trials_total")
        .add(report.trials.size());
    registry.counter("campaign_corrupted_trials_total")
        .add(corrupted);
    registry.counter("campaign_exposed_words_total")
        .add(exposed_words);
    registry.gauge("campaign_trials_per_second")
        .set(report.trialsPerSecond);

    const auto count = static_cast<double>(report.trials.size());
    report.meanAccuracy /= count;
    report.meanRelativeAccuracy /= count;
    report.meanWeightFailureRate /= count;
    report.meanActivationFailureRate /= count;
    report.p5Accuracy = percentile(accuracies, 5.0);
    report.p50Accuracy = percentile(accuracies, 50.0);
    report.p95Accuracy = percentile(accuracies, 95.0);
    report.p5RelativeAccuracy = percentile(relatives, 5.0);
    report.p50RelativeAccuracy = percentile(relatives, 50.0);
    report.p95RelativeAccuracy = percentile(relatives, 95.0);
    return report;
}

Result<FaultCampaignReport>
runFaultCampaign(const DesignPoint &design, const NetworkModel &network,
                 const FaultCampaignConfig &config)
{
    if (config.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }
    Result<CampaignExposures> exposures =
        simulateExposures(design, network, config);
    if (!exposures.ok())
        return exposures.error();

    RetentionAwareTrainer trainer(config.model, config.dataset,
                                  config.trainer);
    trainer.pretrain();
    const CampaignModel model =
        prepareCampaignModel(trainer, config, design.failureRate);
    return runPreparedCampaign(design, exposures.value(), model,
                               config);
}

} // namespace rana
