/**
 * @file
 * Implementation of the fault-injection campaign engine.
 */

#include "robust/fault_campaign.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "energy/technology.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"
#include "sched/layer_scheduler.hh"
#include "sim/loopnest_simulator.hh"
#include "sim/trace_export.hh"
#include "train/loss.hh"
#include "train/mini_models.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

constexpr std::size_t kInput = static_cast<std::size_t>(DataType::Input);
constexpr std::size_t kOutput =
    static_cast<std::size_t>(DataType::Output);
constexpr std::size_t kWeight =
    static_cast<std::size_t>(DataType::Weight);

/** Whether `type`'s banks are refreshed under the layer's config. */
bool
typeRefreshed(RefreshPolicy policy, const LayerSchedule &layer,
              std::size_t type)
{
    switch (policy) {
      case RefreshPolicy::None:
        return false;
      case RefreshPolicy::ConventionalAll:
        return true;
      case RefreshPolicy::GatedGlobal:
        return layer.gateOn;
      case RefreshPolicy::PerBank:
        return layer.refreshFlags[type];
    }
    panic("unreachable refresh policy in typeRefreshed");
}

} // namespace

std::string
FaultCampaignReport::describe() const
{
    std::ostringstream oss;
    oss << designName << " on " << networkName << " (" << modelName
        << "): baseline " << baselineAccuracy << ", mean accuracy "
        << meanAccuracy << " (p5 " << p5Accuracy << ", p50 "
        << p50Accuracy << ", p95 " << p95Accuracy << ", worst "
        << worstAccuracy << ", relative " << meanRelativeAccuracy
        << ") over " << trials.size() << " trials, "
        << retentionViolations << " corrupted-word events";
    if (guarded) {
        oss << ", guard[" << guardPolicyName << "] trips "
            << guardStats.trips << " (" << guardStats.banksReenabled
            << " banks re-enabled";
        if (guardStats.redisarms > 0)
            oss << ", " << guardStats.redisarms << " re-disarms";
        if (guardStats.escalations > 0)
            oss << ", " << guardStats.escalations << " escalations";
        oss << ")";
    }
    return oss.str();
}

Result<CampaignExposures>
simulateExposures(const DesignPoint &design,
                  const NetworkModel &network,
                  const FaultCampaignConfig &config)
{
    Result<NetworkSchedule> scheduled =
        scheduleNetwork(design.config, network, design.options);
    if (!scheduled.ok())
        return scheduled.error();
    const NetworkSchedule schedule = std::move(scheduled).value();

    CampaignExposures result;
    result.networkName = network.name();
    result.guarded = config.guard;

    // Phase 1: execute the schedule on the trace simulator, under
    // the configured timing faults and (optionally) the runtime
    // guard, and take each buffered tensor's observed lifetime from
    // the simulator's read events.
    ScopedSpan span("campaign", "simulate");
    LoopNestSimulator simulator(design.config, design.options.policy,
                                design.options.refreshIntervalSeconds);
    simulator.setTimingFaults(config.timingFaults);
    if (config.traceSink != nullptr)
        simulator.setTraceSink(config.traceSink);
    Result<std::unique_ptr<GuardPolicy>> policy = makeGuardPolicy(
        config.guardPolicy, design.config.buffer, config.retention,
        design.failureRate, config.seed);
    if (!policy.ok())
        return policy.error();
    ReliabilityGuard guard(design.options.refreshIntervalSeconds,
                           std::move(policy).value());
    if (config.guard) {
        simulator.attachGuard(&guard);
        result.guardPolicyName = guard.policy().name();
    }
    std::vector<LayerSimResult> layer_sims;
    layer_sims.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        layer_sims.push_back(simulator.runLayer(
            network.layer(i), schedule.layers[i].analysis));
        result.executionSeconds += layer_sims.back().layerSeconds;
    }
    result.retentionViolations = simulator.totalViolations();
    result.refreshOps = simulator.totalRefreshOps();
    if (config.guard)
        result.guardStats = guard.stats();

    // Phase 2: exposure per (layer, data type). Refreshed banks age
    // at most one refresh interval; a guarded run caps unrefreshed
    // banks at the interval too (the watchdog fallback recharges
    // them before any longer exposure is read). Unguarded,
    // unrefreshed banks are exposed for the full observed lifetime.
    const double interval = design.options.refreshIntervalSeconds;
    const bool volatile_cells =
        macroParams(design.config.buffer.technology).needsRefresh;
    result.exposures.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        const LayerSchedule &layer = schedule.layers[i];
        const BankAllocation alloc =
            analysisBankAllocation(design.config, layer.analysis);
        LayerExposure exposure;
        exposure.layerName = layer.layerName;
        std::uint32_t bank_start = 0;
        for (std::size_t t = 0; t < numDataTypes; ++t) {
            exposure.banks[t] = alloc.banks[t];
            exposure.words[t] = alloc.words[t];
            exposure.bankStart[t] = bank_start;
            bank_start += alloc.banks[t];
            const double lifetime = layer_sims[i].observedLifetime[t];
            exposure.observedLifetimeSeconds[t] = lifetime;
            if (!volatile_cells || alloc.words[t] == 0)
                continue;
            double exposed = lifetime;
            const bool refreshed = typeRefreshed(
                design.options.policy, layer, t);
            if (refreshed || config.guard)
                exposed = std::min(exposed, interval);
            exposure.exposureSeconds[t] = exposed;
        }
        result.exposures.push_back(std::move(exposure));
    }
    return result;
}

CampaignModel
prepareCampaignModel(RetentionAwareTrainer &trainer,
                     const FaultCampaignConfig &config,
                     double failure_rate)
{
    // Phase 3: train the stand-in model. The retrain at the
    // operating failure rate is the paper's retention-aware
    // training; skipping it gives the untrained control.
    ScopedSpan span("campaign", "retrain");
    trainer.restorePretrained();
    if (config.retrain && failure_rate > 0.0)
        trainer.retrainAndEvaluate(failure_rate);

    CampaignModel model;
    model.modelName = miniModelName(config.model);
    model.baselineAccuracy = trainer.baselineAccuracy();
    model.failureRate = failure_rate;
    model.format = config.trainer.format;
    model.weights = trainer.exportWeightsShared(&model.format);
    model.test = trainer.dataset().testBatch();
    return model;
}

Result<FaultCampaignReport>
runPreparedCampaign(const DesignPoint &design,
                    const CampaignExposures &exposures,
                    const CampaignModel &model,
                    const FaultCampaignConfig &config)
{
    if (config.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }
    RANA_ASSERT(model.weights != nullptr,
                "campaign model has no weight store");
    ScopedSpan span("campaign", "trials");

    FaultCampaignReport report;
    report.designName = design.name;
    report.networkName = exposures.networkName;
    report.modelName = model.modelName;
    report.operatingFailureRate = model.failureRate;
    report.baselineAccuracy = model.baselineAccuracy;
    report.guarded = exposures.guarded;
    report.guardPolicyName = exposures.guardPolicyName;
    report.guardStats = exposures.guardStats;
    report.exposures = exposures.exposures;
    report.executionSeconds = exposures.executionSeconds;
    report.retentionViolations = exposures.retentionViolations;
    report.refreshOps = exposures.refreshOps;

    // One skeleton model serves every trial: eval-mode forward
    // passes are re-entrant, the bound store is immutable, and a
    // trial copies the weights only when it actually injects bit
    // errors (copy-on-corrupt).
    Rng skeleton_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
    auto skeleton =
        makeMiniModel(config.model, config.dataset.imageSize,
                      config.dataset.numClasses, skeleton_rng);
    bindSharedWeights(*skeleton, *model.weights);

    // Denominators of the effective-rate averages: every buffered
    // word of the class across the network, exposed or not.
    double total_weight_words = 0.0;
    double total_act_words = 0.0;
    for (const LayerExposure &exposure : report.exposures) {
        total_weight_words +=
            static_cast<double>(exposure.words[kWeight]);
        total_act_words +=
            static_cast<double>(exposure.words[kInput]) +
            static_cast<double>(exposure.words[kOutput]);
    }

    // Phase 4: trials. Each trial samples one chip (per-bank weakest
    // cells), converts exposed words into effective failure rates,
    // and measures the corrupted forward pass. Results land in
    // per-trial slots, so the report is identical for any lane
    // count.
    const RetentionSampler sampler(
        config.retention, design.config.buffer.bankWords() * 16);
    const std::uint64_t bank_words = design.config.buffer.bankWords();
    const double worst_case = config.retention.worstCaseRetention();
    const unsigned jobs =
        config.jobs == 0 ? hardwareJobs() : config.jobs;
    report.trials.resize(config.trials);
    parallelFor(config.trials, jobs, [&](std::size_t trial) {
        TrialResult result;
        const std::uint64_t trial_seed =
            config.seed * 1000003 + trial;
        result.seed = trial_seed;

        Rng rng(trial_seed);
        const std::vector<double> bank_retention = sampler.sampleBanks(
            design.config.buffer.numBanks, rng);

        double weighted_weight = 0.0;
        double weighted_act = 0.0;
        for (const LayerExposure &exposure : report.exposures) {
            for (std::size_t t = 0; t < numDataTypes; ++t) {
                const double exposed = exposure.exposureSeconds[t];
                if (exposed <= 0.0 || exposure.words[t] == 0 ||
                    exposure.banks[t] == 0) {
                    continue;
                }
                // Below the weakest-cell anchor no cell can fail.
                if (exposed < worst_case)
                    continue;
                const double rate =
                    config.retention.failureRateAt(exposed);
                for (std::uint32_t k = 0; k < exposure.banks[t];
                     ++k) {
                    const std::uint32_t index =
                        exposure.bankStart[t] + k;
                    if (index >= bank_retention.size() ||
                        bank_retention[index] >= exposed) {
                        continue;
                    }
                    const std::uint64_t words_in_bank = std::min(
                        bank_words,
                        exposure.words[t] -
                            std::min<std::uint64_t>(
                                exposure.words[t],
                                static_cast<std::uint64_t>(k) *
                                    bank_words));
                    ++result.exposedBanks;
                    result.exposedWords += words_in_bank;
                    const double contribution =
                        static_cast<double>(words_in_bank) * rate;
                    if (t == kWeight)
                        weighted_weight += contribution;
                    else
                        weighted_act += contribution;
                }
            }
        }
        result.weightFailureRate =
            total_weight_words > 0.0
                ? weighted_weight / total_weight_words
                : 0.0;
        result.activationFailureRate =
            total_act_words > 0.0 ? weighted_act / total_act_words
                                  : 0.0;

        BitErrorInjector act_injector(result.activationFailureRate,
                                      trial_seed * 2 + 1);
        BitErrorInjector weight_injector(result.weightFailureRate,
                                         trial_seed * 2 + 2);
        ForwardContext ctx;
        ctx.quant = &model.format;
        ctx.injector = &act_injector;
        ctx.weightInjector = &weight_injector;
        ctx.weightsPreQuantized = true;
        ctx.training = false;
        const Tensor logits = skeleton->forward(model.test.images, ctx);
        const LossResult loss =
            softmaxCrossEntropy(logits, model.test.labels);
        result.accuracy =
            static_cast<double>(loss.correct) /
            static_cast<double>(model.test.labels.size());
        result.relativeAccuracy =
            report.baselineAccuracy > 0.0
                ? result.accuracy / report.baselineAccuracy
                : 0.0;
        report.trials[trial] = result;
    });

    std::vector<double> accuracies;
    std::vector<double> relatives;
    accuracies.reserve(report.trials.size());
    relatives.reserve(report.trials.size());
    report.worstAccuracy = 1.0;
    report.worstRelativeAccuracy = 1.0;
    for (const TrialResult &trial : report.trials) {
        accuracies.push_back(trial.accuracy);
        relatives.push_back(trial.relativeAccuracy);
        report.meanAccuracy += trial.accuracy;
        report.meanRelativeAccuracy += trial.relativeAccuracy;
        report.meanWeightFailureRate += trial.weightFailureRate;
        report.meanActivationFailureRate +=
            trial.activationFailureRate;
        report.worstAccuracy =
            std::min(report.worstAccuracy, trial.accuracy);
        report.worstRelativeAccuracy = std::min(
            report.worstRelativeAccuracy, trial.relativeAccuracy);
    }
    // Corruption-rate counters, tallied serially from the trial
    // slots so the registry totals are deterministic per seed.
    MetricsRegistry &registry = MetricsRegistry::global();
    std::uint64_t corrupted = 0;
    std::uint64_t exposed_words = 0;
    for (const TrialResult &trial : report.trials) {
        corrupted += trial.exposedBanks > 0 ? 1 : 0;
        exposed_words += trial.exposedWords;
    }
    registry.counter("campaign_trials_total")
        .add(report.trials.size());
    registry.counter("campaign_corrupted_trials_total")
        .add(corrupted);
    registry.counter("campaign_exposed_words_total")
        .add(exposed_words);

    const auto count = static_cast<double>(report.trials.size());
    report.meanAccuracy /= count;
    report.meanRelativeAccuracy /= count;
    report.meanWeightFailureRate /= count;
    report.meanActivationFailureRate /= count;
    report.p5Accuracy = percentile(accuracies, 5.0);
    report.p50Accuracy = percentile(accuracies, 50.0);
    report.p95Accuracy = percentile(accuracies, 95.0);
    report.p5RelativeAccuracy = percentile(relatives, 5.0);
    report.p50RelativeAccuracy = percentile(relatives, 50.0);
    report.p95RelativeAccuracy = percentile(relatives, 95.0);
    return report;
}

Result<FaultCampaignReport>
runFaultCampaign(const DesignPoint &design, const NetworkModel &network,
                 const FaultCampaignConfig &config)
{
    if (config.trials == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "fault campaign needs at least one trial");
    }
    Result<CampaignExposures> exposures =
        simulateExposures(design, network, config);
    if (!exposures.ok())
        return exposures.error();

    RetentionAwareTrainer trainer(config.model, config.dataset,
                                  config.trainer);
    trainer.pretrain();
    const CampaignModel model =
        prepareCampaignModel(trainer, config, design.failureRate);
    return runPreparedCampaign(design, exposures.value(), model,
                               config);
}

} // namespace rana
