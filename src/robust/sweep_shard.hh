/**
 * @file
 * Crash-tolerant sharded sweep engine: the campaign sweep grid
 * fanned out over forked worker processes.
 *
 * The coordinator prepares every expensive sweep product up front
 * (PreparedSweep), forks N workers that inherit the plan copy-on-
 * write, and deals grid cells to idle workers one at a time over a
 * framed pipe protocol (util/subprocess) — central-queue work
 * stealing, so a fast worker drains cells a slow sibling would have
 * owned under a static split. Each worker streams back one
 * serialized FaultCampaignReport per cell; the coordinator merges
 * them in cell order, so the assembled report is byte-identical to
 * the single-process runCampaignSweep / runGuardPolicyComparison
 * output for any worker count (wall-clock timing fields excepted —
 * canonicalSweepJson / canonicalComparisonJson exclude them).
 *
 * Robustness: a worker crash (EOF on its stream), a hung cell (no
 * result before the per-cell timeout) and a corrupted result frame
 * (checksum or JSON-parse failure) all requeue the cell with
 * bounded retries under exponential backoff and respawn the worker;
 * a cell that fails every attempt degrades to in-process execution
 * in the coordinator — degraded, never lost, and still
 * byte-identical because every path runs the same PreparedSweep
 * cell. ShardChaosConfig injects those failures deterministically
 * for tests and CI: kill a chosen worker after K cells, stall a
 * chosen cell's first attempt past the timeout, corrupt a chosen
 * cell's first result frame.
 */

#ifndef RANA_ROBUST_SWEEP_SHARD_HH_
#define RANA_ROBUST_SWEEP_SHARD_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "robust/campaign_sweep.hh"

namespace rana {

/**
 * Deterministic fault injection into the shard machinery itself
 * (not into the simulated eDRAM). Index-addressed, not random: the
 * same config produces the same failure at the same point in every
 * run, so recovery is testable byte-for-byte.
 */
struct ShardChaosConfig
{
    /** Worker ordinal to kill (-1 = off; first incarnation only). */
    int killWorker = -1;
    /** The victim dies on receiving its (killAfterCells+1)-th cell. */
    std::uint32_t killAfterCells = 0;
    /** Cell whose first attempt hangs until killed (-1 = off). */
    int stallCell = -1;
    /** Cell whose first result frame is corrupted (-1 = off). */
    int corruptCell = -1;

    /** Whether any injection is enabled. */
    bool any() const
    {
        return killWorker >= 0 || stallCell >= 0 || corruptCell >= 0;
    }
};

/** Configuration of the sharded execution layer. */
struct SweepShardConfig
{
    /** Worker processes (0 = hardware threads, capped by cells). */
    unsigned workers = 0;
    /** Per-cell deadline between heartbeat/result frames. */
    std::uint32_t cellTimeoutMs = 120000;
    /** Retries per cell after its first failed attempt. */
    std::uint32_t maxRetries = 2;
    /** First retry delay; doubles per further attempt. */
    std::uint32_t backoffBaseMs = 25;
    /**
     * Directory for postmortem incident dumps (one JSON file per
     * worker crash/timeout/desync), created on first use. Empty
     * disables postmortem writing.
     */
    std::string postmortemDir;
    /** Deterministic fault injection into the shard machinery. */
    ShardChaosConfig chaos;
};

/** Observability counters of one sharded run. */
struct SweepShardStats
{
    /** Worker processes actually forked at startup. */
    unsigned workers = 0;
    /** Grid cells merged into the report (never less than the grid). */
    std::uint64_t cells = 0;
    /** Cells a worker completed beyond its fair static share. */
    std::uint64_t stolenCells = 0;
    /** Worker deaths observed (crash, kill or chaos). */
    std::uint64_t workerCrashes = 0;
    /** Workers forked again after a death. */
    std::uint64_t respawns = 0;
    /** Cell attempts requeued with backoff. */
    std::uint64_t retries = 0;
    /** Cells whose deadline expired (the worker was killed). */
    std::uint64_t timeouts = 0;
    /** Result frames dropped for checksum or parse failures. */
    std::uint64_t corruptFrames = 0;
    /** Cells that exhausted retries and ran in-process. */
    std::uint64_t degradedCells = 0;
    /** Telemetry frames received from workers. */
    std::uint64_t telemetryFrames = 0;
    /** Postmortem incident dumps written under postmortemDir. */
    std::uint64_t postmortemDumps = 0;
    /** Result/error frames dropped as stale (post-requeue arrivals). */
    std::uint64_t staleResults = 0;
    /** Cells completed per worker ordinal (degraded cells excluded). */
    std::vector<std::uint64_t> cellsPerWorker;

    /** Whether any cell fell back to in-process execution. */
    bool degraded() const { return degradedCells > 0; }

    /** One-line human-readable summary. */
    std::string describe() const;
};

/** Sharded sweep: the merged report plus the shard counters. */
struct ShardedSweepResult
{
    CampaignSweepReport report;
    SweepShardStats stats;
};

/** Sharded comparison: the merged report plus the shard counters. */
struct ShardedComparisonResult
{
    GuardPolicyComparisonReport report;
    SweepShardStats stats;
};

/**
 * Run the campaign sweep of `config` sharded over forked workers.
 * The merged report is byte-identical to runCampaignSweep for any
 * worker count and any injected chaos (timing fields excepted).
 * Validation failures mirror runCampaignSweep; worker failures
 * never fail the run — they degrade it (stats.degraded()).
 */
Result<ShardedSweepResult>
runShardedCampaignSweep(const DesignPoint &design,
                        const NetworkModel &network,
                        const CampaignSweepConfig &config,
                        const SweepShardConfig &shard);

/**
 * Run the guard-policy comparison of `config` sharded over forked
 * workers, with the same merge and degradation contract as
 * runShardedCampaignSweep.
 */
Result<ShardedComparisonResult>
runShardedGuardPolicyComparison(const DesignPoint &design,
                                const NetworkModel &network,
                                const CampaignSweepConfig &config,
                                const SweepShardConfig &shard);

/**
 * Serialize one per-cell report to the JSON payload of a CellResult
 * frame. Lossless: doubles render in shortest round-trip form and
 * u64 counters as exact integers.
 */
std::string serializeCellReport(const FaultCampaignReport &report);

/**
 * Parse a CellResult payload back into the report. Any malformed
 * or truncated payload fails with ErrorCode::ParseError (the
 * coordinator retries the cell); a valid payload reconstructs the
 * report bit-identically.
 */
Result<FaultCampaignReport> parseCellReport(const std::string &text);

/**
 * Canonical JSON of a sweep report for equality comparisons:
 * everything except the wall-clock throughput fields (trialSeconds,
 * trialsPerSecond), which differ run to run by construction.
 */
std::string canonicalSweepJson(const CampaignSweepReport &report);

/** Canonical JSON of a comparison report (same exclusions). */
std::string
canonicalComparisonJson(const GuardPolicyComparisonReport &report);

} // namespace rana

#endif // RANA_ROBUST_SWEEP_SHARD_HH_
