/**
 * @file
 * Implementation of the per-bank retention sampler.
 */

#include "robust/retention_sampler.hh"

#include <cmath>

#include "util/logging.hh"

namespace rana {

RetentionSampler::RetentionSampler(
    const RetentionDistribution &distribution,
    std::uint64_t cells_per_bank)
    : distribution_(distribution),
      cellsPerBank_(cells_per_bank)
{
    RANA_ASSERT(cells_per_bank > 0,
                "a bank must contain at least one cell");
}

double
RetentionSampler::sampleWeakestCell(Rng &rng) const
{
    // Inverse transform of the minimum order statistic: with
    // u ~ U[0, 1), solve F_min(t) = u for the cell-level quantile
    // F(t) = 1 - (1 - u)^(1/C), computed via expm1/log1p to keep
    // precision for the tiny quantiles a large C produces.
    const double u = rng.uniform();
    const double cell_quantile = -std::expm1(
        std::log1p(-u) / static_cast<double>(cellsPerBank_));
    return distribution_.retentionTimeFor(cell_quantile);
}

std::vector<double>
RetentionSampler::sampleBanks(std::uint32_t num_banks, Rng &rng) const
{
    std::vector<double> retention(num_banks);
    for (std::uint32_t b = 0; b < num_banks; ++b)
        retention[b] = sampleWeakestCell(rng);
    return retention;
}

} // namespace rana
