/**
 * @file
 * Per-bank weak-cell retention-time sampling.
 *
 * The retention distribution (Figure 8) is the cumulative fraction
 * F(t) of *cells* with retention time at most t. What decides whether
 * a buffered tensor corrupts is the weakest cell of each bank it
 * occupies: a bank of C cells survives an exposure of E seconds only
 * when every one of its cells retains longer than E, which happens
 * with probability (1 - F(E))^C. The sampler draws each bank's
 * weakest-cell retention time by inverse transform from that order
 * statistic, F_min(t) = 1 - (1 - F(t))^C, so fault campaigns see the
 * realistic "a few unlucky banks per chip" failure pattern instead of
 * a uniform per-bit haze.
 *
 * Sampling maps the order-statistic quantile back through the
 * distribution's retentionTimeFor(), which clamps to the weakest-cell
 * anchor (45us): no sampled bank is ever weaker than the paper's
 * worst-case cell, and exposures below the conventional interval are
 * always safe.
 */

#ifndef RANA_ROBUST_RETENTION_SAMPLER_HH_
#define RANA_ROBUST_RETENTION_SAMPLER_HH_

#include <cstdint>
#include <vector>

#include "edram/retention_distribution.hh"
#include "util/random.hh"

namespace rana {

/** Samples per-bank weakest-cell retention times. */
class RetentionSampler
{
  public:
    /**
     * @param distribution  cell retention-time distribution
     * @param cells_per_bank number of cells (bits) in one bank
     */
    RetentionSampler(const RetentionDistribution &distribution,
                     std::uint64_t cells_per_bank);

    /**
     * Draw the weakest-cell retention time of one bank, in seconds.
     * Deterministic given the Rng state.
     */
    double sampleWeakestCell(Rng &rng) const;

    /** Draw one retention time per bank of a whole buffer pool. */
    std::vector<double> sampleBanks(std::uint32_t num_banks,
                                    Rng &rng) const;

    /** Cells per bank the order statistic is taken over. */
    std::uint64_t cellsPerBank() const { return cellsPerBank_; }

    /** The underlying cell distribution. */
    const RetentionDistribution &distribution() const
    {
        return distribution_;
    }

  private:
    RetentionDistribution distribution_;
    std::uint64_t cellsPerBank_;
};

} // namespace rana

#endif // RANA_ROBUST_RETENTION_SAMPLER_HH_
