/**
 * @file
 * End-to-end retention-fault campaign engine (EDEN-style validation
 * of an approximate-retention operating point).
 *
 * The scheduler certifies a design point by *predicting* that every
 * buffered tensor's data lifetime stays below the tolerable retention
 * time. The campaign closes the loop operationally:
 *
 *   1. compile the network's schedule for the design point;
 *   2. execute it on the loop-nest trace simulator — optionally
 *      under injected timing faults and/or with the runtime
 *      ReliabilityGuard attached — and take each buffered tensor's
 *      *observed* lifetime from the simulator's read events;
 *   3. per trial, sample every bank's weakest-cell retention time
 *      from the retention distribution (order statistic over the
 *      bank's cells) and mark the banks whose exposure exceeds it;
 *   4. convert the exposed words into effective per-bit failure
 *      rates for weights and activations, inject bit errors at those
 *      rates into a replica of the trained mini model, and measure
 *      the end-to-end test accuracy of the corrupted forward pass.
 *
 * Trials are embarrassingly parallel and run on the shared thread
 * pool into per-trial result slots, so the report is deterministic
 * per seed regardless of the lane count.
 *
 * The phases are exposed individually (simulateExposures /
 * prepareCampaignModel / runPreparedCampaign) so a sweep over a
 * failure-rate x refresh-interval grid can reuse the expensive
 * products: the trace is simulated once per schedule and the model
 * trained once per rate, not once per grid point. All trials of a
 * prepared campaign share one immutable pre-quantized weight store
 * bound into one skeleton model — a trial copies the weights only
 * when its sampled chip actually injects bit errors
 * (copy-on-corrupt).
 */

#ifndef RANA_ROBUST_FAULT_CAMPAIGN_HH_
#define RANA_ROBUST_FAULT_CAMPAIGN_HH_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.hh"
#include "edram/reliability_guard.hh"
#include "nn/network_model.hh"
#include "robust/retention_sampler.hh"
#include "sim/performance_model.hh"
#include "train/trainer.hh"
#include "util/result.hh"

namespace rana {

class TraceSink;

/** Default trial block of the batched forward path (laneBlock=0). */
constexpr std::uint32_t kDefaultLaneBlock = 16;

/** Configuration of one fault-injection campaign. */
struct FaultCampaignConfig
{
    /** Independent retention-sampling trials. */
    std::uint32_t trials = 8;
    /** Master seed; every trial derives its own seed from it. */
    std::uint64_t seed = 1;
    /** Worker lanes for the trial fan-out (0 = hardware threads). */
    unsigned jobs = 0;
    /**
     * Trials fused per batched forward pass: the corrupted forwards
     * run laneBlock trials at a time through the lane-major kernels
     * (train/trial_batch.hh). 0 picks the tuned default block; 1
     * forces the scalar per-trial reference path. Any value yields
     * bit-identical reports — the block size is a speed knob only.
     */
    std::uint32_t laneBlock = 0;
    /** Mini model standing in for the paper benchmark. */
    MiniModelKind model = MiniModelKind::MiniVgg;
    /** Synthetic dataset the mini model trains on. */
    DatasetConfig dataset;
    /** Trainer hyper-parameters. */
    TrainerConfig trainer;
    /**
     * Retrain the model at the design's failure rate before the
     * campaign (the paper's retention-aware training); without it
     * the pretrained fixed-point model is used as-is, which is the
     * untrained control.
     */
    bool retrain = true;
    /** Timing perturbations injected into the simulated execution. */
    TimingFaults timingFaults;
    /** Attach the runtime ReliabilityGuard during simulation. */
    bool guard = false;
    /** Decision policy of the attached guard (guard = true only). */
    GuardPolicySpec guardPolicy;
    /** Cell retention-time distribution banks are sampled from. */
    RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    /**
     * Observer of every simulated-execution event (nullptr = none;
     * not owned). The timeline exporter hangs off this: attach a
     * TimelineTraceSink to draw the campaign's simulations on the
     * simulated-time axis.
     */
    TraceSink *traceSink = nullptr;
};

/**
 * Fluent assembler for FaultCampaignConfig, mirroring
 * SchedulerOptionsBuilder: call sites name the knobs they set
 * instead of mutating the struct field by field. The plain struct
 * stays the built product.
 */
class FaultCampaignConfigBuilder
{
  public:
    /** Independent retention-sampling trials. */
    FaultCampaignConfigBuilder &trials(std::uint32_t value)
    {
        config_.trials = value;
        return *this;
    }

    /** Master seed; every trial derives its own seed from it. */
    FaultCampaignConfigBuilder &seed(std::uint64_t value)
    {
        config_.seed = value;
        return *this;
    }

    /** Worker lanes for the trial fan-out (0 = hardware threads). */
    FaultCampaignConfigBuilder &jobs(unsigned value)
    {
        config_.jobs = value;
        return *this;
    }

    /** Trials fused per batched forward (0 = default, 1 = scalar). */
    FaultCampaignConfigBuilder &laneBlock(std::uint32_t value)
    {
        config_.laneBlock = value;
        return *this;
    }

    /** Mini model standing in for the paper benchmark. */
    FaultCampaignConfigBuilder &model(MiniModelKind value)
    {
        config_.model = value;
        return *this;
    }

    /** Synthetic dataset the mini model trains on. */
    FaultCampaignConfigBuilder &dataset(const DatasetConfig &value)
    {
        config_.dataset = value;
        return *this;
    }

    /** Trainer hyper-parameters. */
    FaultCampaignConfigBuilder &trainer(const TrainerConfig &value)
    {
        config_.trainer = value;
        return *this;
    }

    /** Retrain at the design's failure rate before the campaign. */
    FaultCampaignConfigBuilder &retrain(bool value)
    {
        config_.retrain = value;
        return *this;
    }

    /** Timing perturbations injected into the simulation. */
    FaultCampaignConfigBuilder &timingFaults(const TimingFaults &value)
    {
        config_.timingFaults = value;
        return *this;
    }

    /** Attach the runtime ReliabilityGuard during simulation. */
    FaultCampaignConfigBuilder &guard(bool value)
    {
        config_.guard = value;
        return *this;
    }

    /** Decision policy of the attached guard. */
    FaultCampaignConfigBuilder &guardPolicy(const GuardPolicySpec &value)
    {
        config_.guardPolicy = value;
        return *this;
    }

    /** Cell retention-time distribution banks are sampled from. */
    FaultCampaignConfigBuilder &
    retention(const RetentionDistribution &value)
    {
        config_.retention = value;
        return *this;
    }

    /** Observer of simulated-execution events (not owned). */
    FaultCampaignConfigBuilder &traceSink(TraceSink *value)
    {
        config_.traceSink = value;
        return *this;
    }

    /** The assembled configuration. */
    FaultCampaignConfig build() const { return config_; }

  private:
    FaultCampaignConfig config_;
};

/** One (layer, data type) exposure record. */
struct LayerExposure
{
    std::string layerName;
    /** Exposure time per data type in seconds (0 = not buffered). */
    std::array<double, numDataTypes> exposureSeconds = {0.0, 0.0, 0.0};
    /** Observed lifetime per data type from the simulator. */
    std::array<double, numDataTypes> observedLifetimeSeconds = {
        0.0, 0.0, 0.0};
    /** Banks allocated per data type. */
    std::array<std::uint32_t, numDataTypes> banks = {0, 0, 0};
    /** Buffered words per data type. */
    std::array<std::uint64_t, numDataTypes> words = {0, 0, 0};
    /** First physical bank index per data type. */
    std::array<std::uint32_t, numDataTypes> bankStart = {0, 0, 0};
};

/**
 * Simulated-execution products of one (design, network) pair:
 * per-layer observed-lifetime exposures plus the run's controller
 * counters. Depends on the schedule, the refresh interval, the
 * timing faults and the guard — but not on the failure rate — so a
 * sweep computes one CampaignExposures per refresh interval and
 * reuses it across every failure-rate point.
 */
struct CampaignExposures
{
    std::string networkName;
    /** Per-layer exposure records. */
    std::vector<LayerExposure> exposures;
    /** Simulated execution time in seconds (with timing faults). */
    double executionSeconds = 0.0;
    /** Corrupted-word events: stale reads the controller counted. */
    std::uint64_t retentionViolations = 0;
    /** Refresh operations the simulated run issued. */
    std::uint64_t refreshOps = 0;
    /** Whether the ReliabilityGuard was attached. */
    bool guarded = false;
    /** Name of the guard's decision policy ("" when unguarded). */
    std::string guardPolicyName;
    /** Guard counters of the simulated run (zero when unguarded). */
    ReliabilityGuard::Stats guardStats;
};

/**
 * Trained stand-in model in campaign form: an immutable
 * pre-quantized shared weight store plus the held-out test batch.
 * One CampaignModel serves every trial of every campaign at its
 * failure rate; trials read the store in place and copy only on
 * corruption.
 */
struct CampaignModel
{
    std::string modelName;
    /** Error-free fixed-point baseline accuracy. */
    double baselineAccuracy = 0.0;
    /** Failure rate the store was retrained for (0 = pretrained). */
    double failureRate = 0.0;
    /** Pre-quantized shared weight snapshot, in params() order. */
    WeightStore weights;
    /** Held-out test batch the trials evaluate on. */
    Batch test;
    /** Fixed-point format the store is quantized to. */
    FixedPointFormat format = {12};
};

/** Result of one campaign trial. */
struct TrialResult
{
    /** The trial's derived seed. */
    std::uint64_t seed = 0;
    /** Effective per-bit failure rate injected into weights. */
    double weightFailureRate = 0.0;
    /** Effective per-bit failure rate injected into activations. */
    double activationFailureRate = 0.0;
    /** Banks whose exposure exceeded their sampled retention. */
    std::uint64_t exposedBanks = 0;
    /** Buffered words in exposed banks. */
    std::uint64_t exposedWords = 0;
    /** Top-1 accuracy of the corrupted forward pass. */
    double accuracy = 0.0;
    /** Accuracy relative to the fixed-point baseline. */
    double relativeAccuracy = 0.0;
};

/** Report of one fault-injection campaign. */
struct FaultCampaignReport
{
    std::string designName;
    std::string networkName;
    std::string modelName;

    /** Error-free fixed-point baseline accuracy. */
    double baselineAccuracy = 0.0;
    /** The design's tolerated failure rate (retraining target). */
    double operatingFailureRate = 0.0;

    /** Per-trial results, in trial order. */
    std::vector<TrialResult> trials;
    /** Per-layer exposure records. */
    std::vector<LayerExposure> exposures;

    /** Mean accuracy over the trials. */
    double meanAccuracy = 0.0;
    /** Worst (minimum) trial accuracy. */
    double worstAccuracy = 0.0;
    /** Mean relative accuracy over the trials. */
    double meanRelativeAccuracy = 0.0;
    /** Worst (minimum) trial relative accuracy. */
    double worstRelativeAccuracy = 0.0;
    /** 5th percentile trial accuracy (lower band edge). */
    double p5Accuracy = 0.0;
    /** Median trial accuracy. */
    double p50Accuracy = 0.0;
    /** 95th percentile trial accuracy (upper band edge). */
    double p95Accuracy = 0.0;
    /** 5th percentile relative accuracy. */
    double p5RelativeAccuracy = 0.0;
    /** Median relative accuracy. */
    double p50RelativeAccuracy = 0.0;
    /** 95th percentile relative accuracy. */
    double p95RelativeAccuracy = 0.0;
    /** Mean effective weight failure rate over the trials. */
    double meanWeightFailureRate = 0.0;
    /** Mean effective activation failure rate over the trials. */
    double meanActivationFailureRate = 0.0;

    /** Simulated execution time in seconds (with timing faults). */
    double executionSeconds = 0.0;
    /** Corrupted-word events: stale reads the controller counted. */
    std::uint64_t retentionViolations = 0;
    /** Refresh operations the simulated run issued. */
    std::uint64_t refreshOps = 0;

    /**
     * Wall-clock seconds the trial fan-out took (sampling, corrupted
     * forwards and accuracy measurement). Timing only — excluded
     * from report-equality comparisons.
     */
    double trialSeconds = 0.0;
    /** Trials per wall-clock second (the campaign throughput). */
    double trialsPerSecond = 0.0;

    /** Whether the ReliabilityGuard was attached. */
    bool guarded = false;
    /** Name of the guard's decision policy ("" when unguarded). */
    std::string guardPolicyName;
    /** Guard counters of the simulated run (zero when unguarded). */
    ReliabilityGuard::Stats guardStats;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/**
 * Run one fault-injection campaign of `config` for `design` on
 * `network`. Fails with the scheduler's error when the design cannot
 * run the network, and with ErrorCode::InvalidArgument when the
 * campaign configuration is degenerate (zero trials).
 */
Result<FaultCampaignReport>
runFaultCampaign(const DesignPoint &design, const NetworkModel &network,
                 const FaultCampaignConfig &config);

/**
 * Campaign phases 1+2: compile the network's schedule for `design`,
 * execute it on the trace simulator under the config's timing faults
 * and (optionally) the runtime guard, and convert each buffered
 * tensor's observed lifetime into a per-(layer, type) exposure.
 * Fails with the scheduler's error when the design cannot run the
 * network.
 */
Result<CampaignExposures>
simulateExposures(const DesignPoint &design,
                  const NetworkModel &network,
                  const FaultCampaignConfig &config);

/**
 * Campaign phase 3: turn a *pretrained* trainer into the
 * CampaignModel for `failure_rate` — restore the pretrained
 * snapshot, retrain at the rate when the config asks for it, and
 * export the pre-quantized shared weight store.
 */
CampaignModel
prepareCampaignModel(RetentionAwareTrainer &trainer,
                     const FaultCampaignConfig &config,
                     double failure_rate);

/**
 * Campaign phase 4: the parallel trial fan-out against prepared
 * exposures and a prepared model. Fails with
 * ErrorCode::InvalidArgument when the configuration asks for zero
 * trials.
 */
Result<FaultCampaignReport>
runPreparedCampaign(const DesignPoint &design,
                    const CampaignExposures &exposures,
                    const CampaignModel &model,
                    const FaultCampaignConfig &config);

} // namespace rana

#endif // RANA_ROBUST_FAULT_CAMPAIGN_HH_
