/**
 * @file
 * Campaign sweep engine: the Figure-16-style frontier.
 *
 * The paper picks one operating point per design (a tolerable
 * failure rate and the retention time it buys); EDEN-style
 * characterization instead maps the whole accuracy surface over a
 * failure-rate x refresh-interval grid. The sweep drives the fault
 * campaign's phases over that cartesian grid while reusing the
 * expensive products:
 *
 *   - the trace is simulated once per refresh interval (the
 *     schedule and the observed lifetimes depend on the interval,
 *     not on the rate);
 *   - the stand-in model is pretrained once and retrained once per
 *     failure rate (retention-aware training targets the rate, not
 *     the interval);
 *   - each grid cell then runs only the cheap trial fan-out against
 *     the shared pre-quantized weight store.
 *
 * Every per-cell report carries the p5/p50/p95/worst accuracy band,
 * so the sweep output is directly comparable to the paper's bounded
 * accuracy-loss claim instead of a single mean.
 */

#ifndef RANA_ROBUST_CAMPAIGN_SWEEP_HH_
#define RANA_ROBUST_CAMPAIGN_SWEEP_HH_

#include <cstddef>
#include <string>
#include <vector>

#include "core/report.hh"
#include "robust/fault_campaign.hh"

namespace rana {

/** Configuration of one campaign sweep. */
struct CampaignSweepConfig
{
    /** Failure rates of the grid rows (retraining targets). */
    std::vector<double> failureRates;
    /** Refresh intervals of the grid columns, in seconds. */
    std::vector<double> refreshIntervals;
    /** Per-cell campaign configuration (trials, seed, jobs, ...). */
    FaultCampaignConfig campaign;
    /**
     * Guard policies of the comparison axis
     * (runGuardPolicyComparison only; runCampaignSweep uses
     * campaign.guardPolicy). Empty = compare the three stock
     * policies at their default knobs.
     */
    std::vector<GuardPolicySpec> guardPolicies;
};

/** One grid cell: a full campaign at (rate, interval). */
struct SweepCell
{
    double failureRate = 0.0;
    double refreshIntervalSeconds = 0.0;
    FaultCampaignReport report;
};

/** Report of one campaign sweep. */
struct CampaignSweepReport
{
    std::string designName;
    std::string networkName;
    std::string modelName;
    /** Error-free fixed-point baseline accuracy. */
    double baselineAccuracy = 0.0;
    /** Grid row values (failure rates), in configuration order. */
    std::vector<double> failureRates;
    /** Grid column values (refresh intervals), in config order. */
    std::vector<double> refreshIntervals;
    /** Cells in row-major order (rate-major, interval-minor). */
    std::vector<SweepCell> cells;

    /** The cell at (rate index, interval index). */
    const SweepCell &at(std::size_t rate, std::size_t interval) const;

    /**
     * Markdown grid of relative accuracy per cell, rendered as
     * "p50 [p5, p95]" with fixed precision — byte-identical per
     * seed for any lane count.
     */
    std::string percentileTable() const;
};

/**
 * Sweep the fault campaign of `config.campaign` for `design` on
 * `network` over the cartesian failureRates x refreshIntervals
 * grid. Fails with ErrorCode::InvalidArgument on a degenerate grid
 * (an empty axis, a non-positive interval, a rate outside [0, 1),
 * or zero trials) and with the scheduler's error when the design
 * cannot run the network at some interval.
 */
Result<CampaignSweepReport>
runCampaignSweep(const DesignPoint &design, const NetworkModel &network,
                 const CampaignSweepConfig &config);

struct GuardPolicyComparisonReport;

/**
 * Every expensive phase product of a sweep (or a guard-policy
 * comparison) materialized up front: the per-interval simulated
 * exposures, the pretrained stand-in model and one retrained
 * weight store per failure rate. Grid cells then run independently
 * — in any order, on any thread, or in a forked worker process
 * (robust/sweep_shard), which inherits the whole plan copy-on-
 * write — and each cell is deterministic in isolation, so a
 * sharded run merges to the byte-identical single-process report.
 */
class PreparedSweep
{
  public:
    /** Prepare the plain failure-rate x interval sweep. Validation
     *  mirrors runCampaignSweep. */
    static Result<PreparedSweep>
    prepareSweep(const DesignPoint &design,
                 const NetworkModel &network,
                 const CampaignSweepConfig &config);

    /** Prepare the guard-policy comparison grid (policy x rate x
     *  interval; the three stock policies when none are given). */
    static Result<PreparedSweep>
    prepareComparison(const DesignPoint &design,
                      const NetworkModel &network,
                      const CampaignSweepConfig &config);

    /** Grid cells in linear order (rate-major for the sweep;
     *  policy-major, then rate, then interval for the comparison). */
    std::size_t cellCount() const;

    /** Whether this plan is a guard-policy comparison. */
    bool comparison() const { return comparison_; }

    /**
     * Run one grid cell. Deterministic per cell for any lane count;
     * `jobs_override` > 0 forces that many trial lanes (forked
     * workers pass 1 — they must not touch the inherited thread
     * pool, whose worker threads do not exist after fork).
     */
    Result<FaultCampaignReport>
    runCell(std::size_t cell, unsigned jobs_override = 0) const;

    /** Grid row values (failure rates), in configuration order. */
    const std::vector<double> &failureRates() const
    {
        return failureRates_;
    }

    /** Grid column values (refresh intervals), in config order. */
    const std::vector<double> &refreshIntervals() const
    {
        return refreshIntervals_;
    }

    /**
     * Assemble the sweep report from per-cell results in linear
     * cell order. @pre !comparison() and one result per cell.
     */
    CampaignSweepReport
    assembleSweep(std::vector<FaultCampaignReport> cells) const;

    /**
     * Assemble the comparison report from per-cell results in
     * linear cell order. @pre comparison() and one result per cell.
     */
    GuardPolicyComparisonReport
    assembleComparison(std::vector<FaultCampaignReport> cells) const;

  private:
    PreparedSweep() = default;

    /** Shared tail of both factories (training + rate models). */
    void prepareModels(const CampaignSweepConfig &config);

    bool comparison_ = false;
    DesignPoint design_;
    std::string networkName_;
    std::string modelName_;
    double baselineAccuracy_ = 0.0;
    std::vector<double> failureRates_;
    std::vector<double> refreshIntervals_;
    /** Policy names of the comparison axis (empty for the sweep). */
    std::vector<std::string> policyNames_;
    /** Per-policy campaign configs (exactly one for the sweep). */
    std::vector<FaultCampaignConfig> campaigns_;
    /** Simulated exposures, [policy][interval] ([0][i] for sweep). */
    std::vector<std::vector<CampaignExposures>> exposures_;
    /** One retrained shared weight store per failure rate. */
    std::vector<CampaignModel> models_;
};

/** One cell of the guard-policy comparison grid. */
struct GuardPolicyComparisonCell
{
    std::string policyName;
    double failureRate = 0.0;
    double refreshIntervalSeconds = 0.0;
    FaultCampaignReport report;
};

/**
 * Report of one guard-policy comparison: the sweep grid replicated
 * once per guard policy, with the guard attached everywhere.
 */
struct GuardPolicyComparisonReport
{
    std::string designName;
    std::string networkName;
    std::string modelName;
    /** Error-free fixed-point baseline accuracy. */
    double baselineAccuracy = 0.0;
    /** Policy names of the comparison axis, in config order. */
    std::vector<std::string> policyNames;
    /** Grid row values (failure rates), in configuration order. */
    std::vector<double> failureRates;
    /** Grid column values (refresh intervals), in config order. */
    std::vector<double> refreshIntervals;
    /** Cells in policy-major, rate-major, interval-minor order. */
    std::vector<GuardPolicyComparisonCell> cells;

    /** The cell at (policy index, rate index, interval index). */
    const GuardPolicyComparisonCell &at(std::size_t policy,
                                        std::size_t rate,
                                        std::size_t interval) const;

    /**
     * The policy's counters summed over its grid plus the pooled
     * relative-accuracy band of all its trials.
     */
    GuardPolicyRow policyRow(std::size_t policy) const;

    /**
     * Markdown guard-policy table: one row per policy, counters
     * summed over the grid — byte-identical per seed for any lane
     * count.
     */
    std::string comparisonTable() const;
};

/**
 * Compare the guard policies of `config.guardPolicies` (the three
 * stock policies when empty) on the failureRates x refreshIntervals
 * grid of `config`: each policy re-simulates the exposures per
 * interval with the guard attached, while the pretrained stand-in
 * model and its per-rate retraining are shared across policies.
 * Validation failures mirror runCampaignSweep.
 */
Result<GuardPolicyComparisonReport>
runGuardPolicyComparison(const DesignPoint &design,
                         const NetworkModel &network,
                         const CampaignSweepConfig &config);

} // namespace rana

#endif // RANA_ROBUST_CAMPAIGN_SWEEP_HH_
