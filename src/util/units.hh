/**
 * @file
 * Unit constants and human-readable formatting for bytes, time and
 * energy.
 *
 * Conventions used throughout the library:
 *  - storage is counted in 16-bit words unless a name says "bytes";
 *  - time is held in seconds (double); helper constants express
 *    micro/nano seconds;
 *  - energy is held in joules (double); basic per-operation costs are
 *    quoted in picojoules as in the paper's Table III.
 */

#ifndef RANA_UTIL_UNITS_HH_
#define RANA_UTIL_UNITS_HH_

#include <cstdint>
#include <string>

namespace rana {

/** Bytes per 16-bit data word (the paper evaluates 16-bit precision). */
constexpr std::uint64_t bytesPerWord = 2;

constexpr std::uint64_t kib = 1024;
constexpr std::uint64_t mib = 1024 * 1024;

constexpr double picoJoule = 1e-12;
constexpr double microJoule = 1e-6;
constexpr double milliJoule = 1e-3;

constexpr double nanoSecond = 1e-9;
constexpr double microSecond = 1e-6;
constexpr double milliSecond = 1e-3;

constexpr double megaHertz = 1e6;

/** Convert a count of 16-bit words to bytes. */
constexpr std::uint64_t
wordsToBytes(std::uint64_t words)
{
    return words * bytesPerWord;
}

/** Convert a byte count to 16-bit words, rounding up. */
constexpr std::uint64_t
bytesToWords(std::uint64_t bytes)
{
    return (bytes + bytesPerWord - 1) / bytesPerWord;
}

/** Format a byte count as a human-readable string, e.g. "1.45MB". */
std::string formatBytes(std::uint64_t bytes);

/** Format seconds as a human-readable string, e.g. "45.0us". */
std::string formatTime(double seconds);

/** Format joules as a human-readable string, e.g. "3.2mJ". */
std::string formatEnergy(double joules);

/** Format a double with the given number of decimals. */
std::string formatDouble(double value, int decimals);

/**
 * Format a ratio as a percentage string with one decimal, e.g.
 * "66.2%".
 */
std::string formatPercent(double fraction);

} // namespace rana

#endif // RANA_UTIL_UNITS_HH_
