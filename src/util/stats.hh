/**
 * @file
 * Small statistics helpers used when summarizing experiment series
 * (the paper reports geometric means across benchmarks, e.g. the
 * GMEAN column in Figure 15).
 */

#ifndef RANA_UTIL_STATS_HH_
#define RANA_UTIL_STATS_HH_

#include <cstddef>
#include <vector>

namespace rana {

/** Arithmetic mean. @pre values non-empty. */
double mean(const std::vector<double> &values);

/** Geometric mean. @pre values non-empty and all positive. */
double geomean(const std::vector<double> &values);

/** Population standard deviation. @pre values non-empty. */
double stddev(const std::vector<double> &values);

/** Minimum element. @pre values non-empty. */
double minOf(const std::vector<double> &values);

/** Maximum element. @pre values non-empty. */
double maxOf(const std::vector<double> &values);

/**
 * The p-th percentile (0..100) of the sample, with linear
 * interpolation between order statistics (the common "linear" /
 * C = 1 variant: rank = p/100 * (n-1)). @pre values non-empty.
 */
double percentile(const std::vector<double> &values, double p);

/**
 * Running accumulator for counts/min/max/mean without storing the
 * full sample.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Number of samples added. */
    std::size_t count() const { return count_; }

    /** Mean of the samples added so far. @pre count() > 0. */
    double mean() const;

    /** Smallest sample. @pre count() > 0. */
    double min() const;

    /** Largest sample. @pre count() > 0. */
    double max() const;

    /** Sum of the samples. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace rana

#endif // RANA_UTIL_STATS_HH_
