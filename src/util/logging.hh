/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * Four severity levels are provided:
 *  - inform(): normal operating messages.
 *  - warn():   something is suspicious but the run can continue.
 *  - fatal():  the run cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits with
 *              status 1.
 *  - panic():  the run cannot continue because of an internal bug;
 *              aborts so a core dump / debugger can be attached.
 *
 * Emission is observability-friendly: each line goes out as one
 * write() so concurrent threads never interleave mid-line, every
 * call bumps a per-level counter (exported as log_<level>_total in
 * metrics snapshots), and the RANA_LOG_LEVEL environment variable
 * ("info", "warn", "fatal") suppresses printing below the chosen
 * level. Filtering never suppresses the exit/abort of fatal() and
 * panic(), and suppressed calls still count.
 */

#ifndef RANA_UTIL_LOGGING_HH_
#define RANA_UTIL_LOGGING_HH_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rana {

/** Severity of a log message. */
enum class LogLevel {
    Info,
    Warn,
    Fatal,
    Panic,
};

/**
 * Lowest level that is printed. Initialized from RANA_LOG_LEVEL on
 * first use; setMinLogLevel overrides it (tests, embedding apps).
 */
LogLevel minLogLevel();

/** Override the emission threshold at runtime. */
void setMinLogLevel(LogLevel level);

/** How many times `level` was logged (filtered calls included). */
std::uint64_t logMessageCount(LogLevel level);

namespace detail {

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Count and (unless filtered) emit one log line to stderr. */
void emitLog(LogLevel level, const std::string &msg);

} // namespace detail

/** Print a normal status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Info,
                    detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error (bad configuration or arguments)
 * and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitLog(LogLevel::Fatal,
                    detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitLog(LogLevel::Panic,
                    detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** Panic unless a condition holds. */
#define RANA_ASSERT(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::rana::panic("assertion failed: ", #cond, " ",             \
                          ::rana::detail::concat(__VA_ARGS__), " (",    \
                          __FILE__, ":", __LINE__, ")");                \
        }                                                               \
    } while (0)

} // namespace rana

#endif // RANA_UTIL_LOGGING_HH_
