/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

#include <atomic>
#include <cstring>

#include <unistd.h>

namespace rana {

namespace {

/** Per-level call counts, indexed by LogLevel. */
std::atomic<std::uint64_t> logCounts[4];

/** -1 until the first read resolves RANA_LOG_LEVEL. */
std::atomic<int> minLevel{-1};

int
parseEnvLogLevel()
{
    const char *env = std::getenv("RANA_LOG_LEVEL");
    if (env == nullptr)
        return static_cast<int>(LogLevel::Info);
    if (std::strcmp(env, "warn") == 0)
        return static_cast<int>(LogLevel::Warn);
    if (std::strcmp(env, "fatal") == 0)
        return static_cast<int>(LogLevel::Fatal);
    return static_cast<int>(LogLevel::Info);
}

} // namespace

LogLevel
minLogLevel()
{
    int level = minLevel.load(std::memory_order_relaxed);
    if (level < 0) {
        level = parseEnvLogLevel();
        int expected = -1;
        if (!minLevel.compare_exchange_strong(
                expected, level, std::memory_order_relaxed)) {
            level = expected;
        }
    }
    return static_cast<LogLevel>(level);
}

void
setMinLogLevel(LogLevel level)
{
    minLevel.store(static_cast<int>(level),
                   std::memory_order_relaxed);
}

std::uint64_t
logMessageCount(LogLevel level)
{
    return logCounts[static_cast<std::size_t>(level)].load(
        std::memory_order_relaxed);
}

namespace detail {

void
emitLog(LogLevel level, const std::string &msg)
{
    logCounts[static_cast<std::size_t>(level)].fetch_add(
        1, std::memory_order_relaxed);
    if (static_cast<int>(level) <
        static_cast<int>(minLogLevel())) {
        return;
    }
    const char *prefix = "";
    switch (level) {
      case LogLevel::Info:
        prefix = "info: ";
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
    }
    // Assemble the whole line first and hand it to the kernel in a
    // single write() so lines from concurrent threads never
    // interleave (iostream inserters interleave per operand).
    std::string line;
    line.reserve(std::strlen(prefix) + msg.size() + 1);
    line += prefix;
    line += msg;
    line += '\n';
    ssize_t ignored =
        ::write(STDERR_FILENO, line.data(), line.size());
    (void)ignored;
}

} // namespace detail
} // namespace rana
