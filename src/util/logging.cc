/**
 * @file
 * Implementation of the logging helpers.
 */

#include "util/logging.hh"

namespace rana {
namespace detail {

void
emitLog(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    switch (level) {
      case LogLevel::Info:
        prefix = "info: ";
        break;
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Fatal:
        prefix = "fatal: ";
        break;
      case LogLevel::Panic:
        prefix = "panic: ";
        break;
    }
    std::cerr << prefix << msg << "\n";
}

} // namespace detail
} // namespace rana
