/**
 * @file
 * Implementation of the minimal JSON parser.
 */

#include "util/json_reader.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <optional>

#include "util/logging.hh"

namespace rana {

namespace {

/** Recursion ceiling: a hostile frame cannot blow the stack. */
constexpr int kMaxDepth = 64;

} // namespace

/** Single-pass recursive-descent parser over one text buffer. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Result<JsonValue> parse()
    {
        JsonValue root;
        if (std::optional<Error> bad = parseValue(root, 0))
            return *bad;
        skipWhitespace();
        if (pos_ != text_.size()) {
            return makeError(ErrorCode::ParseError,
                             "trailing bytes after JSON document at "
                             "offset ",
                             pos_);
        }
        return root;
    }

  private:
    std::optional<Error> parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            return makeError(ErrorCode::ParseError,
                             "JSON nesting deeper than ", kMaxDepth);
        }
        skipWhitespace();
        if (pos_ >= text_.size()) {
            return makeError(ErrorCode::ParseError,
                             "unexpected end of JSON document");
        }
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
          case 't':
          case 'f':
            return parseKeyword(out);
          case 'n':
            return parseKeyword(out);
          default:
            return parseNumber(out);
        }
    }

    std::optional<Error> parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
        } else {
            for (;;) {
                skipWhitespace();
                if (peek() != '"') {
                    return makeError(ErrorCode::ParseError,
                                     "expected object key at offset ",
                                     pos_);
                }
                std::string key;
                if (std::optional<Error> bad = parseString(key))
                    return bad;
                skipWhitespace();
                if (peek() != ':') {
                    return makeError(ErrorCode::ParseError,
                                     "expected ':' at offset ", pos_);
                }
                ++pos_;
                JsonValue value;
                if (std::optional<Error> bad =
                        parseValue(value, depth + 1))
                    return bad;
                members.emplace_back(std::move(key),
                                     std::move(value));
                skipWhitespace();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                if (peek() == '}') {
                    ++pos_;
                    break;
                }
                return makeError(ErrorCode::ParseError,
                                 "expected ',' or '}' at offset ",
                                 pos_);
            }
        }
        out.kind_ = JsonValue::Kind::Object;
        out.members_ = std::make_shared<
            const std::vector<std::pair<std::string, JsonValue>>>(
            std::move(members));
        return std::nullopt;
    }

    std::optional<Error> parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        std::vector<JsonValue> items;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
        } else {
            for (;;) {
                JsonValue value;
                if (std::optional<Error> bad =
                        parseValue(value, depth + 1))
                    return bad;
                items.push_back(std::move(value));
                skipWhitespace();
                if (peek() == ',') {
                    ++pos_;
                    continue;
                }
                if (peek() == ']') {
                    ++pos_;
                    break;
                }
                return makeError(ErrorCode::ParseError,
                                 "expected ',' or ']' at offset ",
                                 pos_);
            }
        }
        out.kind_ = JsonValue::Kind::Array;
        out.items_ =
            std::make_shared<const std::vector<JsonValue>>(
                std::move(items));
        return std::nullopt;
    }

    std::optional<Error> parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return std::nullopt;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    break;
                const char escape = text_[pos_ + 1];
                pos_ += 2;
                switch (escape) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (std::optional<Error> bad = parseUnicode(out))
                        return bad;
                    break;
                  }
                  default:
                    return makeError(ErrorCode::ParseError,
                                     "bad escape '\\", escape,
                                     "' at offset ", pos_ - 1);
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return makeError(ErrorCode::ParseError,
                         "unterminated JSON string");
    }

    /** Decode \uXXXX (already consumed) to UTF-8. */
    std::optional<Error> parseUnicode(std::string &out)
    {
        if (pos_ + 4 > text_.size()) {
            return makeError(ErrorCode::ParseError,
                             "truncated \\u escape");
        }
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            code <<= 4;
            if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                return makeError(ErrorCode::ParseError,
                                 "bad \\u escape digit '", c, "'");
            }
        }
        pos_ += 4;
        // BMP-only decoding; surrogate pairs are rejected (the
        // writer never emits them).
        if (code >= 0xD800 && code <= 0xDFFF) {
            return makeError(ErrorCode::ParseError,
                             "surrogate \\u escape unsupported");
        }
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return std::nullopt;
    }

    std::optional<Error> parseKeyword(JsonValue &out)
    {
        if (text_.compare(pos_, 4, "true") == 0) {
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            pos_ += 4;
            return std::nullopt;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            pos_ += 5;
            return std::nullopt;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            out.kind_ = JsonValue::Kind::Null;
            pos_ += 4;
            return std::nullopt;
        }
        return makeError(ErrorCode::ParseError,
                         "bad JSON keyword at offset ", pos_);
    }

    std::optional<Error> parseNumber(JsonValue &out)
    {
        // Validate the JSON number grammar before strtod: strtod
        // alone accepts "inf", "nan" and hex floats, which are not
        // JSON and must fail like any other corrupt byte.
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek()))) {
            pos_ = start;
            return makeError(ErrorCode::ParseError,
                             "bad JSON number at offset ", start);
        }
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                return makeError(ErrorCode::ParseError,
                                 "bad JSON fraction at offset ",
                                 pos_);
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                return makeError(ErrorCode::ParseError,
                                 "bad JSON exponent at offset ",
                                 pos_);
            }
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            return makeError(ErrorCode::ParseError,
                             "bad JSON number '", token, "'");
        }
        out.kind_ = JsonValue::Kind::Number;
        out.number_ = value;
        out.string_ = token; // raw token: exact u64 re-reads
        return std::nullopt;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    /** The current byte, or '\0' at end of input. */
    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Result<JsonValue>
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parse();
}

bool
JsonValue::asBool() const
{
    RANA_ASSERT(isBool(), "JsonValue is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    RANA_ASSERT(isNumber(), "JsonValue is not a number");
    return number_;
}

bool
JsonValue::asUint(std::uint64_t *out) const
{
    if (!isNumber() || string_.empty())
        return false;
    for (char c : string_) {
        if (c < '0' || c > '9')
            return false; // sign, fraction or exponent: not a u64
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(string_.c_str(), &end, 10);
    if (errno == ERANGE || end != string_.c_str() + string_.size())
        return false;
    *out = static_cast<std::uint64_t>(value);
    return true;
}

const std::string &
JsonValue::asString() const
{
    RANA_ASSERT(isString(), "JsonValue is not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    RANA_ASSERT(isArray(), "JsonValue is not an array");
    return *items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    RANA_ASSERT(isObject(), "JsonValue is not an object");
    return *members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[name, value] : *members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

bool
JsonValue::numberOrSentinel(double *out) const
{
    if (isNumber()) {
        *out = number_;
        return true;
    }
    if (isString()) {
        if (string_ == "NaN") {
            *out = std::numeric_limits<double>::quiet_NaN();
            return true;
        }
        if (string_ == "Infinity") {
            *out = std::numeric_limits<double>::infinity();
            return true;
        }
        if (string_ == "-Infinity") {
            *out = -std::numeric_limits<double>::infinity();
            return true;
        }
    }
    return false;
}

} // namespace rana
