/**
 * @file
 * Implementation of the ASCII table printer.
 */

#include "util/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace rana {

TextTable::TextTable(std::string title) : title_(std::move(title))
{
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::rule()
{
    ruleAfter_.push_back(rows_.size());
}

std::string
TextTable::render() const
{
    // Compute per-column widths over header and body.
    std::vector<std::size_t> width;
    auto grow = [&width](const std::vector<std::string> &cells) {
        if (cells.size() > width.size())
            width.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;

    std::ostringstream oss;
    auto emitRule = [&oss, total]() {
        oss << std::string(total, '-') << "\n";
    };
    auto emitRow = [&oss, &width](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < width.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            oss << cell << std::string(width[i] - cell.size() + 2, ' ');
        }
        oss << "\n";
    };

    if (!title_.empty()) {
        oss << title_ << "\n";
        emitRule();
    }
    if (!header_.empty()) {
        emitRow(header_);
        emitRule();
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        emitRow(rows_[i]);
        if (std::find(ruleAfter_.begin(), ruleAfter_.end(), i + 1) !=
            ruleAfter_.end()) {
            emitRule();
        }
    }
    return oss.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

} // namespace rana
