/**
 * @file
 * Expected-style error handling for the library API.
 *
 * Library entry points that can fail on user input (an infeasible
 * configuration, a malformed artifact) return Result<T> instead of
 * calling fatal(): a long-running service embedding the scheduler
 * must be able to reject one request without losing the process.
 * The thin ...OrDie wrappers preserve the historical
 * abort-on-failure convenience for command-line harnesses.
 */

#ifndef RANA_UTIL_RESULT_HH_
#define RANA_UTIL_RESULT_HH_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.hh"

namespace rana {

/** Machine-readable failure category. */
enum class ErrorCode {
    /** Caller passed arguments that can never be satisfied. */
    InvalidArgument,
    /** No feasible configuration exists on the hardware. */
    Infeasible,
    /** An artifact could not be read or written. */
    IoError,
    /** An artifact was syntactically malformed. */
    ParseError,
    /** Two inputs that must describe the same object disagree. */
    Mismatch,
};

/** Name string for an ErrorCode ("infeasible", ...). */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::InvalidArgument:
        return "invalid argument";
      case ErrorCode::Infeasible:
        return "infeasible";
      case ErrorCode::IoError:
        return "io error";
      case ErrorCode::ParseError:
        return "parse error";
      case ErrorCode::Mismatch:
        return "mismatch";
    }
    return "unknown";
}

/** One failure: a category plus a human-readable message. */
struct Error
{
    ErrorCode code = ErrorCode::InvalidArgument;
    std::string message;

    /** "category: message" string. */
    std::string describe() const
    {
        return std::string(errorCodeName(code)) + ": " + message;
    }
};

/** Build an Error by streaming the message parts. */
template <typename... Args>
Error
makeError(ErrorCode code, Args &&...args)
{
    return Error{code,
                 detail::concat(std::forward<Args>(args)...)};
}

/**
 * Holds either a value or an Error. The accessors assert on misuse
 * (reading the value of a failed Result is a caller bug, not a user
 * error), so check ok() first or use valueOrDie() at the edges.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : state_(std::move(value)) {}
    Result(Error error) : state_(std::move(error)) {}

    /** Whether a value is present. */
    bool ok() const { return std::holds_alternative<T>(state_); }

    /** The value; asserts when !ok(). */
    const T &value() const &
    {
        RANA_ASSERT(ok(), "value() on failed Result: ",
                    error().describe());
        return std::get<T>(state_);
    }
    T &&value() &&
    {
        RANA_ASSERT(ok(), "value() on failed Result: ",
                    error().describe());
        return std::get<T>(std::move(state_));
    }

    /** The error; asserts when ok(). */
    const Error &error() const
    {
        RANA_ASSERT(!ok(), "error() on successful Result");
        return std::get<Error>(state_);
    }

    /**
     * The value, or fatal() with the error message: the historical
     * abort-on-failure contract, for tools and tests.
     */
    T &&valueOrDie() &&
    {
        if (!ok())
            fatal(error().describe());
        return std::get<T>(std::move(state_));
    }

  private:
    std::variant<T, Error> state_;
};

} // namespace rana

#endif // RANA_UTIL_RESULT_HH_
