/**
 * @file
 * Implementation of the worker pool and the nesting-safe
 * parallel-for primitive.
 */

#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace rana {

namespace {

/** The installed pool observer (nullptr when none). */
std::atomic<ThreadPool::Telemetry *> poolTelemetry{nullptr};

/** Run one task, reporting its duration to the observer. */
void
runTimed(std::packaged_task<void()> &task)
{
    ThreadPool::Telemetry *telemetry = ThreadPool::telemetry();
    if (telemetry == nullptr) {
        task();
        return;
    }
    const auto start = std::chrono::steady_clock::now();
    task();
    telemetry->onTaskCompleted(
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count());
}

} // namespace

void
ThreadPool::setTelemetry(Telemetry *telemetry)
{
    poolTelemetry.store(telemetry, std::memory_order_release);
}

ThreadPool::Telemetry *
ThreadPool::telemetry()
{
    return poolTelemetry.load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(unsigned threads)
{
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    if (workers_.empty()) {
        runTimed(packaged);
        return future;
    }
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(packaged));
        depth = queue_.size();
    }
    cv_.notify_one();
    if (Telemetry *telemetry = ThreadPool::telemetry())
        telemetry->onTaskQueued(depth);
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        runTimed(task);
    }
}

ThreadPool &
ThreadPool::global()
{
    // At least one worker even on a single-hardware-thread host, so
    // jobs > 1 always exercises real cross-thread hand-off (and TSan
    // has something to check) at the cost of mild oversubscription.
    static ThreadPool pool(std::max(1u, hardwareJobs() - 1));
    return pool;
}

unsigned
hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

namespace {

/**
 * Shared progress record of one parallelFor invocation.
 *
 * Completion is "every index claimed and no claimed item still
 * running" (next >= count && inflight == 0); an error jams `next` so
 * unclaimed items are skipped, and the caller still waits for
 * in-flight items before rethrowing — `body` and its captures must
 * never be touched after parallelFor returns.
 */
struct ForState
{
    const std::size_t count;
    const std::size_t chunk;
    const std::function<void(std::size_t)> body;
    std::atomic<std::size_t> next{0};
    std::atomic<unsigned> inflight{0};
    std::mutex mutex;
    std::condition_variable idle;
    std::exception_ptr error; // guarded by mutex

    ForState(std::size_t n, std::size_t chunk_items,
             std::function<void(std::size_t)> fn)
        : count(n), chunk(chunk_items), body(std::move(fn))
    {
    }

    /**
     * Claim and run chunks of consecutive items until none are
     * left. Chunked claiming amortizes the atomic counter across
     * cheap items (a candidate evaluation can be sub-microsecond);
     * with thousands of items per lane the tail imbalance is noise.
     */
    void drain()
    {
        for (;;) {
            inflight.fetch_add(1, std::memory_order_acq_rel);
            const std::size_t begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= count) {
                finishOne();
                return;
            }
            const std::size_t end = std::min(begin + chunk, count);
            try {
                for (std::size_t index = begin; index < end; ++index)
                    body(index);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                }
                // Skip items nobody has claimed yet.
                next.store(count, std::memory_order_relaxed);
            }
            finishOne();
        }
    }

    /** Drop the in-flight mark and wake the waiter when idle. */
    void finishOne()
    {
        if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex);
            idle.notify_all();
        }
    }

    bool settled() const
    {
        return next.load(std::memory_order_relaxed) >= count &&
               inflight.load(std::memory_order_acquire) == 0;
    }
};

} // namespace

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (ThreadPool::Telemetry *telemetry = ThreadPool::telemetry())
        telemetry->onParallelFor(count);
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    ThreadPool &pool = ThreadPool::global();
    // Helpers beyond the pool width (or the item count) would only
    // queue up to find an empty counter.
    const unsigned helpers = static_cast<unsigned>(
        std::min<std::size_t>({jobs - 1, pool.size(), count - 1}));
    if (helpers == 0) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    // ~16 chunks per lane balances claim overhead against tail
    // imbalance.
    const std::size_t chunk = std::max<std::size_t>(
        1, count / (static_cast<std::size_t>(helpers + 1) * 16));

    // Helpers hold the state via shared_ptr: one that dequeues after
    // the caller already returned (every item drained by other
    // lanes) must still find valid memory to inspect.
    auto state = std::make_shared<ForState>(count, chunk, body);
    for (unsigned i = 0; i < helpers; ++i)
        pool.submit([state] { state->drain(); });

    state->drain();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->idle.wait(lock, [&] { return state->settled(); });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace rana
