/**
 * @file
 * Terminal bar charts for the figure-reproduction harnesses.
 *
 * Two chart forms cover the paper's figures: grouped/stacked
 * horizontal bars (the normalized-energy figures 15/17/18/19) and
 * a log-scale scatter line (the lifetime and retention figures
 * 7/8/16).
 */

#ifndef RANA_UTIL_ASCII_CHART_HH_
#define RANA_UTIL_ASCII_CHART_HH_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rana {

/** A horizontal bar chart with stacked segments per row. */
class BarChart
{
  public:
    /**
     * @param title chart title
     * @param width bar area width in characters
     */
    explicit BarChart(std::string title, std::uint32_t width = 60);

    /**
     * Define the stacked segment names (each gets a distinct fill
     * character in definition order).
     */
    void segments(std::vector<std::string> names);

    /**
     * Append one bar.
     * @param label  row label
     * @param values one value per segment (same order as segments())
     */
    void bar(const std::string &label,
             const std::vector<double> &values);

    /** Append a separator row. */
    void separator();

    /** Render; bars are scaled to the maximum row total. */
    std::string render() const;

    /** Render to a stream. */
    void print(std::ostream &os) const;

  private:
    struct Row
    {
        std::string label;
        std::vector<double> values;
        bool isSeparator = false;
    };

    std::string title_;
    std::uint32_t width_;
    std::vector<std::string> segments_;
    std::vector<Row> rows_;
};

/**
 * A log10-x scatter chart: one labelled marker row per series
 * point (used for lifetime-vs-retention style figures).
 */
class LogScatter
{
  public:
    /**
     * @param title chart title
     * @param min_x smallest plotted x value (> 0)
     * @param max_x largest plotted x value
     * @param width plot width in characters
     */
    LogScatter(std::string title, double min_x, double max_x,
               std::uint32_t width = 64);

    /** Add a labelled point. */
    void point(const std::string &label, double x, char marker = 'o');

    /** Add a labelled vertical reference line. */
    void referenceLine(const std::string &label, double x);

    /** Render. */
    std::string render() const;
    void print(std::ostream &os) const;

  private:
    std::uint32_t columnOf(double x) const;

    struct Point
    {
        std::string label;
        double x;
        char marker;
    };
    struct Reference
    {
        std::string label;
        double x;
    };

    std::string title_;
    double minX_;
    double maxX_;
    std::uint32_t width_;
    std::vector<Point> points_;
    std::vector<Reference> references_;
};

} // namespace rana

#endif // RANA_UTIL_ASCII_CHART_HH_
