/**
 * @file
 * Minimal JSON parser: the read-side counterpart of JsonWriter.
 *
 * The sharded sweep coordinator deserializes per-cell result frames
 * streamed back from worker processes, and a crashed or chaos-
 * corrupted worker can hand it arbitrary bytes — so parsing must be
 * strictly crash-free: every malformed input returns a ParseError
 * Result, never an assertion. The parser builds a small immutable
 * DOM (JsonValue) with object members kept in document order.
 *
 * Numbers are parsed with strtod, which re-reads JsonWriter's
 * shortest-round-trip output to the bit-identical double — the
 * property the byte-identical sharded-merge contract rests on. The
 * writer's non-finite sentinels ("NaN", "Infinity", "-Infinity")
 * parse as strings; numberOrSentinel() folds them back to doubles
 * for callers that expect a numeric field.
 */

#ifndef RANA_UTIL_JSON_READER_HH_
#define RANA_UTIL_JSON_READER_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.hh"

namespace rana {

/** One parsed JSON value (immutable after parse). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /**
     * Parse `text` as one JSON document. Trailing non-whitespace,
     * unterminated scopes, bad escapes and malformed numbers all
     * fail with ErrorCode::ParseError; no input aborts.
     */
    static Result<JsonValue> parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @pre isBool() */
    bool asBool() const;
    /** @pre isNumber() */
    double asNumber() const;

    /**
     * This number as an exact unsigned 64-bit integer, re-read from
     * the raw document token (a double loses exactness past 2^53,
     * and trial seeds use the full range). Returns false when the
     * value is not a plain non-negative integer in u64 range.
     */
    bool asUint(std::uint64_t *out) const;
    /** @pre isString() */
    const std::string &asString() const;
    /** @pre isArray(); elements in document order. */
    const std::vector<JsonValue> &items() const;
    /** @pre isObject(); members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /**
     * The value of object member `key`, or nullptr when this is not
     * an object or has no such member (first match wins).
     */
    const JsonValue *find(const std::string &key) const;

    /**
     * This value as a double, folding the writer's non-finite
     * sentinel strings back to NaN/±Infinity. Returns false when the
     * value is neither a number nor a sentinel string.
     */
    bool numberOrSentinel(double *out) const;

    JsonValue() = default;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    /** String value (Kind::String) or raw token (Kind::Number). */
    std::string string_;
    /** Array elements (Kind::Array). */
    std::shared_ptr<const std::vector<JsonValue>> items_;
    /** Object members in document order (Kind::Object). */
    std::shared_ptr<
        const std::vector<std::pair<std::string, JsonValue>>>
        members_;
};

} // namespace rana

#endif // RANA_UTIL_JSON_READER_HH_
