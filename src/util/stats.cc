/**
 * @file
 * Implementation of the statistics helpers.
 */

#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rana {

double
mean(const std::vector<double> &values)
{
    RANA_ASSERT(!values.empty(), "mean of empty sample");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    RANA_ASSERT(!values.empty(), "geomean of empty sample");
    double log_sum = 0.0;
    for (double v : values) {
        RANA_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
stddev(const std::vector<double> &values)
{
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
minOf(const std::vector<double> &values)
{
    RANA_ASSERT(!values.empty(), "min of empty sample");
    return *std::min_element(values.begin(), values.end());
}

double
maxOf(const std::vector<double> &values)
{
    RANA_ASSERT(!values.empty(), "max of empty sample");
    return *std::max_element(values.begin(), values.end());
}

double
percentile(const std::vector<double> &values, double p)
{
    RANA_ASSERT(!values.empty(), "percentile of empty sample");
    RANA_ASSERT(p >= 0.0 && p <= 100.0,
                "percentile rank out of range: ", p);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void
RunningStat::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

double
RunningStat::mean() const
{
    RANA_ASSERT(count_ > 0, "mean of empty RunningStat");
    return sum_ / static_cast<double>(count_);
}

double
RunningStat::min() const
{
    RANA_ASSERT(count_ > 0, "min of empty RunningStat");
    return min_;
}

double
RunningStat::max() const
{
    RANA_ASSERT(count_ > 0, "max of empty RunningStat");
    return max_;
}

} // namespace rana
