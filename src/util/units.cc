/**
 * @file
 * Implementation of the formatting helpers.
 */

#include "util/units.hh"

#include <cmath>
#include <cstdio>

namespace rana {

namespace {

/** snprintf into a std::string. */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    return std::string(buf);
}

} // namespace

std::string
formatBytes(std::uint64_t bytes)
{
    const double b = static_cast<double>(bytes);
    if (b >= static_cast<double>(mib))
        return format("%.3fMB", b / static_cast<double>(mib));
    if (b >= static_cast<double>(kib))
        return format("%.1fKB", b / static_cast<double>(kib));
    return format("%lluB", static_cast<unsigned long long>(bytes));
}

std::string
formatTime(double seconds)
{
    const double abs = std::fabs(seconds);
    if (abs >= 1.0)
        return format("%.3fs", seconds);
    if (abs >= milliSecond)
        return format("%.3fms", seconds / milliSecond);
    if (abs >= microSecond)
        return format("%.1fus", seconds / microSecond);
    return format("%.1fns", seconds / nanoSecond);
}

std::string
formatEnergy(double joules)
{
    const double abs = std::fabs(joules);
    if (abs >= 1.0)
        return format("%.3fJ", joules);
    if (abs >= milliJoule)
        return format("%.3fmJ", joules / milliJoule);
    if (abs >= microJoule)
        return format("%.2fuJ", joules / microJoule);
    return format("%.2fpJ", joules / picoJoule);
}

std::string
formatDouble(double value, int decimals)
{
    return format("%.*f", decimals, value);
}

std::string
formatPercent(double fraction)
{
    return format("%.1f%%", fraction * 100.0);
}

} // namespace rana
