/**
 * @file
 * Fixed-size worker pool for the scheduler's design-space search.
 *
 * Per-candidate energy evaluation is embarrassingly parallel (each
 * (pattern, tiling) point is analyzed independently and reduced
 * afterwards), so the scheduler fans work items across a shared
 * process-wide pool and reduces the indexed results serially — the
 * parallel output is byte-identical to the serial one.
 *
 * parallelFor() is the only primitive the hot paths use. It is
 * designed for nested use (scheduleNetwork fans layers, each layer
 * fans candidates): the *calling* thread always participates in
 * executing items, and completion is defined as "all items done",
 * never "all helper tasks ran". A helper task that reaches the queue
 * after the caller drained every item simply exits, so a pool worker
 * blocked inside an inner parallelFor can never deadlock waiting for
 * queue space of its own pool.
 */

#ifndef RANA_UTIL_THREAD_POOL_HH_
#define RANA_UTIL_THREAD_POOL_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rana {

/** A fixed set of worker threads draining a FIFO work queue. */
class ThreadPool
{
  public:
    /**
     * Observer of pool activity. util cannot depend on the obs
     * layer, so the metrics wiring lives behind this interface and
     * obs installs an implementation at startup (see
     * obs/pool_telemetry). Callbacks run on pool threads and must be
     * thread-safe; the installed object must outlive the process.
     */
    struct Telemetry
    {
        virtual ~Telemetry() = default;
        /** A task was enqueued; `queueDepth` includes it. */
        virtual void onTaskQueued(std::size_t queueDepth) = 0;
        /** A task finished after running for `seconds`. */
        virtual void onTaskCompleted(double seconds) = 0;
        /** A parallelFor started fanning out `items` items. */
        virtual void onParallelFor(std::size_t items) = 0;
    };

    /**
     * Install the process-wide pool observer (nullptr to remove).
     * Applies to every pool and to parallelFor.
     */
    static void setTelemetry(Telemetry *telemetry);

    /** The installed observer, or nullptr. */
    static Telemetry *telemetry();

    /** Spawn `threads` workers (0 is allowed: submit() runs inline). */
    explicit ThreadPool(unsigned threads);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue one task; the future resolves when it has run (and
     * carries any exception it threw).
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * The process-wide pool shared by all schedulers, created on
     * first use with hardwareJobs() - 1 workers (the caller of
     * parallelFor is the remaining lane).
     */
    static ThreadPool &global();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/** std::thread::hardware_concurrency with a floor of 1. */
unsigned hardwareJobs();

/**
 * Run body(0) ... body(count - 1), using up to `jobs` lanes (the
 * calling thread plus helpers from ThreadPool::global()).
 *
 * Items are claimed from an atomic counter, so the assignment of
 * items to lanes is nondeterministic — callers must write results
 * into per-index slots and reduce in index order afterwards.
 * jobs <= 1 (or count <= 1) degenerates to a plain serial loop on
 * the calling thread. Returns only after every item has completed;
 * the first exception thrown by an item is rethrown in the caller
 * after remaining items are cancelled.
 */
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace rana

#endif // RANA_UTIL_THREAD_POOL_HH_
