/**
 * @file
 * Implementation of the xoshiro256** generator and samplers.
 */

#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace rana {

namespace {

/** splitmix64 used to expand one seed into the full 256-bit state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t x = seed_value;
    for (auto &word : state_)
        word = splitmix64(x);
    hasCachedNormal_ = false;
}

std::uint64_t
Rng::rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    RANA_ASSERT(n > 0, "uniformInt range must be non-empty");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    RANA_ASSERT(lo <= hi, "uniformInt bounds reversed");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller transform; uniform() can return exactly 0, so flip
    // to (0, 1] before taking the log.
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

} // namespace rana
