/**
 * @file
 * Implementation of the streaming JSON writer.
 */

#include "util/json_writer.hh"

#include <cmath>
#include <cstdio>

#include "util/logging.hh"

namespace rana {

void
JsonWriter::comma()
{
    if (!hasEntry_.empty()) {
        if (hasEntry_.back())
            oss_ << ",";
        hasEntry_.back() = true;
    }
    if (!hasEntry_.empty())
        oss_ << "\n";
    indent();
}

void
JsonWriter::indent()
{
    for (std::size_t i = 0; i < hasEntry_.size(); ++i)
        oss_ << "  ";
}

void
JsonWriter::key(const std::string &name)
{
    comma();
    oss_ << "\"" << escape(name) << "\": ";
}

std::string
JsonWriter::escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
JsonWriter::number(double value)
{
    // JSON has no NaN/Infinity tokens; a raw "%g" would emit "nan"
    // or "inf" and corrupt the document for every stock parser. A
    // poisoned value (e.g. a NaN accuracy streamed back by a sweep
    // worker) must degrade that one field, never the whole report,
    // so non-finite doubles render as quoted sentinel strings.
    if (std::isnan(value))
        return "\"NaN\"";
    if (std::isinf(value))
        return value > 0.0 ? "\"Infinity\"" : "\"-Infinity\"";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    // Trim to the shortest representation that round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision,
                      value);
        double parsed = 0.0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == value)
            return shorter;
    }
    return buffer;
}

void
JsonWriter::beginObject()
{
    comma();
    oss_ << "{";
    hasEntry_.push_back(false);
}

void
JsonWriter::beginObject(const std::string &name)
{
    key(name);
    oss_ << "{";
    hasEntry_.push_back(false);
}

void
JsonWriter::endObject()
{
    RANA_ASSERT(!hasEntry_.empty(), "endObject without beginObject");
    const bool had = hasEntry_.back();
    hasEntry_.pop_back();
    if (had) {
        oss_ << "\n";
        indent();
    }
    oss_ << "}";
}

void
JsonWriter::beginArray(const std::string &name)
{
    key(name);
    oss_ << "[";
    hasEntry_.push_back(false);
}

void
JsonWriter::endArray()
{
    RANA_ASSERT(!hasEntry_.empty(), "endArray without beginArray");
    const bool had = hasEntry_.back();
    hasEntry_.pop_back();
    if (had) {
        oss_ << "\n";
        indent();
    }
    oss_ << "]";
}

void
JsonWriter::field(const std::string &name, const std::string &value)
{
    key(name);
    oss_ << "\"" << escape(value) << "\"";
}

void
JsonWriter::field(const std::string &name, const char *value)
{
    field(name, std::string(value));
}

void
JsonWriter::field(const std::string &name, double value)
{
    key(name);
    oss_ << number(value);
}

void
JsonWriter::field(const std::string &name, std::uint64_t value)
{
    key(name);
    oss_ << value;
}

void
JsonWriter::field(const std::string &name, bool value)
{
    key(name);
    oss_ << (value ? "true" : "false");
}

void
JsonWriter::element(double value)
{
    comma();
    oss_ << number(value);
}

void
JsonWriter::element(std::uint64_t value)
{
    comma();
    oss_ << value;
}

std::string
JsonWriter::str() const
{
    RANA_ASSERT(hasEntry_.empty(),
                "unclosed JSON scope at render time");
    return oss_.str() + "\n";
}

} // namespace rana
