/**
 * @file
 * Minimal JSON emitter for the benchmark harnesses' machine-readable
 * artifacts (BENCH_*.json). Write-only and streaming: the caller
 * opens objects/arrays, emits keyed values, and closes them; the
 * writer tracks nesting, inserts commas, and indents. No DOM and no
 * external dependency — the CI regression checker parses the output
 * with a stock JSON parser.
 */

#ifndef RANA_UTIL_JSON_WRITER_HH_
#define RANA_UTIL_JSON_WRITER_HH_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace rana {

/** Streaming JSON writer with 2-space indentation. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Open the root or a nested unnamed object (inside arrays). */
    void beginObject();
    /** Open an object-valued member. */
    void beginObject(const std::string &key);
    /** Close the innermost object. */
    void endObject();

    /** Open an array-valued member. */
    void beginArray(const std::string &key);
    /** Close the innermost array. */
    void endArray();

    /** Emit a string member. */
    void field(const std::string &key, const std::string &value);
    /** Emit a string member (keeps literals off the bool overload). */
    void field(const std::string &key, const char *value);
    /**
     * Emit a numeric member (shortest round-trippable form).
     * Non-finite values render as the quoted sentinel strings
     * "NaN", "Infinity" and "-Infinity" so the document stays
     * valid JSON for stock parsers.
     */
    void field(const std::string &key, double value);
    /** Emit an integral member. */
    void field(const std::string &key, std::uint64_t value);
    /** Emit a boolean member. */
    void field(const std::string &key, bool value);

    /** Emit an unnamed numeric array element. */
    void element(double value);
    /** Emit an unnamed integral array element (exact, no rounding). */
    void element(std::uint64_t value);

    /**
     * The rendered document. @pre every begin* has been closed.
     */
    std::string str() const;

  private:
    void comma();
    void indent();
    void key(const std::string &name);
    static std::string escape(const std::string &text);
    static std::string number(double value);

    std::ostringstream oss_;
    /** Per-depth flag: the scope already has a first entry. */
    std::vector<bool> hasEntry_;
};

} // namespace rana

#endif // RANA_UTIL_JSON_WRITER_HH_
