/**
 * @file
 * A small fixed-column ASCII table printer used by the benchmark
 * harnesses to regenerate the paper's tables and figure series in a
 * readable, diffable text form.
 */

#ifndef RANA_UTIL_TABLE_HH_
#define RANA_UTIL_TABLE_HH_

#include <iosfwd>
#include <string>
#include <vector>

namespace rana {

/**
 * Collects rows of string cells and renders them with aligned
 * columns. The first row added via header() is separated from the
 * body by a rule.
 */
class TextTable
{
  public:
    /** Optional table title printed above the header. */
    explicit TextTable(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a body row. */
    void row(std::vector<std::string> cells);

    /** Append a horizontal rule between body rows. */
    void rule();

    /** Render the table to a string. */
    std::string render() const;

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Number of body rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> ruleAfter_;
};

} // namespace rana

#endif // RANA_UTIL_TABLE_HH_
