/**
 * @file
 * Implementation of fork-based workers and pipe framing.
 */

#include "util/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/logging.hh"

namespace rana {

namespace {

/** Wire magic ("RANF" little-endian) heading every frame. */
constexpr std::uint32_t kFrameMagic = 0x464E4152u;

/** Header layout: magic, type, cell, attempt, size, checksum. */
constexpr std::size_t kHeaderSize = 4 + 1 + 4 + 4 + 4 + 4;

/** Ceiling on one payload; bigger means a desynchronized stream. */
constexpr std::uint32_t kMaxPayload = 256u * 1024u * 1024u;

void
putU32(std::string &out, std::uint32_t value)
{
    char bytes[4];
    std::memcpy(bytes, &value, 4);
    out.append(bytes, 4);
}

std::uint32_t
getU32(const char *data)
{
    std::uint32_t value = 0;
    std::memcpy(&value, data, 4);
    return value;
}

/**
 * Parent-side pipe fds of every live worker, closed in each newly
 * forked child so a sibling's death is observable as EOF. Guarded
 * by a mutex, but only the coordinator thread spawns/destroys
 * workers, so the lock is never contended across fork.
 */
std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::vector<int> &
fdRegistry()
{
    static std::vector<int> fds;
    return fds;
}

void
registerParentFd(int fd)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    fdRegistry().push_back(fd);
}

void
unregisterParentFd(int fd)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<int> &fds = fdRegistry();
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i] == fd) {
            fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

void
ignoreSigpipeOnce()
{
    static std::once_flag flag;
    std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

} // namespace

std::uint32_t
frameChecksum(const std::string &payload)
{
    std::uint32_t hash = 2166136261u;
    for (char c : payload) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 16777619u;
    }
    return hash;
}

std::size_t
frameHeaderSize()
{
    return kHeaderSize;
}

std::string
encodeFrame(const Frame &frame)
{
    std::string out;
    out.reserve(kHeaderSize + frame.payload.size());
    putU32(out, kFrameMagic);
    out.push_back(static_cast<char>(frame.type));
    putU32(out, frame.cell);
    putU32(out, frame.attempt);
    putU32(out, static_cast<std::uint32_t>(frame.payload.size()));
    putU32(out, frameChecksum(frame.payload));
    out += frame.payload;
    return out;
}

void
FrameDecoder::feed(const char *data, std::size_t size)
{
    buffer_.append(data, size);
}

std::optional<FrameDecoder::Decoded>
FrameDecoder::next()
{
    if (desynchronized_ || buffer_.size() < kHeaderSize)
        return std::nullopt;
    const char *head = buffer_.data();
    if (getU32(head) != kFrameMagic) {
        desynchronized_ = true;
        return std::nullopt;
    }
    const std::uint32_t size = getU32(head + 13);
    if (size > kMaxPayload) {
        desynchronized_ = true;
        return std::nullopt;
    }
    if (buffer_.size() < kHeaderSize + size)
        return std::nullopt;
    Decoded decoded;
    decoded.frame.type = static_cast<FrameType>(head[4]);
    decoded.frame.cell = getU32(head + 5);
    decoded.frame.attempt = getU32(head + 9);
    const std::uint32_t checksum = getU32(head + 17);
    decoded.frame.payload = buffer_.substr(kHeaderSize, size);
    decoded.checksumOk =
        frameChecksum(decoded.frame.payload) == checksum;
    buffer_.erase(0, kHeaderSize + size);
    return decoded;
}

Result<WorkerProcess>
WorkerProcess::spawn(const Body &body)
{
    ignoreSigpipeOnce();
    int request[2];  // parent writes, child reads
    int response[2]; // child writes, parent reads
    if (::pipe(request) != 0) {
        return makeError(ErrorCode::IoError,
                         "pipe failed: ", std::strerror(errno));
    }
    if (::pipe(response) != 0) {
        const int saved = errno;
        ::close(request[0]);
        ::close(request[1]);
        return makeError(ErrorCode::IoError,
                         "pipe failed: ", std::strerror(saved));
    }

    // Register the parent-side ends *before* forking so this very
    // child closes them too (it keeps only its own child-side
    // ends), and every later sibling closes them as well.
    registerParentFd(request[1]);
    registerParentFd(response[0]);

    const int pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        unregisterParentFd(request[1]);
        unregisterParentFd(response[0]);
        ::close(request[0]);
        ::close(request[1]);
        ::close(response[0]);
        ::close(response[1]);
        return makeError(ErrorCode::IoError,
                         "fork failed: ", std::strerror(saved));
    }

    if (pid == 0) {
        // Child: drop every registered parent-side fd (including
        // this worker's own parent ends) and run the body. _exit
        // keeps inherited static destructors (thread-pool joins on
        // threads that do not exist here) from running.
        {
            std::lock_guard<std::mutex> lock(registryMutex());
            for (int fd : fdRegistry())
                ::close(fd);
        }
        const int code = body(request[0], response[1]);
        ::close(request[0]);
        ::close(response[1]);
        ::_exit(code);
    }

    // Parent: keep request write end + response read end, close the
    // child-side ends, make the read end non-blocking.
    ::close(request[0]);
    ::close(response[1]);
    const int flags = ::fcntl(response[0], F_GETFL, 0);
    ::fcntl(response[0], F_SETFL, flags | O_NONBLOCK);

    WorkerProcess worker;
    worker.pid_ = pid;
    worker.writeFd_ = request[1];
    worker.readFd_ = response[0];
    return worker;
}

WorkerProcess::WorkerProcess(WorkerProcess &&other) noexcept
{
    *this = std::move(other);
}

WorkerProcess &
WorkerProcess::operator=(WorkerProcess &&other) noexcept
{
    if (this != &other) {
        closePipes();
        if (running()) {
            kill();
            reap(nullptr, /*block=*/true);
        }
        pid_ = other.pid_;
        writeFd_ = other.writeFd_;
        readFd_ = other.readFd_;
        reaped_ = other.reaped_;
        other.pid_ = -1;
        other.writeFd_ = -1;
        other.readFd_ = -1;
        other.reaped_ = false;
    }
    return *this;
}

WorkerProcess::~WorkerProcess()
{
    closePipes();
    if (running()) {
        kill();
        reap(nullptr, /*block=*/true);
    }
}

bool
WorkerProcess::writeFrame(const Frame &frame)
{
    if (writeFd_ < 0)
        return false;
    return writeAllBlocking(writeFd_, encodeFrame(frame));
}

void
WorkerProcess::kill()
{
    if (running())
        ::kill(pid_, SIGKILL);
}

bool
WorkerProcess::reap(int *status, bool block)
{
    if (pid_ <= 0 || reaped_)
        return reaped_;
    int raw = 0;
    const int waited =
        ::waitpid(pid_, &raw, block ? 0 : WNOHANG);
    if (waited == pid_ ||
        (waited < 0 && errno == ECHILD)) {
        reaped_ = true;
        if (status != nullptr)
            *status = raw;
        return true;
    }
    return false;
}

void
WorkerProcess::closePipes()
{
    if (writeFd_ >= 0) {
        unregisterParentFd(writeFd_);
        ::close(writeFd_);
        writeFd_ = -1;
    }
    if (readFd_ >= 0) {
        unregisterParentFd(readFd_);
        ::close(readFd_);
        readFd_ = -1;
    }
}

int
pollReadable(const std::vector<int> &fds, int timeoutMs,
             std::vector<bool> &readable)
{
    readable.assign(fds.size(), false);
    std::vector<struct pollfd> entries;
    std::vector<std::size_t> indices;
    entries.reserve(fds.size());
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i] < 0)
            continue;
        struct pollfd entry;
        entry.fd = fds[i];
        entry.events = POLLIN;
        entry.revents = 0;
        entries.push_back(entry);
        indices.push_back(i);
    }
    if (entries.empty()) {
        if (timeoutMs > 0)
            ::poll(nullptr, 0, timeoutMs);
        return 0;
    }
    const int ready = ::poll(entries.data(),
                             static_cast<nfds_t>(entries.size()),
                             timeoutMs);
    if (ready <= 0)
        return ready;
    int count = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].revents &
            (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
            readable[indices[i]] = true;
            ++count;
        }
    }
    return count;
}

bool
drainInto(int fd, FrameDecoder &decoder)
{
    char chunk[65536];
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got > 0) {
            decoder.feed(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            return false; // EOF: worker closed its write end.
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
}

namespace {

/** Blocking read of exactly `size` bytes. False on EOF/error. */
bool
readExact(int fd, char *out, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t got = ::read(fd, out + done, size - done);
        if (got > 0) {
            done += static_cast<std::size_t>(got);
            continue;
        }
        if (got == 0)
            return false;
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

} // namespace

bool
readFrameBlocking(int fd, Frame &frame, bool *checksumOk)
{
    char header[kHeaderSize];
    if (!readExact(fd, header, kHeaderSize))
        return false;
    if (getU32(header) != kFrameMagic)
        return false;
    const std::uint32_t size = getU32(header + 13);
    if (size > kMaxPayload)
        return false;
    frame.type = static_cast<FrameType>(header[4]);
    frame.cell = getU32(header + 5);
    frame.attempt = getU32(header + 9);
    const std::uint32_t checksum = getU32(header + 17);
    frame.payload.resize(size);
    if (size > 0 && !readExact(fd, frame.payload.data(), size))
        return false;
    if (checksumOk != nullptr)
        *checksumOk = frameChecksum(frame.payload) == checksum;
    return true;
}

bool
writeAllBlocking(int fd, const std::string &bytes)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t wrote =
            ::write(fd, bytes.data() + done, bytes.size() - done);
        if (wrote > 0) {
            done += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeFrameBlocking(int fd, const Frame &frame)
{
    return writeAllBlocking(fd, encodeFrame(frame));
}

} // namespace rana
