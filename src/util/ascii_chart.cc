/**
 * @file
 * Implementation of the terminal charts.
 */

#include "util/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace rana {

namespace {

/** Fill characters for stacked segments, in definition order. */
constexpr char kFills[] = {'#', '=', '%', '.', '+', '~'};
constexpr std::size_t kNumFills = sizeof(kFills);

} // namespace

BarChart::BarChart(std::string title, std::uint32_t width)
    : title_(std::move(title)), width_(std::max(10u, width))
{
}

void
BarChart::segments(std::vector<std::string> names)
{
    RANA_ASSERT(names.size() <= kNumFills,
                "too many stacked segments");
    segments_ = std::move(names);
}

void
BarChart::bar(const std::string &label,
              const std::vector<double> &values)
{
    RANA_ASSERT(segments_.empty() ||
                values.size() == segments_.size(),
                "segment count mismatch in bar '", label, "'");
    rows_.push_back({label, values, false});
}

void
BarChart::separator()
{
    rows_.push_back({"", {}, true});
}

std::string
BarChart::render() const
{
    double max_total = 0.0;
    std::size_t label_width = 0;
    for (const Row &row : rows_) {
        if (row.isSeparator)
            continue;
        double total = 0.0;
        for (double v : row.values)
            total += std::max(0.0, v);
        max_total = std::max(max_total, total);
        label_width = std::max(label_width, row.label.size());
    }

    std::ostringstream oss;
    oss << title_ << "\n";
    if (!segments_.empty()) {
        oss << "  legend:";
        for (std::size_t i = 0; i < segments_.size(); ++i)
            oss << " [" << kFills[i] << "] " << segments_[i];
        oss << "\n";
    }
    if (max_total <= 0.0)
        return oss.str();

    for (const Row &row : rows_) {
        if (row.isSeparator) {
            oss << std::string(label_width + width_ + 4, '-') << "\n";
            continue;
        }
        oss << row.label
            << std::string(label_width - row.label.size() + 2, ' ')
            << "|";
        double total = 0.0;
        std::uint32_t drawn = 0;
        for (std::size_t s = 0; s < row.values.size(); ++s) {
            total += std::max(0.0, row.values[s]);
            const auto target = static_cast<std::uint32_t>(
                std::llround(total / max_total * width_));
            const char fill =
                kFills[std::min(s, kNumFills - 1)];
            for (; drawn < target; ++drawn)
                oss << fill;
        }
        oss << std::string(width_ - drawn, ' ') << "| "
            << std::defaultfloat << total << "\n";
    }
    return oss.str();
}

void
BarChart::print(std::ostream &os) const
{
    os << render();
}

LogScatter::LogScatter(std::string title, double min_x, double max_x,
                       std::uint32_t width)
    : title_(std::move(title)),
      minX_(min_x),
      maxX_(max_x),
      width_(std::max(10u, width))
{
    RANA_ASSERT(min_x > 0.0 && max_x > min_x,
                "log scatter needs a positive increasing range");
}

std::uint32_t
LogScatter::columnOf(double x) const
{
    const double clamped = std::clamp(x, minX_, maxX_);
    const double position = (std::log10(clamped) - std::log10(minX_)) /
                            (std::log10(maxX_) - std::log10(minX_));
    return static_cast<std::uint32_t>(
        std::llround(position * (width_ - 1)));
}

void
LogScatter::point(const std::string &label, double x, char marker)
{
    points_.push_back({label, x, marker});
}

void
LogScatter::referenceLine(const std::string &label, double x)
{
    references_.push_back({label, x});
}

std::string
LogScatter::render() const
{
    std::size_t label_width = 0;
    for (const Point &p : points_)
        label_width = std::max(label_width, p.label.size());

    std::ostringstream oss;
    oss << title_ << "\n";
    for (const Reference &ref : references_) {
        oss << std::string(label_width + 2, ' ');
        const std::uint32_t column = columnOf(ref.x);
        oss << std::string(column, ' ') << "| " << ref.label << "\n";
    }
    for (const Point &p : points_) {
        oss << p.label
            << std::string(label_width - p.label.size() + 2, ' ');
        std::string line(width_, ' ');
        for (const Reference &ref : references_)
            line[columnOf(ref.x)] = '|';
        line[columnOf(p.x)] = p.marker;
        oss << line << "\n";
    }
    return oss.str();
}

void
LogScatter::print(std::ostream &os) const
{
    os << render();
}

} // namespace rana
