/**
 * @file
 * Fork-based worker processes and pipe framing for the sharded
 * sweep engine.
 *
 * A WorkerProcess is a plain fork (no exec): the child inherits the
 * parent's prepared data structures copy-on-write, runs a caller-
 * supplied body against two pipe ends, and leaves via _exit so no
 * static destructor (thread-pool joins in particular) runs in the
 * child. The parent side keeps the opposite pipe ends: a blocking
 * write end for requests and a non-blocking read end for streamed
 * responses, and reaps with waitpid(WNOHANG) from its own event
 * loop — no SIGCHLD handler, so reaping cannot race arbitrary
 * library code at signal time.
 *
 * Messages travel as length-prefixed frames with an FNV-1a payload
 * checksum:
 *
 *   magic u32 | type u8 | cell u32 | attempt u32 | size u32 | crc u32
 *   payload bytes[size]
 *
 * The checksum lets the coordinator detect a corrupted result frame
 * (chaos-injected or real) and retry the cell instead of merging
 * garbage; a bad magic means the stream itself is desynchronized
 * and the worker must be discarded. FrameDecoder is incremental:
 * feed() arbitrary chunks from a non-blocking read, then drain
 * next() until it returns nothing.
 *
 * Every parent-side pipe fd is tracked in a process-wide registry
 * that spawn() closes in each new child: without this, a worker
 * forked later would hold the write ends of its siblings' pipes
 * open and the parent would never observe EOF on a crashed
 * sibling's stream.
 */

#ifndef RANA_UTIL_SUBPROCESS_HH_
#define RANA_UTIL_SUBPROCESS_HH_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hh"

namespace rana {

/** Message kinds on a worker pipe. */
enum class FrameType : std::uint8_t {
    /** Worker is alive and listening (sent once at startup). */
    Hello = 1,
    /** Coordinator assigns one grid cell (cell, attempt). */
    Assign = 2,
    /** Worker acknowledges it started the assigned cell. */
    Heartbeat = 3,
    /** Worker finished a cell; payload is the serialized report. */
    CellResult = 4,
    /** Worker failed a cell; payload is the error message. */
    CellError = 5,
    /** Coordinator asks the worker to exit cleanly. */
    Shutdown = 6,
    /** Worker telemetry export; payload is a rana-telemetry-1 doc. */
    Telemetry = 7,
};

/** One framed message. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::uint32_t cell = 0;
    std::uint32_t attempt = 0;
    std::string payload;
};

/** FNV-1a 32-bit checksum of `payload`. */
std::uint32_t frameChecksum(const std::string &payload);

/** Serialize `frame` to wire bytes (header + payload). */
std::string encodeFrame(const Frame &frame);

/** Wire-format header size in bytes. */
std::size_t frameHeaderSize();

/**
 * Incremental frame decoder over a byte stream. feed() bytes as
 * they arrive, then drain next() until std::nullopt. A frame whose
 * payload fails its checksum is still returned (checksumOk false)
 * so the caller can count it and retry; a header with a bad magic
 * poisons the decoder (desynchronized()) — the stream cannot be
 * trusted past that point.
 */
class FrameDecoder
{
  public:
    struct Decoded
    {
        Frame frame;
        bool checksumOk = true;
    };

    /** Append `size` bytes from `data` to the stream buffer. */
    void feed(const char *data, std::size_t size);

    /** The next complete frame, or nothing (need more bytes). */
    std::optional<Decoded> next();

    /** The stream lost framing (bad magic); discard the worker. */
    bool desynchronized() const { return desynchronized_; }

  private:
    std::string buffer_;
    bool desynchronized_ = false;
};

/**
 * One forked worker. Parent-side handle: write frames to the
 * worker, poll/read its response stream, kill and reap it. Move-
 * only; the destructor kills and reaps a still-running child.
 */
class WorkerProcess
{
  public:
    /**
     * The child body: runs in the forked child with the request
     * (read) and response (write) pipe fds; its return value
     * becomes the child's exit status via _exit.
     */
    using Body = std::function<int(int requestFd, int responseFd)>;

    /**
     * Fork a worker running `body`. Fails with IoError when pipes
     * or the fork itself fail (the caller degrades to in-process
     * execution). The first spawn ignores SIGPIPE process-wide so a
     * write to a crashed worker reports EPIPE instead of killing
     * the coordinator.
     */
    static Result<WorkerProcess> spawn(const Body &body);

    WorkerProcess() = default;
    WorkerProcess(WorkerProcess &&other) noexcept;
    WorkerProcess &operator=(WorkerProcess &&other) noexcept;
    WorkerProcess(const WorkerProcess &) = delete;
    WorkerProcess &operator=(const WorkerProcess &) = delete;
    ~WorkerProcess();

    /** Child pid (-1 when empty/moved-from). */
    int pid() const { return pid_; }

    /** Non-blocking response-stream fd (-1 when closed). */
    int readFd() const { return readFd_; }

    /** Whether the child has not been reaped yet. */
    bool running() const { return pid_ > 0 && !reaped_; }

    /**
     * Write one frame to the worker's request pipe. Returns false
     * when the pipe is closed or the worker is gone (EPIPE).
     */
    bool writeFrame(const Frame &frame);

    /** SIGKILL the child (idempotent; reap() still required). */
    void kill();

    /**
     * Try to reap the child: waitpid with WNOHANG (or blocking when
     * `block`). Returns true once the child has exited; `status` (if
     * non-null) receives the raw waitpid status.
     */
    bool reap(int *status, bool block = false);

    /** Close both parent-side pipe ends (unregisters them). */
    void closePipes();

  private:
    int pid_ = -1;
    int writeFd_ = -1;
    int readFd_ = -1;
    bool reaped_ = false;
};

/**
 * Poll `fds` for readability. Waits up to `timeoutMs` (0 = only an
 * instantaneous check). readable[i] is set when fds[i] has bytes or
 * EOF pending; entries with fd < 0 are skipped. Returns the number
 * of readable fds (0 on timeout, -1 on poll failure).
 */
int pollReadable(const std::vector<int> &fds, int timeoutMs,
                 std::vector<bool> &readable);

/**
 * Drain every currently available byte from non-blocking `fd` into
 * `decoder`. Returns false when the stream hit EOF or a read error
 * (the worker is gone), true when more bytes may arrive later.
 */
bool drainInto(int fd, FrameDecoder &decoder);

/** Blocking read of one frame from `fd` (child side). False on EOF. */
bool readFrameBlocking(int fd, Frame &frame, bool *checksumOk);

/** Blocking write of pre-encoded bytes to `fd`. False on error. */
bool writeAllBlocking(int fd, const std::string &bytes);

/** Blocking write of one frame to `fd`. False on error. */
bool writeFrameBlocking(int fd, const Frame &frame);

} // namespace rana

#endif // RANA_UTIL_SUBPROCESS_HH_
