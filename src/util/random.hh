/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (synthetic datasets,
 * bit-level error injection, retention-time sampling) draw from this
 * generator so experiments are reproducible from a single seed.
 *
 * The generator is xoshiro256** by Blackman & Vigna: fast, high
 * quality, and trivially seedable, with none of the libstdc++
 * implementation variance of std::default_random_engine.
 */

#ifndef RANA_UTIL_RANDOM_HH_
#define RANA_UTIL_RANDOM_HH_

#include <cstdint>

namespace rana {

/**
 * xoshiro256** pseudo-random generator with convenience samplers.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * used with <random> distributions when required.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded by splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed the generator. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k);

    std::uint64_t state_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

} // namespace rana

#endif // RANA_UTIL_RANDOM_HH_
