/**
 * @file
 * Layer interface of the from-scratch training framework.
 *
 * Layers implement forward/backward with cached activations. The
 * ForwardContext carries the fixed-point quantization format and the
 * retention-error injector: when present, every weighted layer
 * quantizes its input and weights to 16-bit fixed point and injects
 * bit-level retention failures before computing, exactly as the
 * retention-aware training method prescribes (a mask on each layer's
 * inputs and weights, Figure 9). Gradients flow through the
 * corrupted values (straight-through estimation), and the optimizer
 * updates the float master weights.
 */

#ifndef RANA_TRAIN_LAYER_HH_
#define RANA_TRAIN_LAYER_HH_

#include <memory>
#include <string>
#include <vector>

#include "train/error_injection.hh"
#include "train/fixed_point.hh"
#include "train/tensor.hh"
#include "util/random.hh"

namespace rana {

/** Per-forward-pass execution options. */
struct ForwardContext
{
    /** Quantize operands to fixed point (16-bit hardware model). */
    const FixedPointFormat *quant = nullptr;
    /** Inject retention failures into quantized operands. */
    BitErrorInjector *injector = nullptr;
    /**
     * Separate injector for weight operands (nullptr: weights use
     * `injector` like everything else). The fault campaign uses this
     * because weight and activation banks see different exposure
     * times, hence different effective failure rates.
     */
    BitErrorInjector *weightInjector = nullptr;
    /** Whether activations are cached for a following backward. */
    bool training = true;
};

/** One learnable parameter with its gradient accumulator. */
struct Param
{
    Tensor *value = nullptr;
    Tensor *grad = nullptr;
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the layer's output for `input` under `ctx`. */
    virtual Tensor forward(const Tensor &input,
                           const ForwardContext &ctx) = 0;

    /**
     * Back-propagate `grad_output`, accumulating parameter
     * gradients, and return the gradient w.r.t. the input.
     */
    virtual Tensor backward(const Tensor &grad_output) = 0;

    /** Learnable parameters (empty for stateless layers). */
    virtual std::vector<Param> params() { return {}; }

    /** Short human-readable description. */
    virtual std::string describe() const = 0;
};

/**
 * Apply the context's quantization and error injection to an
 * operand, returning the effective (possibly corrupted) tensor the
 * hardware would compute with.
 */
Tensor effectiveOperand(const Tensor &operand,
                        const ForwardContext &ctx);

/**
 * Like effectiveOperand, but for weight operands: uses the context's
 * weightInjector when one is set.
 */
Tensor effectiveWeights(const Tensor &weights,
                        const ForwardContext &ctx);

/** Initialize a tensor with He-uniform fan-in scaling. */
void heInitialize(Tensor &tensor, std::uint32_t fan_in, Rng &rng);

} // namespace rana

#endif // RANA_TRAIN_LAYER_HH_
