/**
 * @file
 * Layer interface of the from-scratch training framework.
 *
 * Layers implement forward/backward with cached activations. The
 * ForwardContext carries the fixed-point quantization format and the
 * retention-error injector: when present, every weighted layer
 * quantizes its input and weights to 16-bit fixed point and injects
 * bit-level retention failures before computing, exactly as the
 * retention-aware training method prescribes (a mask on each layer's
 * inputs and weights, Figure 9). Gradients flow through the
 * corrupted values (straight-through estimation), and the optimizer
 * updates the float master weights.
 */

#ifndef RANA_TRAIN_LAYER_HH_
#define RANA_TRAIN_LAYER_HH_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "train/error_injection.hh"
#include "train/fixed_point.hh"
#include "train/tensor.hh"
#include "util/random.hh"

namespace rana {

struct TrialForwardContext;

/** Per-forward-pass execution options. */
struct ForwardContext
{
    /** Quantize operands to fixed point (16-bit hardware model). */
    const FixedPointFormat *quant = nullptr;
    /** Inject retention failures into quantized operands. */
    BitErrorInjector *injector = nullptr;
    /**
     * Separate injector for weight operands (nullptr: weights use
     * `injector` like everything else). The fault campaign uses this
     * because weight and activation banks see different exposure
     * times, hence different effective failure rates.
     */
    BitErrorInjector *weightInjector = nullptr;
    /**
     * The model's weight tensors are already in the fixed-point
     * format `quant` (a pre-quantized shared weight store), so the
     * per-layer re-quantization is a no-op and is skipped. Combined
     * with an inactive weight injector this makes the weight path
     * copy-on-corrupt: the shared tensors are read in place and a
     * private copy is made only when bit errors are actually
     * injected.
     */
    bool weightsPreQuantized = false;
    /** Whether activations are cached for a following backward. */
    bool training = true;
};

/** One learnable parameter with its gradient accumulator. */
struct Param
{
    Tensor *value = nullptr;
    Tensor *grad = nullptr;
};

/**
 * Hands out externally owned parameter tensors in params() order so
 * a model can *bind* a shared immutable weight store instead of
 * owning a private copy. Campaign trials bind one store into one
 * skeleton model and run their (eval-only) corrupted forward passes
 * against it — no per-trial weight copies.
 */
class SharedParamCursor
{
  public:
    explicit SharedParamCursor(const std::vector<Tensor> &store)
        : store_(store)
    {
    }

    /** The next shared tensor; null once the store is exhausted. */
    const Tensor *next()
    {
        if (index_ >= store_.size())
            return nullptr;
        return &store_[index_++];
    }

    /** Tensors handed out so far. */
    std::size_t consumed() const { return index_; }

    /** Whether every store tensor has been handed out. */
    bool exhausted() const { return index_ == store_.size(); }

  private:
    const std::vector<Tensor> &store_;
    std::size_t index_ = 0;
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Compute the layer's output for `input` under `ctx`. */
    virtual Tensor forward(const Tensor &input,
                           const ForwardContext &ctx) = 0;

    /**
     * Eval-mode forward over a lane-major trial batch: `input`
     * carries the scalar shape plus a trailing lane dimension, and
     * `ctx` one injector pair per lane (see train/trial_batch.hh).
     * Per lane the result is bit-identical to forward() with the
     * lane's injectors. The base implementation panics; every
     * campaign-reachable layer overrides it.
     */
    virtual Tensor forwardTrials(const Tensor &input,
                                 const TrialForwardContext &ctx);

    /**
     * Back-propagate `grad_output`, accumulating parameter
     * gradients, and return the gradient w.r.t. the input.
     */
    virtual Tensor backward(const Tensor &grad_output) = 0;

    /** Learnable parameters (empty for stateless layers). */
    virtual std::vector<Param> params() { return {}; }

    /**
     * Bind shared parameter tensors from `cursor` (one per params()
     * entry, in the same order). Bound layers read the shared
     * tensors during eval-mode forward passes instead of their own;
     * training a bound model is a usage error. Stateless layers
     * consume nothing.
     */
    virtual void bindSharedParams(SharedParamCursor &cursor)
    {
        (void)cursor;
    }

    /** Short human-readable description. */
    virtual std::string describe() const = 0;
};

/**
 * Immutable shared weight snapshot: many concurrent consumers bind
 * the same store; nobody writes through it.
 */
using WeightStore = std::shared_ptr<const std::vector<Tensor>>;

/**
 * Bind `store` into `model` in params() order. Asserts that the
 * store's tensor count and shapes match the model exactly.
 */
void bindSharedWeights(Layer &model, const std::vector<Tensor> &store);

/**
 * Apply the context's quantization and error injection to an
 * operand, returning the effective (possibly corrupted) tensor the
 * hardware would compute with.
 */
Tensor effectiveOperand(const Tensor &operand,
                        const ForwardContext &ctx);

/**
 * Like effectiveOperand, but for weight operands: uses the context's
 * weightInjector when one is set.
 */
Tensor effectiveWeights(const Tensor &weights,
                        const ForwardContext &ctx);

/**
 * Copy-on-corrupt weight transformation: returns the quantized /
 * corrupted private copy the hardware would compute with, or
 * std::nullopt when `weights` passes through untouched (no
 * quantization pending because the store is pre-quantized, and no
 * active weight injector) — the caller then reads `weights` in
 * place with zero copies.
 */
std::optional<Tensor> corruptedWeights(const Tensor &weights,
                                       const ForwardContext &ctx);

/** Initialize a tensor with He-uniform fan-in scaling. */
void heInitialize(Tensor &tensor, std::uint32_t fan_in, Rng &rng);

} // namespace rana

#endif // RANA_TRAIN_LAYER_HH_
