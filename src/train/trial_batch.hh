/**
 * @file
 * Trial-major batched forward pass for the fault campaign.
 *
 * A campaign cell runs N independent corrupted forward passes over
 * the same test batch and the same shared weight store; only the
 * injected bit errors differ per trial. The batched path fuses a
 * block of trials into one pass by appending a *lane* dimension to
 * every activation tensor — layout {..., L} with the lane index
 * innermost — so the per-output multiply-accumulate runs on L
 * contiguous floats at a time and vectorizes across trials instead
 * of re-walking the network N times.
 *
 * Bit-exactness contract: for every lane, the batched pass performs
 * exactly the per-element operations of the scalar reference in
 * exactly the reference order. Vectorization only spans *independent*
 * accumulators (different lanes, different output positions), never
 * reorders the additions inside one accumulator, and the toolchain
 * target (x86-64 baseline / AVX via target_clones) has no FMA
 * contraction, so the batched campaign is bit-identical to the
 * scalar one for any lane count. The robustness test suite asserts
 * this across lane counts.
 */

#ifndef RANA_TRAIN_TRIAL_BATCH_HH_
#define RANA_TRAIN_TRIAL_BATCH_HH_

#include <cstdint>
#include <vector>

#include "train/error_injection.hh"
#include "train/fixed_point.hh"
#include "train/tensor.hh"

namespace rana {

/**
 * Per-batched-forward execution options: the fixed-point format
 * shared by every lane plus one injector pair per lane. Mirrors
 * ForwardContext, with the scalar injector slots widened to one
 * entry per trial lane (null entry = no injection on that lane).
 */
struct TrialForwardContext
{
    /** Quantize operands to fixed point (16-bit hardware model). */
    const FixedPointFormat *quant = nullptr;
    /** Per-lane activation injectors (size = lane count). */
    std::vector<BitErrorInjector *> injectors;
    /**
     * Per-lane weight injectors (size = lane count). A null entry
     * falls back to the lane's activation injector, exactly like
     * ForwardContext::weightInjector.
     */
    std::vector<BitErrorInjector *> weightInjectors;
    /** The bound weight store is already in format `quant`. */
    bool weightsPreQuantized = false;

    /** Number of trial lanes fused into the pass. */
    std::uint32_t lanes() const
    {
        return static_cast<std::uint32_t>(injectors.size());
    }
};

/**
 * Replicate a scalar-layout tensor across `lanes` trial lanes:
 * shape {...} becomes {..., lanes} with every element repeated
 * `lanes` times (lane index innermost).
 */
Tensor packTrialLanes(const Tensor &scalar, std::uint32_t lanes);

/**
 * Extract one lane of a lane-major tensor back into scalar layout
 * (drops the trailing lane dimension).
 */
Tensor extractTrialLane(const Tensor &stacked, std::uint32_t lane);

/**
 * Gather one sample per lane from a {B, ...} batch tensor into a
 * lane-major tensor {1, ..., L}: lane l carries the whole sample
 * `indices[l]` (out[i * L + l] = sample_l[i]). Where packTrialLanes
 * replicates one tensor across lanes that differ only in injected
 * errors, this packs *distinct* samples — the serving engine's
 * request coalescing, where every lane is a different tenant
 * request riding the same batched forward. @pre indices non-empty
 * and every index < B.
 */
Tensor packSampleLanes(const Tensor &batch,
                       const std::vector<std::uint32_t> &indices);

/**
 * Quantize-dequantize every element in place; bit-identical to
 * quantizeTensor (verified exhaustively over all float bit
 * patterns), but with the format assertion hoisted out of the loop
 * and a branch-free rounding formulation the compiler vectorizes.
 */
void quantizeTrialSpan(float *data, std::size_t count,
                       const FixedPointFormat &format);

/** In-place ReLU over a span: v = max(0, v), as the scalar layer. */
void reluTrialSpan(float *data, std::size_t count);

/** Element-wise dst[i] += src[i] (the residual skip connection). */
void addTrialSpan(float *dst, const float *src, std::size_t count);

/**
 * Lane-major convolution: activations {B, N, H, W, L}, packed
 * weights {M, N, K, K, L}, bias {M, L}, output {B, M, R, C, L}.
 * Per lane, accumulates bias + sum over (n, ky, kx) of the valid
 * taps in exactly the scalar kernel's order.
 */
void convolveTrialLanes(const float *in, const float *wt,
                        const float *bias, float *out,
                        std::uint32_t batch, std::uint32_t in_channels,
                        std::uint32_t h, std::uint32_t w,
                        std::uint32_t out_channels, std::uint32_t r,
                        std::uint32_t c, std::uint32_t kernel,
                        std::uint32_t stride, std::uint32_t pad,
                        std::uint32_t lanes);

/**
 * Lane-major dense layer: input {B, F, L}, packed weights {O, F, L},
 * bias {O, L}, output {B, O, L}. One sequential dot product per
 * (output, lane), as the scalar kernel.
 */
void denseTrialLanes(const float *in, const float *wt,
                     const float *bias, float *out, std::uint32_t batch,
                     std::uint32_t in_features,
                     std::uint32_t out_features, std::uint32_t lanes);

/**
 * Lane-major 2x2/stride-2 max pooling: input {B, C, H, W, L},
 * output {B, C, H/2, W/2, L}. Candidate order and the strict
 * greater-than comparison match the scalar layer.
 */
void maxPoolTrialLanes(const float *in, float *out, std::uint32_t batch,
                       std::uint32_t channels, std::uint32_t h,
                       std::uint32_t w, std::uint32_t lanes);

/**
 * Lane-major 2x2/stride-2 average pooling: input {B, C, H, W, L},
 * output {B, C, H/2, W/2, L}. Summation order matches the scalar
 * layer.
 */
void avgPoolTrialLanes(const float *in, float *out, std::uint32_t batch,
                       std::uint32_t channels, std::uint32_t h,
                       std::uint32_t w, std::uint32_t lanes);

/**
 * Pack per-lane scalar-layout tensors into one lane-major buffer:
 * out[i * lanes + l] = lanes_ptrs[l][i]. Used for the per-lane
 * copy-on-corrupt weight copies.
 */
void packLanePointers(const std::vector<const float *> &lane_ptrs,
                      std::size_t count, float *out);

} // namespace rana

#endif // RANA_TRAIN_TRIAL_BATCH_HH_
