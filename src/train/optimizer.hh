/**
 * @file
 * SGD with momentum, operating on the float master parameters of a
 * fixed-point-trained network (the "weight adjustment" step of the
 * retention-aware training loop, Figure 9).
 */

#ifndef RANA_TRAIN_OPTIMIZER_HH_
#define RANA_TRAIN_OPTIMIZER_HH_

#include <vector>

#include "train/layer.hh"

namespace rana {

/** Stochastic gradient descent with classical momentum. */
class SgdOptimizer
{
  public:
    /**
     * @param params        parameters to optimize
     * @param learning_rate step size
     * @param momentum      momentum coefficient
     * @param weight_decay  L2 regularization coefficient
     * @param grad_clip     per-element gradient clamp (0 disables).
     *                      Injected retention failures can flip
     *                      high-order bits and produce large
     *                      activation outliers; clipping keeps the
     *                      resulting gradient spikes from destroying
     *                      the weights during retraining.
     */
    SgdOptimizer(std::vector<Param> params, double learning_rate,
                 double momentum = 0.9, double weight_decay = 0.0,
                 double grad_clip = 0.0);

    /** Apply one update from the accumulated gradients. */
    void step();

    /** Zero all gradient accumulators. */
    void zeroGrad();

    /** Change the learning rate (for decay schedules). */
    void setLearningRate(double learning_rate);

    /** Current learning rate. */
    double learningRate() const { return learningRate_; }

  private:
    std::vector<Param> params_;
    std::vector<Tensor> velocity_;
    double learningRate_;
    double momentum_;
    double weightDecay_;
    double gradClip_;
};

} // namespace rana

#endif // RANA_TRAIN_OPTIMIZER_HH_
