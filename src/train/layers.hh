/**
 * @file
 * Concrete layers: convolution, pooling, activation, dense, flatten,
 * plus the Sequential / Residual / InceptionConcat containers needed
 * to express the four mini benchmark architectures.
 */

#ifndef RANA_TRAIN_LAYERS_HH_
#define RANA_TRAIN_LAYERS_HH_

#include <memory>
#include <string>
#include <vector>

#include "train/layer.hh"

namespace rana {

/** 2-D convolution with square kernels, stride and zero padding. */
class Conv2dLayer : public Layer
{
  public:
    /**
     * @param in_channels  input channels
     * @param out_channels output channels
     * @param kernel       square kernel size
     * @param stride       stride
     * @param pad          zero padding
     * @param rng          initializer RNG
     */
    Conv2dLayer(std::uint32_t in_channels, std::uint32_t out_channels,
                std::uint32_t kernel, std::uint32_t stride,
                std::uint32_t pad, Rng &rng);

    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::vector<Param> params() override;
    void bindSharedParams(SharedParamCursor &cursor) override;
    std::string describe() const override;

  private:
    std::uint32_t inChannels_;
    std::uint32_t outChannels_;
    std::uint32_t kernel_;
    std::uint32_t stride_;
    std::uint32_t pad_;
    Tensor weights_; // {M, N, K, K}
    Tensor bias_;    // {M}
    Tensor weightGrad_;
    Tensor biasGrad_;
    Tensor cachedInput_;
    Tensor cachedWeights_;
    /** Bound shared store tensors (null = use the owned ones). */
    const Tensor *sharedWeights_ = nullptr;
    const Tensor *sharedBias_ = nullptr;
};

/** Rectified linear unit. */
class ReluLayer : public Layer
{
  public:
    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::string describe() const override { return "relu"; }

  private:
    Tensor cachedInput_;
};

/** 2x2 max pooling with stride 2. */
class MaxPool2dLayer : public Layer
{
  public:
    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::string describe() const override { return "maxpool2x2"; }

  private:
    Tensor cachedInput_;
    std::vector<std::uint32_t> argmax_;
    std::vector<std::uint32_t> inputShape_;
};

/** 2x2 average pooling with stride 2. */
class AvgPool2dLayer : public Layer
{
  public:
    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::string describe() const override { return "avgpool2x2"; }

  private:
    std::vector<std::uint32_t> inputShape_;
};

/** Fully connected layer on flattened inputs. */
class DenseLayer : public Layer
{
  public:
    /** @param in_features input width, @param out_features output. */
    DenseLayer(std::uint32_t in_features, std::uint32_t out_features,
               Rng &rng);

    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::vector<Param> params() override;
    void bindSharedParams(SharedParamCursor &cursor) override;
    std::string describe() const override;

  private:
    std::uint32_t inFeatures_;
    std::uint32_t outFeatures_;
    Tensor weights_; // {out, in}
    Tensor bias_;    // {out}
    Tensor weightGrad_;
    Tensor biasGrad_;
    Tensor cachedInput_;
    Tensor cachedWeights_;
    /** Bound shared store tensors (null = use the owned ones). */
    const Tensor *sharedWeights_ = nullptr;
    const Tensor *sharedBias_ = nullptr;
};

/** Flatten {B, C, H, W} to {B, C*H*W}. */
class FlattenLayer : public Layer
{
  public:
    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::string describe() const override { return "flatten"; }

  private:
    std::vector<std::uint32_t> inputShape_;
};

/** Ordered container of layers. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    /** Append a layer. */
    void add(std::unique_ptr<Layer> layer);

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::vector<Param> params() override;
    void bindSharedParams(SharedParamCursor &cursor) override;
    std::string describe() const override;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/** Residual block: output = body(x) + x (ResNet-style identity). */
class ResidualBlock : public Layer
{
  public:
    /** @param body inner layers; must preserve the input shape. */
    explicit ResidualBlock(std::unique_ptr<Sequential> body);

    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::vector<Param> params() override;
    void bindSharedParams(SharedParamCursor &cursor) override;
    std::string describe() const override { return "residual"; }

  private:
    std::unique_ptr<Sequential> body_;
};

/**
 * Inception-style block: parallel branches over the same input,
 * concatenated along the channel dimension.
 */
class InceptionConcat : public Layer
{
  public:
    /** @param branches parallel branches (same spatial output). */
    explicit InceptionConcat(
        std::vector<std::unique_ptr<Sequential>> branches);

    Tensor forward(const Tensor &input, const ForwardContext &ctx)
        override;
    Tensor forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx) override;
    Tensor backward(const Tensor &grad_output) override;
    std::vector<Param> params() override;
    void bindSharedParams(SharedParamCursor &cursor) override;
    std::string describe() const override { return "inception"; }

  private:
    std::vector<std::unique_ptr<Sequential>> branches_;
    std::vector<std::uint32_t> branchChannels_;
};

} // namespace rana

#endif // RANA_TRAIN_LAYERS_HH_
