/**
 * @file
 * A minimal dense float tensor for the from-scratch training
 * framework behind the retention-aware training method.
 *
 * The tensor is row-major with up to 4 dimensions; convolutional
 * activations use {batch, channels, height, width}.
 */

#ifndef RANA_TRAIN_TENSOR_HH_
#define RANA_TRAIN_TENSOR_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace rana {

/** Dense row-major float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<std::uint32_t> shape);

    /** Total element count. */
    std::size_t size() const { return data_.size(); }

    /** The shape vector. */
    const std::vector<std::uint32_t> &shape() const { return shape_; }

    /** Extent of one dimension. @pre dim < shape().size(). */
    std::uint32_t dim(std::size_t d) const;

    /** Raw storage. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 4-D element access for {n, c, h, w} tensors. */
    float &at4(std::uint32_t n, std::uint32_t c, std::uint32_t h,
               std::uint32_t w);
    float at4(std::uint32_t n, std::uint32_t c, std::uint32_t h,
              std::uint32_t w) const;

    /** 2-D element access for {rows, cols} tensors. */
    float &at2(std::uint32_t r, std::uint32_t c);
    float at2(std::uint32_t r, std::uint32_t c) const;

    /** Set every element to `value`. */
    void fill(float value);

    /**
     * Reinterpret with a new shape of identical element count
     * (no data movement).
     */
    Tensor reshaped(std::vector<std::uint32_t> new_shape) const;

    /** "{2,16,12,12}" style description. */
    std::string describeShape() const;

  private:
    std::vector<std::uint32_t> shape_;
    std::vector<float> data_;
};

} // namespace rana

#endif // RANA_TRAIN_TENSOR_HH_
