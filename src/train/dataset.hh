/**
 * @file
 * Procedurally generated image-classification dataset.
 *
 * The paper retrains AlexNet/VGG/GoogLeNet/ResNet on ImageNet with
 * Caffe; ImageNet is not available offline, so the training-level
 * experiments run on a synthetic stand-in: each class is a random
 * smooth spatial pattern (a mixture of oriented sinusoids), and each
 * sample is its class pattern under a random shift, amplitude jitter
 * and additive noise. The task is easy enough for the mini models
 * to reach high accuracy in seconds yet rich enough that bit-level
 * weight corruption measurably degrades it, which is all Figure 11
 * needs (relative accuracy vs. injected retention failure rate).
 */

#ifndef RANA_TRAIN_DATASET_HH_
#define RANA_TRAIN_DATASET_HH_

#include <cstdint>
#include <vector>

#include "train/tensor.hh"
#include "util/random.hh"

namespace rana {

/** One labelled batch. */
struct Batch
{
    /** Images {B, C, H, W}. */
    Tensor images;
    /** Labels, one per batch row. */
    std::vector<std::uint32_t> labels;
};

/** Configuration of the synthetic dataset. */
struct DatasetConfig
{
    std::uint32_t numClasses = 8;
    std::uint32_t imageSize = 16;
    std::uint32_t channels = 1;
    std::uint32_t trainSamples = 1536;
    std::uint32_t testSamples = 512;
    /** Additive noise amplitude. */
    double noise = 0.25;
    /** Maximum circular shift in pixels. */
    std::uint32_t maxShift = 2;
    std::uint64_t seed = 42;
};

/** Synthetic pattern-classification dataset. */
class SyntheticDataset
{
  public:
    explicit SyntheticDataset(const DatasetConfig &config);

    const DatasetConfig &config() const { return config_; }

    /** Number of training samples. */
    std::uint32_t trainSize() const { return config_.trainSamples; }
    /** Number of test samples. */
    std::uint32_t testSize() const { return config_.testSamples; }

    /**
     * One training batch of `batch_size` samples starting at
     * `offset` (wrapping), in generation order. Call
     * shuffleTrain() between epochs.
     */
    Batch trainBatch(std::uint32_t offset,
                     std::uint32_t batch_size) const;

    /** The whole test set as one batch. */
    Batch testBatch() const;

    /** Reshuffle the training order. */
    void shuffleTrain(Rng &rng);

  private:
    struct Sample
    {
        Tensor image;
        std::uint32_t label;
    };

    Sample makeSample(std::uint32_t label, Rng &rng) const;

    DatasetConfig config_;
    std::vector<Tensor> prototypes_;
    std::vector<Sample> train_;
    std::vector<Sample> test_;
    std::vector<std::uint32_t> trainOrder_;
};

} // namespace rana

#endif // RANA_TRAIN_DATASET_HH_
