/**
 * @file
 * Implementation of the bit-error injector.
 */

#include "train/error_injection.hh"

#include <cmath>

#include "util/logging.hh"

namespace rana {

namespace {

constexpr int wordBits = 16;

} // namespace

BitErrorInjector::BitErrorInjector(double failure_rate,
                                   std::uint64_t seed)
    : rate_(failure_rate), rng_(seed)
{
    RANA_ASSERT(failure_rate >= 0.0 && failure_rate <= 1.0,
                "failure rate must be a probability");
    // Probability that a 16-bit word has at least one failed bit.
    wordRate_ = 1.0 - std::pow(1.0 - rate_, wordBits);
}

void
BitErrorInjector::reseed(std::uint64_t seed)
{
    rng_.seed(seed);
}

std::int16_t
BitErrorInjector::corruptWord(std::int16_t word)
{
    auto bits = static_cast<std::uint16_t>(word);
    // A failed bit reads a uniformly random value, i.e. it flips
    // with probability 1/2.
    for (int b = 0; b < wordBits; ++b) {
        if (rng_.bernoulli(rate_)) {
            const std::uint16_t random_bit = rng_.next() & 1u;
            bits = static_cast<std::uint16_t>(
                (bits & ~(1u << b)) | (random_bit << b));
        }
    }
    return static_cast<std::int16_t>(bits);
}

std::uint64_t
BitErrorInjector::corruptTensor(Tensor &tensor,
                                const FixedPointFormat &format)
{
    return corruptStrided(tensor.data(), tensor.size(), 1, format);
}

std::uint64_t
BitErrorInjector::corruptStrided(float *data, std::size_t count,
                                 std::size_t stride,
                                 const FixedPointFormat &format)
{
    RANA_ASSERT(stride > 0, "stride must be positive");
    if (rate_ <= 0.0)
        return 0;

    std::uint64_t corrupted = 0;

    if (wordRate_ < 0.05) {
        // Sparse path: geometric jumps between affected words.
        const double log_keep = std::log1p(-wordRate_);
        std::size_t index = 0;
        for (;;) {
            const double u = 1.0 - rng_.uniform(); // (0, 1]
            const double jump = std::floor(std::log(u) / log_keep);
            if (jump >= static_cast<double>(count - index))
                break;
            index += static_cast<std::size_t>(jump);
            float &slot = data[index * stride];
            const std::int16_t word = format.quantize(slot);
            // Conditioned on >= 1 failure; approximate by failing
            // one uniformly chosen bit (multi-bit failures in one
            // word are negligible at sparse rates).
            const int bit =
                static_cast<int>(rng_.uniformInt(std::uint64_t{16}));
            const std::uint16_t random_bit = rng_.next() & 1u;
            auto bits = static_cast<std::uint16_t>(word);
            bits = static_cast<std::uint16_t>(
                (bits & ~(1u << bit)) | (random_bit << bit));
            slot = format.dequantize(static_cast<std::int16_t>(bits));
            ++corrupted;
            ++index;
            if (index >= count)
                break;
        }
    } else {
        // Dense path: exact per-bit Bernoulli on every word. A word
        // counts as corrupted when any bit failed, even if the
        // random replacement happened to match the original value.
        for (std::size_t i = 0; i < count; ++i) {
            float &slot = data[i * stride];
            auto bits = static_cast<std::uint16_t>(
                format.quantize(slot));
            bool any_failed = false;
            for (int b = 0; b < wordBits; ++b) {
                if (rng_.bernoulli(rate_)) {
                    any_failed = true;
                    const std::uint16_t random_bit = rng_.next() & 1u;
                    bits = static_cast<std::uint16_t>(
                        (bits & ~(1u << b)) | (random_bit << b));
                }
            }
            if (any_failed)
                ++corrupted;
            slot = format.dequantize(static_cast<std::int16_t>(bits));
        }
    }
    return corrupted;
}

} // namespace rana
