/**
 * @file
 * Implementation of SGD with momentum.
 */

#include "train/optimizer.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rana {

SgdOptimizer::SgdOptimizer(std::vector<Param> params,
                           double learning_rate, double momentum,
                           double weight_decay, double grad_clip)
    : params_(std::move(params)),
      learningRate_(learning_rate),
      momentum_(momentum),
      weightDecay_(weight_decay),
      gradClip_(grad_clip)
{
    velocity_.reserve(params_.size());
    for (const Param &param : params_) {
        RANA_ASSERT(param.value != nullptr && param.grad != nullptr,
                    "parameter tensors must exist");
        RANA_ASSERT(param.value->size() == param.grad->size(),
                    "gradient shape mismatch");
        velocity_.emplace_back(param.value->shape());
    }
}

void
SgdOptimizer::step()
{
    for (std::size_t p = 0; p < params_.size(); ++p) {
        Tensor &value = *params_[p].value;
        Tensor &grad = *params_[p].grad;
        Tensor &velocity = velocity_[p];
        for (std::size_t i = 0; i < value.size(); ++i) {
            double g =
                grad[i] + weightDecay_ * static_cast<double>(value[i]);
            if (gradClip_ > 0.0)
                g = std::clamp(g, -gradClip_, gradClip_);
            velocity[i] = static_cast<float>(
                momentum_ * velocity[i] - learningRate_ * g);
            value[i] += velocity[i];
        }
    }
}

void
SgdOptimizer::zeroGrad()
{
    for (const Param &param : params_)
        param.grad->fill(0.0f);
}

void
SgdOptimizer::setLearningRate(double learning_rate)
{
    learningRate_ = learning_rate;
}

} // namespace rana
