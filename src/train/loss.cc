/**
 * @file
 * Implementation of the loss functions.
 */

#include "train/loss.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rana {

LossResult
softmaxCrossEntropy(const Tensor &logits,
                    const std::vector<std::uint32_t> &labels)
{
    RANA_ASSERT(logits.shape().size() == 2, "logits must be 2-D");
    const std::uint32_t batch = logits.dim(0);
    const std::uint32_t classes = logits.dim(1);
    RANA_ASSERT(labels.size() == batch, "one label per batch row");

    LossResult result;
    result.gradLogits = Tensor({batch, classes});
    double total_loss = 0.0;
    for (std::uint32_t b = 0; b < batch; ++b) {
        float max_logit = logits.at2(b, 0);
        std::uint32_t best = 0;
        for (std::uint32_t c = 1; c < classes; ++c) {
            if (logits.at2(b, c) > max_logit) {
                max_logit = logits.at2(b, c);
                best = c;
            }
        }
        if (best == labels[b])
            ++result.correct;

        double denom = 0.0;
        for (std::uint32_t c = 0; c < classes; ++c)
            denom += std::exp(logits.at2(b, c) - max_logit);
        const double log_denom = std::log(denom);
        const double label_logit = logits.at2(b, labels[b]) - max_logit;
        total_loss += log_denom - label_logit;

        for (std::uint32_t c = 0; c < classes; ++c) {
            const double p =
                std::exp(logits.at2(b, c) - max_logit) / denom;
            const double target = c == labels[b] ? 1.0 : 0.0;
            result.gradLogits.at2(b, c) =
                static_cast<float>((p - target) / batch);
        }
    }
    result.loss = total_loss / batch;
    return result;
}

std::vector<std::uint32_t>
argmaxRows(const Tensor &logits)
{
    const std::uint32_t batch = logits.dim(0);
    const std::uint32_t classes = logits.dim(1);
    std::vector<std::uint32_t> result(batch, 0);
    for (std::uint32_t b = 0; b < batch; ++b) {
        float best = logits.at2(b, 0);
        for (std::uint32_t c = 1; c < classes; ++c) {
            if (logits.at2(b, c) > best) {
                best = logits.at2(b, c);
                result[b] = c;
            }
        }
    }
    return result;
}

} // namespace rana
