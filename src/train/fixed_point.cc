/**
 * @file
 * Implementation of the fixed-point format.
 */

#include "train/fixed_point.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rana {

double
FixedPointFormat::scale() const
{
    return static_cast<double>(1u << fracBits);
}

double
FixedPointFormat::maxValue() const
{
    return 32767.0 / scale();
}

double
FixedPointFormat::minValue() const
{
    return -32768.0 / scale();
}

std::int16_t
FixedPointFormat::quantize(float value) const
{
    RANA_ASSERT(fracBits <= 15, "at most 15 fractional bits");
    const double scaled = std::round(static_cast<double>(value) *
                                     scale());
    const double clamped = std::clamp(scaled, -32768.0, 32767.0);
    return static_cast<std::int16_t>(clamped);
}

float
FixedPointFormat::dequantize(std::int16_t word) const
{
    return static_cast<float>(static_cast<double>(word) / scale());
}

float
FixedPointFormat::roundTrip(float value) const
{
    return dequantize(quantize(value));
}

void
quantizeTensor(Tensor &tensor, const FixedPointFormat &format)
{
    float *data = tensor.data();
    for (std::size_t i = 0; i < tensor.size(); ++i)
        data[i] = format.roundTrip(data[i]);
}

} // namespace rana
