/**
 * @file
 * Implementation of the retention-aware trainer.
 */

#include "train/trainer.hh"

#include <algorithm>

#include "train/loss.hh"
#include "util/logging.hh"

namespace rana {

RetentionAwareTrainer::RetentionAwareTrainer(
    MiniModelKind kind, const DatasetConfig &dataset_config,
    const TrainerConfig &trainer_config)
    : kind_(kind),
      config_(trainer_config),
      dataset_(dataset_config),
      rng_(trainer_config.seed)
{
    model_ = makeMiniModel(kind, dataset_config.imageSize,
                           dataset_config.numClasses, rng_);
    optimizer_ = std::make_unique<SgdOptimizer>(
        model_->params(), config_.learningRate, config_.momentum,
        config_.weightDecay, config_.gradClip);
}

void
RetentionAwareTrainer::trainEpochs(std::uint32_t epochs,
                                   double failure_rate, bool quantized)
{
    const std::uint32_t batches =
        (dataset_.trainSize() + config_.batchSize - 1) /
        config_.batchSize;
    for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
        dataset_.shuffleTrain(rng_);
        for (std::uint32_t b = 0; b < batches; ++b) {
            const Batch batch = dataset_.trainBatch(
                b * config_.batchSize, config_.batchSize);

            BitErrorInjector injector(failure_rate, rng_.next());
            ForwardContext ctx;
            ctx.quant = quantized ? &config_.format : nullptr;
            ctx.injector = quantized && failure_rate > 0.0
                               ? &injector
                               : nullptr;
            ctx.training = true;

            optimizer_->zeroGrad();
            const Tensor logits = model_->forward(batch.images, ctx);
            const LossResult loss =
                softmaxCrossEntropy(logits, batch.labels);
            model_->backward(loss.gradLogits);
            optimizer_->step();
        }
    }
}

double
RetentionAwareTrainer::evaluate(double failure_rate)
{
    const Batch test = dataset_.testBatch();
    const std::uint32_t repeats =
        failure_rate > 0.0 ? config_.evalRepeats : 1;
    double total_accuracy = 0.0;
    for (std::uint32_t rep = 0; rep < repeats; ++rep) {
        BitErrorInjector injector(failure_rate,
                                  config_.seed * 977 + rep);
        ForwardContext ctx;
        ctx.quant = &config_.format;
        ctx.injector = failure_rate > 0.0 ? &injector : nullptr;
        ctx.training = false;

        const Tensor logits = model_->forward(test.images, ctx);
        const LossResult loss =
            softmaxCrossEntropy(logits, test.labels);
        total_accuracy += static_cast<double>(loss.correct) /
                          test.labels.size();
    }
    return total_accuracy / repeats;
}

double
RetentionAwareTrainer::pretrain()
{
    // Most of the pretraining runs in float for stability, followed
    // by a fixed-point fine-tune at a reduced step size; the
    // baseline accuracy is always measured in fixed point.
    const std::uint32_t quant_epochs =
        std::max<std::uint32_t>(1, config_.pretrainEpochs / 4);
    const std::uint32_t float_epochs =
        config_.pretrainEpochs > quant_epochs
            ? config_.pretrainEpochs - quant_epochs
            : 0;
    trainEpochs(float_epochs, 0.0, false);
    const double float_accuracy = evaluate(0.0);
    snapshotWeights();
    optimizer_->setLearningRate(config_.learningRate * 0.1);
    trainEpochs(quant_epochs, 0.0, true);
    baselineAccuracy_ = evaluate(0.0);
    if (baselineAccuracy_ < float_accuracy) {
        // The quantization fine-tune can destabilize small models
        // (saturating residual sums); keep the float-trained weights
        // when they evaluate better in fixed point.
        restoreWeights();
        baselineAccuracy_ = float_accuracy;
    }
    snapshotWeights();
    pretrained_ = true;
    inform("pretrained ", miniModelName(kind_),
           " to fixed-point baseline accuracy ", baselineAccuracy_);
    return baselineAccuracy_;
}

std::vector<Tensor>
RetentionAwareTrainer::exportWeights()
{
    std::vector<Tensor> weights;
    for (const Param &param : model_->params())
        weights.push_back(*param.value);
    return weights;
}

WeightStore
RetentionAwareTrainer::exportWeightsShared(
    const FixedPointFormat *prequantize)
{
    auto store = std::make_shared<std::vector<Tensor>>(exportWeights());
    if (prequantize != nullptr) {
        for (Tensor &tensor : *store)
            quantizeTensor(tensor, *prequantize);
    }
    return store;
}

void
RetentionAwareTrainer::restorePretrained()
{
    RANA_ASSERT(pretrained_, "call pretrain() first");
    restoreWeights();
}

void
RetentionAwareTrainer::snapshotWeights()
{
    snapshot_.clear();
    for (const Param &param : model_->params())
        snapshot_.push_back(*param.value);
}

void
RetentionAwareTrainer::restoreWeights()
{
    const auto params = model_->params();
    RANA_ASSERT(params.size() == snapshot_.size(),
                "snapshot does not match the model");
    for (std::size_t i = 0; i < params.size(); ++i)
        *params[i].value = snapshot_[i];
}

AccuracyPoint
RetentionAwareTrainer::retrainAndEvaluate(double failure_rate)
{
    RANA_ASSERT(pretrained_, "call pretrain() first");
    restoreWeights();
    // Accuracy of the pretrained weights under injection, before any
    // weight adjustment.
    const double before = evaluate(failure_rate);

    // Rebuild momentum state for the fresh retrain.
    optimizer_ = std::make_unique<SgdOptimizer>(
        model_->params(), config_.learningRate * 0.2, config_.momentum,
        config_.weightDecay, config_.gradClip);
    trainEpochs(config_.retrainEpochs, failure_rate, true);
    const double after = evaluate(failure_rate);

    // The method deploys the adjusted weights only when the retrain
    // helped; otherwise the pretrained fixed-point model is kept.
    AccuracyPoint point;
    point.failureRate = failure_rate;
    point.accuracy = std::max(before, after);
    point.relativeAccuracy =
        baselineAccuracy_ > 0.0 ? point.accuracy / baselineAccuracy_
                                : 0.0;
    return point;
}

void
RetentionAwareTrainer::retrain(double failure_rate)
{
    RANA_ASSERT(pretrained_, "call pretrain() first");
    restoreWeights();
    // Same optimizer rebuild and epoch schedule as
    // retrainAndEvaluate; only the bracketing evaluate() calls are
    // dropped, which leaves the weight trajectory untouched.
    optimizer_ = std::make_unique<SgdOptimizer>(
        model_->params(), config_.learningRate * 0.2, config_.momentum,
        config_.weightDecay, config_.gradClip);
    trainEpochs(config_.retrainEpochs, failure_rate, true);
}

std::vector<AccuracyPoint>
RetentionAwareTrainer::sweep(const std::vector<double> &failure_rates)
{
    std::vector<AccuracyPoint> points;
    points.reserve(failure_rates.size());
    for (double rate : failure_rates)
        points.push_back(retrainAndEvaluate(rate));
    return points;
}

double
RetentionAwareTrainer::findTolerableFailureRate(
    const std::vector<double> &ladder, double min_relative_accuracy)
{
    RANA_ASSERT(!ladder.empty(), "ladder must be non-empty");
    std::vector<double> sorted = ladder;
    std::sort(sorted.begin(), sorted.end());
    double best = sorted.front();
    for (double rate : sorted) {
        const AccuracyPoint point = retrainAndEvaluate(rate);
        if (point.relativeAccuracy >= min_relative_accuracy) {
            best = rate;
        } else {
            break;
        }
    }
    return best;
}

} // namespace rana
