/**
 * @file
 * Implementation of the training-framework layers.
 */

#include "train/layers.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "train/trial_batch.hh"
#include "util/logging.hh"

namespace rana {

namespace {

/**
 * Convolution forward kernel shared by the per-trial and the
 * trial-batched paths. Bit-compatible with the reference loop nest:
 * every output element accumulates bias + sum over (n, ky, kx) of
 * the valid taps, in exactly that order, so refactoring the loop
 * structure cannot change a single ULP. The speed comes from the
 * loop shape: the output-x dimension is innermost, contiguous and
 * branch-free (the padding clip is hoisted into the [x_lo, x_hi)
 * bounds), so the compiler vectorizes the multiply-accumulate
 * across independent output accumulators without reordering any
 * per-accumulator addition.
 */
void
convolveForward(const float *in, const float *wt, const float *bias,
                float *out, std::uint32_t batch,
                std::uint32_t in_channels, std::uint32_t h,
                std::uint32_t w, std::uint32_t out_channels,
                std::uint32_t r, std::uint32_t c,
                std::uint32_t kernel, std::uint32_t stride,
                std::uint32_t pad)
{
    const std::size_t in_plane = static_cast<std::size_t>(h) * w;
    const std::size_t in_sample = in_plane * in_channels;
    const std::size_t out_plane = static_cast<std::size_t>(r) * c;
    const std::size_t wt_kernel =
        static_cast<std::size_t>(kernel) * kernel;
    std::vector<float> acc_buf(c);
    float *acc = acc_buf.data();
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t m = 0; m < out_channels; ++m) {
            float *out_m = out + (b * out_channels + m) * out_plane;
            const float *wt_m = wt + m * in_channels * wt_kernel;
            const float bias_m = bias[m];
            for (std::uint32_t y = 0; y < r; ++y) {
                const std::int64_t base_y =
                    static_cast<std::int64_t>(y) * stride - pad;
                for (std::uint32_t x = 0; x < c; ++x)
                    acc[x] = bias_m;
                for (std::uint32_t n = 0; n < in_channels; ++n) {
                    const float *in_n =
                        in + b * in_sample + n * in_plane;
                    const float *wt_n = wt_m + n * wt_kernel;
                    for (std::uint32_t ky = 0; ky < kernel; ++ky) {
                        const std::int64_t in_y = base_y + ky;
                        if (in_y < 0 || in_y >= h)
                            continue;
                        const float *in_row = in_n + in_y * w;
                        const float *wt_row = wt_n + ky * kernel;
                        for (std::uint32_t kx = 0; kx < kernel;
                             ++kx) {
                            // Valid x satisfy 0 <= x*stride + off < w.
                            const std::int64_t off =
                                static_cast<std::int64_t>(kx) - pad;
                            std::int64_t x_lo = 0;
                            if (off < 0) {
                                x_lo = (-off + stride - 1) / stride;
                            }
                            std::int64_t x_hi = 0;
                            if (w >= off + 1) {
                                x_hi = (w - 1 - off) / stride + 1;
                            }
                            x_hi = std::min<std::int64_t>(x_hi, c);
                            if (x_lo >= x_hi)
                                continue;
                            const float wv = wt_row[kx];
                            if (stride == 1) {
                                const float *src = in_row + off;
                                for (std::int64_t x = x_lo; x < x_hi;
                                     ++x)
                                    acc[x] += src[x] * wv;
                            } else {
                                for (std::int64_t x = x_lo; x < x_hi;
                                     ++x)
                                    acc[x] +=
                                        in_row[x * stride + off] * wv;
                            }
                        }
                    }
                }
                float *out_row = out_m + static_cast<std::size_t>(y) * c;
                for (std::uint32_t x = 0; x < c; ++x)
                    out_row[x] = acc[x];
            }
        }
    }
}

/**
 * Dense forward kernel shared by the per-trial and the trial-batched
 * paths. Keeps the reference accumulation order (one sequential dot
 * product per output); the win over the reference loop is the raw
 * contiguous pointers instead of per-element index arithmetic.
 */
void
denseForward(const float *in, const float *wt, const float *bias,
             float *out, std::uint32_t batch,
             std::uint32_t in_features, std::uint32_t out_features)
{
    for (std::uint32_t b = 0; b < batch; ++b) {
        const float *in_b =
            in + static_cast<std::size_t>(b) * in_features;
        float *out_b =
            out + static_cast<std::size_t>(b) * out_features;
        for (std::uint32_t o = 0; o < out_features; ++o) {
            const float *wt_o =
                wt + static_cast<std::size_t>(o) * in_features;
            float acc = bias[o];
            for (std::uint32_t i = 0; i < in_features; ++i)
                acc += in_b[i] * wt_o[i];
            out_b[o] = acc;
        }
    }
}

/**
 * Batched counterpart of effectiveOperand: quantize the whole
 * lane-major tensor once (element-wise, so the shared quantization
 * is bit-identical per lane), then walk each lane with its own
 * injector at the lane stride — the per-lane RNG streams match the
 * scalar path exactly.
 */
void
corruptTrialOperand(Tensor &stacked, const TrialForwardContext &ctx)
{
    if (ctx.quant == nullptr)
        return;
    const std::uint32_t lanes = ctx.lanes();
    quantizeTrialSpan(stacked.data(), stacked.size(), *ctx.quant);
    const std::size_t lane_count = stacked.size() / lanes;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (ctx.injectors[l] != nullptr) {
            ctx.injectors[l]->corruptStrided(stacked.data() + l,
                                             lane_count, lanes,
                                             *ctx.quant);
        }
    }
}

/**
 * Per-lane copy-on-corrupt weights packed lane-major: each lane runs
 * the scalar corruptedWeights transformation (same injector fallback,
 * same RNG stream), and the resulting scalar-layout views are
 * interleaved into one {<weight shape>, L} buffer for the kernels.
 */
std::vector<float>
packTrialWeights(const Tensor &weights, const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    std::vector<Tensor> copies;
    copies.reserve(lanes);
    std::vector<const float *> ptrs(lanes, weights.data());
    for (std::uint32_t l = 0; l < lanes; ++l) {
        ForwardContext lane_ctx;
        lane_ctx.quant = ctx.quant;
        lane_ctx.injector = ctx.injectors[l];
        lane_ctx.weightInjector = ctx.weightInjectors[l];
        lane_ctx.weightsPreQuantized = ctx.weightsPreQuantized;
        std::optional<Tensor> corrupted =
            corruptedWeights(weights, lane_ctx);
        if (corrupted) {
            copies.push_back(std::move(*corrupted));
            ptrs[l] = copies.back().data();
        }
    }
    std::vector<float> packed(weights.size() *
                              static_cast<std::size_t>(lanes));
    packLanePointers(ptrs, weights.size(), packed.data());
    return packed;
}

/** Bias replicated across lanes ({O} -> {O, L}; never corrupted). */
std::vector<float>
packTrialBias(const Tensor &bias, std::uint32_t lanes)
{
    std::vector<float> packed(bias.size() *
                              static_cast<std::size_t>(lanes));
    for (std::size_t i = 0; i < bias.size(); ++i)
        for (std::uint32_t l = 0; l < lanes; ++l)
            packed[i * lanes + l] = bias[i];
    return packed;
}

} // namespace

Tensor
Layer::forwardTrials(const Tensor &input,
                     const TrialForwardContext &ctx)
{
    (void)input;
    (void)ctx;
    panic("layer does not support trial-batched forward: ",
          describe());
}

Tensor
effectiveOperand(const Tensor &operand, const ForwardContext &ctx)
{
    Tensor effective = operand;
    if (ctx.quant != nullptr) {
        quantizeTensor(effective, *ctx.quant);
        if (ctx.injector != nullptr)
            ctx.injector->corruptTensor(effective, *ctx.quant);
    }
    return effective;
}

Tensor
effectiveWeights(const Tensor &weights, const ForwardContext &ctx)
{
    if (ctx.weightInjector == nullptr)
        return effectiveOperand(weights, ctx);
    ForwardContext weight_ctx = ctx;
    weight_ctx.injector = ctx.weightInjector;
    return effectiveOperand(weights, weight_ctx);
}

std::optional<Tensor>
corruptedWeights(const Tensor &weights, const ForwardContext &ctx)
{
    if (ctx.quant == nullptr)
        return std::nullopt;
    BitErrorInjector *injector =
        ctx.weightInjector != nullptr ? ctx.weightInjector
                                      : ctx.injector;
    const bool corrupting =
        injector != nullptr && injector->failureRate() > 0.0;
    if (ctx.weightsPreQuantized && !corrupting)
        return std::nullopt;
    Tensor copy = weights;
    if (!ctx.weightsPreQuantized)
        quantizeTensor(copy, *ctx.quant);
    if (corrupting)
        injector->corruptTensor(copy, *ctx.quant);
    return copy;
}

void
bindSharedWeights(Layer &model, const std::vector<Tensor> &store)
{
    SharedParamCursor cursor(store);
    model.bindSharedParams(cursor);
    RANA_ASSERT(cursor.exhausted(),
                "shared weight store does not match the model: ",
                cursor.consumed(), " of ", store.size(),
                " tensors bound");
}

void
heInitialize(Tensor &tensor, std::uint32_t fan_in, Rng &rng)
{
    RANA_ASSERT(fan_in > 0, "fan-in must be positive");
    const double bound =
        std::sqrt(6.0 / static_cast<double>(fan_in));
    for (std::size_t i = 0; i < tensor.size(); ++i)
        tensor[i] = static_cast<float>(rng.uniform(-bound, bound));
}

// ---------------------------------------------------------------
// Conv2dLayer
// ---------------------------------------------------------------

Conv2dLayer::Conv2dLayer(std::uint32_t in_channels,
                         std::uint32_t out_channels,
                         std::uint32_t kernel, std::uint32_t stride,
                         std::uint32_t pad, Rng &rng)
    : inChannels_(in_channels),
      outChannels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weights_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      weightGrad_({out_channels, in_channels, kernel, kernel}),
      biasGrad_({out_channels})
{
    heInitialize(weights_, in_channels * kernel * kernel, rng);
}

Tensor
Conv2dLayer::forward(const Tensor &input, const ForwardContext &ctx)
{
    RANA_ASSERT(input.shape().size() == 4 &&
                input.dim(1) == inChannels_,
                "conv input shape mismatch");
    RANA_ASSERT(!(ctx.training && sharedWeights_ != nullptr),
                "shared-weight models are eval-only");
    const std::uint32_t batch = input.dim(0);
    const std::uint32_t h = input.dim(2);
    const std::uint32_t w = input.dim(3);
    RANA_ASSERT(h + 2 * pad_ >= kernel_ && w + 2 * pad_ >= kernel_,
                "conv kernel larger than padded input");
    const std::uint32_t r = (h + 2 * pad_ - kernel_) / stride_ + 1;
    const std::uint32_t c = (w + 2 * pad_ - kernel_) / stride_ + 1;

    const Tensor &weights =
        sharedWeights_ != nullptr ? *sharedWeights_ : weights_;
    const Tensor &bias =
        sharedBias_ != nullptr ? *sharedBias_ : bias_;
    const Tensor eff_input = effectiveOperand(input, ctx);
    const std::optional<Tensor> corrupted =
        corruptedWeights(weights, ctx);
    const Tensor &eff_weights = corrupted ? *corrupted : weights;
    if (ctx.training) {
        cachedInput_ = eff_input;
        cachedWeights_ = eff_weights;
    }

    Tensor output({batch, outChannels_, r, c});
    convolveForward(eff_input.data(), eff_weights.data(), bias.data(),
                    output.data(), batch, inChannels_, h, w,
                    outChannels_, r, c, kernel_, stride_, pad_);
    return output;
}

Tensor
Conv2dLayer::forwardTrials(const Tensor &input,
                           const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    RANA_ASSERT(input.shape().size() == 5 &&
                input.dim(1) == inChannels_ &&
                input.dim(4) == lanes,
                "conv trial-batch input shape mismatch");
    const std::uint32_t batch = input.dim(0);
    const std::uint32_t h = input.dim(2);
    const std::uint32_t w = input.dim(3);
    RANA_ASSERT(h + 2 * pad_ >= kernel_ && w + 2 * pad_ >= kernel_,
                "conv kernel larger than padded input");
    const std::uint32_t r = (h + 2 * pad_ - kernel_) / stride_ + 1;
    const std::uint32_t c = (w + 2 * pad_ - kernel_) / stride_ + 1;

    const Tensor &weights =
        sharedWeights_ != nullptr ? *sharedWeights_ : weights_;
    const Tensor &bias =
        sharedBias_ != nullptr ? *sharedBias_ : bias_;
    Tensor eff_input = input;
    corruptTrialOperand(eff_input, ctx);
    const std::vector<float> packed_weights =
        packTrialWeights(weights, ctx);
    const std::vector<float> packed_bias = packTrialBias(bias, lanes);

    Tensor output({batch, outChannels_, r, c, lanes});
    convolveTrialLanes(eff_input.data(), packed_weights.data(),
                       packed_bias.data(), output.data(), batch,
                       inChannels_, h, w, outChannels_, r, c, kernel_,
                       stride_, pad_, lanes);
    return output;
}

Tensor
Conv2dLayer::backward(const Tensor &grad_output)
{
    const std::uint32_t batch = cachedInput_.dim(0);
    const std::uint32_t h = cachedInput_.dim(2);
    const std::uint32_t w = cachedInput_.dim(3);
    const std::uint32_t r = grad_output.dim(2);
    const std::uint32_t c = grad_output.dim(3);

    Tensor grad_input({batch, inChannels_, h, w});
    const float *in = cachedInput_.data();
    const float *wt = cachedWeights_.data();
    const float *gout = grad_output.data();
    float *gin = grad_input.data();
    float *gwt = weightGrad_.data();
    const std::size_t in_plane = static_cast<std::size_t>(h) * w;
    const std::size_t in_sample = in_plane * inChannels_;
    const std::size_t out_plane = static_cast<std::size_t>(r) * c;
    const std::size_t wt_kernel =
        static_cast<std::size_t>(kernel_) * kernel_;
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t m = 0; m < outChannels_; ++m) {
            const float *gout_row =
                gout + (b * outChannels_ + m) * out_plane;
            const float *wt_m = wt + m * inChannels_ * wt_kernel;
            float *gwt_m = gwt + m * inChannels_ * wt_kernel;
            for (std::uint32_t y = 0; y < r; ++y) {
                for (std::uint32_t x = 0; x < c; ++x) {
                    const float g = gout_row[y * c + x];
                    biasGrad_[m] += g;
                    const std::int64_t base_y =
                        static_cast<std::int64_t>(y) * stride_ - pad_;
                    const std::int64_t base_x =
                        static_cast<std::int64_t>(x) * stride_ - pad_;
                    for (std::uint32_t n = 0; n < inChannels_; ++n) {
                        const float *in_n =
                            in + b * in_sample + n * in_plane;
                        float *gin_n =
                            gin + b * in_sample + n * in_plane;
                        const float *wt_n = wt_m + n * wt_kernel;
                        float *gwt_n = gwt_m + n * wt_kernel;
                        for (std::uint32_t ky = 0; ky < kernel_; ++ky) {
                            const std::int64_t in_y = base_y + ky;
                            if (in_y < 0 || in_y >= h)
                                continue;
                            const float *in_row = in_n + in_y * w;
                            float *gin_row = gin_n + in_y * w;
                            const float *wt_row = wt_n + ky * kernel_;
                            float *gwt_row = gwt_n + ky * kernel_;
                            for (std::uint32_t kx = 0; kx < kernel_;
                                 ++kx) {
                                const std::int64_t in_x = base_x + kx;
                                if (in_x < 0 || in_x >= w)
                                    continue;
                                gwt_row[kx] += g * in_row[in_x];
                                gin_row[in_x] += g * wt_row[kx];
                            }
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

std::vector<Param>
Conv2dLayer::params()
{
    return {{&weights_, &weightGrad_}, {&bias_, &biasGrad_}};
}

void
Conv2dLayer::bindSharedParams(SharedParamCursor &cursor)
{
    sharedWeights_ = cursor.next();
    sharedBias_ = cursor.next();
    RANA_ASSERT(sharedWeights_ != nullptr && sharedBias_ != nullptr,
                "shared weight store exhausted at ", describe());
    RANA_ASSERT(sharedWeights_->shape() == weights_.shape() &&
                sharedBias_->shape() == bias_.shape(),
                "shared weight store shape mismatch at ", describe());
}

std::string
Conv2dLayer::describe() const
{
    std::ostringstream oss;
    oss << "conv" << kernel_ << "x" << kernel_ << "(" << inChannels_
        << "->" << outChannels_ << ",s" << stride_ << ")";
    return oss.str();
}

// ---------------------------------------------------------------
// ReluLayer
// ---------------------------------------------------------------

Tensor
ReluLayer::forward(const Tensor &input, const ForwardContext &ctx)
{
    if (ctx.training)
        cachedInput_ = input;
    Tensor output = input;
    for (std::size_t i = 0; i < output.size(); ++i)
        output[i] = std::max(0.0f, output[i]);
    return output;
}

Tensor
ReluLayer::forwardTrials(const Tensor &input,
                         const TrialForwardContext &ctx)
{
    (void)ctx;
    Tensor output = input;
    reluTrialSpan(output.data(), output.size());
    return output;
}

Tensor
ReluLayer::backward(const Tensor &grad_output)
{
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i) {
        if (cachedInput_[i] <= 0.0f)
            grad[i] = 0.0f;
    }
    return grad;
}

// ---------------------------------------------------------------
// MaxPool2dLayer
// ---------------------------------------------------------------

Tensor
MaxPool2dLayer::forward(const Tensor &input, const ForwardContext &ctx)
{
    const std::uint32_t batch = input.dim(0);
    const std::uint32_t channels = input.dim(1);
    const std::uint32_t h = input.dim(2);
    const std::uint32_t w = input.dim(3);
    RANA_ASSERT(h % 2 == 0 && w % 2 == 0,
                "maxpool2x2 needs even spatial dims");
    const std::uint32_t r = h / 2;
    const std::uint32_t c = w / 2;

    Tensor output({batch, channels, r, c});
    if (ctx.training) {
        inputShape_ = input.shape();
        argmax_.assign(output.size(), 0);
    }
    std::size_t out_index = 0;
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            for (std::uint32_t y = 0; y < r; ++y) {
                for (std::uint32_t x = 0; x < c; ++x) {
                    float best = -1e30f;
                    std::uint32_t best_off = 0;
                    for (std::uint32_t dy = 0; dy < 2; ++dy) {
                        for (std::uint32_t dx = 0; dx < 2; ++dx) {
                            const float v = input.at4(b, ch, 2 * y + dy,
                                                      2 * x + dx);
                            if (v > best) {
                                best = v;
                                best_off = dy * 2 + dx;
                            }
                        }
                    }
                    output.at4(b, ch, y, x) = best;
                    if (ctx.training)
                        argmax_[out_index] = best_off;
                    ++out_index;
                }
            }
        }
    }
    return output;
}

Tensor
MaxPool2dLayer::forwardTrials(const Tensor &input,
                              const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    RANA_ASSERT(input.shape().size() == 5 && input.dim(4) == lanes,
                "maxpool trial-batch input shape mismatch");
    const std::uint32_t batch = input.dim(0);
    const std::uint32_t channels = input.dim(1);
    const std::uint32_t h = input.dim(2);
    const std::uint32_t w = input.dim(3);
    RANA_ASSERT(h % 2 == 0 && w % 2 == 0,
                "maxpool2x2 needs even spatial dims");
    Tensor output({batch, channels, h / 2, w / 2, lanes});
    maxPoolTrialLanes(input.data(), output.data(), batch, channels, h,
                      w, lanes);
    return output;
}

Tensor
MaxPool2dLayer::backward(const Tensor &grad_output)
{
    Tensor grad_input(inputShape_);
    const std::uint32_t batch = grad_output.dim(0);
    const std::uint32_t channels = grad_output.dim(1);
    const std::uint32_t r = grad_output.dim(2);
    const std::uint32_t c = grad_output.dim(3);
    std::size_t out_index = 0;
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            for (std::uint32_t y = 0; y < r; ++y) {
                for (std::uint32_t x = 0; x < c; ++x) {
                    const std::uint32_t off = argmax_[out_index];
                    grad_input.at4(b, ch, 2 * y + off / 2,
                                   2 * x + off % 2) +=
                        grad_output.at4(b, ch, y, x);
                    ++out_index;
                }
            }
        }
    }
    return grad_input;
}

// ---------------------------------------------------------------
// AvgPool2dLayer
// ---------------------------------------------------------------

Tensor
AvgPool2dLayer::forward(const Tensor &input, const ForwardContext &ctx)
{
    const std::uint32_t batch = input.dim(0);
    const std::uint32_t channels = input.dim(1);
    const std::uint32_t h = input.dim(2);
    const std::uint32_t w = input.dim(3);
    RANA_ASSERT(h % 2 == 0 && w % 2 == 0,
                "avgpool2x2 needs even spatial dims");
    if (ctx.training)
        inputShape_ = input.shape();
    Tensor output({batch, channels, h / 2, w / 2});
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            for (std::uint32_t y = 0; y < h / 2; ++y) {
                for (std::uint32_t x = 0; x < w / 2; ++x) {
                    float sum = 0.0f;
                    for (std::uint32_t dy = 0; dy < 2; ++dy)
                        for (std::uint32_t dx = 0; dx < 2; ++dx)
                            sum += input.at4(b, ch, 2 * y + dy,
                                             2 * x + dx);
                    output.at4(b, ch, y, x) = sum * 0.25f;
                }
            }
        }
    }
    return output;
}

Tensor
AvgPool2dLayer::forwardTrials(const Tensor &input,
                              const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    RANA_ASSERT(input.shape().size() == 5 && input.dim(4) == lanes,
                "avgpool trial-batch input shape mismatch");
    const std::uint32_t batch = input.dim(0);
    const std::uint32_t channels = input.dim(1);
    const std::uint32_t h = input.dim(2);
    const std::uint32_t w = input.dim(3);
    RANA_ASSERT(h % 2 == 0 && w % 2 == 0,
                "avgpool2x2 needs even spatial dims");
    Tensor output({batch, channels, h / 2, w / 2, lanes});
    avgPoolTrialLanes(input.data(), output.data(), batch, channels, h,
                      w, lanes);
    return output;
}

Tensor
AvgPool2dLayer::backward(const Tensor &grad_output)
{
    Tensor grad_input(inputShape_);
    const std::uint32_t batch = grad_output.dim(0);
    const std::uint32_t channels = grad_output.dim(1);
    const std::uint32_t r = grad_output.dim(2);
    const std::uint32_t c = grad_output.dim(3);
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            for (std::uint32_t y = 0; y < r; ++y) {
                for (std::uint32_t x = 0; x < c; ++x) {
                    const float g =
                        grad_output.at4(b, ch, y, x) * 0.25f;
                    for (std::uint32_t dy = 0; dy < 2; ++dy)
                        for (std::uint32_t dx = 0; dx < 2; ++dx)
                            grad_input.at4(b, ch, 2 * y + dy,
                                           2 * x + dx) += g;
                }
            }
        }
    }
    return grad_input;
}

// ---------------------------------------------------------------
// DenseLayer
// ---------------------------------------------------------------

DenseLayer::DenseLayer(std::uint32_t in_features,
                       std::uint32_t out_features, Rng &rng)
    : inFeatures_(in_features),
      outFeatures_(out_features),
      weights_({out_features, in_features}),
      bias_({out_features}),
      weightGrad_({out_features, in_features}),
      biasGrad_({out_features})
{
    heInitialize(weights_, in_features, rng);
}

Tensor
DenseLayer::forward(const Tensor &input, const ForwardContext &ctx)
{
    RANA_ASSERT(input.shape().size() == 2 &&
                input.dim(1) == inFeatures_,
                "dense input shape mismatch");
    RANA_ASSERT(!(ctx.training && sharedWeights_ != nullptr),
                "shared-weight models are eval-only");
    const std::uint32_t batch = input.dim(0);

    const Tensor &weights =
        sharedWeights_ != nullptr ? *sharedWeights_ : weights_;
    const Tensor &bias =
        sharedBias_ != nullptr ? *sharedBias_ : bias_;
    const Tensor eff_input = effectiveOperand(input, ctx);
    const std::optional<Tensor> corrupted =
        corruptedWeights(weights, ctx);
    const Tensor &eff_weights = corrupted ? *corrupted : weights;
    if (ctx.training) {
        cachedInput_ = eff_input;
        cachedWeights_ = eff_weights;
    }

    Tensor output({batch, outFeatures_});
    denseForward(eff_input.data(), eff_weights.data(), bias.data(),
                 output.data(), batch, inFeatures_, outFeatures_);
    return output;
}

Tensor
DenseLayer::forwardTrials(const Tensor &input,
                          const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    RANA_ASSERT(input.shape().size() == 3 &&
                input.dim(1) == inFeatures_ &&
                input.dim(2) == lanes,
                "dense trial-batch input shape mismatch");
    const std::uint32_t batch = input.dim(0);

    const Tensor &weights =
        sharedWeights_ != nullptr ? *sharedWeights_ : weights_;
    const Tensor &bias =
        sharedBias_ != nullptr ? *sharedBias_ : bias_;
    Tensor eff_input = input;
    corruptTrialOperand(eff_input, ctx);
    const std::vector<float> packed_weights =
        packTrialWeights(weights, ctx);
    const std::vector<float> packed_bias = packTrialBias(bias, lanes);

    Tensor output({batch, outFeatures_, lanes});
    denseTrialLanes(eff_input.data(), packed_weights.data(),
                    packed_bias.data(), output.data(), batch,
                    inFeatures_, outFeatures_, lanes);
    return output;
}

Tensor
DenseLayer::backward(const Tensor &grad_output)
{
    const std::uint32_t batch = grad_output.dim(0);
    Tensor grad_input({batch, inFeatures_});
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t o = 0; o < outFeatures_; ++o) {
            const float g = grad_output.at2(b, o);
            biasGrad_[o] += g;
            for (std::uint32_t i = 0; i < inFeatures_; ++i) {
                weightGrad_.at2(o, i) += g * cachedInput_.at2(b, i);
                grad_input.at2(b, i) += g * cachedWeights_.at2(o, i);
            }
        }
    }
    return grad_input;
}

std::vector<Param>
DenseLayer::params()
{
    return {{&weights_, &weightGrad_}, {&bias_, &biasGrad_}};
}

void
DenseLayer::bindSharedParams(SharedParamCursor &cursor)
{
    sharedWeights_ = cursor.next();
    sharedBias_ = cursor.next();
    RANA_ASSERT(sharedWeights_ != nullptr && sharedBias_ != nullptr,
                "shared weight store exhausted at ", describe());
    RANA_ASSERT(sharedWeights_->shape() == weights_.shape() &&
                sharedBias_->shape() == bias_.shape(),
                "shared weight store shape mismatch at ", describe());
}

std::string
DenseLayer::describe() const
{
    std::ostringstream oss;
    oss << "dense(" << inFeatures_ << "->" << outFeatures_ << ")";
    return oss.str();
}

// ---------------------------------------------------------------
// FlattenLayer
// ---------------------------------------------------------------

Tensor
FlattenLayer::forward(const Tensor &input, const ForwardContext &ctx)
{
    if (ctx.training)
        inputShape_ = input.shape();
    const std::uint32_t batch = input.dim(0);
    const auto features =
        static_cast<std::uint32_t>(input.size() / batch);
    return input.reshaped({batch, features});
}

Tensor
FlattenLayer::forwardTrials(const Tensor &input,
                            const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    RANA_ASSERT(input.shape().size() >= 2 &&
                input.shape().back() == lanes,
                "flatten trial-batch input shape mismatch");
    const std::uint32_t batch = input.dim(0);
    // The lane index is innermost, so collapsing the middle
    // dimensions is the same pure reshape as the scalar layer.
    const auto features = static_cast<std::uint32_t>(
        input.size() / batch / lanes);
    return input.reshaped({batch, features, lanes});
}

Tensor
FlattenLayer::backward(const Tensor &grad_output)
{
    return grad_output.reshaped(inputShape_);
}

// ---------------------------------------------------------------
// Sequential
// ---------------------------------------------------------------

void
Sequential::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Sequential::forward(const Tensor &input, const ForwardContext &ctx)
{
    Tensor current = input;
    for (auto &layer : layers_)
        current = layer->forward(current, ctx);
    return current;
}

Tensor
Sequential::forwardTrials(const Tensor &input,
                          const TrialForwardContext &ctx)
{
    Tensor current = input;
    for (auto &layer : layers_)
        current = layer->forwardTrials(current, ctx);
    return current;
}

Tensor
Sequential::backward(const Tensor &grad_output)
{
    Tensor grad = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = (*it)->backward(grad);
    return grad;
}

std::vector<Param>
Sequential::params()
{
    std::vector<Param> all;
    for (auto &layer : layers_) {
        auto layer_params = layer->params();
        all.insert(all.end(), layer_params.begin(), layer_params.end());
    }
    return all;
}

void
Sequential::bindSharedParams(SharedParamCursor &cursor)
{
    for (auto &layer : layers_)
        layer->bindSharedParams(cursor);
}

std::string
Sequential::describe() const
{
    std::ostringstream oss;
    oss << "sequential[";
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (i > 0)
            oss << ", ";
        oss << layers_[i]->describe();
    }
    oss << "]";
    return oss.str();
}

// ---------------------------------------------------------------
// ResidualBlock
// ---------------------------------------------------------------

ResidualBlock::ResidualBlock(std::unique_ptr<Sequential> body)
    : body_(std::move(body))
{
    RANA_ASSERT(body_ != nullptr, "residual body must exist");
}

Tensor
ResidualBlock::forward(const Tensor &input, const ForwardContext &ctx)
{
    Tensor branch = body_->forward(input, ctx);
    RANA_ASSERT(branch.size() == input.size(),
                "residual body must preserve the shape");
    for (std::size_t i = 0; i < branch.size(); ++i)
        branch[i] += input[i];
    return branch;
}

Tensor
ResidualBlock::forwardTrials(const Tensor &input,
                             const TrialForwardContext &ctx)
{
    Tensor branch = body_->forwardTrials(input, ctx);
    RANA_ASSERT(branch.size() == input.size(),
                "residual body must preserve the shape");
    // As in the scalar layer, the skip adds the raw (uncorrupted)
    // block input element-wise; per lane the addition pairs are
    // identical to the scalar pass.
    addTrialSpan(branch.data(), input.data(), branch.size());
    return branch;
}

Tensor
ResidualBlock::backward(const Tensor &grad_output)
{
    Tensor grad = body_->backward(grad_output);
    for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] += grad_output[i];
    return grad;
}

std::vector<Param>
ResidualBlock::params()
{
    return body_->params();
}

void
ResidualBlock::bindSharedParams(SharedParamCursor &cursor)
{
    body_->bindSharedParams(cursor);
}

// ---------------------------------------------------------------
// InceptionConcat
// ---------------------------------------------------------------

InceptionConcat::InceptionConcat(
    std::vector<std::unique_ptr<Sequential>> branches)
    : branches_(std::move(branches))
{
    RANA_ASSERT(!branches_.empty(), "inception needs branches");
}

Tensor
InceptionConcat::forward(const Tensor &input, const ForwardContext &ctx)
{
    std::vector<Tensor> outputs;
    outputs.reserve(branches_.size());
    std::vector<std::uint32_t> channels;
    channels.reserve(branches_.size());
    std::uint32_t total_channels = 0;
    for (auto &branch : branches_) {
        outputs.push_back(branch->forward(input, ctx));
        const Tensor &out = outputs.back();
        RANA_ASSERT(out.shape().size() == 4,
                    "inception branches must output 4-D maps");
        RANA_ASSERT(out.dim(0) == outputs.front().dim(0) &&
                    out.dim(2) == outputs.front().dim(2) &&
                    out.dim(3) == outputs.front().dim(3),
                    "inception branch output shapes must align");
        channels.push_back(out.dim(1));
        total_channels += out.dim(1);
    }
    // Only training-mode forwards may touch member state: eval-mode
    // forwards run concurrently on a shared skeleton model.
    if (ctx.training)
        branchChannels_ = channels;

    const std::uint32_t batch = outputs.front().dim(0);
    const std::uint32_t h = outputs.front().dim(2);
    const std::uint32_t w = outputs.front().dim(3);
    Tensor concat({batch, total_channels, h, w});
    for (std::uint32_t b = 0; b < batch; ++b) {
        std::uint32_t channel_base = 0;
        for (std::size_t i = 0; i < outputs.size(); ++i) {
            for (std::uint32_t c = 0; c < channels[i]; ++c) {
                for (std::uint32_t y = 0; y < h; ++y) {
                    for (std::uint32_t x = 0; x < w; ++x) {
                        concat.at4(b, channel_base + c, y, x) =
                            outputs[i].at4(b, c, y, x);
                    }
                }
            }
            channel_base += channels[i];
        }
    }
    return concat;
}

Tensor
InceptionConcat::forwardTrials(const Tensor &input,
                               const TrialForwardContext &ctx)
{
    const std::uint32_t lanes = ctx.lanes();
    std::vector<Tensor> outputs;
    outputs.reserve(branches_.size());
    std::vector<std::uint32_t> channels;
    channels.reserve(branches_.size());
    std::uint32_t total_channels = 0;
    for (auto &branch : branches_) {
        outputs.push_back(branch->forwardTrials(input, ctx));
        const Tensor &out = outputs.back();
        RANA_ASSERT(out.shape().size() == 5 && out.dim(4) == lanes,
                    "inception branches must output lane-major 4-D "
                    "maps");
        RANA_ASSERT(out.dim(0) == outputs.front().dim(0) &&
                    out.dim(2) == outputs.front().dim(2) &&
                    out.dim(3) == outputs.front().dim(3),
                    "inception branch output shapes must align");
        channels.push_back(out.dim(1));
        total_channels += out.dim(1);
    }

    const std::uint32_t batch = outputs.front().dim(0);
    const std::uint32_t h = outputs.front().dim(2);
    const std::uint32_t w = outputs.front().dim(3);
    // Lane-major channel concatenation is a block copy: for one
    // sample, a branch's {c_i, h, w, L} slab is contiguous in both
    // the source and the destination.
    const std::size_t plane = static_cast<std::size_t>(h) * w * lanes;
    Tensor concat({batch, total_channels, h, w, lanes});
    for (std::uint32_t b = 0; b < batch; ++b) {
        std::uint32_t channel_base = 0;
        for (std::size_t i = 0; i < outputs.size(); ++i) {
            const std::size_t slab = channels[i] * plane;
            const float *src = outputs[i].data() + b * slab;
            float *dst = concat.data() +
                         (static_cast<std::size_t>(b) *
                              total_channels +
                          channel_base) *
                             plane;
            std::copy(src, src + slab, dst);
            channel_base += channels[i];
        }
    }
    return concat;
}

Tensor
InceptionConcat::backward(const Tensor &grad_output)
{
    const std::uint32_t batch = grad_output.dim(0);
    const std::uint32_t h = grad_output.dim(2);
    const std::uint32_t w = grad_output.dim(3);

    Tensor grad_input;
    bool first = true;
    std::uint32_t channel_base = 0;
    for (std::size_t i = 0; i < branches_.size(); ++i) {
        Tensor branch_grad({batch, branchChannels_[i], h, w});
        for (std::uint32_t b = 0; b < batch; ++b) {
            for (std::uint32_t c = 0; c < branchChannels_[i]; ++c) {
                for (std::uint32_t y = 0; y < h; ++y) {
                    for (std::uint32_t x = 0; x < w; ++x) {
                        branch_grad.at4(b, c, y, x) =
                            grad_output.at4(b, channel_base + c, y, x);
                    }
                }
            }
        }
        channel_base += branchChannels_[i];
        Tensor g = branches_[i]->backward(branch_grad);
        if (first) {
            grad_input = g;
            first = false;
        } else {
            for (std::size_t j = 0; j < grad_input.size(); ++j)
                grad_input[j] += g[j];
        }
    }
    return grad_input;
}

std::vector<Param>
InceptionConcat::params()
{
    std::vector<Param> all;
    for (auto &branch : branches_) {
        auto branch_params = branch->params();
        all.insert(all.end(), branch_params.begin(),
                   branch_params.end());
    }
    return all;
}

void
InceptionConcat::bindSharedParams(SharedParamCursor &cursor)
{
    for (auto &branch : branches_)
        branch->bindSharedParams(cursor);
}

} // namespace rana
