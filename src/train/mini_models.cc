/**
 * @file
 * Implementation of the mini model zoo.
 */

#include "train/mini_models.hh"

#include "util/logging.hh"

namespace rana {

namespace {

std::unique_ptr<Sequential>
seq()
{
    return std::make_unique<Sequential>();
}

/** conv -> relu. */
void
addConvRelu(Sequential &net, std::uint32_t in, std::uint32_t out,
            std::uint32_t k, std::uint32_t stride, std::uint32_t pad,
            Rng &rng)
{
    net.add(std::make_unique<Conv2dLayer>(in, out, k, stride, pad, rng));
    net.add(std::make_unique<ReluLayer>());
}

/** flatten -> dense head. */
void
addHead(Sequential &net, std::uint32_t features,
        std::uint32_t num_classes, Rng &rng)
{
    net.add(std::make_unique<FlattenLayer>());
    net.add(std::make_unique<DenseLayer>(features, num_classes, rng));
}

} // namespace

const char *
miniModelName(MiniModelKind kind)
{
    switch (kind) {
      case MiniModelKind::MiniAlex:
        return "AlexNet";
      case MiniModelKind::MiniVgg:
        return "VGG";
      case MiniModelKind::MiniInception:
        return "GoogLeNet";
      case MiniModelKind::MiniRes:
        return "ResNet";
    }
    panic("unreachable mini model kind");
}

std::vector<MiniModelKind>
allMiniModels()
{
    return {MiniModelKind::MiniAlex, MiniModelKind::MiniVgg,
            MiniModelKind::MiniInception, MiniModelKind::MiniRes};
}

std::unique_ptr<Sequential>
makeMiniModel(MiniModelKind kind, std::uint32_t image_size,
              std::uint32_t num_classes, Rng &rng)
{
    RANA_ASSERT(image_size % 4 == 0,
                "mini models pool twice; image size must divide by 4");
    const std::uint32_t quarter = image_size / 4;
    auto net = seq();

    switch (kind) {
      case MiniModelKind::MiniAlex: {
        // Two large-kernel convolutions with pooling, one dense head.
        addConvRelu(*net, 1, 8, 5, 1, 2, rng);
        net->add(std::make_unique<MaxPool2dLayer>());
        addConvRelu(*net, 8, 16, 5, 1, 2, rng);
        net->add(std::make_unique<MaxPool2dLayer>());
        addHead(*net, 16 * quarter * quarter, num_classes, rng);
        break;
      }
      case MiniModelKind::MiniVgg: {
        // Stacked 3x3 convolutions, two per stage.
        addConvRelu(*net, 1, 8, 3, 1, 1, rng);
        addConvRelu(*net, 8, 8, 3, 1, 1, rng);
        net->add(std::make_unique<MaxPool2dLayer>());
        addConvRelu(*net, 8, 16, 3, 1, 1, rng);
        addConvRelu(*net, 16, 16, 3, 1, 1, rng);
        net->add(std::make_unique<MaxPool2dLayer>());
        addHead(*net, 16 * quarter * quarter, num_classes, rng);
        break;
      }
      case MiniModelKind::MiniInception: {
        // Stem, one inception block, pooled head.
        addConvRelu(*net, 1, 8, 3, 1, 1, rng);
        net->add(std::make_unique<MaxPool2dLayer>());
        std::vector<std::unique_ptr<Sequential>> branches;
        auto b1 = seq();
        addConvRelu(*b1, 8, 8, 1, 1, 0, rng);
        branches.push_back(std::move(b1));
        auto b3 = seq();
        addConvRelu(*b3, 8, 4, 1, 1, 0, rng);
        addConvRelu(*b3, 4, 8, 3, 1, 1, rng);
        branches.push_back(std::move(b3));
        auto b5 = seq();
        addConvRelu(*b5, 8, 2, 1, 1, 0, rng);
        addConvRelu(*b5, 2, 4, 5, 1, 2, rng);
        branches.push_back(std::move(b5));
        net->add(std::make_unique<InceptionConcat>(std::move(branches)));
        net->add(std::make_unique<MaxPool2dLayer>());
        addHead(*net, 20 * quarter * quarter, num_classes, rng);
        break;
      }
      case MiniModelKind::MiniRes: {
        // Stem plus two residual blocks with identity shortcuts.
        addConvRelu(*net, 1, 12, 3, 1, 1, rng);
        net->add(std::make_unique<MaxPool2dLayer>());
        for (int block = 0; block < 2; ++block) {
            auto body = seq();
            addConvRelu(*body, 12, 12, 3, 1, 1, rng);
            body->add(std::make_unique<Conv2dLayer>(12, 12, 3, 1, 1,
                                                    rng));
            net->add(
                std::make_unique<ResidualBlock>(std::move(body)));
            net->add(std::make_unique<ReluLayer>());
        }
        net->add(std::make_unique<MaxPool2dLayer>());
        addHead(*net, 12 * quarter * quarter, num_classes, rng);
        break;
      }
    }
    return net;
}

} // namespace rana
