/**
 * @file
 * Four mini CNN architectures standing in for the paper's four
 * benchmarks in the training-level experiments:
 *
 *  - MiniAlex:      plain convolutions with large-ish kernels
 *                   (AlexNet-style).
 *  - MiniVgg:       stacked 3x3 convolutions (VGG-style).
 *  - MiniInception: parallel 1x1 / 3x3 / 5x5 branches concatenated
 *                   (GoogLeNet-style).
 *  - MiniRes:       residual blocks with identity shortcuts
 *                   (ResNet-style).
 *
 * All four consume the synthetic dataset's {1, S, S} images and emit
 * `numClasses` logits. The error-resilience phenomenon that Figure
 * 11 demonstrates (no accuracy loss at a 1e-5 bit failure rate,
 * gradual decay from 1e-4) is architecture-generic, which is why the
 * substitution preserves the experiment's shape.
 */

#ifndef RANA_TRAIN_MINI_MODELS_HH_
#define RANA_TRAIN_MINI_MODELS_HH_

#include <memory>
#include <string>
#include <vector>

#include "train/layers.hh"

namespace rana {

/** Identifier of a mini benchmark model. */
enum class MiniModelKind {
    MiniAlex,
    MiniVgg,
    MiniInception,
    MiniRes,
};

/** Paper-benchmark name the mini model stands in for. */
const char *miniModelName(MiniModelKind kind);

/**
 * Build one mini model for `image_size` x `image_size` single-channel
 * inputs and `num_classes` outputs.
 */
std::unique_ptr<Sequential> makeMiniModel(MiniModelKind kind,
                                          std::uint32_t image_size,
                                          std::uint32_t num_classes,
                                          Rng &rng);

/** All four kinds in the paper's benchmark order. */
std::vector<MiniModelKind> allMiniModels();

} // namespace rana

#endif // RANA_TRAIN_MINI_MODELS_HH_
