/**
 * @file
 * Bit-level retention-error injection (Section IV-B, Figure 9).
 *
 * The training mask models eDRAM retention failures: each bit of
 * each stored 16-bit word independently fails at rate r; a failed
 * bit reads back a random value (0 or 1 with equal probability), so
 * half of the injected failures are benign. The injector corrupts a
 * tensor by quantizing it to the hardware's fixed-point format,
 * flipping bits of the stored words, and dequantizing back.
 *
 * For small rates the injector skips between affected words with a
 * geometric jump instead of testing every bit, keeping injection
 * cheap at the 1e-5 operating point.
 */

#ifndef RANA_TRAIN_ERROR_INJECTION_HH_
#define RANA_TRAIN_ERROR_INJECTION_HH_

#include <cstdint>

#include "train/fixed_point.hh"
#include "train/tensor.hh"
#include "util/random.hh"

namespace rana {

/** Injects bit-level retention errors into 16-bit words. */
class BitErrorInjector
{
  public:
    /**
     * @param failure_rate per-bit retention failure rate r in [0, 1]
     * @param seed         RNG seed (injection is deterministic per
     *                     seed for reproducible experiments)
     */
    BitErrorInjector(double failure_rate, std::uint64_t seed);

    /** Per-bit failure rate. */
    double failureRate() const { return rate_; }

    /** Corrupt one 16-bit word. */
    std::int16_t corruptWord(std::int16_t word);

    /**
     * Corrupt a tensor in place: quantize to `format`, inject bit
     * errors into the stored words, dequantize back.
     * @return the number of words that had at least one failed bit.
     */
    std::uint64_t corruptTensor(Tensor &tensor,
                                const FixedPointFormat &format);

    /**
     * Corrupt `count` logical words stored `stride` floats apart,
     * starting at `data`. The RNG consumption depends only on
     * `count` and the rate, never on the stride, so corrupting one
     * lane of a lane-major trial batch (stride = lane count) draws
     * exactly the same error pattern as corrupting the contiguous
     * scalar tensor — the batched campaign path stays bit-identical
     * to the per-trial reference. corruptTensor is the stride-1
     * special case.
     * @return the number of words that had at least one failed bit.
     */
    std::uint64_t corruptStrided(float *data, std::size_t count,
                                 std::size_t stride,
                                 const FixedPointFormat &format);

    /** Reseed the injector. */
    void reseed(std::uint64_t seed);

  private:
    double rate_;
    double wordRate_;
    Rng rng_;
};

} // namespace rana

#endif // RANA_TRAIN_ERROR_INJECTION_HH_
