/**
 * @file
 * Implementation of the synthetic dataset.
 */

#include "train/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rana {

SyntheticDataset::SyntheticDataset(const DatasetConfig &config)
    : config_(config)
{
    RANA_ASSERT(config.numClasses >= 2, "need at least two classes");
    Rng rng(config.seed);

    // Class prototypes: mixtures of oriented sinusoids, distinct per
    // class by construction of their random frequencies and phases.
    const std::uint32_t s = config_.imageSize;
    for (std::uint32_t cls = 0; cls < config_.numClasses; ++cls) {
        Tensor proto({1, config_.channels, s, s});
        struct Wave { double fx, fy, phase, amp; };
        std::vector<Wave> waves;
        for (int w = 0; w < 3; ++w) {
            waves.push_back({rng.uniform(0.5, 3.0) / s,
                             rng.uniform(0.5, 3.0) / s,
                             rng.uniform(0.0, 2.0 * M_PI),
                             rng.uniform(0.4, 1.0)});
        }
        for (std::uint32_t c = 0; c < config_.channels; ++c) {
            for (std::uint32_t y = 0; y < s; ++y) {
                for (std::uint32_t x = 0; x < s; ++x) {
                    double v = 0.0;
                    for (const Wave &wave : waves) {
                        v += wave.amp *
                             std::sin(2.0 * M_PI *
                                          (wave.fx * x + wave.fy * y) +
                                      wave.phase + c);
                    }
                    proto.at4(0, c, y, x) = static_cast<float>(v);
                }
            }
        }
        prototypes_.push_back(std::move(proto));
    }

    train_.reserve(config_.trainSamples);
    for (std::uint32_t i = 0; i < config_.trainSamples; ++i) {
        train_.push_back(makeSample(i % config_.numClasses, rng));
    }
    test_.reserve(config_.testSamples);
    for (std::uint32_t i = 0; i < config_.testSamples; ++i) {
        test_.push_back(makeSample(i % config_.numClasses, rng));
    }
    trainOrder_.resize(train_.size());
    for (std::uint32_t i = 0; i < trainOrder_.size(); ++i)
        trainOrder_[i] = i;
}

SyntheticDataset::Sample
SyntheticDataset::makeSample(std::uint32_t label, Rng &rng) const
{
    const std::uint32_t s = config_.imageSize;
    const Tensor &proto = prototypes_[label];
    const auto shift = static_cast<std::int64_t>(config_.maxShift);
    const std::int64_t dy = rng.uniformInt(-shift, shift);
    const std::int64_t dx = rng.uniformInt(-shift, shift);
    const double amp = rng.uniform(0.8, 1.2);

    Sample sample;
    sample.label = label;
    sample.image = Tensor({1, config_.channels, s, s});
    for (std::uint32_t c = 0; c < config_.channels; ++c) {
        for (std::uint32_t y = 0; y < s; ++y) {
            for (std::uint32_t x = 0; x < s; ++x) {
                const auto sy = static_cast<std::uint32_t>(
                    ((y + dy) % s + s) % s);
                const auto sx = static_cast<std::uint32_t>(
                    ((x + dx) % s + s) % s);
                const double noise =
                    rng.normal(0.0, config_.noise);
                sample.image.at4(0, c, y, x) = static_cast<float>(
                    amp * proto.at4(0, c, sy, sx) + noise);
            }
        }
    }
    return sample;
}

Batch
SyntheticDataset::trainBatch(std::uint32_t offset,
                             std::uint32_t batch_size) const
{
    RANA_ASSERT(batch_size > 0, "batch must be non-empty");
    const std::uint32_t s = config_.imageSize;
    Batch batch;
    batch.images = Tensor({batch_size, config_.channels, s, s});
    batch.labels.resize(batch_size);
    for (std::uint32_t b = 0; b < batch_size; ++b) {
        const std::uint32_t index =
            trainOrder_[(offset + b) % train_.size()];
        const Sample &sample = train_[index];
        batch.labels[b] = sample.label;
        for (std::uint32_t c = 0; c < config_.channels; ++c) {
            for (std::uint32_t y = 0; y < s; ++y) {
                for (std::uint32_t x = 0; x < s; ++x) {
                    batch.images.at4(b, c, y, x) =
                        sample.image.at4(0, c, y, x);
                }
            }
        }
    }
    return batch;
}

Batch
SyntheticDataset::testBatch() const
{
    const std::uint32_t s = config_.imageSize;
    const auto count = static_cast<std::uint32_t>(test_.size());
    Batch batch;
    batch.images = Tensor({count, config_.channels, s, s});
    batch.labels.resize(count);
    for (std::uint32_t b = 0; b < count; ++b) {
        const Sample &sample = test_[b];
        batch.labels[b] = sample.label;
        for (std::uint32_t c = 0; c < config_.channels; ++c) {
            for (std::uint32_t y = 0; y < s; ++y) {
                for (std::uint32_t x = 0; x < s; ++x) {
                    batch.images.at4(b, c, y, x) =
                        sample.image.at4(0, c, y, x);
                }
            }
        }
    }
    return batch;
}

void
SyntheticDataset::shuffleTrain(Rng &rng)
{
    for (std::size_t i = trainOrder_.size(); i > 1; --i) {
        const std::size_t j = rng.uniformInt(std::uint64_t{i});
        std::swap(trainOrder_[i - 1], trainOrder_[j]);
    }
}

} // namespace rana
