/**
 * @file
 * Implementation of the dense tensor.
 */

#include "train/tensor.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace rana {

namespace {

std::size_t
shapeSize(const std::vector<std::uint32_t> &shape)
{
    std::size_t total = 1;
    for (std::uint32_t extent : shape)
        total *= extent;
    return shape.empty() ? 0 : total;
}

} // namespace

Tensor::Tensor(std::vector<std::uint32_t> shape)
    : shape_(std::move(shape)), data_(shapeSize(shape_), 0.0f)
{
    for (std::uint32_t extent : shape_)
        RANA_ASSERT(extent > 0, "tensor dimensions must be positive");
}

std::uint32_t
Tensor::dim(std::size_t d) const
{
    RANA_ASSERT(d < shape_.size(), "tensor dimension out of range");
    return shape_[d];
}

float &
Tensor::at4(std::uint32_t n, std::uint32_t c, std::uint32_t h,
            std::uint32_t w)
{
    return data_[((static_cast<std::size_t>(n) * shape_[1] + c) *
                      shape_[2] +
                  h) *
                     shape_[3] +
                 w];
}

float
Tensor::at4(std::uint32_t n, std::uint32_t c, std::uint32_t h,
            std::uint32_t w) const
{
    return const_cast<Tensor *>(this)->at4(n, c, h, w);
}

float &
Tensor::at2(std::uint32_t r, std::uint32_t c)
{
    return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

float
Tensor::at2(std::uint32_t r, std::uint32_t c) const
{
    return const_cast<Tensor *>(this)->at2(r, c);
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

Tensor
Tensor::reshaped(std::vector<std::uint32_t> new_shape) const
{
    RANA_ASSERT(shapeSize(new_shape) == size(),
                "reshape must preserve the element count");
    Tensor result(std::move(new_shape));
    std::copy(data_.begin(), data_.end(), result.data_.begin());
    return result;
}

std::string
Tensor::describeShape() const
{
    std::ostringstream oss;
    oss << "{";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
        if (i > 0)
            oss << ",";
        oss << shape_[i];
    }
    oss << "}";
    return oss.str();
}

} // namespace rana
