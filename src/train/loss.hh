/**
 * @file
 * Softmax cross-entropy loss and classification accuracy.
 */

#ifndef RANA_TRAIN_LOSS_HH_
#define RANA_TRAIN_LOSS_HH_

#include <cstdint>
#include <vector>

#include "train/tensor.hh"

namespace rana {

/** Loss value plus the gradient w.r.t. the logits. */
struct LossResult
{
    /** Mean cross-entropy over the batch. */
    double loss = 0.0;
    /** Gradient of the mean loss w.r.t. the logits. */
    Tensor gradLogits;
    /** Correct top-1 predictions in the batch. */
    std::uint32_t correct = 0;
};

/**
 * Softmax cross-entropy for a batch of logits {B, classes} against
 * integer labels.
 */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<std::uint32_t> &labels);

/** Top-1 predicted class per batch row. */
std::vector<std::uint32_t> argmaxRows(const Tensor &logits);

} // namespace rana

#endif // RANA_TRAIN_LOSS_HH_
