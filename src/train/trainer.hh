/**
 * @file
 * The retention-aware training method (Section IV-B, Figure 9).
 *
 * Workflow, mirroring the paper:
 *
 *   1. Fixed-point pretrain: the model is trained with 16-bit
 *      fixed-point quantization of inputs and weights (no errors),
 *      giving the baseline accuracy.
 *   2. Adding layer masks: bit-level retention errors at failure
 *      rate r are injected into every layer's quantized inputs and
 *      weights during the forward propagation.
 *   3. Retrain: the model is retrained under injection, adjusting
 *      the weights to the error distribution.
 *   4. Evaluate: accuracy is measured with errors injected; if the
 *      relative accuracy meets the constraint, the model tolerates
 *      failure rate r, and the eDRAM retention distribution converts
 *      r into a tolerable retention time.
 */

#ifndef RANA_TRAIN_TRAINER_HH_
#define RANA_TRAIN_TRAINER_HH_

#include <memory>
#include <vector>

#include "train/dataset.hh"
#include "train/mini_models.hh"
#include "train/optimizer.hh"

namespace rana {

/** Hyper-parameters of the retention-aware trainer. */
struct TrainerConfig
{
    std::uint32_t pretrainEpochs = 8;
    std::uint32_t retrainEpochs = 4;
    std::uint32_t batchSize = 32;
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 1e-4;
    /**
     * Per-element gradient clamp; keeps the activation outliers
     * produced by high-order injected bit flips from destabilizing
     * the retrain.
     */
    double gradClip = 0.25;
    /**
     * Hardware fixed-point format of buffered data. Q3.12 keeps the
     * representable range tight around the signal so a flipped
     * high-order bit perturbs a value by at most ~8x the typical
     * activation magnitude (deployed fixed-point CNNs choose
     * per-layer formats the same way).
     */
    FixedPointFormat format = {12};
    /** Evaluation repeats (independent error draws) per rate. */
    std::uint32_t evalRepeats = 3;
    std::uint64_t seed = 7;
};

/** One point of the accuracy-vs-failure-rate curve (Figure 11). */
struct AccuracyPoint
{
    double failureRate = 0.0;
    /** Absolute top-1 accuracy under injection. */
    double accuracy = 0.0;
    /** Accuracy relative to the error-free fixed-point baseline. */
    double relativeAccuracy = 0.0;
};

/** Retention-aware trainer for one mini model. */
class RetentionAwareTrainer
{
  public:
    RetentionAwareTrainer(MiniModelKind kind,
                          const DatasetConfig &dataset_config,
                          const TrainerConfig &trainer_config);

    /**
     * Fixed-point pretrain; returns (and records) the baseline test
     * accuracy. Must be called before the retrain methods.
     */
    double pretrain();

    /** Baseline fixed-point accuracy from pretrain(). */
    double baselineAccuracy() const { return baselineAccuracy_; }

    /**
     * Restore the pretrained weights, retrain with bit errors at
     * `failure_rate`, and evaluate under injection.
     */
    AccuracyPoint retrainAndEvaluate(double failure_rate);

    /**
     * Restore the pretrained weights and retrain with bit errors at
     * `failure_rate`, skipping the before/after evaluations. The
     * weight trajectory is bit-identical to retrainAndEvaluate
     * (evaluate() draws its injector seeds independently and never
     * touches the training RNG); callers that discard the accuracy
     * point — the fault campaign measures accuracy per trial anyway
     * — save two injected evaluation passes.
     */
    void retrain(double failure_rate);

    /** Figure-11 sweep: retrainAndEvaluate over a ladder of rates. */
    std::vector<AccuracyPoint>
    sweep(const std::vector<double> &failure_rates);

    /**
     * Highest failure rate in `ladder` whose retrained relative
     * accuracy stays at or above `min_relative_accuracy`; returns
     * the smallest ladder rate if even that fails (callers should
     * then fall back to the worst-case refresh interval).
     */
    double findTolerableFailureRate(const std::vector<double> &ladder,
                                    double min_relative_accuracy);

    /** Evaluate test accuracy under injection at `failure_rate`. */
    double evaluate(double failure_rate);

    /** The model under training (for inspection). */
    const Sequential &model() const { return *model_; }

    /**
     * Copy of the current parameter tensors, in params() order.
     * Campaign trials import these into per-trial model replicas so
     * corrupted forward passes run without sharing layer caches.
     */
    std::vector<Tensor> exportWeights();

    /**
     * Immutable shared snapshot of the current parameter tensors, in
     * params() order. When `prequantize` is set the exported tensors
     * are quantized to that format once, so every consumer can bind
     * the store, set ForwardContext::weightsPreQuantized, and skip
     * the per-forward re-quantization (quantization is idempotent,
     * hence numerically identical). Campaign trials share one store
     * across all replicas with copy-on-corrupt.
     */
    WeightStore
    exportWeightsShared(const FixedPointFormat *prequantize = nullptr);

    /**
     * Restore the pretrained snapshot into the model (the state
     * retrainAndEvaluate starts from). Requires pretrain().
     */
    void restorePretrained();

    /** The dataset the trainer trains and evaluates on. */
    const SyntheticDataset &dataset() const { return dataset_; }

  private:
    void trainEpochs(std::uint32_t epochs, double failure_rate,
                     bool quantized);
    void snapshotWeights();
    void restoreWeights();

    MiniModelKind kind_;
    TrainerConfig config_;
    SyntheticDataset dataset_;
    Rng rng_;
    std::unique_ptr<Sequential> model_;
    std::unique_ptr<SgdOptimizer> optimizer_;
    std::vector<Tensor> snapshot_;
    double baselineAccuracy_ = 0.0;
    bool pretrained_ = false;
};

} // namespace rana

#endif // RANA_TRAIN_TRAINER_HH_
