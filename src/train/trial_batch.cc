/**
 * @file
 * Lane-major kernels of the trial-batched campaign forward pass.
 *
 * This translation unit is compiled at -O3 (see the CMakeLists) and
 * the hot kernels carry target_clones("default","avx"): the loader
 * picks the AVX clone on capable CPUs while the binary stays
 * runnable on baseline x86-64. The lane count is a template
 * parameter for the power-of-two block sizes the campaign uses, so
 * the innermost lane loop has a compile-time trip count and turns
 * into straight-line vector code; other lane counts take the
 * runtime-lane fallback, which is slower but bit-identical.
 *
 * Every kernel keeps the scalar reference's per-accumulator
 * operation order — vectorization only spans independent lanes and
 * output positions — so the results match the scalar path bit for
 * bit (no FMA contraction exists at the x86-64 baseline or AVX
 * feature levels).
 */

#include "train/trial_batch.hh"

#include <cmath>

#include "util/logging.hh"

namespace rana {

namespace {

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define RANA_TRIAL_CLONES                                             \
    __attribute__((target_clones("default", "avx")))
#else
#define RANA_TRIAL_CLONES
#endif

/**
 * Convolution of one output channel `m` of one sample over a
 * lane-major tensor, compile-time lane count. `acc` is a
 * caller-provided {c, L} scratch row.
 */
template <std::uint32_t L>
RANA_TRIAL_CLONES void
convolveLanesOne(const float *__restrict in,
                 const float *__restrict wt,
                 const float *__restrict bias,
                 float *__restrict out, std::uint32_t b,
                 std::uint32_t m, std::uint32_t in_channels,
                 std::uint32_t h, std::uint32_t w,
                 std::uint32_t out_channels, std::uint32_t r,
                 std::uint32_t c, std::uint32_t kernel,
                 std::uint32_t stride, std::uint32_t pad,
                 float *__restrict acc)
{
    const std::size_t in_plane =
        static_cast<std::size_t>(h) * w * L;
    const std::size_t in_sample = in_plane * in_channels;
    const std::size_t in_row = static_cast<std::size_t>(w) * L;
    const std::size_t out_plane =
        static_cast<std::size_t>(r) * c * L;
    const std::size_t wt_kernel =
        static_cast<std::size_t>(kernel) * kernel * L;
    float *out_m = out + (b * out_channels + m) * out_plane;
    const float *wt_m = wt + m * in_channels * wt_kernel;
    const float *bias_m = bias + static_cast<std::size_t>(m) * L;
    for (std::uint32_t y = 0; y < r; ++y) {
        const std::int64_t base_y =
            static_cast<std::int64_t>(y) * stride - pad;
        for (std::uint32_t x = 0; x < c; ++x)
            for (std::uint32_t l = 0; l < L; ++l)
                acc[x * L + l] = bias_m[l];
        for (std::uint32_t n = 0; n < in_channels; ++n) {
            const float *in_n = in + b * in_sample + n * in_plane;
            const float *wt_n = wt_m + n * wt_kernel;
            for (std::uint32_t ky = 0; ky < kernel; ++ky) {
                const std::int64_t in_y = base_y + ky;
                if (in_y < 0 || in_y >= h)
                    continue;
                const float *row = in_n + in_y * in_row;
                const float *wt_row =
                    wt_n + static_cast<std::size_t>(ky) * kernel * L;
                for (std::uint32_t kx = 0; kx < kernel; ++kx) {
                    // Valid x satisfy 0 <= x*stride + off < w.
                    const std::int64_t off =
                        static_cast<std::int64_t>(kx) - pad;
                    std::int64_t x_lo = 0;
                    if (off < 0) {
                        x_lo = (-off + stride - 1) / stride;
                    }
                    std::int64_t x_hi = 0;
                    if (w >= off + 1) {
                        x_hi = (w - 1 - off) / stride + 1;
                    }
                    x_hi = std::min<std::int64_t>(x_hi, c);
                    if (x_lo >= x_hi)
                        continue;
                    const float *__restrict wv =
                        wt_row + static_cast<std::size_t>(kx) * L;
                    if (stride == 1) {
                        const float *src = row + off * L;
                        for (std::int64_t x = x_lo; x < x_hi; ++x) {
                            float *__restrict a = acc + x * L;
                            const float *__restrict s = src + x * L;
                            for (std::uint32_t l = 0; l < L; ++l)
                                a[l] += s[l] * wv[l];
                        }
                    } else {
                        for (std::int64_t x = x_lo; x < x_hi; ++x) {
                            float *__restrict a = acc + x * L;
                            const float *__restrict s =
                                row + (x * stride + off) * L;
                            for (std::uint32_t l = 0; l < L; ++l)
                                a[l] += s[l] * wv[l];
                        }
                    }
                }
            }
        }
        float *out_row = out_m + static_cast<std::size_t>(y) * c * L;
        for (std::size_t i = 0; i < static_cast<std::size_t>(c) * L;
             ++i)
            out_row[i] = acc[i];
    }
}

/**
 * Convolution of the output-channel pair {m, m+1} of one sample,
 * compile-time lane count. `acc` is a caller-provided {2, c, L}
 * scratch block.
 *
 * Pairing output channels reuses each loaded input vector for two
 * multiply-adds and keeps two independent accumulator chains in
 * flight, hiding the add latency the single-channel loop exposes.
 * Each channel's accumulation sequence is exactly the single-channel
 * order — pairing only interleaves independent accumulators — so
 * the result stays bit-identical to the scalar reference.
 */
template <std::uint32_t L>
RANA_TRIAL_CLONES void
convolveLanesPair(const float *__restrict in,
                  const float *__restrict wt,
                  const float *__restrict bias,
                  float *__restrict out, std::uint32_t b,
                  std::uint32_t m, std::uint32_t in_channels,
                  std::uint32_t h, std::uint32_t w,
                  std::uint32_t out_channels, std::uint32_t r,
                  std::uint32_t c, std::uint32_t kernel,
                  std::uint32_t stride, std::uint32_t pad,
                  float *__restrict acc)
{
    const std::size_t in_plane =
        static_cast<std::size_t>(h) * w * L;
    const std::size_t in_sample = in_plane * in_channels;
    const std::size_t in_row = static_cast<std::size_t>(w) * L;
    const std::size_t out_plane =
        static_cast<std::size_t>(r) * c * L;
    const std::size_t wt_kernel =
        static_cast<std::size_t>(kernel) * kernel * L;
    float *out_m0 = out + (b * out_channels + m) * out_plane;
    float *out_m1 = out_m0 + out_plane;
    const float *wt_m0 = wt + m * in_channels * wt_kernel;
    const float *wt_m1 = wt_m0 + in_channels * wt_kernel;
    const float *bias_m0 = bias + static_cast<std::size_t>(m) * L;
    const float *bias_m1 = bias_m0 + L;
    float *__restrict a0 = acc;
    float *__restrict a1 = acc + static_cast<std::size_t>(c) * L;
    for (std::uint32_t y = 0; y < r; ++y) {
        const std::int64_t base_y =
            static_cast<std::int64_t>(y) * stride - pad;
        for (std::uint32_t x = 0; x < c; ++x)
            for (std::uint32_t l = 0; l < L; ++l) {
                a0[x * L + l] = bias_m0[l];
                a1[x * L + l] = bias_m1[l];
            }
        for (std::uint32_t n = 0; n < in_channels; ++n) {
            const float *in_n = in + b * in_sample + n * in_plane;
            const float *wt_n0 = wt_m0 + n * wt_kernel;
            const float *wt_n1 = wt_m1 + n * wt_kernel;
            for (std::uint32_t ky = 0; ky < kernel; ++ky) {
                const std::int64_t in_y = base_y + ky;
                if (in_y < 0 || in_y >= h)
                    continue;
                const float *row = in_n + in_y * in_row;
                const float *wt_row0 =
                    wt_n0 + static_cast<std::size_t>(ky) * kernel * L;
                const float *wt_row1 =
                    wt_n1 + static_cast<std::size_t>(ky) * kernel * L;
                for (std::uint32_t kx = 0; kx < kernel; ++kx) {
                    // Valid x satisfy 0 <= x*stride + off < w.
                    const std::int64_t off =
                        static_cast<std::int64_t>(kx) - pad;
                    std::int64_t x_lo = 0;
                    if (off < 0) {
                        x_lo = (-off + stride - 1) / stride;
                    }
                    std::int64_t x_hi = 0;
                    if (w >= off + 1) {
                        x_hi = (w - 1 - off) / stride + 1;
                    }
                    x_hi = std::min<std::int64_t>(x_hi, c);
                    if (x_lo >= x_hi)
                        continue;
                    const float *__restrict wv0 =
                        wt_row0 + static_cast<std::size_t>(kx) * L;
                    const float *__restrict wv1 =
                        wt_row1 + static_cast<std::size_t>(kx) * L;
                    if (stride == 1) {
                        const float *src = row + off * L;
                        for (std::int64_t x = x_lo; x < x_hi; ++x) {
                            const float *__restrict s = src + x * L;
                            float *__restrict p0 = a0 + x * L;
                            float *__restrict p1 = a1 + x * L;
                            for (std::uint32_t l = 0; l < L; ++l) {
                                p0[l] += s[l] * wv0[l];
                                p1[l] += s[l] * wv1[l];
                            }
                        }
                    } else {
                        for (std::int64_t x = x_lo; x < x_hi; ++x) {
                            const float *__restrict s =
                                row + (x * stride + off) * L;
                            float *__restrict p0 = a0 + x * L;
                            float *__restrict p1 = a1 + x * L;
                            for (std::uint32_t l = 0; l < L; ++l) {
                                p0[l] += s[l] * wv0[l];
                                p1[l] += s[l] * wv1[l];
                            }
                        }
                    }
                }
            }
        }
        float *out_row0 =
            out_m0 + static_cast<std::size_t>(y) * c * L;
        float *out_row1 =
            out_m1 + static_cast<std::size_t>(y) * c * L;
        for (std::size_t i = 0; i < static_cast<std::size_t>(c) * L;
             ++i) {
            out_row0[i] = a0[i];
            out_row1[i] = a1[i];
        }
    }
}

/**
 * Convolution over one lane-major tensor with a compile-time lane
 * count. `acc` is a caller-provided {2, c, L} scratch block.
 *
 * Output channels are paired on narrow multi-input layers, where
 * the pairing measures 1.2-1.3x. Wide rows (c > 6) and single-input
 * layers stay on the one-channel path: there the second accumulator
 * row costs more than the input reuse earns (empirically tuned on
 * the campaign's MiniVgg/MiniAlexNet shapes).
 */
template <std::uint32_t L>
void
convolveLanesImpl(const float *__restrict in,
                  const float *__restrict wt,
                  const float *__restrict bias,
                  float *__restrict out, std::uint32_t batch,
                  std::uint32_t in_channels, std::uint32_t h,
                  std::uint32_t w, std::uint32_t out_channels,
                  std::uint32_t r, std::uint32_t c,
                  std::uint32_t kernel, std::uint32_t stride,
                  std::uint32_t pad, float *__restrict acc)
{
    for (std::uint32_t b = 0; b < batch; ++b) {
        std::uint32_t m = 0;
        if (in_channels >= 2 && c <= 6) {
            for (; m + 2 <= out_channels; m += 2)
                convolveLanesPair<L>(in, wt, bias, out, b, m,
                                     in_channels, h, w, out_channels,
                                     r, c, kernel, stride, pad, acc);
        }
        for (; m < out_channels; ++m)
            convolveLanesOne<L>(in, wt, bias, out, b, m, in_channels,
                                h, w, out_channels, r, c, kernel,
                                stride, pad, acc);
    }
}

/** Runtime-lane convolution fallback (any lane count). */
RANA_TRIAL_CLONES void
convolveLanesGeneric(const float *__restrict in,
                     const float *__restrict wt,
                     const float *__restrict bias,
                     float *__restrict out, std::uint32_t batch,
                     std::uint32_t in_channels, std::uint32_t h,
                     std::uint32_t w, std::uint32_t out_channels,
                     std::uint32_t r, std::uint32_t c,
                     std::uint32_t kernel, std::uint32_t stride,
                     std::uint32_t pad, std::uint32_t lanes,
                     float *__restrict acc)
{
    const std::size_t in_plane =
        static_cast<std::size_t>(h) * w * lanes;
    const std::size_t in_sample = in_plane * in_channels;
    const std::size_t in_row = static_cast<std::size_t>(w) * lanes;
    const std::size_t out_plane =
        static_cast<std::size_t>(r) * c * lanes;
    const std::size_t wt_kernel =
        static_cast<std::size_t>(kernel) * kernel * lanes;
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t m = 0; m < out_channels; ++m) {
            float *out_m = out + (b * out_channels + m) * out_plane;
            const float *wt_m = wt + m * in_channels * wt_kernel;
            const float *bias_m =
                bias + static_cast<std::size_t>(m) * lanes;
            for (std::uint32_t y = 0; y < r; ++y) {
                const std::int64_t base_y =
                    static_cast<std::int64_t>(y) * stride - pad;
                for (std::uint32_t x = 0; x < c; ++x)
                    for (std::uint32_t l = 0; l < lanes; ++l)
                        acc[x * lanes + l] = bias_m[l];
                for (std::uint32_t n = 0; n < in_channels; ++n) {
                    const float *in_n =
                        in + b * in_sample + n * in_plane;
                    const float *wt_n = wt_m + n * wt_kernel;
                    for (std::uint32_t ky = 0; ky < kernel; ++ky) {
                        const std::int64_t in_y = base_y + ky;
                        if (in_y < 0 || in_y >= h)
                            continue;
                        const float *row = in_n + in_y * in_row;
                        const float *wt_row =
                            wt_n + static_cast<std::size_t>(ky) *
                                       kernel * lanes;
                        for (std::uint32_t kx = 0; kx < kernel;
                             ++kx) {
                            const std::int64_t off =
                                static_cast<std::int64_t>(kx) - pad;
                            std::int64_t x_lo = 0;
                            if (off < 0) {
                                x_lo = (-off + stride - 1) / stride;
                            }
                            std::int64_t x_hi = 0;
                            if (w >= off + 1) {
                                x_hi = (w - 1 - off) / stride + 1;
                            }
                            x_hi = std::min<std::int64_t>(x_hi, c);
                            if (x_lo >= x_hi)
                                continue;
                            const float *__restrict wv =
                                wt_row + static_cast<std::size_t>(kx) *
                                             lanes;
                            for (std::int64_t x = x_lo; x < x_hi;
                                 ++x) {
                                float *__restrict a = acc + x * lanes;
                                const float *__restrict s =
                                    row + (x * stride + off) * lanes;
                                for (std::uint32_t l = 0; l < lanes;
                                     ++l)
                                    a[l] += s[l] * wv[l];
                            }
                        }
                    }
                }
                float *out_row =
                    out_m + static_cast<std::size_t>(y) * c * lanes;
                for (std::size_t i = 0;
                     i < static_cast<std::size_t>(c) * lanes; ++i)
                    out_row[i] = acc[i];
            }
        }
    }
}

/** Dense layer over lane-major operands, compile-time lane count. */
template <std::uint32_t L>
RANA_TRIAL_CLONES void
denseLanesImpl(const float *__restrict in, const float *__restrict wt,
               const float *__restrict bias,
               float *__restrict out, std::uint32_t batch,
               std::uint32_t in_features, std::uint32_t out_features)
{
    for (std::uint32_t b = 0; b < batch; ++b) {
        const float *in_b =
            in + static_cast<std::size_t>(b) * in_features * L;
        float *out_b =
            out + static_cast<std::size_t>(b) * out_features * L;
        for (std::uint32_t o = 0; o < out_features; ++o) {
            const float *wt_o =
                wt + static_cast<std::size_t>(o) * in_features * L;
            const float *bias_o =
                bias + static_cast<std::size_t>(o) * L;
            float acc[L];
            for (std::uint32_t l = 0; l < L; ++l)
                acc[l] = bias_o[l];
            for (std::uint32_t i = 0; i < in_features; ++i) {
                const float *__restrict s =
                    in_b + static_cast<std::size_t>(i) * L;
                const float *__restrict v =
                    wt_o + static_cast<std::size_t>(i) * L;
                for (std::uint32_t l = 0; l < L; ++l)
                    acc[l] += s[l] * v[l];
            }
            float *d = out_b + static_cast<std::size_t>(o) * L;
            for (std::uint32_t l = 0; l < L; ++l)
                d[l] = acc[l];
        }
    }
}

/** Runtime-lane dense fallback. */
RANA_TRIAL_CLONES void
denseLanesGeneric(const float *__restrict in,
                  const float *__restrict wt,
                  const float *__restrict bias,
                  float *__restrict out, std::uint32_t batch,
                  std::uint32_t in_features, std::uint32_t out_features,
                  std::uint32_t lanes, float *__restrict acc)
{
    for (std::uint32_t b = 0; b < batch; ++b) {
        const float *in_b =
            in + static_cast<std::size_t>(b) * in_features * lanes;
        float *out_b =
            out + static_cast<std::size_t>(b) * out_features * lanes;
        for (std::uint32_t o = 0; o < out_features; ++o) {
            const float *wt_o =
                wt + static_cast<std::size_t>(o) * in_features * lanes;
            const float *bias_o =
                bias + static_cast<std::size_t>(o) * lanes;
            for (std::uint32_t l = 0; l < lanes; ++l)
                acc[l] = bias_o[l];
            for (std::uint32_t i = 0; i < in_features; ++i) {
                const float *__restrict s =
                    in_b + static_cast<std::size_t>(i) * lanes;
                const float *__restrict v =
                    wt_o + static_cast<std::size_t>(i) * lanes;
                for (std::uint32_t l = 0; l < lanes; ++l)
                    acc[l] += s[l] * v[l];
            }
            float *d = out_b + static_cast<std::size_t>(o) * lanes;
            for (std::uint32_t l = 0; l < lanes; ++l)
                d[l] = acc[l];
        }
    }
}

} // namespace

Tensor
packTrialLanes(const Tensor &scalar, std::uint32_t lanes)
{
    RANA_ASSERT(lanes > 0, "lane count must be positive");
    std::vector<std::uint32_t> shape = scalar.shape();
    shape.push_back(lanes);
    Tensor out(std::move(shape));
    const float *src = scalar.data();
    float *dst = out.data();
    const std::size_t count = scalar.size();
    for (std::size_t i = 0; i < count; ++i) {
        const float v = src[i];
        float *d = dst + i * lanes;
        for (std::uint32_t l = 0; l < lanes; ++l)
            d[l] = v;
    }
    return out;
}

Tensor
extractTrialLane(const Tensor &stacked, std::uint32_t lane)
{
    RANA_ASSERT(stacked.shape().size() >= 2,
                "lane-major tensors carry a trailing lane dimension");
    std::vector<std::uint32_t> shape = stacked.shape();
    const std::uint32_t lanes = shape.back();
    RANA_ASSERT(lane < lanes, "lane index out of range");
    shape.pop_back();
    Tensor out(std::move(shape));
    const float *src = stacked.data();
    float *dst = out.data();
    const std::size_t count = out.size();
    for (std::size_t i = 0; i < count; ++i)
        dst[i] = src[i * lanes + lane];
    return out;
}

Tensor
packSampleLanes(const Tensor &batch,
                const std::vector<std::uint32_t> &indices)
{
    RANA_ASSERT(!indices.empty(), "sample pack needs at least one lane");
    RANA_ASSERT(!batch.shape().empty(), "batch tensor has no shape");
    const std::uint32_t batch_size = batch.shape().front();
    const std::size_t sample_size = batch.size() / batch_size;
    const auto lanes = static_cast<std::uint32_t>(indices.size());
    std::vector<std::uint32_t> shape = batch.shape();
    shape.front() = 1;
    shape.push_back(lanes);
    Tensor out(std::move(shape));
    const float *src = batch.data();
    float *dst = out.data();
    for (std::uint32_t l = 0; l < lanes; ++l) {
        RANA_ASSERT(indices[l] < batch_size,
                    "sample index out of range");
        const float *sample = src + indices[l] * sample_size;
        for (std::size_t i = 0; i < sample_size; ++i)
            dst[i * lanes + l] = sample[i];
    }
    return out;
}

RANA_TRIAL_CLONES void
quantizeTrialSpan(float *data, std::size_t count,
                  const FixedPointFormat &format)
{
    RANA_ASSERT(format.fracBits <= 15, "at most 15 fractional bits");
    const double scale = format.scale();
    for (std::size_t i = 0; i < count; ++i) {
        // copysign(floor(|d| + 0.5), d) equals std::round(d), and
        // skipping the int16 hop is exact because the clamped value
        // is already integral — both verified exhaustively over
        // every float bit pattern against FixedPointFormat::
        // quantize/dequantize.
        const double d = static_cast<double>(data[i]) * scale;
        const double rounded =
            std::copysign(std::floor(std::fabs(d) + 0.5), d);
        const double clamped =
            std::max(-32768.0, std::min(rounded, 32767.0));
        data[i] = static_cast<float>(clamped / scale);
    }
}

RANA_TRIAL_CLONES void
reluTrialSpan(float *data, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        data[i] = std::max(0.0f, data[i]);
}

RANA_TRIAL_CLONES void
addTrialSpan(float *__restrict dst, const float *__restrict src,
             std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        dst[i] += src[i];
}

void
convolveTrialLanes(const float *in, const float *wt, const float *bias,
                   float *out, std::uint32_t batch,
                   std::uint32_t in_channels, std::uint32_t h,
                   std::uint32_t w, std::uint32_t out_channels,
                   std::uint32_t r, std::uint32_t c,
                   std::uint32_t kernel, std::uint32_t stride,
                   std::uint32_t pad, std::uint32_t lanes)
{
    // Two accumulator rows: the lane-templated path pairs output
    // channels; the generic fallback uses only the first row.
    std::vector<float> acc(static_cast<std::size_t>(2) * c * lanes);
    switch (lanes) {
      case 16:
        convolveLanesImpl<16>(in, wt, bias, out, batch, in_channels,
                              h, w, out_channels, r, c, kernel,
                              stride, pad, acc.data());
        return;
      case 8:
        convolveLanesImpl<8>(in, wt, bias, out, batch, in_channels, h,
                             w, out_channels, r, c, kernel, stride,
                             pad, acc.data());
        return;
      case 4:
        convolveLanesImpl<4>(in, wt, bias, out, batch, in_channels, h,
                             w, out_channels, r, c, kernel, stride,
                             pad, acc.data());
        return;
      case 2:
        convolveLanesImpl<2>(in, wt, bias, out, batch, in_channels, h,
                             w, out_channels, r, c, kernel, stride,
                             pad, acc.data());
        return;
      default:
        convolveLanesGeneric(in, wt, bias, out, batch, in_channels, h,
                             w, out_channels, r, c, kernel, stride,
                             pad, lanes, acc.data());
        return;
    }
}

void
denseTrialLanes(const float *in, const float *wt, const float *bias,
                float *out, std::uint32_t batch,
                std::uint32_t in_features, std::uint32_t out_features,
                std::uint32_t lanes)
{
    switch (lanes) {
      case 16:
        denseLanesImpl<16>(in, wt, bias, out, batch, in_features,
                           out_features);
        return;
      case 8:
        denseLanesImpl<8>(in, wt, bias, out, batch, in_features,
                          out_features);
        return;
      case 4:
        denseLanesImpl<4>(in, wt, bias, out, batch, in_features,
                          out_features);
        return;
      case 2:
        denseLanesImpl<2>(in, wt, bias, out, batch, in_features,
                          out_features);
        return;
      default: {
        std::vector<float> acc(lanes);
        denseLanesGeneric(in, wt, bias, out, batch, in_features,
                          out_features, lanes, acc.data());
        return;
      }
    }
}

RANA_TRIAL_CLONES void
maxPoolTrialLanes(const float *__restrict in, float *__restrict out,
                  std::uint32_t batch,
                  std::uint32_t channels, std::uint32_t h,
                  std::uint32_t w, std::uint32_t lanes)
{
    const std::uint32_t r = h / 2;
    const std::uint32_t c = w / 2;
    const std::size_t in_row = static_cast<std::size_t>(w) * lanes;
    const std::size_t out_row = static_cast<std::size_t>(c) * lanes;
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            const float *in_plane =
                in + (static_cast<std::size_t>(b) * channels + ch) *
                         h * in_row;
            float *out_plane =
                out + (static_cast<std::size_t>(b) * channels + ch) *
                          r * out_row;
            for (std::uint32_t y = 0; y < r; ++y) {
                for (std::uint32_t x = 0; x < c; ++x) {
                    float *d = out_plane + y * out_row +
                               static_cast<std::size_t>(x) * lanes;
                    for (std::uint32_t l = 0; l < lanes; ++l)
                        d[l] = -1e30f;
                    // Candidate order (dy, dx) matches the scalar
                    // layer; per lane the strict > picks the same
                    // element.
                    for (std::uint32_t dy = 0; dy < 2; ++dy) {
                        for (std::uint32_t dx = 0; dx < 2; ++dx) {
                            const float *s =
                                in_plane +
                                (2 * y + dy) * in_row +
                                static_cast<std::size_t>(2 * x + dx) *
                                    lanes;
                            for (std::uint32_t l = 0; l < lanes;
                                 ++l) {
                                if (s[l] > d[l])
                                    d[l] = s[l];
                            }
                        }
                    }
                }
            }
        }
    }
}

RANA_TRIAL_CLONES void
avgPoolTrialLanes(const float *__restrict in, float *__restrict out,
                  std::uint32_t batch,
                  std::uint32_t channels, std::uint32_t h,
                  std::uint32_t w, std::uint32_t lanes)
{
    const std::uint32_t r = h / 2;
    const std::uint32_t c = w / 2;
    const std::size_t in_row = static_cast<std::size_t>(w) * lanes;
    const std::size_t out_row = static_cast<std::size_t>(c) * lanes;
    for (std::uint32_t b = 0; b < batch; ++b) {
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            const float *in_plane =
                in + (static_cast<std::size_t>(b) * channels + ch) *
                         h * in_row;
            float *out_plane =
                out + (static_cast<std::size_t>(b) * channels + ch) *
                          r * out_row;
            for (std::uint32_t y = 0; y < r; ++y) {
                for (std::uint32_t x = 0; x < c; ++x) {
                    float *d = out_plane + y * out_row +
                               static_cast<std::size_t>(x) * lanes;
                    for (std::uint32_t l = 0; l < lanes; ++l)
                        d[l] = 0.0f;
                    // Summation order (dy, dx) matches the scalar
                    // layer.
                    for (std::uint32_t dy = 0; dy < 2; ++dy) {
                        for (std::uint32_t dx = 0; dx < 2; ++dx) {
                            const float *s =
                                in_plane +
                                (2 * y + dy) * in_row +
                                static_cast<std::size_t>(2 * x + dx) *
                                    lanes;
                            for (std::uint32_t l = 0; l < lanes; ++l)
                                d[l] += s[l];
                        }
                    }
                    for (std::uint32_t l = 0; l < lanes; ++l)
                        d[l] *= 0.25f;
                }
            }
        }
    }
}

void
packLanePointers(const std::vector<const float *> &lane_ptrs,
                 std::size_t count, float *out)
{
    const auto lanes = static_cast<std::uint32_t>(lane_ptrs.size());
    for (std::size_t i = 0; i < count; ++i) {
        float *d = out + i * lanes;
        for (std::uint32_t l = 0; l < lanes; ++l)
            d[l] = lane_ptrs[l][i];
    }
}

} // namespace rana
