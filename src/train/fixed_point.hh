/**
 * @file
 * 16-bit fixed-point quantization for hardware-faithful training.
 *
 * The accelerator computes in 16-bit fixed point (Table I/III), so
 * the retention-aware training method first trains the network in
 * fixed-point precision and then injects bit-level retention errors
 * into the stored 16-bit words. This header provides the Q-format
 * conversion between floats and the int16 words the buffers hold.
 */

#ifndef RANA_TRAIN_FIXED_POINT_HH_
#define RANA_TRAIN_FIXED_POINT_HH_

#include <cstdint>

#include "train/tensor.hh"

namespace rana {

/** A signed 16-bit Qm.f fixed-point format. */
struct FixedPointFormat
{
    /** Fractional bits f; the integer part gets 15 - f bits. */
    std::uint32_t fracBits = 10;

    /** Scale factor 2^f. */
    double scale() const;
    /** Largest representable value. */
    double maxValue() const;
    /** Smallest representable value. */
    double minValue() const;

    /** Quantize a float to the nearest representable word. */
    std::int16_t quantize(float value) const;
    /** Convert a word back to float. */
    float dequantize(std::int16_t word) const;

    /** Round-trip a float through the format (quantize-dequantize). */
    float roundTrip(float value) const;
};

/** Quantize-dequantize every element in place. */
void quantizeTensor(Tensor &tensor, const FixedPointFormat &format);

} // namespace rana

#endif // RANA_TRAIN_FIXED_POINT_HH_
