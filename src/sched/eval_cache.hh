/**
 * @file
 * Sharded memoization cache for layer-schedule evaluations.
 *
 * The Table-IV sweeps and `rana_compile --verify` repeatedly
 * evaluate the same design points: the same (layer spec, pattern,
 * tiling, hardware, refresh options) tuple reappears across figure
 * harnesses, ablation baselines and schedule rebuilds. Evaluation is
 * deterministic, so the first result can be replayed. The cache
 * stores completed LayerSchedule records under a stable string key;
 * shards (each its own mutex + map) keep concurrent schedulers from
 * serializing on one lock, and hit/miss counters are surfaced in the
 * compile summary.
 *
 * Only *chosen* evaluations are inserted (a scheduleLayer search
 * result, or an explicit evaluateLayerChoice), never every explored
 * candidate — a VGG-sized search visits tens of thousands of
 * candidates per layer and caching the losers would trade megabytes
 * for nothing.
 */

#ifndef RANA_SCHED_EVAL_CACHE_HH_
#define RANA_SCHED_EVAL_CACHE_HH_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"

namespace rana {

/** Thread-safe sharded map from evaluation key to LayerSchedule. */
class EvalCache
{
  public:
    /** Hit/miss/size counters for reporting. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t entries = 0;
    };

    explicit EvalCache(std::size_t num_shards = 16);

    /** Look up a key, counting a hit or a miss. */
    std::optional<LayerSchedule> lookup(const std::string &key) const;

    /** Insert (or overwrite) a completed evaluation. */
    void insert(const std::string &key, const LayerSchedule &value);

    /** Drop every entry and reset the counters. */
    void clear();

    /** Current counters (approximate under concurrent use). */
    Stats stats() const;

    /** The process-wide cache used by the scheduler. */
    static EvalCache &global();

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, LayerSchedule> entries;
    };

    Shard &shardFor(const std::string &key) const;

    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

/**
 * Cache key of one explicit (dataflow, tiling, promote) evaluation:
 * layer spec + hardware fingerprint + the SchedulerOptions fields
 * that influence the result (policy, refresh interval). Legacy
 * dataflows key under their historical pattern names, so caches
 * persisted before the dataflow axis existed stay valid.
 */
std::string evalCacheKey(const AcceleratorConfig &config,
                         const ConvLayerSpec &layer,
                         DataflowKind dataflow, const Tiling &tiling,
                         bool promote_inputs,
                         const SchedulerOptions &options);

/** Compatibility shim keying by the pattern's canonical dataflow. */
std::string evalCacheKey(const AcceleratorConfig &config,
                         const ConvLayerSpec &layer,
                         ComputationPattern pattern,
                         const Tiling &tiling, bool promote_inputs,
                         const SchedulerOptions &options);

/**
 * Cache key of a whole scheduleLayer search (the chosen minimum over
 * the candidate space): the candidate-space-defining option fields
 * (dataflow list, fixed tiling) join the key in place of a concrete
 * candidate.
 */
std::string searchCacheKey(const AcceleratorConfig &config,
                           const ConvLayerSpec &layer,
                           const SchedulerOptions &options);

} // namespace rana

#endif // RANA_SCHED_EVAL_CACHE_HH_
