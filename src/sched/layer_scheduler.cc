/**
 * @file
 * Implementation of the layer-based scheduling scheme.
 */

#include "sched/layer_scheduler.hh"

#include <optional>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"
#include "sched/eval_cache.hh"
#include "sched/tiling_search.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

/** Registry counters for scheduler throughput. */
struct SchedMetrics
{
    MetricsRegistry::Counter &layers;
    MetricsRegistry::Counter &candidates;

    static SchedMetrics &
    get()
    {
        static SchedMetrics *metrics = new SchedMetrics{
            MetricsRegistry::global().counter(
                "sched_layers_scheduled_total"),
            MetricsRegistry::global().counter(
                "sched_candidates_evaluated_total"),
        };
        return *metrics;
    }
};

/** Compact per-candidate result kept during the parallel sweep. */
struct CandidateEval
{
    bool feasible = false;
    double energy = 0.0;
    double layerSeconds = 0.0;
};

/** Resolve jobs = 0 ("auto") to the hardware width. */
unsigned
effectiveJobs(const SchedulerOptions &options)
{
    return options.jobs == 0 ? hardwareJobs() : options.jobs;
}

/** Build the full schedule record for a feasible analysis. */
LayerSchedule
makeSchedule(const AcceleratorConfig &config, const ConvLayerSpec &layer,
             const LayerAnalysis &analysis,
             const SchedulerOptions &options)
{
    LayerSchedule schedule;
    schedule.layerName = layer.name;
    schedule.analysis = analysis;
    schedule.counts = layerOperationCounts(
        config, layer, analysis, options.policy,
        options.refreshIntervalSeconds);
    schedule.energy = computeEnergy(
        schedule.counts, energyTable65nm(config.buffer.technology));
    const LayerRefreshDemand demand = refreshDemand(config, analysis);
    schedule.refreshFlags =
        refreshFlagsForLayer(demand, options.refreshIntervalSeconds);
    schedule.gateOn = schedule.refreshFlags[0] ||
                      schedule.refreshFlags[1] ||
                      schedule.refreshFlags[2];
    return schedule;
}

} // namespace

Result<LayerSchedule>
scheduleLayer(const AcceleratorConfig &config, const ConvLayerSpec &layer,
              const SchedulerOptions &options)
{
    if (effectiveDataflows(options).empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "scheduler needs at least one dataflow (layer ",
                         layer.name, ")");
    }
    // One search span per layer: the timeline shows which layers
    // dominate the design-space sweep.
    ScopedSpan span("sched", layer.name);

    std::string search_key;
    if (options.memoize) {
        search_key = searchCacheKey(config, layer, options);
        if (auto cached = EvalCache::global().lookup(search_key))
            return *std::move(cached);
    }

    const std::vector<DataflowChoice> candidates =
        dataflowChoices(config, layer, options);

    // Sweep: evaluate every candidate into an indexed slot. Only the
    // scalars the reduction needs are kept; the winner's full record
    // is rebuilt once below, so a VGG-sized sweep never holds tens
    // of thousands of LayerSchedules at once.
    std::vector<CandidateEval> evals(candidates.size());
    parallelFor(candidates.size(), effectiveJobs(options),
                [&](std::size_t i) {
                    const DataflowChoice &c = candidates[i];
                    const LayerAnalysis analysis = analyzeLayer(
                        config, layer, dataflowSpec(c.dataflow),
                        c.tiling, c.promoteInputs);
                    if (!analysis.feasible)
                        return;
                    const LayerSchedule schedule =
                        makeSchedule(config, layer, analysis, options);
                    evals[i] = {true, schedule.energy.total(),
                                analysis.layerSeconds};
                });
    SchedMetrics::get().candidates.add(candidates.size());

    // Reduction, strictly in candidate order. Energies within this
    // relative margin are considered equal and tie-broken by
    // runtime: RANA does not change the core computing part, so
    // among equal-energy configurations the scheduler keeps the one
    // that preserves performance.
    constexpr double energy_margin = 1e-3;
    std::optional<std::size_t> best_index;
    double best_energy = 0.0;
    double best_seconds = 0.0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const CandidateEval &eval = evals[i];
        if (!eval.feasible)
            continue;
        bool better = false;
        if (!best_index) {
            better = true;
        } else if (eval.energy < best_energy * (1.0 - energy_margin)) {
            better = true;
        } else if (eval.energy <= best_energy * (1.0 + energy_margin) &&
                   eval.layerSeconds < best_seconds) {
            better = true;
        }
        if (better) {
            // Keep the smallest energy seen as the reference so
            // repeated margin tie-breaks cannot drift upward.
            best_energy = best_index
                              ? std::min(best_energy, eval.energy)
                              : eval.energy;
            best_seconds = eval.layerSeconds;
            best_index = i;
        }
    }
    if (!best_index) {
        return makeError(ErrorCode::Infeasible,
                         "no feasible schedule for layer ",
                         layer.describe(), " on ", config.name);
    }

    const DataflowChoice &winner = candidates[*best_index];
    LayerSchedule best = makeSchedule(
        config, layer,
        analyzeLayer(config, layer, dataflowSpec(winner.dataflow),
                     winner.tiling, winner.promoteInputs),
        options);
    if (options.memoize) {
        EvalCache::global().insert(search_key, best);
        EvalCache::global().insert(
            evalCacheKey(config, layer, winner.dataflow, winner.tiling,
                         winner.promoteInputs, options),
            best);
    }
    SchedMetrics::get().layers.add();
    // Per-dataflow win counters surface the chosen mix in metrics
    // snapshots (--metrics-json) without re-walking the schedule.
    MetricsRegistry::global()
        .counter(std::string("sched_dataflow_chosen_total_") +
                 dataflowName(winner.dataflow))
        .add();
    return best;
}

Result<LayerSchedule>
evaluateLayerChoice(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer, DataflowKind dataflow,
                    const Tiling &tiling,
                    const SchedulerOptions &options, bool promote_inputs)
{
    std::string key;
    if (options.memoize) {
        key = evalCacheKey(config, layer, dataflow, tiling,
                           promote_inputs, options);
        if (auto cached = EvalCache::global().lookup(key))
            return *std::move(cached);
    }

    const LayerAnalysis analysis =
        analyzeLayer(config, layer, dataflowSpec(dataflow), tiling,
                     promote_inputs);
    if (!analysis.feasible) {
        return makeError(ErrorCode::Infeasible,
                         "infeasible layer choice for ", layer.name,
                         ": ", analysis.infeasibleReason);
    }
    LayerSchedule schedule = makeSchedule(config, layer, analysis,
                                          options);
    if (options.memoize)
        EvalCache::global().insert(key, schedule);
    return schedule;
}

Result<LayerSchedule>
evaluateLayerChoice(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer,
                    ComputationPattern pattern, const Tiling &tiling,
                    const SchedulerOptions &options, bool promote_inputs)
{
    return evaluateLayerChoice(config, layer, dataflowOf(pattern),
                               tiling, options, promote_inputs);
}

Result<NetworkSchedule>
scheduleNetwork(const AcceleratorConfig &config,
                const NetworkModel &network,
                const SchedulerOptions &options)
{
    ScopedSpan span("sched", "schedule_network");
    // Layers are independent: schedule them concurrently into
    // indexed slots, then assemble (and surface the first error) in
    // layer order.
    std::vector<std::optional<Result<LayerSchedule>>> slots(
        network.size());
    parallelFor(network.size(), effectiveJobs(options),
                [&](std::size_t i) {
                    slots[i].emplace(scheduleLayer(
                        config, network.layer(i), options));
                });

    NetworkSchedule schedule;
    schedule.networkName = network.name();
    schedule.refreshIntervalSeconds = options.refreshIntervalSeconds;
    schedule.policy = options.policy;
    schedule.layers.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        Result<LayerSchedule> &result = *slots[i];
        if (!result.ok())
            return result.error();
        schedule.layers.push_back(std::move(result).value());
    }
    return schedule;
}

LayerSchedule
scheduleLayerOrDie(const AcceleratorConfig &config,
                   const ConvLayerSpec &layer,
                   const SchedulerOptions &options)
{
    return scheduleLayer(config, layer, options).valueOrDie();
}

LayerSchedule
evaluateLayerChoiceOrDie(const AcceleratorConfig &config,
                         const ConvLayerSpec &layer,
                         ComputationPattern pattern,
                         const Tiling &tiling,
                         const SchedulerOptions &options,
                         bool promote_inputs)
{
    return evaluateLayerChoice(config, layer, pattern, tiling, options,
                               promote_inputs)
        .valueOrDie();
}

NetworkSchedule
scheduleNetworkOrDie(const AcceleratorConfig &config,
                     const NetworkModel &network,
                     const SchedulerOptions &options)
{
    return scheduleNetwork(config, network, options).valueOrDie();
}

} // namespace rana
