/**
 * @file
 * Implementation of the layer-based scheduling scheme.
 */

#include "sched/layer_scheduler.hh"

#include "sched/tiling_search.hh"
#include "util/logging.hh"

namespace rana {

namespace {

/** Build the full schedule record for a feasible analysis. */
LayerSchedule
makeSchedule(const AcceleratorConfig &config, const ConvLayerSpec &layer,
             const LayerAnalysis &analysis,
             const SchedulerOptions &options)
{
    LayerSchedule schedule;
    schedule.layerName = layer.name;
    schedule.analysis = analysis;
    schedule.counts = layerOperationCounts(
        config, layer, analysis, options.policy,
        options.refreshIntervalSeconds);
    schedule.energy = computeEnergy(
        schedule.counts, energyTable65nm(config.buffer.technology));
    const LayerRefreshDemand demand = refreshDemand(config, analysis);
    schedule.refreshFlags =
        refreshFlagsForLayer(demand, options.refreshIntervalSeconds);
    schedule.gateOn = schedule.refreshFlags[0] ||
                      schedule.refreshFlags[1] ||
                      schedule.refreshFlags[2];
    return schedule;
}

} // namespace

LayerSchedule
scheduleLayer(const AcceleratorConfig &config, const ConvLayerSpec &layer,
              const SchedulerOptions &options)
{
    RANA_ASSERT(!options.patterns.empty(),
                "scheduler needs at least one pattern");

    std::vector<Tiling> tilings;
    if (options.fixedTiling) {
        tilings.push_back(*options.fixedTiling);
    } else {
        tilings = tilingCandidates(config, layer);
    }

    bool found = false;
    LayerSchedule best;
    double best_energy = 0.0;
    // Energies within this relative margin are considered equal and
    // tie-broken by runtime: RANA does not change the core computing
    // part, so among equal-energy configurations the scheduler keeps
    // the one that preserves performance.
    constexpr double energy_margin = 1e-3;
    for (ComputationPattern pattern : options.patterns) {
        for (const Tiling &tiling : tilings) {
          for (int promote = 0; promote < 2; ++promote) {
            if (promote && pattern != ComputationPattern::WD)
                continue;
            const LayerAnalysis analysis = analyzeLayer(
                config, layer, pattern, tiling, promote != 0);
            if (!analysis.feasible)
                continue;
            LayerSchedule candidate =
                makeSchedule(config, layer, analysis, options);
            const double energy = candidate.energy.total();
            bool better = false;
            if (!found) {
                better = true;
            } else if (energy < best_energy * (1.0 - energy_margin)) {
                better = true;
            } else if (energy <= best_energy * (1.0 + energy_margin) &&
                       candidate.analysis.layerSeconds <
                           best.analysis.layerSeconds) {
                better = true;
            }
            if (better) {
                // Keep the smallest energy seen as the reference so
                // repeated margin tie-breaks cannot drift upward.
                best_energy = found ? std::min(best_energy, energy)
                                    : energy;
                best = std::move(candidate);
                found = true;
            }
          }
        }
    }
    if (!found) {
        fatal("no feasible schedule for layer ", layer.describe(),
              " on ", config.name);
    }
    return best;
}

LayerSchedule
evaluateLayerChoice(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer,
                    ComputationPattern pattern, const Tiling &tiling,
                    const SchedulerOptions &options)
{
    const LayerAnalysis analysis =
        analyzeLayer(config, layer, pattern, tiling);
    if (!analysis.feasible) {
        fatal("infeasible layer choice for ", layer.name, ": ",
              analysis.infeasibleReason);
    }
    return makeSchedule(config, layer, analysis, options);
}

NetworkSchedule
scheduleNetwork(const AcceleratorConfig &config,
                const NetworkModel &network,
                const SchedulerOptions &options)
{
    NetworkSchedule schedule;
    schedule.networkName = network.name();
    schedule.refreshIntervalSeconds = options.refreshIntervalSeconds;
    schedule.policy = options.policy;
    schedule.layers.reserve(network.size());
    for (const auto &layer : network.layers())
        schedule.layers.push_back(scheduleLayer(config, layer, options));
    return schedule;
}

} // namespace rana
