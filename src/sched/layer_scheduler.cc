/**
 * @file
 * Implementation of the layer-based scheduling scheme.
 */

#include "sched/layer_scheduler.hh"

#include <optional>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"
#include "sched/eval_cache.hh"
#include "sched/tiling_search.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

/** Registry counters for scheduler throughput. */
struct SchedMetrics
{
    MetricsRegistry::Counter &layers;
    MetricsRegistry::Counter &candidates;

    static SchedMetrics &
    get()
    {
        static SchedMetrics *metrics = new SchedMetrics{
            MetricsRegistry::global().counter(
                "sched_layers_scheduled_total"),
            MetricsRegistry::global().counter(
                "sched_candidates_evaluated_total"),
        };
        return *metrics;
    }
};

/** One point of the per-layer design space, in serial search order. */
struct Candidate
{
    ComputationPattern pattern;
    Tiling tiling;
    bool promote;
};

/** Compact per-candidate result kept during the parallel sweep. */
struct CandidateEval
{
    bool feasible = false;
    double energy = 0.0;
    double layerSeconds = 0.0;
};

/** Resolve jobs = 0 ("auto") to the hardware width. */
unsigned
effectiveJobs(const SchedulerOptions &options)
{
    return options.jobs == 0 ? hardwareJobs() : options.jobs;
}

/** Build the full schedule record for a feasible analysis. */
LayerSchedule
makeSchedule(const AcceleratorConfig &config, const ConvLayerSpec &layer,
             const LayerAnalysis &analysis,
             const SchedulerOptions &options)
{
    LayerSchedule schedule;
    schedule.layerName = layer.name;
    schedule.analysis = analysis;
    schedule.counts = layerOperationCounts(
        config, layer, analysis, options.policy,
        options.refreshIntervalSeconds);
    schedule.energy = computeEnergy(
        schedule.counts, energyTable65nm(config.buffer.technology));
    const LayerRefreshDemand demand = refreshDemand(config, analysis);
    schedule.refreshFlags =
        refreshFlagsForLayer(demand, options.refreshIntervalSeconds);
    schedule.gateOn = schedule.refreshFlags[0] ||
                      schedule.refreshFlags[1] ||
                      schedule.refreshFlags[2];
    return schedule;
}

/**
 * The candidate space in the order the serial scheduler visits it:
 * patterns outer, tilings inner, the WD input-promotion variant
 * directly after its unpromoted twin. The reduction tie-breaks on
 * this index, which is what keeps the parallel result byte-identical
 * to the serial one.
 */
std::vector<Candidate>
candidateSpace(const AcceleratorConfig &config,
               const ConvLayerSpec &layer,
               const SchedulerOptions &options)
{
    std::vector<Tiling> tilings;
    if (options.fixedTiling) {
        tilings.push_back(*options.fixedTiling);
    } else {
        tilings = tilingCandidates(config, layer);
    }

    std::vector<Candidate> candidates;
    candidates.reserve(tilings.size() * options.patterns.size() * 2);
    for (ComputationPattern pattern : options.patterns) {
        for (const Tiling &tiling : tilings) {
            candidates.push_back({pattern, tiling, false});
            if (pattern == ComputationPattern::WD)
                candidates.push_back({pattern, tiling, true});
        }
    }
    return candidates;
}

} // namespace

Result<LayerSchedule>
scheduleLayer(const AcceleratorConfig &config, const ConvLayerSpec &layer,
              const SchedulerOptions &options)
{
    if (options.patterns.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "scheduler needs at least one pattern (layer ",
                         layer.name, ")");
    }
    // One search span per layer: the timeline shows which layers
    // dominate the design-space sweep.
    ScopedSpan span("sched", layer.name);

    std::string search_key;
    if (options.memoize) {
        search_key = searchCacheKey(config, layer, options);
        if (auto cached = EvalCache::global().lookup(search_key))
            return *std::move(cached);
    }

    const std::vector<Candidate> candidates =
        candidateSpace(config, layer, options);

    // Sweep: evaluate every candidate into an indexed slot. Only the
    // scalars the reduction needs are kept; the winner's full record
    // is rebuilt once below, so a VGG-sized sweep never holds tens
    // of thousands of LayerSchedules at once.
    std::vector<CandidateEval> evals(candidates.size());
    parallelFor(candidates.size(), effectiveJobs(options),
                [&](std::size_t i) {
                    const Candidate &c = candidates[i];
                    const LayerAnalysis analysis = analyzeLayer(
                        config, layer, c.pattern, c.tiling, c.promote);
                    if (!analysis.feasible)
                        return;
                    const LayerSchedule schedule =
                        makeSchedule(config, layer, analysis, options);
                    evals[i] = {true, schedule.energy.total(),
                                analysis.layerSeconds};
                });
    SchedMetrics::get().candidates.add(candidates.size());

    // Reduction, strictly in candidate order. Energies within this
    // relative margin are considered equal and tie-broken by
    // runtime: RANA does not change the core computing part, so
    // among equal-energy configurations the scheduler keeps the one
    // that preserves performance.
    constexpr double energy_margin = 1e-3;
    std::optional<std::size_t> best_index;
    double best_energy = 0.0;
    double best_seconds = 0.0;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const CandidateEval &eval = evals[i];
        if (!eval.feasible)
            continue;
        bool better = false;
        if (!best_index) {
            better = true;
        } else if (eval.energy < best_energy * (1.0 - energy_margin)) {
            better = true;
        } else if (eval.energy <= best_energy * (1.0 + energy_margin) &&
                   eval.layerSeconds < best_seconds) {
            better = true;
        }
        if (better) {
            // Keep the smallest energy seen as the reference so
            // repeated margin tie-breaks cannot drift upward.
            best_energy = best_index
                              ? std::min(best_energy, eval.energy)
                              : eval.energy;
            best_seconds = eval.layerSeconds;
            best_index = i;
        }
    }
    if (!best_index) {
        return makeError(ErrorCode::Infeasible,
                         "no feasible schedule for layer ",
                         layer.describe(), " on ", config.name);
    }

    const Candidate &winner = candidates[*best_index];
    LayerSchedule best = makeSchedule(
        config, layer,
        analyzeLayer(config, layer, winner.pattern, winner.tiling,
                     winner.promote),
        options);
    if (options.memoize) {
        EvalCache::global().insert(search_key, best);
        EvalCache::global().insert(
            evalCacheKey(config, layer, winner.pattern, winner.tiling,
                         winner.promote, options),
            best);
    }
    SchedMetrics::get().layers.add();
    return best;
}

Result<LayerSchedule>
evaluateLayerChoice(const AcceleratorConfig &config,
                    const ConvLayerSpec &layer,
                    ComputationPattern pattern, const Tiling &tiling,
                    const SchedulerOptions &options, bool promote_inputs)
{
    std::string key;
    if (options.memoize) {
        key = evalCacheKey(config, layer, pattern, tiling,
                           promote_inputs, options);
        if (auto cached = EvalCache::global().lookup(key))
            return *std::move(cached);
    }

    const LayerAnalysis analysis =
        analyzeLayer(config, layer, pattern, tiling, promote_inputs);
    if (!analysis.feasible) {
        return makeError(ErrorCode::Infeasible,
                         "infeasible layer choice for ", layer.name,
                         ": ", analysis.infeasibleReason);
    }
    LayerSchedule schedule = makeSchedule(config, layer, analysis,
                                          options);
    if (options.memoize)
        EvalCache::global().insert(key, schedule);
    return schedule;
}

Result<NetworkSchedule>
scheduleNetwork(const AcceleratorConfig &config,
                const NetworkModel &network,
                const SchedulerOptions &options)
{
    ScopedSpan span("sched", "schedule_network");
    // Layers are independent: schedule them concurrently into
    // indexed slots, then assemble (and surface the first error) in
    // layer order.
    std::vector<std::optional<Result<LayerSchedule>>> slots(
        network.size());
    parallelFor(network.size(), effectiveJobs(options),
                [&](std::size_t i) {
                    slots[i].emplace(scheduleLayer(
                        config, network.layer(i), options));
                });

    NetworkSchedule schedule;
    schedule.networkName = network.name();
    schedule.refreshIntervalSeconds = options.refreshIntervalSeconds;
    schedule.policy = options.policy;
    schedule.layers.reserve(network.size());
    for (std::size_t i = 0; i < network.size(); ++i) {
        Result<LayerSchedule> &result = *slots[i];
        if (!result.ok())
            return result.error();
        schedule.layers.push_back(std::move(result).value());
    }
    return schedule;
}

LayerSchedule
scheduleLayerOrDie(const AcceleratorConfig &config,
                   const ConvLayerSpec &layer,
                   const SchedulerOptions &options)
{
    return scheduleLayer(config, layer, options).valueOrDie();
}

LayerSchedule
evaluateLayerChoiceOrDie(const AcceleratorConfig &config,
                         const ConvLayerSpec &layer,
                         ComputationPattern pattern,
                         const Tiling &tiling,
                         const SchedulerOptions &options,
                         bool promote_inputs)
{
    return evaluateLayerChoice(config, layer, pattern, tiling, options,
                               promote_inputs)
        .valueOrDie();
}

NetworkSchedule
scheduleNetworkOrDie(const AcceleratorConfig &config,
                     const NetworkModel &network,
                     const SchedulerOptions &options)
{
    return scheduleNetwork(config, network, options).valueOrDie();
}

} // namespace rana
