/**
 * @file
 * RANA's layer-based scheduling scheme (Section IV-C3, Figure 13).
 *
 * For each layer, the scheduler explores the configured dataflows
 * (legacy computation patterns and systolic variants — see
 * sim/dataflow.hh) and tiling parameters, estimates total system
 * energy with
 * the Equation-14 model under the design's refresh policy and
 * interval, and picks the minimum-energy configuration. Applied to a
 * whole network this yields the hybrid computation pattern and the
 * layerwise configurations (pattern, tiling, refresh flags) loaded
 * by the accelerator in the execution phase.
 *
 * The search is the dominant wall-clock cost of compilation, and
 * every candidate evaluation is independent, so the entry points fan
 * work across the shared thread pool when SchedulerOptions::jobs > 1
 * (layers in scheduleNetwork, candidates in scheduleLayer) and
 * reduce the indexed results serially — the parallel schedule is
 * byte-identical to the serial one. Completed evaluations are
 * memoized in the process-wide EvalCache (SchedulerOptions::memoize)
 * so repeated design points skip re-simulation.
 *
 * Failure contract: these functions return Result<T> and never
 * terminate the process on infeasible or invalid input, so they are
 * safe to call from a long-running service. The ...OrDie wrappers
 * keep the historical abort-on-failure convenience for tools,
 * benches and tests.
 */

#ifndef RANA_SCHED_LAYER_SCHEDULER_HH_
#define RANA_SCHED_LAYER_SCHEDULER_HH_

#include "nn/network_model.hh"
#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"
#include "util/result.hh"

namespace rana {

/**
 * Schedule one layer: minimum-energy dataflow and tiling under the
 * options. Fails with ErrorCode::Infeasible when no feasible
 * configuration exists on the hardware, and with
 * ErrorCode::InvalidArgument when the options are self-contradictory
 * (e.g. an empty dataflow list).
 */
Result<LayerSchedule> scheduleLayer(const AcceleratorConfig &config,
                                    const ConvLayerSpec &layer,
                                    const SchedulerOptions &options);

/**
 * Evaluate one explicit (dataflow, tiling) choice for a layer,
 * producing the same record the scheduler would; useful for
 * baselines, ablations and schedule rebuilds. Fails with
 * ErrorCode::Infeasible when the choice does not fit the hardware.
 *
 * @param promote_inputs WD only: pin the whole input set in spare
 *        buffer capacity (see LayerAnalysis::inputsPromoted).
 */
Result<LayerSchedule> evaluateLayerChoice(
    const AcceleratorConfig &config, const ConvLayerSpec &layer,
    DataflowKind dataflow, const Tiling &tiling,
    const SchedulerOptions &options, bool promote_inputs = false);

/** Compatibility shim over the pattern's canonical dataflow. */
Result<LayerSchedule> evaluateLayerChoice(
    const AcceleratorConfig &config, const ConvLayerSpec &layer,
    ComputationPattern pattern, const Tiling &tiling,
    const SchedulerOptions &options, bool promote_inputs = false);

/**
 * Schedule every layer of a network (the hybrid pattern). Fails with
 * the first failing layer's error.
 */
Result<NetworkSchedule> scheduleNetwork(const AcceleratorConfig &config,
                                        const NetworkModel &network,
                                        const SchedulerOptions &options);

/** scheduleLayer, but fatal() on failure (historical contract). */
LayerSchedule scheduleLayerOrDie(const AcceleratorConfig &config,
                                 const ConvLayerSpec &layer,
                                 const SchedulerOptions &options);

/** evaluateLayerChoice, but fatal() on failure. */
LayerSchedule evaluateLayerChoiceOrDie(const AcceleratorConfig &config,
                                       const ConvLayerSpec &layer,
                                       ComputationPattern pattern,
                                       const Tiling &tiling,
                                       const SchedulerOptions &options,
                                       bool promote_inputs = false);

/** scheduleNetwork, but fatal() on failure. */
NetworkSchedule scheduleNetworkOrDie(const AcceleratorConfig &config,
                                     const NetworkModel &network,
                                     const SchedulerOptions &options);

} // namespace rana

#endif // RANA_SCHED_LAYER_SCHEDULER_HH_
