/**
 * @file
 * RANA's layer-based scheduling scheme (Section IV-C3, Figure 13).
 *
 * For each layer, the scheduler explores the configured computation
 * patterns and tiling parameters, estimates total system energy with
 * the Equation-14 model under the design's refresh policy and
 * interval, and picks the minimum-energy configuration. Applied to a
 * whole network this yields the hybrid computation pattern and the
 * layerwise configurations (pattern, tiling, refresh flags) loaded
 * by the accelerator in the execution phase.
 */

#ifndef RANA_SCHED_LAYER_SCHEDULER_HH_
#define RANA_SCHED_LAYER_SCHEDULER_HH_

#include "nn/network_model.hh"
#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"

namespace rana {

/**
 * Schedule one layer: minimum-energy pattern and tiling under the
 * options. Calls fatal() if no feasible configuration exists on the
 * hardware.
 */
LayerSchedule scheduleLayer(const AcceleratorConfig &config,
                            const ConvLayerSpec &layer,
                            const SchedulerOptions &options);

/**
 * Evaluate one explicit (pattern, tiling) choice for a layer,
 * producing the same record the scheduler would; useful for
 * baselines and ablations. The analysis must be feasible.
 */
LayerSchedule evaluateLayerChoice(const AcceleratorConfig &config,
                                  const ConvLayerSpec &layer,
                                  ComputationPattern pattern,
                                  const Tiling &tiling,
                                  const SchedulerOptions &options);

/** Schedule every layer of a network (the hybrid pattern). */
NetworkSchedule scheduleNetwork(const AcceleratorConfig &config,
                                const NetworkModel &network,
                                const SchedulerOptions &options);

} // namespace rana

#endif // RANA_SCHED_LAYER_SCHEDULER_HH_
