/**
 * @file
 * Implementation of the sharded evaluation cache.
 */

#include "sched/eval_cache.hh"

#include <functional>
#include <sstream>

#include "obs/metrics_registry.hh"

namespace rana {

namespace {

/** Registry counters mirroring the cache's own hit/miss tallies. */
struct CacheMetrics
{
    MetricsRegistry::Counter &hits;
    MetricsRegistry::Counter &misses;

    static CacheMetrics &
    get()
    {
        static CacheMetrics *metrics = new CacheMetrics{
            MetricsRegistry::global().counter(
                "sched_eval_cache_hits_total"),
            MetricsRegistry::global().counter(
                "sched_eval_cache_misses_total"),
        };
        return *metrics;
    }
};

/** Append the option fields every evaluation depends on. */
void
appendOptionFields(std::ostringstream &oss,
                   const SchedulerOptions &options)
{
    oss << '|' << static_cast<int>(options.policy) << '|'
        << options.refreshIntervalSeconds;
}

/** Append the layer shape (the name alone is not an identity). */
void
appendLayer(std::ostringstream &oss, const ConvLayerSpec &layer)
{
    oss << layer.name << ':' << layer.n << 'x' << layer.h << 'x'
        << layer.l << ':' << layer.m << ':' << layer.k << ':'
        << layer.stride << ':' << layer.pad;
}

} // namespace

EvalCache::EvalCache(std::size_t num_shards)
{
    shards_.reserve(num_shards == 0 ? 1 : num_shards);
    for (std::size_t i = 0; i < (num_shards == 0 ? 1 : num_shards); ++i)
        shards_.push_back(std::make_unique<Shard>());
}

EvalCache::Shard &
EvalCache::shardFor(const std::string &key) const
{
    const std::size_t hash = std::hash<std::string>{}(key);
    return *shards_[hash % shards_.size()];
}

std::optional<LayerSchedule>
EvalCache::lookup(const std::string &key) const
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        CacheMetrics::get().misses.add();
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::get().hits.add();
    return it->second;
}

void
EvalCache::insert(const std::string &key, const LayerSchedule &value)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.insert_or_assign(key, value);
}

void
EvalCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->entries.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
}

EvalCache::Stats
EvalCache::stats() const
{
    Stats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.entries += shard->entries.size();
    }
    return stats;
}

EvalCache &
EvalCache::global()
{
    static EvalCache cache;
    return cache;
}

std::string
evalCacheKey(const AcceleratorConfig &config,
             const ConvLayerSpec &layer, DataflowKind dataflow,
             const Tiling &tiling, bool promote_inputs,
             const SchedulerOptions &options)
{
    std::ostringstream oss;
    oss << "eval|";
    appendLayer(oss, layer);
    oss << '|' << dataflowName(dataflow) << '|' << tiling.tm << ','
        << tiling.tn << ',' << tiling.tr << ',' << tiling.tc << '|'
        << (promote_inputs ? 'P' : '-') << '|'
        << config.fingerprint();
    appendOptionFields(oss, options);
    return oss.str();
}

std::string
evalCacheKey(const AcceleratorConfig &config,
             const ConvLayerSpec &layer, ComputationPattern pattern,
             const Tiling &tiling, bool promote_inputs,
             const SchedulerOptions &options)
{
    return evalCacheKey(config, layer, dataflowOf(pattern), tiling,
                        promote_inputs, options);
}

std::string
searchCacheKey(const AcceleratorConfig &config,
               const ConvLayerSpec &layer,
               const SchedulerOptions &options)
{
    std::ostringstream oss;
    oss << "search|";
    appendLayer(oss, layer);
    oss << '|';
    for (DataflowKind dataflow : effectiveDataflows(options))
        oss << dataflowName(dataflow) << '+';
    oss << '|';
    if (options.fixedTiling) {
        const Tiling &t = *options.fixedTiling;
        oss << t.tm << ',' << t.tn << ',' << t.tr << ',' << t.tc;
    } else {
        oss << "explore";
    }
    oss << '|' << config.fingerprint();
    appendOptionFields(oss, options);
    return oss.str();
}

} // namespace rana
