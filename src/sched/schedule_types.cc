/**
 * @file
 * Implementation of schedule aggregation helpers.
 */

#include "sched/schedule_types.hh"

namespace rana {

OperationCounts
NetworkSchedule::totalCounts() const
{
    OperationCounts total;
    for (const auto &layer : layers)
        total += layer.counts;
    return total;
}

EnergyBreakdown
NetworkSchedule::totalEnergy() const
{
    EnergyBreakdown total;
    for (const auto &layer : layers)
        total += layer.energy;
    return total;
}

double
NetworkSchedule::totalSeconds() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.analysis.layerSeconds;
    return total;
}

std::size_t
NetworkSchedule::dataflowCount(DataflowKind dataflow) const
{
    std::size_t count = 0;
    for (const auto &layer : layers) {
        if (layer.analysis.dataflow == dataflow)
            ++count;
    }
    return count;
}

std::size_t
NetworkSchedule::patternCount(ComputationPattern pattern) const
{
    return dataflowCount(dataflowOf(pattern));
}

std::vector<DataflowKind>
effectiveDataflows(const SchedulerOptions &options)
{
    if (!options.dataflows.empty())
        return options.dataflows;
    std::vector<DataflowKind> dataflows;
    dataflows.reserve(options.patterns.size());
    for (ComputationPattern pattern : options.patterns)
        dataflows.push_back(dataflowOf(pattern));
    return dataflows;
}

} // namespace rana
