/**
 * @file
 * Implementation of schedule aggregation helpers.
 */

#include "sched/schedule_types.hh"

namespace rana {

OperationCounts
NetworkSchedule::totalCounts() const
{
    OperationCounts total;
    for (const auto &layer : layers)
        total += layer.counts;
    return total;
}

EnergyBreakdown
NetworkSchedule::totalEnergy() const
{
    EnergyBreakdown total;
    for (const auto &layer : layers)
        total += layer.energy;
    return total;
}

double
NetworkSchedule::totalSeconds() const
{
    double total = 0.0;
    for (const auto &layer : layers)
        total += layer.analysis.layerSeconds;
    return total;
}

std::size_t
NetworkSchedule::patternCount(ComputationPattern pattern) const
{
    std::size_t count = 0;
    for (const auto &layer : layers) {
        if (layer.analysis.pattern == pattern)
            ++count;
    }
    return count;
}

} // namespace rana
