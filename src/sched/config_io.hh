/**
 * @file
 * Serialization of the compiled layerwise configurations.
 *
 * The RANA compilation phase produces, per layer, the dataflow,
 * tiling, input-promotion flag and eDRAM refresh flags, plus the
 * network-wide refresh interval (Figure 6's "layerwise
 * configurations"). This module writes and parses that artifact as
 * a line-oriented text format so a schedule can be compiled once and
 * shipped to the accelerator's runtime:
 *
 *   rana-config v2
 *   network <name>
 *   interval_us <float>
 *   policy <none|conventional|gated-global|per-bank>
 *   layer <name> <ID|OD|WD|sys-ws|sys-is|sys-os> <tm> <tn> <tr> \
 *         <tc> <promote:0|1> <flags:3x0|1> <gate:0|1>
 *   end
 *
 * Version history: v1 predates the dataflow axis and carries a bare
 * computation pattern (ID|OD|WD) per layer. The reader still accepts
 * v1 and maps each pattern onto its canonical dataflow — the legacy
 * dataflow names are the pattern names, so a v1 artifact differs
 * from its v2 rewrite only in the header line. The writer always
 * emits v2.
 */

#ifndef RANA_SCHED_CONFIG_IO_HH_
#define RANA_SCHED_CONFIG_IO_HH_

#include <iosfwd>
#include <string>

#include "nn/network_model.hh"
#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"
#include "util/result.hh"

namespace rana {

/** Compact, rebuildable description of one layer's configuration. */
struct LayerConfigRecord
{
    std::string layerName;
    DataflowKind dataflow = DataflowKind::OD;
    Tiling tiling;
    bool promoteInputs = false;
    std::array<bool, numDataTypes> refreshFlags = {false, false,
                                                   false};
    bool gateOn = false;

    bool operator==(const LayerConfigRecord &other) const = default;
};

/** A whole network's serialized configuration. */
struct NetworkConfigRecord
{
    std::string networkName;
    double refreshIntervalSeconds = 0.0;
    RefreshPolicy policy = RefreshPolicy::GatedGlobal;
    std::vector<LayerConfigRecord> layers;

    bool operator==(const NetworkConfigRecord &other) const = default;
};

/** Extract the serializable record from a compiled schedule. */
NetworkConfigRecord toConfigRecord(const NetworkSchedule &schedule);

/** Write a record in the text format. */
void writeConfig(std::ostream &os, const NetworkConfigRecord &record);

/** Write to a string. */
std::string writeConfigString(const NetworkConfigRecord &record);

/**
 * Parse the text format. Fails with ErrorCode::ParseError naming the
 * offending line on malformed input, so services can reject one bad
 * artifact without losing the process.
 */
Result<NetworkConfigRecord> readConfigChecked(std::istream &is);

/** Parse from a string. */
Result<NetworkConfigRecord>
readConfigStringChecked(const std::string &text);

/** readConfigChecked, but fatal() on failure (historical contract). */
NetworkConfigRecord readConfig(std::istream &is);

/** readConfigStringChecked, but fatal() on failure. */
NetworkConfigRecord readConfigString(const std::string &text);

/**
 * Rebuild a full NetworkSchedule from a record by re-analyzing each
 * layer of `network` on `config` (the analysis is deterministic
 * given pattern/tiling/promotion, so the rebuilt schedule matches
 * the original). Fails with ErrorCode::Mismatch when the record does
 * not describe the network, ErrorCode::Infeasible when a recorded
 * choice does not fit the hardware.
 */
Result<NetworkSchedule>
rebuildScheduleChecked(const AcceleratorConfig &config,
                       const NetworkModel &network,
                       const NetworkConfigRecord &record);

/** rebuildScheduleChecked, but fatal() on failure. */
NetworkSchedule rebuildSchedule(const AcceleratorConfig &config,
                                const NetworkModel &network,
                                const NetworkConfigRecord &record);

} // namespace rana

#endif // RANA_SCHED_CONFIG_IO_HH_
