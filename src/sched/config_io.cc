/**
 * @file
 * Implementation of layerwise-configuration serialization.
 */

#include "sched/config_io.hh"

#include <sstream>

#include "nn/network_model.hh"
#include "sched/layer_scheduler.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

namespace {

Result<ComputationPattern>
parsePattern(const std::string &token, const std::string &line)
{
    if (token == "ID")
        return ComputationPattern::ID;
    if (token == "OD")
        return ComputationPattern::OD;
    if (token == "WD")
        return ComputationPattern::WD;
    return makeError(ErrorCode::ParseError, "bad pattern '", token,
                     "' in config line: ", line);
}

Result<RefreshPolicy>
parsePolicy(const std::string &token, const std::string &line)
{
    if (token == "none")
        return RefreshPolicy::None;
    if (token == "conventional")
        return RefreshPolicy::ConventionalAll;
    if (token == "gated-global")
        return RefreshPolicy::GatedGlobal;
    if (token == "per-bank")
        return RefreshPolicy::PerBank;
    return makeError(ErrorCode::ParseError, "bad refresh policy '",
                     token, "' in config line: ", line);
}

Result<bool>
parseBit(const std::string &token, const std::string &line)
{
    if (token == "0")
        return false;
    if (token == "1")
        return true;
    return makeError(ErrorCode::ParseError, "bad flag '", token,
                     "' in config line: ", line);
}

} // namespace

NetworkConfigRecord
toConfigRecord(const NetworkSchedule &schedule)
{
    NetworkConfigRecord record;
    record.networkName = schedule.networkName;
    record.refreshIntervalSeconds = schedule.refreshIntervalSeconds;
    record.policy = schedule.policy;
    record.layers.reserve(schedule.layers.size());
    for (const LayerSchedule &layer : schedule.layers) {
        LayerConfigRecord entry;
        entry.layerName = layer.layerName;
        entry.dataflow = layer.dataflow();
        entry.tiling = layer.tiling();
        entry.promoteInputs = layer.analysis.inputsPromoted;
        entry.refreshFlags = layer.refreshFlags;
        entry.gateOn = layer.gateOn;
        record.layers.push_back(std::move(entry));
    }
    return record;
}

void
writeConfig(std::ostream &os, const NetworkConfigRecord &record)
{
    os << "rana-config v2\n";
    os << "network " << record.networkName << "\n";
    os << "interval_us "
       << record.refreshIntervalSeconds / microSecond << "\n";
    os << "policy " << refreshPolicyName(record.policy) << "\n";
    for (const LayerConfigRecord &layer : record.layers) {
        os << "layer " << layer.layerName << " "
           << dataflowName(layer.dataflow) << " " << layer.tiling.tm
           << " " << layer.tiling.tn << " " << layer.tiling.tr << " "
           << layer.tiling.tc << " " << (layer.promoteInputs ? 1 : 0)
           << " ";
        for (bool flag : layer.refreshFlags)
            os << (flag ? '1' : '0');
        os << " " << (layer.gateOn ? 1 : 0) << "\n";
    }
    os << "end\n";
}

std::string
writeConfigString(const NetworkConfigRecord &record)
{
    std::ostringstream oss;
    writeConfig(oss, record);
    return oss.str();
}

Result<NetworkConfigRecord>
readConfigChecked(std::istream &is)
{
    NetworkConfigRecord record;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    int format_version = 0;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream tokens(line);
        std::string keyword;
        tokens >> keyword;
        if (!saw_header) {
            std::string version;
            tokens >> version;
            if (keyword != "rana-config" ||
                (version != "v1" && version != "v2")) {
                return makeError(ErrorCode::ParseError,
                                 "bad config header: ", line);
            }
            format_version = version == "v1" ? 1 : 2;
            saw_header = true;
            continue;
        }
        if (keyword == "network") {
            tokens >> record.networkName;
        } else if (keyword == "interval_us") {
            double us = 0.0;
            tokens >> us;
            if (!tokens || us <= 0.0) {
                return makeError(ErrorCode::ParseError,
                                 "bad interval in config line: ",
                                 line);
            }
            record.refreshIntervalSeconds = us * microSecond;
        } else if (keyword == "policy") {
            std::string policy;
            tokens >> policy;
            Result<RefreshPolicy> parsed = parsePolicy(policy, line);
            if (!parsed.ok())
                return parsed.error();
            record.policy = parsed.value();
        } else if (keyword == "layer") {
            LayerConfigRecord layer;
            std::string dataflow;
            std::string promote;
            std::string flags;
            std::string gate;
            tokens >> layer.layerName >> dataflow >> layer.tiling.tm >>
                layer.tiling.tn >> layer.tiling.tr >>
                layer.tiling.tc >> promote >> flags >> gate;
            if (!tokens) {
                return makeError(ErrorCode::ParseError,
                                 "truncated config line: ", line);
            }
            if (format_version == 1) {
                // v1 predates the dataflow axis: the token is a bare
                // computation pattern mapped onto its canonical
                // dataflow.
                Result<ComputationPattern> parsed_pattern =
                    parsePattern(dataflow, line);
                if (!parsed_pattern.ok())
                    return parsed_pattern.error();
                layer.dataflow = dataflowOf(parsed_pattern.value());
            } else {
                Result<DataflowKind> parsed_dataflow =
                    parseDataflowName(dataflow);
                if (!parsed_dataflow.ok()) {
                    return makeError(ErrorCode::ParseError,
                                     "bad dataflow '", dataflow,
                                     "' in config line: ", line);
                }
                layer.dataflow = parsed_dataflow.value();
            }
            Result<bool> parsed_promote = parseBit(promote, line);
            if (!parsed_promote.ok())
                return parsed_promote.error();
            layer.promoteInputs = parsed_promote.value();
            if (flags.size() != numDataTypes) {
                return makeError(ErrorCode::ParseError,
                                 "bad refresh flags in config line: ",
                                 line);
            }
            for (std::size_t i = 0; i < numDataTypes; ++i) {
                Result<bool> parsed_flag =
                    parseBit(std::string(1, flags[i]), line);
                if (!parsed_flag.ok())
                    return parsed_flag.error();
                layer.refreshFlags[i] = parsed_flag.value();
            }
            Result<bool> parsed_gate = parseBit(gate, line);
            if (!parsed_gate.ok())
                return parsed_gate.error();
            layer.gateOn = parsed_gate.value();
            record.layers.push_back(std::move(layer));
        } else if (keyword == "end") {
            saw_end = true;
            break;
        } else {
            return makeError(ErrorCode::ParseError,
                             "unknown config keyword in line: ", line);
        }
    }
    if (!saw_header || !saw_end) {
        return makeError(ErrorCode::ParseError,
                         "incomplete rana-config stream");
    }
    return record;
}

Result<NetworkConfigRecord>
readConfigStringChecked(const std::string &text)
{
    std::istringstream iss(text);
    return readConfigChecked(iss);
}

NetworkConfigRecord
readConfig(std::istream &is)
{
    return readConfigChecked(is).valueOrDie();
}

NetworkConfigRecord
readConfigString(const std::string &text)
{
    return readConfigStringChecked(text).valueOrDie();
}

Result<NetworkSchedule>
rebuildScheduleChecked(const AcceleratorConfig &config,
                       const NetworkModel &network,
                       const NetworkConfigRecord &record)
{
    if (record.layers.size() != network.size()) {
        return makeError(ErrorCode::Mismatch, "config has ",
                         record.layers.size(), " layers but network ",
                         network.name(), " has ", network.size());
    }
    SchedulerOptions options;
    options.policy = record.policy;
    options.refreshIntervalSeconds = record.refreshIntervalSeconds;

    NetworkSchedule schedule;
    schedule.networkName = record.networkName;
    schedule.refreshIntervalSeconds = record.refreshIntervalSeconds;
    schedule.policy = record.policy;
    for (std::size_t i = 0; i < network.size(); ++i) {
        const LayerConfigRecord &entry = record.layers[i];
        const ConvLayerSpec &layer = network.layer(i);
        if (entry.layerName != layer.name) {
            return makeError(ErrorCode::Mismatch, "config layer '",
                             entry.layerName,
                             "' does not match network layer '",
                             layer.name, "'");
        }
        Result<LayerSchedule> rebuilt = evaluateLayerChoice(
            config, layer, entry.dataflow, entry.tiling, options,
            entry.promoteInputs);
        if (!rebuilt.ok())
            return rebuilt.error();
        schedule.layers.push_back(std::move(rebuilt).value());
    }
    return schedule;
}

NetworkSchedule
rebuildSchedule(const AcceleratorConfig &config,
                const NetworkModel &network,
                const NetworkConfigRecord &record)
{
    return rebuildScheduleChecked(config, network, record)
        .valueOrDie();
}

} // namespace rana
