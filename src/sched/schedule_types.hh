/**
 * @file
 * Scheduling data types: options, per-layer decisions and the
 * compiled layerwise configuration (Figure 13's output).
 */

#ifndef RANA_SCHED_SCHEDULE_TYPES_HH_
#define RANA_SCHED_SCHEDULE_TYPES_HH_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "edram/refresh_controller.hh"
#include "energy/energy_table.hh"
#include "sim/pattern.hh"
#include "sim/pattern_analytics.hh"

namespace rana {

/** Inputs to the layer-based scheduling scheme. */
struct SchedulerOptions
{
    /** Computation patterns explored per layer. */
    std::vector<ComputationPattern> patterns = {ComputationPattern::OD,
                                                ComputationPattern::WD};
    /** Refresh policy of the target design's controller. */
    RefreshPolicy policy = RefreshPolicy::GatedGlobal;
    /**
     * Programmed refresh interval (the tolerable retention time) in
     * seconds.
     */
    double refreshIntervalSeconds = 45e-6;
    /**
     * Fixed tiling (DaDianNao-style architectures); when absent the
     * tiling space is explored.
     */
    std::optional<Tiling> fixedTiling;
    /**
     * Worker lanes for the design-space search: scheduleNetwork fans
     * layers and scheduleLayer fans (pattern, tiling) candidates
     * across the shared thread pool. 1 = serial on the calling
     * thread; 0 = one lane per hardware thread. The schedule is
     * byte-identical for every value (candidates are reduced in
     * index order), so this only trades wall-clock time.
     */
    unsigned jobs = 1;
    /**
     * Memoize completed evaluations in the process-wide EvalCache so
     * repeated design points (sweeps, --verify rebuilds) skip
     * re-simulation. Never changes results: evaluation is a pure
     * function of the cache key.
     */
    bool memoize = true;
};

/**
 * One layer's compiled configuration: the chosen pattern and tiling,
 * the analysis behind the choice, its Equation-14 operation counts
 * and energy, and the eDRAM refresh flags for the execution phase.
 */
struct LayerSchedule
{
    std::string layerName;
    LayerAnalysis analysis;
    OperationCounts counts;
    EnergyBreakdown energy;
    /** Per-datatype bank refresh flags (Section IV-D2). */
    std::array<bool, numDataTypes> refreshFlags = {false, false, false};
    /** Whether the gated-global controller refreshes this layer. */
    bool gateOn = false;

    /** Chosen computation pattern. */
    ComputationPattern pattern() const { return analysis.pattern; }
    /** Chosen tiling. */
    const Tiling &tiling() const { return analysis.tiling; }
};

/** A whole network's schedule: the hybrid computation pattern. */
struct NetworkSchedule
{
    std::string networkName;
    /** Refresh interval the schedule was compiled for. */
    double refreshIntervalSeconds = 0.0;
    RefreshPolicy policy = RefreshPolicy::GatedGlobal;
    std::vector<LayerSchedule> layers;

    /** Sum of per-layer operation counts. */
    OperationCounts totalCounts() const;
    /** Sum of per-layer energies. */
    EnergyBreakdown totalEnergy() const;
    /** Total execution time in seconds. */
    double totalSeconds() const;
    /** Number of layers scheduled with the given pattern. */
    std::size_t patternCount(ComputationPattern pattern) const;
};

} // namespace rana

#endif // RANA_SCHED_SCHEDULE_TYPES_HH_
