/**
 * @file
 * Scheduling data types: options, per-layer decisions and the
 * compiled layerwise configuration (Figure 13's output).
 */

#ifndef RANA_SCHED_SCHEDULE_TYPES_HH_
#define RANA_SCHED_SCHEDULE_TYPES_HH_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "edram/refresh_controller.hh"
#include "energy/energy_table.hh"
#include "sim/dataflow.hh"
#include "sim/pattern.hh"
#include "sim/pattern_analytics.hh"

namespace rana {

/** Inputs to the layer-based scheduling scheme. */
struct SchedulerOptions
{
    /**
     * Dataflows explored per layer. When empty the search space is
     * derived from `patterns` (the pre-dataflow compatibility axis);
     * use effectiveDataflows() to resolve the axis a search actually
     * sweeps. Listing a dataflow here supersedes `patterns`.
     */
    std::vector<DataflowKind> dataflows;
    /**
     * Computation patterns explored per layer. Compatibility view of
     * `dataflows`: each pattern names its canonical legacy dataflow.
     * Ignored when `dataflows` is non-empty.
     */
    std::vector<ComputationPattern> patterns = {ComputationPattern::OD,
                                                ComputationPattern::WD};
    /** Refresh policy of the target design's controller. */
    RefreshPolicy policy = RefreshPolicy::GatedGlobal;
    /**
     * Programmed refresh interval (the tolerable retention time) in
     * seconds.
     */
    double refreshIntervalSeconds = 45e-6;
    /**
     * Fixed tiling (DaDianNao-style architectures); when absent the
     * tiling space is explored.
     */
    std::optional<Tiling> fixedTiling;
    /**
     * Worker lanes for the design-space search: scheduleNetwork fans
     * layers and scheduleLayer fans (pattern, tiling) candidates
     * across the shared thread pool. 1 = serial on the calling
     * thread; 0 = one lane per hardware thread. The schedule is
     * byte-identical for every value (candidates are reduced in
     * index order), so this only trades wall-clock time.
     */
    unsigned jobs = 1;
    /**
     * Memoize completed evaluations in the process-wide EvalCache so
     * repeated design points (sweeps, --verify rebuilds) skip
     * re-simulation. Never changes results: evaluation is a pure
     * function of the cache key.
     */
    bool memoize = true;
};

/**
 * The dataflow axis a search over `options` sweeps: the explicit
 * dataflow list when set, otherwise the canonical dataflows of the
 * legacy pattern list (preserving its order).
 */
std::vector<DataflowKind>
effectiveDataflows(const SchedulerOptions &options);

/**
 * One layer's compiled configuration: the chosen dataflow and tiling,
 * the analysis behind the choice, its Equation-14 operation counts
 * and energy, and the eDRAM refresh flags for the execution phase.
 */
struct LayerSchedule
{
    std::string layerName;
    LayerAnalysis analysis;
    OperationCounts counts;
    EnergyBreakdown energy;
    /** Per-datatype bank refresh flags (Section IV-D2). */
    std::array<bool, numDataTypes> refreshFlags = {false, false, false};
    /** Whether the gated-global controller refreshes this layer. */
    bool gateOn = false;

    /** Chosen dataflow. */
    DataflowKind dataflow() const { return analysis.dataflow; }
    /**
     * Chosen computation pattern. Compatibility shim: only
     * meaningful for legacy dataflows; prefer dataflow().
     */
    ComputationPattern pattern() const { return analysis.pattern; }
    /** Chosen tiling. */
    const Tiling &tiling() const { return analysis.tiling; }
};

/** A whole network's schedule: the hybrid dataflow mix. */
struct NetworkSchedule
{
    std::string networkName;
    /** Refresh interval the schedule was compiled for. */
    double refreshIntervalSeconds = 0.0;
    RefreshPolicy policy = RefreshPolicy::GatedGlobal;
    std::vector<LayerSchedule> layers;

    /** Sum of per-layer operation counts. */
    OperationCounts totalCounts() const;
    /** Sum of per-layer energies. */
    EnergyBreakdown totalEnergy() const;
    /** Total execution time in seconds. */
    double totalSeconds() const;
    /** Number of layers scheduled with the given dataflow. */
    std::size_t dataflowCount(DataflowKind dataflow) const;
    /**
     * Number of layers scheduled with the given pattern's canonical
     * dataflow. Compatibility shim over dataflowCount().
     */
    std::size_t patternCount(ComputationPattern pattern) const;
};

} // namespace rana

#endif // RANA_SCHED_SCHEDULE_TYPES_HH_
