/**
 * @file
 * Implementation of the tiling candidate enumeration.
 */

#include "sched/tiling_search.hh"

#include <algorithm>

namespace rana {

std::vector<std::uint32_t>
dimensionCandidates(std::uint32_t extent, std::uint32_t cap)
{
    const std::uint32_t limit = std::min(extent, cap);
    std::vector<std::uint32_t> values;
    // Divisors of the extent.
    for (std::uint32_t d = 1; d <= limit; ++d) {
        if (extent % d == 0)
            values.push_back(d);
    }
    // Powers of two.
    for (std::uint32_t p = 1; p <= limit; p *= 2)
        values.push_back(p);
    // The full (clamped) extent.
    values.push_back(limit);

    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()),
                 values.end());
    // Bound the candidate count to keep the search tractable: keep
    // the smallest, the largest and an even subsample in between.
    constexpr std::size_t max_candidates = 12;
    if (values.size() > max_candidates) {
        std::vector<std::uint32_t> pruned;
        for (std::size_t i = 0; i < max_candidates; ++i) {
            const std::size_t index =
                i * (values.size() - 1) / (max_candidates - 1);
            pruned.push_back(values[index]);
        }
        pruned.erase(std::unique(pruned.begin(), pruned.end()),
                     pruned.end());
        values = std::move(pruned);
    }
    return values;
}

std::vector<Tiling>
tilingCandidates(const AcceleratorConfig &config,
                 const ConvLayerSpec &layer)
{
    const auto tm_values = dimensionCandidates(layer.m, config.peRows);
    const auto tn_values = dimensionCandidates(layer.n, layer.n);
    const auto tr_values = dimensionCandidates(layer.r(), layer.r());
    const auto tc_values = dimensionCandidates(layer.c(), layer.c());

    const std::uint64_t k2 =
        static_cast<std::uint64_t>(layer.k) * layer.k;

    std::vector<Tiling> candidates;
    for (std::uint32_t tm : tm_values) {
        for (std::uint32_t tn : tn_values) {
            if (static_cast<std::uint64_t>(tm) * tn * k2 >
                config.localWeightWords) {
                continue;
            }
            for (std::uint32_t tr : tr_values) {
                const std::uint64_t th = layer.inputPatchH(tr);
                for (std::uint32_t tc : tc_values) {
                    const std::uint64_t tl = layer.inputPatchW(tc);
                    if (static_cast<std::uint64_t>(tm) * tr * tc >
                        config.localOutputWords) {
                        continue;
                    }
                    if (static_cast<std::uint64_t>(tn) * th * tl >
                        config.localInputWords) {
                        continue;
                    }
                    candidates.push_back(Tiling{tm, tn, tr, tc});
                }
            }
        }
    }
    return candidates;
}

std::vector<DataflowChoice>
dataflowChoices(const AcceleratorConfig &config,
                const ConvLayerSpec &layer,
                const SchedulerOptions &options)
{
    std::vector<Tiling> tilings;
    if (options.fixedTiling) {
        tilings.push_back(*options.fixedTiling);
    } else {
        tilings = tilingCandidates(config, layer);
    }

    const std::vector<DataflowKind> dataflows =
        effectiveDataflows(options);
    std::vector<DataflowChoice> choices;
    choices.reserve(tilings.size() * dataflows.size() * 2);
    for (DataflowKind dataflow : dataflows) {
        for (const Tiling &tiling : tilings) {
            choices.push_back({dataflow, tiling, false});
            if (dataflow == DataflowKind::WD)
                choices.push_back({dataflow, tiling, true});
        }
    }
    return choices;
}

} // namespace rana
