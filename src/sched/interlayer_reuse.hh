/**
 * @file
 * Extension: inter-layer output reuse.
 *
 * The paper's execution model always drains a layer's outputs to
 * off-chip memory and reloads them as the next layer's inputs
 * (Section II-B). With RANA's large eDRAM buffer that round trip is
 * often avoidable: when consecutive layers chain directly (the
 * producer's output volume is exactly the consumer's input volume)
 * and the output set is fully buffer-resident in both layers'
 * allocations, the outputs can simply stay on chip.
 *
 * The retention twist that makes this a RANA problem: kept outputs
 * now live from their final accumulation in the producer until
 * their last read in the consumer — a lifetime that spans layers
 * and can exceed the tolerable retention time even when both
 * layers' intra-layer lifetimes are safe. The reuse pass therefore
 * recomputes the consumer's input lifetime as the carried lifetime
 * and re-derives its refresh flags, trading the saved off-chip
 * energy against any added refresh energy, and only keeps a fusion
 * when it wins.
 */

#ifndef RANA_SCHED_INTERLAYER_REUSE_HH_
#define RANA_SCHED_INTERLAYER_REUSE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network_model.hh"
#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"

namespace rana {

/** One applied fusion. */
struct FusedPair
{
    /** Producer layer index. */
    std::size_t producer = 0;
    /** Consumer layer index (producer + 1). */
    std::size_t consumer = 0;
    /** Off-chip words saved (producer writes + consumer reads). */
    double savedDramWords = 0.0;
    /** Refresh operations added on the consumer's input banks. */
    std::uint64_t addedRefreshOps = 0;
    /** Net energy saved in joules. */
    double savedEnergy = 0.0;
    /**
     * Carried lifetime of the kept outputs (producer tail +
     * consumer consumption), in seconds.
     */
    double carriedLifetimeSeconds = 0.0;
};

/** Result of the reuse pass. */
struct InterLayerReuseResult
{
    /** Applied fusions in layer order. */
    std::vector<FusedPair> fusions;
    /** Adjusted per-layer operation counts. */
    std::vector<OperationCounts> adjustedCounts;
    /** Adjusted total energy. */
    EnergyBreakdown adjustedEnergy;
    /** Original total energy for comparison. */
    EnergyBreakdown originalEnergy;

    /** Total off-chip words removed. */
    double totalSavedDramWords() const;
    /** Net energy saving fraction. */
    double savingFraction() const;
};

/**
 * Whether two consecutive layers chain directly: the consumer reads
 * exactly the producer's output volume.
 */
bool layersChain(const ConvLayerSpec &producer,
                 const ConvLayerSpec &consumer);

/**
 * Apply inter-layer output reuse to a compiled schedule. The
 * schedule itself is not modified; the result reports the adjusted
 * counts and energy. Fusions are applied greedily in layer order,
 * never chaining through an already-fused consumer (its inputs
 * are already accounted), and only when the net energy saving is
 * positive.
 */
InterLayerReuseResult
applyInterLayerReuse(const AcceleratorConfig &config,
                     const NetworkModel &network,
                     const NetworkSchedule &schedule);

} // namespace rana

#endif // RANA_SCHED_INTERLAYER_REUSE_HH_
