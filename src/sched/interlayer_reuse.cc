/**
 * @file
 * Implementation of inter-layer output reuse.
 */

#include "sched/interlayer_reuse.hh"

#include <algorithm>
#include <cmath>

#include "energy/energy_table.hh"
#include "util/logging.hh"

namespace rana {

namespace {

/** Pulses of `interval` during `duration` (floor with FP slack). */
std::uint64_t
pulsesDuring(double duration, double interval)
{
    if (interval <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(
        std::floor(duration / interval * (1.0 + 1e-12) + 1e-12));
}

} // namespace

double
InterLayerReuseResult::totalSavedDramWords() const
{
    double total = 0.0;
    for (const FusedPair &pair : fusions)
        total += pair.savedDramWords;
    return total;
}

double
InterLayerReuseResult::savingFraction() const
{
    const double original = originalEnergy.total();
    return original > 0.0
               ? 1.0 - adjustedEnergy.total() / original
               : 0.0;
}

bool
layersChain(const ConvLayerSpec &producer, const ConvLayerSpec &consumer)
{
    return consumer.n == producer.m && consumer.h == producer.r() &&
           consumer.l == producer.c();
}

InterLayerReuseResult
applyInterLayerReuse(const AcceleratorConfig &config,
                     const NetworkModel &network,
                     const NetworkSchedule &schedule)
{
    RANA_ASSERT(schedule.layers.size() == network.size(),
                "schedule does not match network");
    const EnergyTable table =
        energyTable65nm(config.buffer.technology);
    const double interval = schedule.refreshIntervalSeconds;
    const std::uint64_t bank_words = config.buffer.bankWords();

    InterLayerReuseResult result;
    result.adjustedCounts.reserve(schedule.layers.size());
    for (const LayerSchedule &layer : schedule.layers) {
        result.adjustedCounts.push_back(layer.counts);
        result.originalEnergy += layer.energy;
    }

    std::size_t last_fused_consumer = network.size(); // none
    for (std::size_t i = 0; i + 1 < network.size(); ++i) {
        if (last_fused_consumer == i) {
            // This layer's inputs already come from the previous
            // fusion; its outputs may still fuse onward.
        }
        const ConvLayerSpec &producer = network.layer(i);
        const ConvLayerSpec &consumer = network.layer(i + 1);
        if (!layersChain(producer, consumer))
            continue;
        if (last_fused_consumer == i + 1)
            continue;

        const LayerSchedule &prod_sched = schedule.layers[i];
        const LayerSchedule &cons_sched = schedule.layers[i + 1];
        const TypeAnalysis &prod_out =
            prod_sched.analysis.of(DataType::Output);
        const TypeAnalysis &cons_in =
            cons_sched.analysis.of(DataType::Input);

        // The producer must hold its complete output set on chip.
        const std::uint64_t held_words = producer.outputWords();
        if (prod_out.residentFraction < 1.0 ||
            prod_out.storageWords < held_words) {
            continue;
        }

        // The consumer must be able to read from the held banks in
        // place of its own input region: swap its input banks for
        // the held banks and check the pool still fits.
        const BankAllocation cons_alloc =
            analysisBankAllocation(config, cons_sched.analysis);
        const std::uint64_t held_banks =
            (held_words + bank_words - 1) / bank_words;
        const std::uint64_t cons_other_banks =
            cons_alloc.totalBanks() - cons_alloc.unusedBanks -
            cons_alloc.banksOf(DataType::Input);
        if (cons_other_banks + held_banks > config.buffer.numBanks)
            continue;

        // Off-chip words removed: the producer's final output drain
        // and every consumer input fetch (including halo re-reads,
        // which now hit the buffer).
        const double saved_dram =
            prod_out.dramWriteWords + cons_in.dramReadWords;

        // Carried lifetime of the kept outputs: from their final
        // accumulation (spread over the producer's last outer pass
        // when the dataflow accumulates outputs across the outermost
        // loop, the whole layer otherwise) to the consumer's last
        // read.
        const double producer_tail =
            prod_sched.analysis.spec().outputsAccumulateAcrossOuter()
                ? prod_sched.analysis.levelSeconds[1]
                : prod_sched.analysis.layerSeconds;
        const double carried =
            producer_tail + cons_sched.analysis.layerSeconds;

        // Refresh delta on the consumer: the held region ages over
        // the whole carried window (producer tail through consumer),
        // so its refresh pulses are counted over `carried`, not just
        // the consumer's runtime.
        std::uint64_t added_refresh = 0;
        const bool needs_refresh = carried >= interval;
        const std::uint64_t held_pulses =
            needs_refresh ? pulsesDuring(carried, interval) : 0;
        const std::uint64_t cons_pulses = pulsesDuring(
            cons_sched.analysis.layerSeconds, interval);
        switch (schedule.policy) {
          case RefreshPolicy::None:
            break;
          case RefreshPolicy::ConventionalAll:
            break; // Everything refreshes anyway.
          case RefreshPolicy::GatedGlobal:
            if (needs_refresh && !cons_sched.gateOn) {
                added_refresh = config.buffer.capacityWords() *
                                std::max<std::uint64_t>(held_pulses,
                                                        1);
            }
            break;
          case RefreshPolicy::PerBank: {
            const std::uint64_t held_refresh =
                held_banks * bank_words * held_pulses;
            const std::uint64_t original_input_refresh =
                cons_sched.refreshFlags[static_cast<std::size_t>(
                    DataType::Input)]
                    ? static_cast<std::uint64_t>(
                          cons_alloc.banksOf(DataType::Input)) *
                          bank_words * cons_pulses
                    : 0;
            added_refresh = held_refresh > original_input_refresh
                                ? held_refresh -
                                      original_input_refresh
                                : 0;
            break;
          }
        }

        // Energy balance: each saved DRAM word also removes its
        // buffer staging access.
        const double saved_energy =
            saved_dram * (table.ddrAccess + table.bufferAccess) -
            static_cast<double>(added_refresh) * table.refreshOp;
        if (saved_energy <= 0.0)
            continue;

        // Apply.
        FusedPair pair;
        pair.producer = i;
        pair.consumer = i + 1;
        pair.savedDramWords = saved_dram;
        pair.addedRefreshOps = added_refresh;
        pair.savedEnergy = saved_energy;
        pair.carriedLifetimeSeconds = carried;
        result.fusions.push_back(pair);
        last_fused_consumer = i + 1;

        auto &prod_counts = result.adjustedCounts[i];
        auto &cons_counts = result.adjustedCounts[i + 1];
        const auto out_writes = static_cast<std::uint64_t>(
            std::llround(prod_out.dramWriteWords));
        const auto in_reads = static_cast<std::uint64_t>(
            std::llround(cons_in.dramReadWords));
        prod_counts.ddrAccesses -= out_writes;
        prod_counts.bufferAccesses -= out_writes;
        cons_counts.ddrAccesses -= in_reads;
        cons_counts.bufferAccesses -= in_reads;
        cons_counts.refreshOps += added_refresh;
    }

    for (const OperationCounts &counts : result.adjustedCounts)
        result.adjustedEnergy += computeEnergy(counts, table);
    return result;
}

} // namespace rana
