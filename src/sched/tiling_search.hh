/**
 * @file
 * Tiling-parameter candidate generation for the scheduling scheme's
 * exploration (Figure 13).
 *
 * The exploration space covers <Tm, Tn, Tr, Tc> under the core's
 * local storage constraints:
 *
 *   Tn * Th * Tl <= Ri,  Tm * Tr * Tc <= Ro,  Tm * Tn * K^2 <= Rw.
 *
 * Tm is capped at the PE array's row count (more would only serialize
 * row groups with the same buffer behaviour), Tn at the layer's
 * channel count, and Tr/Tc follow the divisors and powers of two of
 * the output size so edge tiles stay rare.
 */

#ifndef RANA_SCHED_TILING_SEARCH_HH_
#define RANA_SCHED_TILING_SEARCH_HH_

#include <cstdint>
#include <vector>

#include "nn/conv_layer_spec.hh"
#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"
#include "sim/dataflow.hh"
#include "sim/pattern.hh"

namespace rana {

/**
 * One point of the per-layer design space: a dataflow, a tiling, and
 * (WD only) the input-promotion variant.
 */
struct DataflowChoice
{
    DataflowKind dataflow = DataflowKind::ID;
    Tiling tiling;
    bool promoteInputs = false;
};

/**
 * Candidate values for one loop dimension: divisors of `extent`
 * merged with powers of two, clamped to [1, min(extent, cap)].
 */
std::vector<std::uint32_t> dimensionCandidates(std::uint32_t extent,
                                               std::uint32_t cap);

/**
 * All tiling candidates for a layer on the given hardware that pass
 * the core local-storage constraints. Pattern-independent (the
 * constraints do not depend on the loop order).
 */
std::vector<Tiling> tilingCandidates(const AcceleratorConfig &config,
                                     const ConvLayerSpec &layer);

/**
 * The full per-layer search space — the dataflow x tiling product —
 * in the order the serial scheduler visits it: dataflows outer
 * (effectiveDataflows(options) order), tilings inner, the WD
 * input-promotion variant directly after its unpromoted twin. The
 * scheduler's reduction tie-breaks on this index, which is what
 * keeps the parallel result byte-identical to the serial one.
 */
std::vector<DataflowChoice>
dataflowChoices(const AcceleratorConfig &config,
                const ConvLayerSpec &layer,
                const SchedulerOptions &options);

} // namespace rana

#endif // RANA_SCHED_TILING_SEARCH_HH_
