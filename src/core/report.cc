/**
 * @file
 * Implementation of the result grid and headline statistics.
 */

#include "core/report.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/stats.hh"

namespace rana {

ResultGrid::ResultGrid(const std::vector<DesignPoint> &designs,
                       const std::vector<NetworkModel> &networks)
{
    RANA_ASSERT(!designs.empty() && !networks.empty(),
                "result grid needs designs and networks");
    for (const NetworkModel &network : networks)
        networkNames_.push_back(network.name());
    for (const DesignPoint &design : designs) {
        designNames_.push_back(design.name);
        results_.push_back(runDesignSuite(design, networks));
    }
}

const DesignResult &
ResultGrid::at(std::size_t design, std::size_t network) const
{
    RANA_ASSERT(design < results_.size() &&
                network < results_[design].size(),
                "result grid index out of range");
    return results_[design][network];
}

double
ResultGrid::normalizedEnergy(std::size_t design, std::size_t network,
                             std::size_t baseline) const
{
    const double base = at(baseline, network).energy.total();
    RANA_ASSERT(base > 0.0, "baseline energy must be positive");
    return at(design, network).energy.total() / base;
}

double
ResultGrid::normalizedEnergyGmean(std::size_t design,
                                  std::size_t baseline) const
{
    std::vector<double> norms;
    for (std::size_t n = 0; n < numNetworks(); ++n)
        norms.push_back(normalizedEnergy(design, n, baseline));
    return geomean(norms);
}

double
ResultGrid::metricOf(const DesignResult &result, Metric metric)
{
    switch (metric) {
      case Metric::TotalEnergy:
        return result.energy.total();
      case Metric::RefreshEnergy:
        return result.energy.refresh;
      case Metric::RefreshOps:
        return static_cast<double>(result.counts.refreshOps);
      case Metric::OffChipWords:
        return static_cast<double>(result.counts.ddrAccesses);
      case Metric::BufferEnergy:
        return result.energy.bufferAccess;
    }
    panic("unreachable metric");
}

double
ResultGrid::meanSaving(std::size_t candidate, std::size_t baseline,
                       Metric metric) const
{
    std::vector<double> savings;
    for (std::size_t n = 0; n < numNetworks(); ++n) {
        const double base = metricOf(at(baseline, n), metric);
        if (base <= 0.0)
            continue;
        savings.push_back(1.0 - metricOf(at(candidate, n), metric) /
                                    base);
    }
    RANA_ASSERT(!savings.empty(), "no network had a nonzero baseline");
    return mean(savings);
}

double
ResultGrid::metricSum(std::size_t design, Metric metric) const
{
    double total = 0.0;
    for (std::size_t n = 0; n < numNetworks(); ++n)
        total += metricOf(at(design, n), metric);
    return total;
}

std::string
ResultGrid::markdownNormalizedTable(std::size_t baseline) const
{
    std::ostringstream oss;
    oss << "| Design |";
    for (const std::string &name : networkNames_)
        oss << " " << name << " |";
    oss << " GMEAN |\n|---|";
    for (std::size_t n = 0; n <= numNetworks(); ++n)
        oss << "---|";
    oss << "\n";
    oss.setf(std::ios::fixed);
    oss.precision(3);
    for (std::size_t d = 0; d < numDesigns(); ++d) {
        oss << "| " << designNames_[d] << " |";
        for (std::size_t n = 0; n < numNetworks(); ++n)
            oss << " " << normalizedEnergy(d, n, baseline) << " |";
        oss << " " << normalizedEnergyGmean(d, baseline) << " |\n";
    }
    return oss.str();
}

std::string
markdownReliabilityTable(const std::vector<ReliabilityScenarioRow> &rows)
{
    std::ostringstream oss;
    oss << "| Scenario | Time (s) | Corrupted-word events | Guard |"
           " Trips | Banks re-enabled | Fallback refresh ops |"
           " Rel. accuracy (mean/worst) |\n"
           "|---|---|---|---|---|---|---|---|\n";
    for (const ReliabilityScenarioRow &row : rows) {
        oss << "| " << row.name << " | ";
        oss.setf(std::ios::scientific);
        oss.precision(3);
        oss << row.executionSeconds;
        oss.unsetf(std::ios::scientific);
        oss << " | " << row.violations << " | "
            << (row.guarded ? "on" : "off") << " | " << row.guardTrips
            << " | " << row.banksReenabled << " | "
            << row.fallbackRefreshOps << " | ";
        if (row.meanRelativeAccuracy < 0.0) {
            oss << "n/a |\n";
        } else {
            oss.setf(std::ios::fixed);
            oss.precision(3);
            oss << row.meanRelativeAccuracy << " / "
                << row.worstRelativeAccuracy << " |\n";
            oss.unsetf(std::ios::fixed);
        }
    }
    return oss.str();
}

std::string
markdownGuardPolicyTable(const std::vector<GuardPolicyRow> &rows)
{
    std::ostringstream oss;
    oss << "| Policy | Trips | Banks re-enabled | Re-disarms |"
           " Escalations | Fallback refresh ops |"
           " Armed refresh ops | Corrupted-word events |"
           " Rel. accuracy p50 [p5, p95] |\n"
           "|---|---|---|---|---|---|---|---|---|\n";
    for (const GuardPolicyRow &row : rows) {
        oss << "| " << row.policy << " | " << row.trips << " | "
            << row.banksReenabled << " | " << row.redisarms << " | "
            << row.escalations << " | " << row.fallbackRefreshOps
            << " | " << row.armedRefreshOps << " | "
            << row.violations << " | ";
        oss.setf(std::ios::fixed);
        oss.precision(3);
        oss << row.p50RelativeAccuracy << " ["
            << row.p5RelativeAccuracy << ", "
            << row.p95RelativeAccuracy << "] |\n";
        oss.unsetf(std::ios::fixed);
    }
    return oss.str();
}

std::string
markdownValueGrid(const std::string &corner,
                  const std::vector<std::string> &row_labels,
                  const std::vector<std::string> &col_labels,
                  const std::vector<std::vector<std::string>> &cells)
{
    RANA_ASSERT(cells.size() == row_labels.size(),
                "value grid row count mismatch: ", cells.size(),
                " vs ", row_labels.size());
    std::ostringstream oss;
    oss << "| " << corner << " |";
    for (const std::string &label : col_labels)
        oss << " " << label << " |";
    oss << "\n|---|";
    for (std::size_t i = 0; i < col_labels.size(); ++i)
        oss << "---|";
    oss << "\n";
    for (std::size_t r = 0; r < row_labels.size(); ++r) {
        RANA_ASSERT(cells[r].size() == col_labels.size(),
                    "value grid column count mismatch in row ", r);
        oss << "| " << row_labels[r] << " |";
        for (const std::string &cell : cells[r])
            oss << " " << cell << " |";
        oss << "\n";
    }
    return oss.str();
}

} // namespace rana
