/**
 * @file
 * Headline-statistic computation over a grid of design results.
 *
 * The paper's Section V-B1 quotes a set of summary percentages
 * (off-chip access saved, refresh operations removed, total system
 * energy saved, ...). This module computes the same statistics from
 * a designs x networks result grid so the benchmark harnesses, the
 * regression tests and EXPERIMENTS.md all derive them from one
 * implementation — and the tests can pin each statistic to the band
 * the paper establishes.
 */

#ifndef RANA_CORE_REPORT_HH_
#define RANA_CORE_REPORT_HH_

#include <string>
#include <vector>

#include "core/experiments.hh"

namespace rana {

/** A designs x networks grid of evaluation results. */
class ResultGrid
{
  public:
    /**
     * Evaluate every design on every network.
     */
    ResultGrid(const std::vector<DesignPoint> &designs,
               const std::vector<NetworkModel> &networks);

    std::size_t numDesigns() const { return results_.size(); }
    std::size_t numNetworks() const
    {
        return results_.empty() ? 0 : results_.front().size();
    }

    /** Result of design d on network n. */
    const DesignResult &at(std::size_t design,
                           std::size_t network) const;

    /** Design names in grid order. */
    const std::vector<std::string> &designNames() const
    {
        return designNames_;
    }
    /** Network names in grid order. */
    const std::vector<std::string> &networkNames() const
    {
        return networkNames_;
    }

    /** Total energy of design d on network n, normalized to design
     *  `baseline` on the same network. */
    double normalizedEnergy(std::size_t design, std::size_t network,
                            std::size_t baseline = 0) const;

    /** Geometric mean of normalizedEnergy across networks. */
    double normalizedEnergyGmean(std::size_t design,
                                 std::size_t baseline = 0) const;

    /**
     * Mean fractional saving of a per-network metric of design
     * `candidate` vs design `baseline` (networks where the baseline
     * metric is zero are skipped).
     */
    enum class Metric {
        TotalEnergy,
        RefreshEnergy,
        RefreshOps,
        OffChipWords,
        BufferEnergy,
    };
    double meanSaving(std::size_t candidate, std::size_t baseline,
                      Metric metric) const;

    /** Sum of a metric over all networks for one design. */
    double metricSum(std::size_t design, Metric metric) const;

    /** Markdown table of normalized energies (plus GMEAN column). */
    std::string markdownNormalizedTable(std::size_t baseline = 0)
        const;

  private:
    static double metricOf(const DesignResult &result, Metric metric);

    std::vector<std::string> designNames_;
    std::vector<std::string> networkNames_;
    std::vector<std::vector<DesignResult>> results_;
};

/**
 * One scenario row of the reliability report: a simulated execution
 * (nominal, stressed, or guarded) with its corruption and fallback
 * counters, plus the campaign's accuracy summary when one ran
 * (negative relative accuracies mean "not measured").
 */
struct ReliabilityScenarioRow
{
    std::string name;
    /** Simulated execution time in seconds. */
    double executionSeconds = 0.0;
    /** Corrupted-word events (stale reads) the controller counted. */
    std::uint64_t violations = 0;
    /** Whether the ReliabilityGuard was attached. */
    bool guarded = false;
    /** Guard trips (0 when unguarded). */
    std::uint64_t guardTrips = 0;
    /** Banks whose refresh the guard re-enabled. */
    std::uint64_t banksReenabled = 0;
    /** Refresh operations issued by the watchdog fallback. */
    std::uint64_t fallbackRefreshOps = 0;
    /** Mean relative accuracy of the fault campaign (< 0 = n/a). */
    double meanRelativeAccuracy = -1.0;
    /** Worst relative accuracy of the fault campaign (< 0 = n/a). */
    double worstRelativeAccuracy = -1.0;
};

/**
 * Markdown table of reliability scenarios (the robustness layer's
 * report): one row per scenario with violation, guard-trip and
 * fallback counters and the campaign accuracy summary.
 */
std::string markdownReliabilityTable(
    const std::vector<ReliabilityScenarioRow> &rows);

/**
 * One guard-policy row of the policy-comparison report: the guard
 * and controller counters a policy accumulated over the comparison
 * grid, plus the pooled relative-accuracy band of its campaign
 * trials.
 */
struct GuardPolicyRow
{
    /** Policy name ("permanent", "hysteresis", "binned"). */
    std::string policy;
    /** Overage trips covered by the watchdog fallback. */
    std::uint64_t trips = 0;
    /** Banks whose refresh flag the guard re-enabled. */
    std::uint64_t banksReenabled = 0;
    /** Guard-armed flags the policy cleared again. */
    std::uint64_t redisarms = 0;
    /** Trips answered with a divider-bin escalation. */
    std::uint64_t escalations = 0;
    /** Refresh operations issued by the watchdog fallback. */
    std::uint64_t fallbackRefreshOps = 0;
    /** Refresh operations issued while groups stayed guard-armed. */
    std::uint64_t armedRefreshOps = 0;
    /** Corrupted-word events (stale reads) the controller counted. */
    std::uint64_t violations = 0;
    /** Pooled relative-accuracy band over the policy's trials. */
    double p5RelativeAccuracy = 0.0;
    double p50RelativeAccuracy = 0.0;
    double p95RelativeAccuracy = 0.0;
};

/**
 * Markdown table of the guard-policy comparison: one row per policy
 * with trip, re-disarm, escalation and refresh-energy counters and
 * the corruption band rendered as "p50 [p5, p95]".
 */
std::string
markdownGuardPolicyTable(const std::vector<GuardPolicyRow> &rows);

/**
 * Markdown pipe table of a labelled value grid: `corner` heads the
 * label column, one row per `row_labels` entry, one column per
 * `col_labels` entry. `cells` is row-major and must match the label
 * counts exactly.
 */
std::string
markdownValueGrid(const std::string &corner,
                  const std::vector<std::string> &row_labels,
                  const std::vector<std::string> &col_labels,
                  const std::vector<std::vector<std::string>> &cells);

} // namespace rana

#endif // RANA_CORE_REPORT_HH_
