/**
 * @file
 * The six evaluated design configurations (the paper's Table IV) and
 * the DaDianNao scalability variants (Section V-C).
 *
 * | Design      | Buffer       | Pattern      | Fail rate | Interval | Controller   |
 * |-------------|--------------|--------------|-----------|----------|--------------|
 * | S+ID        | 384KB SRAM   | ID           | -         | -        | -            |
 * | eD+ID       | 1.45MB eDRAM | ID           | 0 (3e-6)  | 45us     | gated-global |
 * | eD+OD       | 1.45MB eDRAM | OD           | 0 (3e-6)  | 45us     | gated-global |
 * | RANA (0)    | 1.45MB eDRAM | hybrid OD+WD | 0 (3e-6)  | 45us     | gated-global |
 * | RANA (E-5)  | 1.45MB eDRAM | hybrid OD+WD | 1e-5      | 734us    | gated-global |
 * | RANA*(E-5)  | 1.45MB eDRAM | hybrid OD+WD | 1e-5      | 734us    | per-bank     |
 *
 * All six share the same silicon area, frequency and MAC count.
 */

#ifndef RANA_CORE_DESIGN_POINT_HH_
#define RANA_CORE_DESIGN_POINT_HH_

#include <optional>
#include <string>
#include <vector>

#include "edram/retention_distribution.hh"
#include "sched/schedule_types.hh"
#include "sim/accelerator_config.hh"

namespace rana {

/** The evaluated design configurations. */
enum class DesignKind {
    SramId,
    EdramId,
    EdramOd,
    Rana0,
    RanaE5,
    RanaStarE5,
};

/** Paper name of a design kind ("S+ID", ..., "RANA*(E-5)"). */
const char *designKindName(DesignKind kind);

/** A complete design: hardware plus scheduling options. */
struct DesignPoint
{
    std::string name;
    AcceleratorConfig config;
    SchedulerOptions options;
    /** Tolerable retention failure rate (0 = worst-case cell). */
    double failureRate = 0.0;
};

/** Adjustable knobs when instantiating a design point. */
struct DesignPointParams
{
    /** Override the eDRAM bank count (Figure 18 capacity sweep). */
    std::optional<std::uint32_t> edramBanks;
    /** Override the retention time / refresh interval (Figure 16). */
    std::optional<double> retentionSeconds;
};

/**
 * Instantiate one Table-IV design on the test accelerator.
 *
 * The refresh interval defaults to the retention distribution's
 * tolerable retention time for the design's failure rate (45us for
 * the worst-case cell, 734us at 1e-5).
 */
DesignPoint makeDesignPoint(DesignKind kind,
                            const RetentionDistribution &retention,
                            const DesignPointParams &params = {});

/** All six Table-IV designs in paper order. */
std::vector<DesignPoint>
tableIvDesigns(const RetentionDistribution &retention);

/**
 * DaDianNao designs (Section V-C): the baseline node (WD pattern,
 * fixed <64,64,1,1> tiling, conventional 45us refresh) plus the
 * RANA(0) / RANA(E-5) / RANA*(E-5) strengthened variants with the
 * same hardware parameters.
 */
std::vector<DesignPoint>
daDianNaoDesigns(const RetentionDistribution &retention);

} // namespace rana

#endif // RANA_CORE_DESIGN_POINT_HH_
