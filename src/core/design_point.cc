/**
 * @file
 * Implementation of the design-point presets.
 */

#include "core/design_point.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

const char *
designKindName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::SramId:
        return "S+ID";
      case DesignKind::EdramId:
        return "eD+ID";
      case DesignKind::EdramOd:
        return "eD+OD";
      case DesignKind::Rana0:
        return "RANA (0)";
      case DesignKind::RanaE5:
        return "RANA (E-5)";
      case DesignKind::RanaStarE5:
        return "RANA*(E-5)";
    }
    panic("unreachable design kind");
}

DesignPoint
makeDesignPoint(DesignKind kind, const RetentionDistribution &retention,
                const DesignPointParams &params)
{
    DesignPoint design;
    design.name = designKindName(kind);

    if (kind == DesignKind::SramId) {
        design.config = testAcceleratorSram();
        design.options.patterns = {ComputationPattern::ID};
        design.options.policy = RefreshPolicy::None;
        design.options.refreshIntervalSeconds =
            retention.worstCaseRetention();
        design.failureRate = 0.0;
        return design;
    }

    design.config = params.edramBanks
                        ? testAcceleratorEdram(*params.edramBanks)
                        : testAcceleratorEdram();

    switch (kind) {
      case DesignKind::EdramId:
        design.options.patterns = {ComputationPattern::ID};
        design.failureRate = 0.0;
        design.options.policy = RefreshPolicy::GatedGlobal;
        break;
      case DesignKind::EdramOd:
        design.options.patterns = {ComputationPattern::OD};
        design.failureRate = 0.0;
        design.options.policy = RefreshPolicy::GatedGlobal;
        break;
      case DesignKind::Rana0:
        design.options.patterns = {ComputationPattern::OD,
                                   ComputationPattern::WD};
        design.failureRate = 0.0;
        design.options.policy = RefreshPolicy::GatedGlobal;
        break;
      case DesignKind::RanaE5:
        design.options.patterns = {ComputationPattern::OD,
                                   ComputationPattern::WD};
        design.failureRate = 1e-5;
        design.options.policy = RefreshPolicy::GatedGlobal;
        break;
      case DesignKind::RanaStarE5:
        design.options.patterns = {ComputationPattern::OD,
                                   ComputationPattern::WD};
        design.failureRate = 1e-5;
        design.options.policy = RefreshPolicy::PerBank;
        break;
      case DesignKind::SramId:
        panic("handled above");
    }

    design.options.refreshIntervalSeconds =
        params.retentionSeconds
            ? *params.retentionSeconds
            : (design.failureRate > 0.0
                   ? retention.retentionTimeFor(design.failureRate)
                   : retention.worstCaseRetention());
    return design;
}

std::vector<DesignPoint>
tableIvDesigns(const RetentionDistribution &retention)
{
    return {
        makeDesignPoint(DesignKind::SramId, retention),
        makeDesignPoint(DesignKind::EdramId, retention),
        makeDesignPoint(DesignKind::EdramOd, retention),
        makeDesignPoint(DesignKind::Rana0, retention),
        makeDesignPoint(DesignKind::RanaE5, retention),
        makeDesignPoint(DesignKind::RanaStarE5, retention),
    };
}

std::vector<DesignPoint>
daDianNaoDesigns(const RetentionDistribution &retention)
{
    const Tiling ddn_tiling{64, 64, 1, 1};

    DesignPoint baseline;
    baseline.name = "DaDianNao";
    baseline.config = daDianNaoNode();
    baseline.options.patterns = {ComputationPattern::WD};
    baseline.options.fixedTiling = ddn_tiling;
    baseline.options.policy = RefreshPolicy::GatedGlobal;
    baseline.options.refreshIntervalSeconds =
        retention.worstCaseRetention();
    baseline.failureRate = 0.0;

    DesignPoint rana0 = baseline;
    rana0.name = "RANA (0)";
    rana0.options.patterns = {ComputationPattern::OD,
                              ComputationPattern::WD};

    DesignPoint rana_e5 = rana0;
    rana_e5.name = "RANA (E-5)";
    rana_e5.failureRate = 1e-5;
    rana_e5.options.refreshIntervalSeconds =
        retention.retentionTimeFor(1e-5);

    DesignPoint rana_star = rana_e5;
    rana_star.name = "RANA*(E-5)";
    rana_star.options.policy = RefreshPolicy::PerBank;

    return {baseline, rana0, rana_e5, rana_star};
}

} // namespace rana
