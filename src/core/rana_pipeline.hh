/**
 * @file
 * The RANA framework facade: the three-stage workflow of Figure 6.
 *
 * Stage 1 (training): a retention-aware training method certifies
 * the highest tolerable retention failure rate under an accuracy
 * constraint (implemented in the rana_train library; the pipeline
 * takes the certified rate as input so the compilation phase can
 * also run from a precomputed rate, as the paper does with 1e-5).
 *
 * Stage 2 (scheduling): the tolerable failure rate is mapped to a
 * tolerable retention time through the eDRAM retention distribution,
 * and every layer is assigned the minimum-energy computation pattern
 * and tiling, producing the layerwise configurations.
 *
 * Stage 3 (architecture/execution): the compiled schedule runs on
 * the accelerator with the refresh-optimized eDRAM controller; the
 * loop-nest simulator verifies that no data is read beyond its
 * tolerable retention age and reports the executed operation counts
 * and energy.
 */

#ifndef RANA_CORE_RANA_PIPELINE_HH_
#define RANA_CORE_RANA_PIPELINE_HH_

#include "core/design_point.hh"
#include "core/experiments.hh"
#include "edram/retention_distribution.hh"
#include "nn/network_model.hh"

namespace rana {

/** Inputs to the pipeline's compilation phase. */
struct PipelineInputs
{
    /** Certified tolerable retention failure rate (stage 1 output). */
    double tolerableFailureRate = 1e-5;
    /** eDRAM retention-time distribution of the target process. */
    RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    /** Refresh controller policy (per-bank = the RANA* controller). */
    RefreshPolicy policy = RefreshPolicy::PerBank;
    /** Run the execution phase on the trace simulator. */
    bool execute = true;
};

/** Outputs of a full pipeline run. */
struct PipelineResult
{
    /** Tolerable retention time derived from the failure rate. */
    double tolerableRetentionSeconds = 0.0;
    /** The design point the network was compiled for. */
    DesignPoint design;
    /** Stage-2 layerwise configurations (the hybrid pattern). */
    NetworkSchedule schedule;
    /** Stage-2 analytic totals. */
    EnergyBreakdown scheduledEnergy;
    /** Stage-3 executed totals (trace simulator). */
    ExecutionResult executed;
    /** Whether the execution phase ran. */
    bool executedPhase = false;
};

/**
 * Run the RANA compilation (and optionally execution) phases for a
 * network on the test accelerator's eDRAM configuration.
 */
PipelineResult runRanaPipeline(const NetworkModel &network,
                               const PipelineInputs &inputs);

/**
 * Run the pipeline on explicit hardware (e.g. a DaDianNao node or a
 * capacity-sweep configuration).
 */
PipelineResult runRanaPipeline(const NetworkModel &network,
                               const AcceleratorConfig &config,
                               const PipelineInputs &inputs);

} // namespace rana

#endif // RANA_CORE_RANA_PIPELINE_HH_
