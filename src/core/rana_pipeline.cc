/**
 * @file
 * Implementation of the RANA pipeline facade.
 */

#include "core/rana_pipeline.hh"

#include "util/logging.hh"

namespace rana {

PipelineResult
runRanaPipeline(const NetworkModel &network, const PipelineInputs &inputs)
{
    return runRanaPipeline(network, testAcceleratorEdram(), inputs);
}

PipelineResult
runRanaPipeline(const NetworkModel &network,
                const AcceleratorConfig &config,
                const PipelineInputs &inputs)
{
    RANA_ASSERT(inputs.tolerableFailureRate >= 0.0,
                "failure rate must be non-negative");

    PipelineResult result;
    result.tolerableRetentionSeconds =
        inputs.tolerableFailureRate > 0.0
            ? inputs.retention.retentionTimeFor(
                  inputs.tolerableFailureRate)
            : inputs.retention.worstCaseRetention();

    result.design.name = "RANA pipeline";
    result.design.config = config;
    result.design.failureRate = inputs.tolerableFailureRate;
    result.design.options.patterns = {ComputationPattern::OD,
                                      ComputationPattern::WD};
    result.design.options.policy = inputs.policy;
    result.design.options.refreshIntervalSeconds =
        result.tolerableRetentionSeconds;

    result.schedule = scheduleNetworkOrDie(config, network,
                                           result.design.options);
    result.scheduledEnergy = result.schedule.totalEnergy();

    if (inputs.execute) {
        result.executed =
            executeSchedule(result.design, network, result.schedule);
        result.executedPhase = true;
        if (result.executed.violations > 0) {
            warn("execution phase observed ",
                 result.executed.violations,
                 " retention violations; the schedule is unsafe for "
                 "the programmed retention time");
        }
    }
    return result;
}

} // namespace rana
