/**
 * @file
 * Implementation of the experiment runner.
 */

#include "core/experiments.hh"

#include "obs/chrome_trace.hh"
#include "sim/loopnest_simulator.hh"
#include "sim/trace_export.hh"
#include "util/logging.hh"

namespace rana {

Result<DesignResult>
runDesignChecked(const DesignPoint &design, const NetworkModel &network)
{
    DesignResult result;
    result.designName = design.name;
    result.networkName = network.name();
    Result<NetworkSchedule> schedule =
        scheduleNetwork(design.config, network, design.options);
    if (!schedule.ok())
        return schedule.error();
    result.schedule = std::move(schedule).value();
    result.counts = result.schedule.totalCounts();
    result.energy = result.schedule.totalEnergy();
    result.seconds = result.schedule.totalSeconds();
    return result;
}

DesignResult
runDesign(const DesignPoint &design, const NetworkModel &network)
{
    return runDesignChecked(design, network).valueOrDie();
}

std::vector<DesignResult>
runDesignSuite(const DesignPoint &design,
               const std::vector<NetworkModel> &networks)
{
    std::vector<DesignResult> results;
    results.reserve(networks.size());
    for (const auto &network : networks)
        results.push_back(runDesign(design, network));
    return results;
}

ExecutionResult
executeSchedule(const DesignPoint &design, const NetworkModel &network,
                const NetworkSchedule &schedule)
{
    return executeSchedule(design, network, schedule, TimingFaults{},
                           nullptr);
}

ExecutionResult
executeSchedule(const DesignPoint &design, const NetworkModel &network,
                const NetworkSchedule &schedule,
                const TimingFaults &faults, ReliabilityGuard *guard)
{
    return executeScheduleChecked(design, network, schedule, faults,
                                  guard)
        .valueOrDie();
}

Result<ExecutionResult>
executeScheduleChecked(const DesignPoint &design,
                       const NetworkModel &network,
                       const NetworkSchedule &schedule,
                       const TimingFaults &faults,
                       ReliabilityGuard *guard, TraceSink *sink)
{
    if (schedule.layers.size() != network.size()) {
        return makeError(ErrorCode::Mismatch, "schedule has ",
                         schedule.layers.size(), " layers but ",
                         network.name(), " has ", network.size());
    }
    ScopedSpan span("core", "execute_schedule");
    LoopNestSimulator simulator(design.config, design.options.policy,
                                design.options.refreshIntervalSeconds);
    simulator.setTimingFaults(faults);
    if (guard != nullptr)
        simulator.attachGuard(guard);
    if (sink != nullptr)
        simulator.setTraceSink(sink);
    ExecutionResult result;
    for (std::size_t i = 0; i < network.size(); ++i) {
        Result<LayerSimResult> layer_result = simulator.runLayerChecked(
            network.layer(i), schedule.layers[i].analysis);
        if (!layer_result.ok())
            return layer_result.error();
        const LayerSimResult layer = std::move(layer_result).value();
        result.counts += layer.counts;
        result.seconds += layer.layerSeconds;
        result.violations += layer.violations;
        result.guardTrips += layer.guardTrips;
    }
    if (guard != nullptr) {
        result.guardBanksReenabled = guard->stats().banksReenabled;
        result.guardFallbackRefreshOps =
            guard->stats().fallbackRefreshOps;
    }
    result.energy = computeEnergy(
        result.counts,
        energyTable65nm(design.config.buffer.technology));
    return result;
}

} // namespace rana
