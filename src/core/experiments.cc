/**
 * @file
 * Implementation of the experiment runner.
 */

#include "core/experiments.hh"

#include "sim/loopnest_simulator.hh"
#include "util/logging.hh"

namespace rana {

Result<DesignResult>
runDesignChecked(const DesignPoint &design, const NetworkModel &network)
{
    DesignResult result;
    result.designName = design.name;
    result.networkName = network.name();
    Result<NetworkSchedule> schedule =
        scheduleNetwork(design.config, network, design.options);
    if (!schedule.ok())
        return schedule.error();
    result.schedule = std::move(schedule).value();
    result.counts = result.schedule.totalCounts();
    result.energy = result.schedule.totalEnergy();
    result.seconds = result.schedule.totalSeconds();
    return result;
}

DesignResult
runDesign(const DesignPoint &design, const NetworkModel &network)
{
    return runDesignChecked(design, network).valueOrDie();
}

std::vector<DesignResult>
runDesignSuite(const DesignPoint &design,
               const std::vector<NetworkModel> &networks)
{
    std::vector<DesignResult> results;
    results.reserve(networks.size());
    for (const auto &network : networks)
        results.push_back(runDesign(design, network));
    return results;
}

ExecutionResult
executeSchedule(const DesignPoint &design, const NetworkModel &network,
                const NetworkSchedule &schedule)
{
    return executeSchedule(design, network, schedule, TimingFaults{},
                           nullptr);
}

ExecutionResult
executeSchedule(const DesignPoint &design, const NetworkModel &network,
                const NetworkSchedule &schedule,
                const TimingFaults &faults, ReliabilityGuard *guard)
{
    RANA_ASSERT(schedule.layers.size() == network.size(),
                "schedule does not match network");
    LoopNestSimulator simulator(design.config, design.options.policy,
                                design.options.refreshIntervalSeconds);
    simulator.setTimingFaults(faults);
    if (guard != nullptr)
        simulator.attachGuard(guard);
    ExecutionResult result;
    for (std::size_t i = 0; i < network.size(); ++i) {
        const LayerSimResult layer = simulator.runLayer(
            network.layer(i), schedule.layers[i].analysis);
        result.counts += layer.counts;
        result.seconds += layer.layerSeconds;
        result.violations += layer.violations;
        result.guardTrips += layer.guardTrips;
    }
    if (guard != nullptr) {
        result.guardBanksReenabled = guard->stats().banksReenabled;
        result.guardFallbackRefreshOps =
            guard->stats().fallbackRefreshOps;
    }
    result.energy = computeEnergy(
        result.counts,
        energyTable65nm(design.config.buffer.technology));
    return result;
}

} // namespace rana
