/**
 * @file
 * Experiment runner shared by the benchmark harnesses: evaluates a
 * design point on a network and returns the schedule, operation
 * counts and energy breakdown used in the paper's figures.
 */

#ifndef RANA_CORE_EXPERIMENTS_HH_
#define RANA_CORE_EXPERIMENTS_HH_

#include <string>
#include <vector>

#include "core/design_point.hh"
#include "edram/reliability_guard.hh"
#include "nn/network_model.hh"
#include "sched/layer_scheduler.hh"
#include "sim/performance_model.hh"

namespace rana {

/** Result of evaluating one design on one network. */
struct DesignResult
{
    std::string designName;
    std::string networkName;
    NetworkSchedule schedule;
    /** Total Equation-14 operation counts. */
    OperationCounts counts;
    /** Total energy breakdown. */
    EnergyBreakdown energy;
    /** Total execution time in seconds. */
    double seconds = 0.0;
};

/**
 * Schedule and evaluate a design on a network; fails with the
 * scheduler's error when the design cannot run the network.
 */
Result<DesignResult> runDesignChecked(const DesignPoint &design,
                                      const NetworkModel &network);

/** runDesignChecked, but fatal() on failure. */
DesignResult runDesign(const DesignPoint &design,
                       const NetworkModel &network);

/** Evaluate a design on several networks. */
std::vector<DesignResult>
runDesignSuite(const DesignPoint &design,
               const std::vector<NetworkModel> &networks);

/**
 * Execute a compiled schedule on the loop-nest trace simulator and
 * return the operation counts actually observed (including the
 * event-driven refresh controller's refresh ops), along with any
 * retention violations. Used to validate the analytic results and
 * by the execution phase of the RANA pipeline.
 */
struct ExecutionResult
{
    OperationCounts counts;
    EnergyBreakdown energy;
    double seconds = 0.0;
    std::uint64_t violations = 0;
    /** Reliability-guard trips (0 when no guard was attached). */
    std::uint64_t guardTrips = 0;
    /** Banks the guard re-enabled refresh for. */
    std::uint64_t guardBanksReenabled = 0;
    /** Refresh operations issued by the guard's watchdog fallback. */
    std::uint64_t guardFallbackRefreshOps = 0;
};

class TraceSink;

/**
 * Checked core of executeSchedule: fails with Mismatch when the
 * schedule does not describe `network` (instead of aborting), runs
 * the simulation under `faults`, and optionally attaches the
 * reliability guard and a trace sink (either may be nullptr). The
 * sink receives every simulator event — the timeline exporter hangs
 * off this parameter.
 */
Result<ExecutionResult>
executeScheduleChecked(const DesignPoint &design,
                       const NetworkModel &network,
                       const NetworkSchedule &schedule,
                       const TimingFaults &faults = TimingFaults{},
                       ReliabilityGuard *guard = nullptr,
                       TraceSink *sink = nullptr);

ExecutionResult executeSchedule(const DesignPoint &design,
                                const NetworkModel &network,
                                const NetworkSchedule &schedule);

/**
 * executeSchedule under injected timing faults, optionally with the
 * runtime reliability guard attached (nullptr = unguarded). Guarded
 * runs convert retention overages into per-bank refresh fallbacks:
 * `violations` stays zero and the guard counters report the trips.
 * The default TimingFaults and a null guard reproduce the plain
 * overload bit for bit.
 */
ExecutionResult executeSchedule(const DesignPoint &design,
                                const NetworkModel &network,
                                const NetworkSchedule &schedule,
                                const TimingFaults &faults,
                                ReliabilityGuard *guard);

} // namespace rana

#endif // RANA_CORE_EXPERIMENTS_HH_
