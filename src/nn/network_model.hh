/**
 * @file
 * A CNN model as an ordered list of CONV layers.
 *
 * The paper's acceleration analysis covers CONV layers only (Section
 * II-A): CONV layers dominate runtime and the other layer types are
 * executed by transformation to the CONV form. Accordingly a
 * NetworkModel records the CONV layers of a network with the exact
 * shapes they see for a 224x224x3 ImageNet input, in execution order.
 */

#ifndef RANA_NN_NETWORK_MODEL_HH_
#define RANA_NN_NETWORK_MODEL_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv_layer_spec.hh"

namespace rana {

/** An ordered collection of CONV layers plus summary queries. */
class NetworkModel
{
  public:
    NetworkModel() = default;

    /** @param name network name, e.g. "ResNet". */
    explicit NetworkModel(std::string name);

    /** Append a layer (validated). */
    void addLayer(ConvLayerSpec layer);

    /** Network name. */
    const std::string &name() const { return name_; }

    /** All layers in execution order. */
    const std::vector<ConvLayerSpec> &layers() const { return layers_; }

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    /** Layer by index. @pre index < size(). */
    const ConvLayerSpec &layer(std::size_t index) const;

    /**
     * Find a layer by name.
     * @return the layer; calls fatal() if absent.
     */
    const ConvLayerSpec &findLayer(const std::string &layer_name) const;

    /** Largest per-layer input storage over all layers, in words. */
    std::uint64_t maxInputWords() const;
    /** Largest per-layer output storage over all layers, in words. */
    std::uint64_t maxOutputWords() const;
    /** Largest per-layer weight storage over all layers, in words. */
    std::uint64_t maxWeightWords() const;

    /** Total MAC operations across all layers. */
    std::uint64_t totalMacs() const;

    /** Total weight words across all layers. */
    std::uint64_t totalWeightWords() const;

  private:
    std::string name_;
    std::vector<ConvLayerSpec> layers_;
};

} // namespace rana

#endif // RANA_NN_NETWORK_MODEL_HH_
