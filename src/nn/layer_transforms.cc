/**
 * @file
 * Implementation of the layer transformations.
 */

#include "nn/layer_transforms.hh"

#include "nn/model_zoo.hh"

namespace rana {

ConvLayerSpec
fullyConnectedAsConv(std::string name, std::uint32_t channels,
                     std::uint32_t spatial, std::uint32_t outputs)
{
    // Kernel spans the whole input volume: one output position.
    return makeConv(std::move(name), channels, spatial, outputs,
                    spatial, 1, 0);
}

NetworkModel
makeAlexNetWithClassifier()
{
    NetworkModel net = makeAlexNet();
    NetworkModel extended("AlexNet+FC");
    for (const auto &layer : net.layers())
        extended.addLayer(layer);
    // pool5 output: 256 x 6 x 6.
    extended.addLayer(fullyConnectedAsConv("fc6", 256, 6, 4096));
    extended.addLayer(fullyConnectedAsConv("fc7", 4096, 1, 4096));
    extended.addLayer(fullyConnectedAsConv("fc8", 4096, 1, 1000));
    return extended;
}

NetworkModel
makeVgg16WithClassifier()
{
    NetworkModel net = makeVgg16();
    NetworkModel extended("VGG+FC");
    for (const auto &layer : net.layers())
        extended.addLayer(layer);
    // pool5 output: 512 x 7 x 7.
    extended.addLayer(fullyConnectedAsConv("fc6", 512, 7, 4096));
    extended.addLayer(fullyConnectedAsConv("fc7", 4096, 1, 4096));
    extended.addLayer(fullyConnectedAsConv("fc8", 4096, 1, 1000));
    return extended;
}

} // namespace rana
