/**
 * @file
 * Shape description of one convolutional (CONV) layer.
 *
 * The paper's analysis (Section II-A, Figure 2) treats a CONV layer
 * as N x H x L input feature maps convolved with M kernels of shape
 * N x K x K at stride S, producing M x R x C output maps. This type
 * captures exactly those parameters plus padding, and derives the
 * output size, element counts and MAC count used throughout the
 * buffer-storage / lifetime / energy analysis.
 *
 * All sizes are counted in 16-bit data words (the paper evaluates
 * 16-bit fixed-point precision).
 */

#ifndef RANA_NN_CONV_LAYER_SPEC_HH_
#define RANA_NN_CONV_LAYER_SPEC_HH_

#include <cstdint>
#include <string>

namespace rana {

/**
 * Immutable shape record for one CONV layer.
 *
 * Grouped convolutions (as in AlexNet) are expressed by expanding
 * each group into its own ConvLayerSpec when a model is built, so a
 * spec always describes a dense convolution.
 */
struct ConvLayerSpec
{
    /** Layer name, e.g. "res4a_branch1". */
    std::string name;

    /** Number of input channels (N). */
    std::uint32_t n = 1;
    /** Input feature map height (H). */
    std::uint32_t h = 1;
    /** Input feature map width (L). */
    std::uint32_t l = 1;
    /** Number of kernels / output channels (M). */
    std::uint32_t m = 1;
    /** Kernel size (K, square kernels). */
    std::uint32_t k = 1;
    /** Sliding stride (S). */
    std::uint32_t stride = 1;
    /** Zero padding on each border. */
    std::uint32_t pad = 0;

    /** Output feature map height R = floor((H + 2p - K) / S) + 1. */
    std::uint32_t r() const;
    /** Output feature map width C = floor((L + 2p - K) / S) + 1. */
    std::uint32_t c() const;

    /** Total input words N * H * L. */
    std::uint64_t inputWords() const;
    /** Total output words M * R * C. */
    std::uint64_t outputWords() const;
    /** Total weight words M * N * K^2. */
    std::uint64_t weightWords() const;

    /** Total multiply-accumulate operations M * N * R * C * K^2. */
    std::uint64_t macs() const;

    /**
     * Height of the input patch needed to produce a Tr-row output
     * tile: Th = (Tr - 1) * S + K.
     */
    std::uint32_t inputPatchH(std::uint32_t tr) const;
    /** Width of the input patch for a Tc-column output tile. */
    std::uint32_t inputPatchW(std::uint32_t tc) const;

    /** Validate parameters; panics on nonsensical shapes. */
    void validate() const;

    /** One-line human-readable summary. */
    std::string describe() const;
};

/**
 * Convenience builder for the common square-input case.
 *
 * @param name   layer name
 * @param n      input channels
 * @param hw     input height and width
 * @param m      output channels
 * @param k      kernel size
 * @param stride sliding stride
 * @param pad    zero padding
 */
ConvLayerSpec makeConv(std::string name, std::uint32_t n,
                       std::uint32_t hw, std::uint32_t m, std::uint32_t k,
                       std::uint32_t stride = 1, std::uint32_t pad = 0);

} // namespace rana

#endif // RANA_NN_CONV_LAYER_SPEC_HH_
