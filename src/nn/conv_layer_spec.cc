/**
 * @file
 * Implementation of ConvLayerSpec derived quantities.
 */

#include "nn/conv_layer_spec.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace rana {

std::uint32_t
ConvLayerSpec::r() const
{
    return (h + 2 * pad - k) / stride + 1;
}

std::uint32_t
ConvLayerSpec::c() const
{
    return (l + 2 * pad - k) / stride + 1;
}

std::uint64_t
ConvLayerSpec::inputWords() const
{
    return static_cast<std::uint64_t>(n) * h * l;
}

std::uint64_t
ConvLayerSpec::outputWords() const
{
    return static_cast<std::uint64_t>(m) * r() * c();
}

std::uint64_t
ConvLayerSpec::weightWords() const
{
    return static_cast<std::uint64_t>(m) * n * k * k;
}

std::uint64_t
ConvLayerSpec::macs() const
{
    return outputWords() * n * k * k;
}

std::uint32_t
ConvLayerSpec::inputPatchH(std::uint32_t tr) const
{
    RANA_ASSERT(tr >= 1, "tile height must be at least 1");
    // For overlapping windows (stride < K) the union of the Tr
    // windows is (Tr-1)*S + K rows; for strided windows (stride > K)
    // the windows are disjoint and only Tr*K rows are touched.
    return std::min((tr - 1) * stride + k, tr * k);
}

std::uint32_t
ConvLayerSpec::inputPatchW(std::uint32_t tc) const
{
    RANA_ASSERT(tc >= 1, "tile width must be at least 1");
    return std::min((tc - 1) * stride + k, tc * k);
}

void
ConvLayerSpec::validate() const
{
    RANA_ASSERT(n >= 1 && h >= 1 && l >= 1 && m >= 1 && k >= 1 &&
                stride >= 1,
                "layer ", name, " has a zero dimension");
    RANA_ASSERT(h + 2 * pad >= k, "layer ", name,
                " kernel taller than padded input");
    RANA_ASSERT(l + 2 * pad >= k, "layer ", name,
                " kernel wider than padded input");
}

std::string
ConvLayerSpec::describe() const
{
    std::ostringstream oss;
    oss << name << ": " << n << "x" << h << "x" << l << " -> " << m
        << "x" << r() << "x" << c() << " (K=" << k << ", S=" << stride
        << ", P=" << pad << ")";
    return oss.str();
}

ConvLayerSpec
makeConv(std::string name, std::uint32_t n, std::uint32_t hw,
         std::uint32_t m, std::uint32_t k, std::uint32_t stride,
         std::uint32_t pad)
{
    ConvLayerSpec spec;
    spec.name = std::move(name);
    spec.n = n;
    spec.h = hw;
    spec.l = hw;
    spec.m = m;
    spec.k = k;
    spec.stride = stride;
    spec.pad = pad;
    spec.validate();
    return spec;
}

} // namespace rana
