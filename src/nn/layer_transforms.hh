/**
 * @file
 * Transformations of non-CONV layers into the CONV form (Section
 * II-A: "other layers can be transformed to execute in a similar
 * way with the CONV layer acceleration").
 *
 * A fully connected layer over a C x H x W activation volume is a
 * convolution whose kernel covers the whole volume: N = C, K = H
 * (square), stride 1, no padding, M output channels, producing a
 * 1 x 1 output map. This lets the scheduler, lifetime analysis and
 * refresh optimization treat classifier layers uniformly.
 */

#ifndef RANA_NN_LAYER_TRANSFORMS_HH_
#define RANA_NN_LAYER_TRANSFORMS_HH_

#include "nn/network_model.hh"

namespace rana {

/**
 * Express a fully connected layer as a CONV layer.
 *
 * @param name     layer name
 * @param channels input channels C of the incoming volume
 * @param spatial  spatial size H = W of the incoming volume (1 for
 *                 an already-flat vector)
 * @param outputs  output features M
 */
ConvLayerSpec fullyConnectedAsConv(std::string name,
                                   std::uint32_t channels,
                                   std::uint32_t spatial,
                                   std::uint32_t outputs);

/**
 * AlexNet including its three classifier layers (fc6/fc7/fc8)
 * expressed as CONV layers. The paper's evaluation covers CONV
 * layers only; this variant exercises the framework on the
 * weight-dominated classifier stage as well.
 */
NetworkModel makeAlexNetWithClassifier();

/** VGG-16 including fc6/fc7/fc8 as CONV layers. */
NetworkModel makeVgg16WithClassifier();

} // namespace rana

#endif // RANA_NN_LAYER_TRANSFORMS_HH_
