/**
 * @file
 * The four benchmark CNNs used in the paper: AlexNet, VGG-16,
 * GoogLeNet (v1) and ResNet-50, all for a 224x224x3 input at 16-bit
 * precision, CONV layers only.
 *
 * ResNet is ResNet-50: the paper's running example Layer-A is
 * "res4a_branch1" (N=512, 28x28 input, M=1024, K=1, S=2), which only
 * exists in the 50-layer bottleneck variant. Layer-B is "vgg_conv9",
 * i.e. VGG-16's ninth CONV layer conv4_2 (N=M=512, 28x28, K=3).
 *
 * AlexNet's two-group convolutions (conv2/conv4/conv5) are expanded
 * into one spec per group so every downstream component sees dense
 * convolutions with the true per-group channel counts.
 */

#ifndef RANA_NN_MODEL_ZOO_HH_
#define RANA_NN_MODEL_ZOO_HH_

#include <string>
#include <vector>

#include "nn/network_model.hh"
#include "util/result.hh"

namespace rana {

/** AlexNet (Krizhevsky et al.), 5 CONV layers, groups expanded. */
NetworkModel makeAlexNet();

/** VGG-16 (Simonyan & Zisserman), 13 CONV layers. */
NetworkModel makeVgg16();

/** GoogLeNet v1 (Szegedy et al.), stem + 9 inception modules. */
NetworkModel makeGoogLeNet();

/** ResNet-50 (He et al.), 53 CONV layers. */
NetworkModel makeResNet50();

/**
 * ResNet-18 (basic blocks, stages 2/2/2/2): 20 CONV layers. Not a
 * paper benchmark; included because its back-to-back 3x3 blocks are
 * the natural workload for the inter-layer reuse extension.
 */
NetworkModel makeResNet18();

/** ResNet-34 (basic blocks, stages 3/4/6/3): 36 CONV layers. */
NetworkModel makeResNet34();

/**
 * VGG-16 for an arbitrary square input resolution (a multiple of 32
 * so the five pooling stages divide evenly). The paper's Section I
 * notes that layer storage "will greatly increase when the networks
 * process higher resolution images"; this builder drives that
 * experiment.
 */
NetworkModel makeVgg16AtResolution(std::uint32_t input_hw);

/** ResNet-50 for an arbitrary square input (a multiple of 32). */
NetworkModel makeResNet50AtResolution(std::uint32_t input_hw);

/** All four benchmarks in the paper's order. */
std::vector<NetworkModel> makeBenchmarkSuite();

/**
 * Look up one benchmark by its paper name ("AlexNet", "VGG",
 * "GoogLeNet", "ResNet"); fails with ErrorCode::InvalidArgument for
 * unknown names.
 */
Result<NetworkModel> makeBenchmarkChecked(const std::string &name);

/** makeBenchmark, aborting on unknown names (prototyping wrapper). */
NetworkModel makeBenchmark(const std::string &name);

} // namespace rana

#endif // RANA_NN_MODEL_ZOO_HH_
