/**
 * @file
 * Layer tables for the four benchmark CNNs.
 *
 * Shapes follow the original publications with the standard ImageNet
 * input (224x224x3). Pooling layers are not listed (the paper's
 * analysis covers CONV layers; pooling only changes the spatial size
 * seen by the next CONV layer, which is reflected in the tables).
 */

#include "nn/model_zoo.hh"

#include <array>

#include "util/logging.hh"

namespace rana {

namespace {

/**
 * Append one grouped convolution as `groups` dense sub-layers, each
 * seeing n/groups input channels and producing m/groups outputs.
 */
void
addGroupedConv(NetworkModel &net, const std::string &name,
               std::uint32_t n, std::uint32_t hw, std::uint32_t m,
               std::uint32_t k, std::uint32_t stride, std::uint32_t pad,
               std::uint32_t groups)
{
    RANA_ASSERT(n % groups == 0 && m % groups == 0,
                "channel counts not divisible by groups in ", name);
    for (std::uint32_t g = 0; g < groups; ++g) {
        std::string sub = groups == 1 ? name
                                      : name + "_g" + std::to_string(g);
        net.addLayer(makeConv(sub, n / groups, hw, m / groups, k,
                              stride, pad));
    }
}

/**
 * Append the six convolutions of one GoogLeNet inception module.
 *
 * @param net    network under construction
 * @param name   module name, e.g. "3a"
 * @param in     input channel count
 * @param hw     input spatial size
 * @param c1     1x1 branch output channels
 * @param c3r    3x3-reduce (1x1) output channels
 * @param c3     3x3 branch output channels
 * @param c5r    5x5-reduce (1x1) output channels
 * @param c5     5x5 branch output channels
 * @param cp     pool-projection (1x1) output channels
 */
void
addInception(NetworkModel &net, const std::string &name, std::uint32_t in,
             std::uint32_t hw, std::uint32_t c1, std::uint32_t c3r,
             std::uint32_t c3, std::uint32_t c5r, std::uint32_t c5,
             std::uint32_t cp)
{
    const std::string p = "inception_" + name + "/";
    net.addLayer(makeConv(p + "1x1", in, hw, c1, 1));
    net.addLayer(makeConv(p + "3x3_reduce", in, hw, c3r, 1));
    net.addLayer(makeConv(p + "3x3", c3r, hw, c3, 3, 1, 1));
    net.addLayer(makeConv(p + "5x5_reduce", in, hw, c5r, 1));
    net.addLayer(makeConv(p + "5x5", c5r, hw, c5, 5, 1, 2));
    net.addLayer(makeConv(p + "pool_proj", in, hw, cp, 1));
}

/**
 * Append one ResNet-50 bottleneck block (1x1 -> 3x3 -> 1x1), plus
 * the 1x1 projection shortcut (branch1) when `project` is set.
 *
 * @param net     network under construction
 * @param name    block name, e.g. "res4a"
 * @param in      input channel count
 * @param hw      input spatial size
 * @param mid     bottleneck channel count
 * @param out     block output channel count
 * @param stride  stride of the first convolution (and of branch1)
 * @param project whether the block has a projection shortcut
 */
void
addBottleneck(NetworkModel &net, const std::string &name, std::uint32_t in,
              std::uint32_t hw, std::uint32_t mid, std::uint32_t out,
              std::uint32_t stride, bool project)
{
    if (project) {
        net.addLayer(makeConv(name + "_branch1", in, hw, out, 1,
                              stride, 0));
    }
    net.addLayer(makeConv(name + "_branch2a", in, hw, mid, 1, stride, 0));
    const std::uint32_t hw_mid = (hw - 1) / stride + 1;
    net.addLayer(makeConv(name + "_branch2b", mid, hw_mid, mid, 3, 1, 1));
    net.addLayer(makeConv(name + "_branch2c", mid, hw_mid, out, 1, 1, 0));
}

} // namespace

NetworkModel
makeAlexNet()
{
    NetworkModel net("AlexNet");
    // conv1: 224x224x3, 96 kernels of 11x11, stride 4, pad 2 -> 55x55.
    addGroupedConv(net, "conv1", 3, 224, 96, 11, 4, 2, 1);
    // pool1: 55 -> 27.
    addGroupedConv(net, "conv2", 96, 27, 256, 5, 1, 2, 2);
    // pool2: 27 -> 13.
    addGroupedConv(net, "conv3", 256, 13, 384, 3, 1, 1, 1);
    addGroupedConv(net, "conv4", 384, 13, 384, 3, 1, 1, 2);
    addGroupedConv(net, "conv5", 384, 13, 256, 3, 1, 1, 2);
    return net;
}

NetworkModel
makeVgg16AtResolution(std::uint32_t input_hw)
{
    RANA_ASSERT(input_hw >= 32 && input_hw % 32 == 0,
                "VGG input must be a positive multiple of 32");
    NetworkModel net(input_hw == 224
                         ? "VGG"
                         : "VGG@" + std::to_string(input_hw));
    struct Stage { std::uint32_t in, out, count; };
    // Five stages of 3x3/s1/p1 convolutions with 2x pooling between.
    const Stage stages[] = {
        {3, 64, 2},    {64, 128, 2},  {128, 256, 3},
        {256, 512, 3}, {512, 512, 3},
    };
    std::uint32_t hw = input_hw;
    int stage_index = 1;
    for (const auto &stage : stages) {
        std::uint32_t in = stage.in;
        for (std::uint32_t i = 0; i < stage.count; ++i) {
            std::string name = "conv" + std::to_string(stage_index) +
                               "_" + std::to_string(i + 1);
            net.addLayer(makeConv(name, in, hw, stage.out, 3, 1, 1));
            in = stage.out;
        }
        hw /= 2;
        ++stage_index;
    }
    return net;
}

NetworkModel
makeVgg16()
{
    return makeVgg16AtResolution(224);
}

NetworkModel
makeGoogLeNet()
{
    NetworkModel net("GoogLeNet");
    // Stem: conv1 7x7/2 -> 112, pool -> 56, conv2 reduce + 3x3, pool
    // -> 28.
    net.addLayer(makeConv("conv1/7x7_s2", 3, 224, 64, 7, 2, 3));
    net.addLayer(makeConv("conv2/3x3_reduce", 64, 56, 64, 1));
    net.addLayer(makeConv("conv2/3x3", 64, 56, 192, 3, 1, 1));
    // Inception 3a/3b at 28x28.
    addInception(net, "3a", 192, 28, 64, 96, 128, 16, 32, 32);
    addInception(net, "3b", 256, 28, 128, 128, 192, 32, 96, 64);
    // pool -> 14. Inception 4a..4e at 14x14.
    addInception(net, "4a", 480, 14, 192, 96, 208, 16, 48, 64);
    addInception(net, "4b", 512, 14, 160, 112, 224, 24, 64, 64);
    addInception(net, "4c", 512, 14, 128, 128, 256, 24, 64, 64);
    addInception(net, "4d", 512, 14, 112, 144, 288, 32, 64, 64);
    addInception(net, "4e", 528, 14, 256, 160, 320, 32, 128, 128);
    // pool -> 7. Inception 5a/5b at 7x7.
    addInception(net, "5a", 832, 7, 256, 160, 320, 32, 128, 128);
    addInception(net, "5b", 832, 7, 384, 192, 384, 48, 128, 128);
    return net;
}

NetworkModel
makeResNet50AtResolution(std::uint32_t input_hw)
{
    RANA_ASSERT(input_hw >= 32 && input_hw % 32 == 0,
                "ResNet input must be a positive multiple of 32");
    NetworkModel net(input_hw == 224
                         ? "ResNet"
                         : "ResNet@" + std::to_string(input_hw));
    net.addLayer(makeConv("conv1", 3, input_hw, 64, 7, 2, 3));
    // pool -> input / 4.
    const std::uint32_t s2 = input_hw / 4;
    addBottleneck(net, "res2a", 64, s2, 64, 256, 1, true);
    addBottleneck(net, "res2b", 256, s2, 64, 256, 1, false);
    addBottleneck(net, "res2c", 256, s2, 64, 256, 1, false);
    addBottleneck(net, "res3a", 256, s2, 128, 512, 2, true);
    for (char suffix : {'b', 'c', 'd'}) {
        addBottleneck(net, std::string("res3") + suffix, 512, s2 / 2,
                      128, 512, 1, false);
    }
    addBottleneck(net, "res4a", 512, s2 / 2, 256, 1024, 2, true);
    for (char suffix : {'b', 'c', 'd', 'e', 'f'}) {
        addBottleneck(net, std::string("res4") + suffix, 1024, s2 / 4,
                      256, 1024, 1, false);
    }
    addBottleneck(net, "res5a", 1024, s2 / 4, 512, 2048, 2, true);
    addBottleneck(net, "res5b", 2048, s2 / 8, 512, 2048, 1, false);
    addBottleneck(net, "res5c", 2048, s2 / 8, 512, 2048, 1, false);
    return net;
}

NetworkModel
makeResNet50()
{
    return makeResNet50AtResolution(224);
}

namespace {

/**
 * Append one ResNet basic block (3x3 -> 3x3) plus the projection
 * shortcut when the block changes resolution or width.
 */
void
addBasicBlock(NetworkModel &net, const std::string &name,
              std::uint32_t in, std::uint32_t hw, std::uint32_t out,
              std::uint32_t stride, bool project)
{
    if (project) {
        net.addLayer(makeConv(name + "_branch1", in, hw, out, 1,
                              stride, 0));
    }
    net.addLayer(makeConv(name + "_branch2a", in, hw, out, 3, stride,
                          1));
    const std::uint32_t hw_out = (hw + 2 - 3) / stride + 1;
    net.addLayer(makeConv(name + "_branch2b", out, hw_out, out, 3, 1,
                          1));
}

/** Common builder for the basic-block ResNets. */
NetworkModel
makeBasicResNet(const std::string &name,
                const std::array<std::uint32_t, 4> &blocks)
{
    NetworkModel net(name);
    net.addLayer(makeConv("conv1", 3, 224, 64, 7, 2, 3));
    // pool -> 56.
    const std::uint32_t widths[4] = {64, 128, 256, 512};
    std::uint32_t hw = 56;
    std::uint32_t in = 64;
    for (std::size_t stage = 0; stage < 4; ++stage) {
        const std::uint32_t out = widths[stage];
        for (std::uint32_t b = 0; b < blocks[stage]; ++b) {
            const bool first = b == 0;
            const std::uint32_t stride =
                first && stage > 0 ? 2 : 1;
            const bool project = first && (stride != 1 || in != out);
            const std::string block_name =
                "res" + std::to_string(stage + 2) +
                std::string(1, static_cast<char>('a' + b));
            addBasicBlock(net, block_name, in, hw, out, stride,
                          project);
            if (stride == 2)
                hw /= 2;
            in = out;
        }
    }
    return net;
}

} // namespace

NetworkModel
makeResNet18()
{
    return makeBasicResNet("ResNet-18", {2, 2, 2, 2});
}

NetworkModel
makeResNet34()
{
    return makeBasicResNet("ResNet-34", {3, 4, 6, 3});
}

std::vector<NetworkModel>
makeBenchmarkSuite()
{
    return {makeAlexNet(), makeVgg16(), makeGoogLeNet(),
            makeResNet50()};
}

Result<NetworkModel>
makeBenchmarkChecked(const std::string &name)
{
    if (name == "AlexNet")
        return makeAlexNet();
    if (name == "VGG")
        return makeVgg16();
    if (name == "GoogLeNet")
        return makeGoogLeNet();
    if (name == "ResNet")
        return makeResNet50();
    return makeError(ErrorCode::InvalidArgument,
                     "unknown benchmark network '", name,
                     "' (expected AlexNet, VGG, GoogLeNet or "
                     "ResNet)");
}

NetworkModel
makeBenchmark(const std::string &name)
{
    Result<NetworkModel> network = makeBenchmarkChecked(name);
    if (!network.ok())
        fatal(network.error().describe());
    return std::move(network).value();
}

} // namespace rana
