/**
 * @file
 * Implementation of NetworkModel.
 */

#include "nn/network_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rana {

NetworkModel::NetworkModel(std::string name) : name_(std::move(name))
{
}

void
NetworkModel::addLayer(ConvLayerSpec layer)
{
    layer.validate();
    layers_.push_back(std::move(layer));
}

const ConvLayerSpec &
NetworkModel::layer(std::size_t index) const
{
    RANA_ASSERT(index < layers_.size(), "layer index out of range in ",
                name_);
    return layers_[index];
}

const ConvLayerSpec &
NetworkModel::findLayer(const std::string &layer_name) const
{
    auto it = std::find_if(layers_.begin(), layers_.end(),
                           [&layer_name](const ConvLayerSpec &spec) {
                               return spec.name == layer_name;
                           });
    if (it == layers_.end())
        fatal("no layer named '", layer_name, "' in network ", name_);
    return *it;
}

std::uint64_t
NetworkModel::maxInputWords() const
{
    std::uint64_t best = 0;
    for (const auto &layer : layers_)
        best = std::max(best, layer.inputWords());
    return best;
}

std::uint64_t
NetworkModel::maxOutputWords() const
{
    std::uint64_t best = 0;
    for (const auto &layer : layers_)
        best = std::max(best, layer.outputWords());
    return best;
}

std::uint64_t
NetworkModel::maxWeightWords() const
{
    std::uint64_t best = 0;
    for (const auto &layer : layers_)
        best = std::max(best, layer.weightWords());
    return best;
}

std::uint64_t
NetworkModel::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.macs();
    return total;
}

std::uint64_t
NetworkModel::totalWeightWords() const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.weightWords();
    return total;
}

} // namespace rana
