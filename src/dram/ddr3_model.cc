/**
 * @file
 * Implementation of the DDR3 substrate model.
 */

#include "dram/ddr3_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

std::uint32_t
Ddr3Params::burstBytes() const
{
    return busBytes * burstBeats;
}

double
Ddr3Params::peakBandwidth() const
{
    // DDR: two beats per clock.
    return 2.0 * clockHz * busBytes;
}

double
Ddr3Report::total() const
{
    return activationEnergy + burstEnergy + backgroundEnergy;
}

Ddr3Model::Ddr3Model(const Ddr3Params &params) : params_(params)
{
    RANA_ASSERT(params.busBytes > 0 && params.burstBeats > 0 &&
                params.rowBytes >= params.burstBytes(),
                "inconsistent DDR3 geometry");
}

Ddr3Report
Ddr3Model::estimate(const Ddr3AccessProfile &profile) const
{
    RANA_ASSERT(profile.rowHitRate >= 0.0 &&
                profile.rowHitRate <= 1.0,
                "row hit rate must be a probability");
    RANA_ASSERT(profile.burstUtilization > 0.0 &&
                profile.burstUtilization <= 1.0,
                "burst utilization must be in (0, 1]");

    const double burst_words =
        static_cast<double>(params_.burstBytes()) / bytesPerWord *
        profile.burstUtilization;
    const double read_bursts = profile.readWords / burst_words;
    const double write_bursts = profile.writeWords / burst_words;
    const double total_bursts = read_bursts + write_bursts;

    Ddr3Report report;
    report.activationEnergy = total_bursts *
                              (1.0 - profile.rowHitRate) *
                              params_.actPreEnergy;
    report.burstEnergy = read_bursts * params_.readBurstEnergy +
                         write_bursts * params_.writeBurstEnergy;
    report.backgroundEnergy =
        profile.durationSeconds * params_.backgroundWatts;

    const double words = profile.readWords + profile.writeWords;
    report.energyPerWord =
        words > 0.0 ? report.total() / words : 0.0;
    report.transferSeconds = total_bursts *
                             static_cast<double>(params_.burstBytes()) /
                             params_.peakBandwidth();
    report.requiredBandwidth =
        profile.durationSeconds > 0.0
            ? words * bytesPerWord / profile.durationSeconds
            : 0.0;
    return report;
}

double
Ddr3Model::marginalEnergyPerWord(double row_hit_rate,
                                 double burst_utilization) const
{
    const double burst_words =
        static_cast<double>(params_.burstBytes()) / bytesPerWord *
        burst_utilization;
    const double per_burst =
        (1.0 - row_hit_rate) * params_.actPreEnergy +
        0.5 * (params_.readBurstEnergy + params_.writeBurstEnergy);
    return per_burst / burst_words;
}

double
Ddr3Model::hitRateForEnergyPerWord(double target_joules,
                                   double burst_utilization) const
{
    // marginal(h) is linear and decreasing in h; solve directly.
    const double at_zero =
        marginalEnergyPerWord(0.0, burst_utilization);
    const double at_one =
        marginalEnergyPerWord(1.0, burst_utilization);
    if (target_joules >= at_zero)
        return 0.0;
    if (target_joules <= at_one)
        return 1.0;
    return (at_zero - target_joules) / (at_zero - at_one);
}

std::string
describeDdr3Operating(const Ddr3Model &model,
                      double flat_energy_per_word)
{
    std::ostringstream oss;
    oss << "flat " << formatEnergy(flat_energy_per_word)
        << "/word corresponds to ";
    const double full = model.hitRateForEnergyPerWord(
        flat_energy_per_word, 1.0);
    const double eighth = model.hitRateForEnergyPerWord(
        flat_energy_per_word, 0.125);
    if (full <= 0.0 && eighth <= 0.0) {
        oss << "worse-than-random locality at any utilization";
    } else {
        oss << "row-hit rate " << formatDouble(full, 2)
            << " at full bursts, or " << formatDouble(eighth, 2)
            << " at 1/8 burst utilization";
    }
    return oss.str();
}

} // namespace rana
