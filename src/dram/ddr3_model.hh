/**
 * @file
 * DDR3 off-chip memory substrate.
 *
 * The paper charges a flat 2112.9 pJ per 16-bit off-chip access
 * (CACTI). This module provides the structural model behind such a
 * number: a DDR3 channel with banks, 2KB row buffers and 64-byte
 * bursts, whose effective energy per word depends on row-buffer
 * locality, burst utilization and background power. It serves two
 * purposes:
 *
 *  1. cross-checking the paper's constant (which row-hit rate and
 *     burst utilization does 2112.9 pJ/word imply?), and
 *  2. estimating how the accelerator's access pattern (long
 *     sequential tile streams vs. scattered halo reads) moves the
 *     off-chip energy.
 */

#ifndef RANA_DRAM_DDR3_MODEL_HH_
#define RANA_DRAM_DDR3_MODEL_HH_

#include <cstdint>
#include <string>

namespace rana {

/** Electrical/timing parameters of one DDR3 channel. */
struct Ddr3Params
{
    /** I/O clock (DDR3-1600: 800MHz, 1600MT/s). */
    double clockHz = 800e6;
    /** Data bus width in bytes (x64 DIMM). */
    std::uint32_t busBytes = 8;
    /** Burst length in beats (BL8 -> 64-byte bursts). */
    std::uint32_t burstBeats = 8;
    /** Row (page) size in bytes. */
    std::uint32_t rowBytes = 2048;
    /** Energy of one activate+precharge pair, in joules. */
    double actPreEnergy = 15.0e-9;
    /** Energy of one read burst (excl. activation), in joules. */
    double readBurstEnergy = 6.0e-9;
    /** Energy of one write burst, in joules. */
    double writeBurstEnergy = 6.2e-9;
    /** Background + refresh power of the device, in watts. */
    double backgroundWatts = 0.15;
    /** Row-activate-to-data latency tRCD + CAS, in seconds. */
    double rowMissLatency = 26e-9;

    /** Bytes per burst. */
    std::uint32_t burstBytes() const;
    /** Peak bandwidth in bytes/second. */
    double peakBandwidth() const;
};

/** A workload's off-chip access profile. */
struct Ddr3AccessProfile
{
    /** 16-bit words read. */
    double readWords = 0.0;
    /** 16-bit words written. */
    double writeWords = 0.0;
    /**
     * Fraction of bursts hitting an open row (1 = perfect
     * streaming; tile streams are high, scattered halo reads low).
     */
    double rowHitRate = 0.9;
    /**
     * Fraction of each burst's bytes actually used (sub-burst tile
     * edges waste the remainder).
     */
    double burstUtilization = 1.0;
    /** Wall-clock duration the channel is powered, in seconds. */
    double durationSeconds = 0.0;
};

/** Energy and bandwidth estimate for a profile. */
struct Ddr3Report
{
    /** Activate/precharge energy, joules. */
    double activationEnergy = 0.0;
    /** Read+write burst energy, joules. */
    double burstEnergy = 0.0;
    /** Background/refresh energy over the duration, joules. */
    double backgroundEnergy = 0.0;
    /** Total energy. */
    double total() const;
    /** Effective energy per 16-bit word transferred. */
    double energyPerWord = 0.0;
    /** Achieved bandwidth requirement, bytes/second. */
    double requiredBandwidth = 0.0;
    /** Transfer time at peak bandwidth (excl. stalls), seconds. */
    double transferSeconds = 0.0;
};

/** DDR3 channel model. */
class Ddr3Model
{
  public:
    explicit Ddr3Model(const Ddr3Params &params = {});

    const Ddr3Params &params() const { return params_; }

    /** Estimate energy/bandwidth for an access profile. */
    Ddr3Report estimate(const Ddr3AccessProfile &profile) const;

    /**
     * Effective energy per 16-bit word at the given locality,
     * ignoring background energy (the marginal cost the flat
     * per-access constant abstracts).
     */
    double marginalEnergyPerWord(double row_hit_rate,
                                 double burst_utilization) const;

    /**
     * Solve for the row-hit rate at which the marginal energy per
     * word equals `target_joules` (at the given burst utilization);
     * returns a value clamped to [0, 1]. Used to interpret the
     * paper's flat 2112.9 pJ constant.
     */
    double hitRateForEnergyPerWord(double target_joules,
                                   double burst_utilization) const;

  private:
    Ddr3Params params_;
};

/** Per-word marginal energy comparison string for reports. */
std::string describeDdr3Operating(const Ddr3Model &model,
                                  double flat_energy_per_word);

} // namespace rana

#endif // RANA_DRAM_DDR3_MODEL_HH_
