/**
 * @file
 * Per-operation energy costs (the paper's Table III, 65nm) and the
 * system energy model of Equation 14.
 *
 * Total system energy is
 *
 *   Energy = alpha * Emac + beta_b * Ebuffer + gamma * Erefresh
 *          + beta_d * Eddr                                   (Eq. 14)
 *
 * where alpha is the MAC operation count, beta_b the number of
 * on-chip buffer accesses (16-bit words), gamma the number of
 * refresh operations (16-bit words refreshed) and beta_d the number
 * of off-chip DDR3 accesses (16-bit words).
 */

#ifndef RANA_ENERGY_ENERGY_TABLE_HH_
#define RANA_ENERGY_ENERGY_TABLE_HH_

#include <cstdint>
#include <string>

#include "energy/technology.hh"

namespace rana {

/** Per-operation energies in joules (Table III). */
struct EnergyTable
{
    /** 16-bit fixed-point MAC (TSMC 65nm GP). */
    double macOp;
    /** 16-bit access to a 32KB on-chip buffer bank. */
    double bufferAccess;
    /** Refresh of one 16-bit word in a 32KB eDRAM bank. */
    double refreshOp;
    /** 16-bit access to off-chip 1GB DDR3. */
    double ddrAccess;

    /** Relative cost of an operation vs. one MAC. */
    double relativeCost(double op_energy) const;
};

/**
 * Table III costs for a given buffer technology: eDRAM buffers use
 * the 10.6pJ access / 48.1pJ refresh row, SRAM buffers the 18.2pJ
 * access row with no refresh.
 */
EnergyTable energyTable65nm(MemoryTechnology tech);

/** Operation counts feeding Equation 14. */
struct OperationCounts
{
    /** alpha: MAC operations. */
    std::uint64_t macOps = 0;
    /** beta_b: on-chip buffer accesses, in 16-bit words. */
    std::uint64_t bufferAccesses = 0;
    /** gamma: refresh operations, in 16-bit words refreshed. */
    std::uint64_t refreshOps = 0;
    /** beta_d: off-chip memory accesses, in 16-bit words. */
    std::uint64_t ddrAccesses = 0;

    OperationCounts &operator+=(const OperationCounts &other);
};

OperationCounts operator+(OperationCounts lhs,
                          const OperationCounts &rhs);

/** Energy consumption split by source, in joules. */
struct EnergyBreakdown
{
    double computing = 0.0;
    double bufferAccess = 0.0;
    double refresh = 0.0;
    double offChipAccess = 0.0;

    /** Sum of all components (total system energy). */
    double total() const;

    /** Accelerator energy: total minus off-chip access (Fig. 16). */
    double acceleratorEnergy() const;

    EnergyBreakdown &operator+=(const EnergyBreakdown &other);

    /** One-line summary string. */
    std::string describe() const;
};

EnergyBreakdown operator+(EnergyBreakdown lhs,
                          const EnergyBreakdown &rhs);

/** Apply Equation 14 to a set of operation counts. */
EnergyBreakdown computeEnergy(const OperationCounts &counts,
                              const EnergyTable &table);

} // namespace rana

#endif // RANA_ENERGY_ENERGY_TABLE_HH_
