/**
 * @file
 * Table II constants and the equal-area capacity derivation.
 */

#include "energy/technology.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

const char *
memoryTechnologyName(MemoryTechnology tech)
{
    switch (tech) {
      case MemoryTechnology::Sram:
        return "SRAM";
      case MemoryTechnology::Edram:
        return "eDRAM";
    }
    panic("unreachable memory technology");
}

MemoryMacroParams
sramMacro65nm()
{
    MemoryMacroParams params;
    params.capacityBytes = 32 * kib;
    params.areaMm2 = 0.181;
    params.accessLatencySeconds = 1.730 * nanoSecond;
    params.accessEnergyPerBit = 1.139 * picoJoule;
    params.refreshEnergyPerBank = 0.0;
    params.needsRefresh = false;
    return params;
}

MemoryMacroParams
edramMacro65nm()
{
    MemoryMacroParams params;
    params.capacityBytes = 32 * kib;
    params.areaMm2 = 0.047;
    params.accessLatencySeconds = 1.541 * nanoSecond;
    params.accessEnergyPerBit = 0.662 * picoJoule;
    params.refreshEnergyPerBank = 0.788 * microJoule;
    params.needsRefresh = true;
    return params;
}

MemoryMacroParams
macroParams(MemoryTechnology tech)
{
    return tech == MemoryTechnology::Sram ? sramMacro65nm()
                                          : edramMacro65nm();
}

std::uint32_t
equalAreaEdramBanks(std::uint32_t sram_banks)
{
    const double sram_area = sram_banks * sramMacro65nm().areaMm2;
    const double edram_area = edramMacro65nm().areaMm2;
    return static_cast<std::uint32_t>(std::floor(sram_area / edram_area));
}

} // namespace rana
