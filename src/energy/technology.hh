/**
 * @file
 * 65nm memory technology parameters (the paper's Table II).
 *
 * The paper compares 32KB SRAM and eDRAM macros in the TSMC 65nm GP
 * node, simulated with Destiny. These constants drive the equal-area
 * capacity derivation (384KB SRAM -> ~1.45MB eDRAM) and the refresh
 * energy accounting.
 */

#ifndef RANA_ENERGY_TECHNOLOGY_HH_
#define RANA_ENERGY_TECHNOLOGY_HH_

#include <cstdint>

namespace rana {

/** Kind of on-chip buffer memory. */
enum class MemoryTechnology {
    Sram,
    Edram,
};

/** Name string for a MemoryTechnology. */
const char *memoryTechnologyName(MemoryTechnology tech);

/**
 * Per-macro characteristics of one 32KB on-chip memory bank
 * (Table II, 65nm).
 */
struct MemoryMacroParams
{
    /** Macro capacity in bytes (32KB in the paper). */
    std::uint64_t capacityBytes;
    /** Silicon area in mm^2. */
    double areaMm2;
    /** Random access latency in seconds. */
    double accessLatencySeconds;
    /** Access energy per bit in joules. */
    double accessEnergyPerBit;
    /** Energy to refresh the whole macro once, in joules (eDRAM). */
    double refreshEnergyPerBank;
    /** Whether the macro requires periodic refresh. */
    bool needsRefresh;
};

/** Table II row for 32KB SRAM. */
MemoryMacroParams sramMacro65nm();

/** Table II row for 32KB eDRAM. */
MemoryMacroParams edramMacro65nm();

/** Macro parameters for the given technology. */
MemoryMacroParams macroParams(MemoryTechnology tech);

/**
 * Number of whole eDRAM macros that fit in the silicon area of
 * `sram_banks` SRAM macros (the paper's equal-area replacement:
 * 12 x 32KB SRAM -> 46 x 32KB eDRAM ~= 1.45MB).
 */
std::uint32_t equalAreaEdramBanks(std::uint32_t sram_banks);

} // namespace rana

#endif // RANA_ENERGY_TECHNOLOGY_HH_
