/**
 * @file
 * Table III constants and Equation 14.
 */

#include "energy/energy_table.hh"

#include <sstream>

#include "util/units.hh"

namespace rana {

double
EnergyTable::relativeCost(double op_energy) const
{
    return op_energy / macOp;
}

EnergyTable
energyTable65nm(MemoryTechnology tech)
{
    EnergyTable table;
    table.macOp = 1.3 * picoJoule;
    table.bufferAccess = tech == MemoryTechnology::Sram
                             ? 18.2 * picoJoule
                             : 10.6 * picoJoule;
    table.refreshOp = tech == MemoryTechnology::Sram ? 0.0
                                                     : 48.1 * picoJoule;
    table.ddrAccess = 2112.9 * picoJoule;
    return table;
}

OperationCounts &
OperationCounts::operator+=(const OperationCounts &other)
{
    macOps += other.macOps;
    bufferAccesses += other.bufferAccesses;
    refreshOps += other.refreshOps;
    ddrAccesses += other.ddrAccesses;
    return *this;
}

OperationCounts
operator+(OperationCounts lhs, const OperationCounts &rhs)
{
    lhs += rhs;
    return lhs;
}

double
EnergyBreakdown::total() const
{
    return computing + bufferAccess + refresh + offChipAccess;
}

double
EnergyBreakdown::acceleratorEnergy() const
{
    return computing + bufferAccess + refresh;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &other)
{
    computing += other.computing;
    bufferAccess += other.bufferAccess;
    refresh += other.refresh;
    offChipAccess += other.offChipAccess;
    return *this;
}

EnergyBreakdown
operator+(EnergyBreakdown lhs, const EnergyBreakdown &rhs)
{
    lhs += rhs;
    return lhs;
}

std::string
EnergyBreakdown::describe() const
{
    std::ostringstream oss;
    oss << "total " << formatEnergy(total()) << " (compute "
        << formatEnergy(computing) << ", buffer "
        << formatEnergy(bufferAccess) << ", refresh "
        << formatEnergy(refresh) << ", off-chip "
        << formatEnergy(offChipAccess) << ")";
    return oss.str();
}

EnergyBreakdown
computeEnergy(const OperationCounts &counts, const EnergyTable &table)
{
    EnergyBreakdown result;
    result.computing = static_cast<double>(counts.macOps) * table.macOp;
    result.bufferAccess =
        static_cast<double>(counts.bufferAccesses) * table.bufferAccess;
    result.refresh =
        static_cast<double>(counts.refreshOps) * table.refreshOp;
    result.offChipAccess =
        static_cast<double>(counts.ddrAccesses) * table.ddrAccess;
    return result;
}

} // namespace rana
