/**
 * @file
 * Static partitioning of the eDRAM bank pool across tenants.
 *
 * The serving engine runs N concurrent tenants against one shared
 * accelerator; each tenant's working set is pinned to its own
 * contiguous slice of the buffer's banks so a retention overage in
 * one tenant's slice — and the guard reaction it provokes — never
 * spills into a neighbour's refresh behaviour. The partition is the
 * serving-time analogue of the per-layer bank allocation the
 * scheduler performs for a single network: contiguous ranges,
 * remainder banks spread over the first shards, every bank owned by
 * exactly one shard.
 */

#ifndef RANA_EDRAM_BANK_SHARDING_HH_
#define RANA_EDRAM_BANK_SHARDING_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hh"

namespace rana {

/** One tenant's contiguous slice of the bank pool. */
struct BankShard
{
    /** First physical bank index of the slice. */
    std::uint32_t firstBank = 0;
    /** Number of banks in the slice (>= 1). */
    std::uint32_t banks = 0;

    /** One past the last bank of the slice. */
    std::uint32_t endBank() const { return firstBank + banks; }

    /** Human-readable range, e.g. "banks 12-23". */
    std::string describe() const;
};

/**
 * Split `total_banks` banks into `shards` contiguous slices.
 * Slice sizes differ by at most one bank (the remainder goes to the
 * lowest-indexed slices) and the slices cover the pool exactly.
 * Fails with ErrorCode::InvalidArgument when `shards` is zero or
 * exceeds `total_banks` (a shard must own at least one bank).
 */
Result<std::vector<BankShard>> partitionBanks(std::uint32_t total_banks,
                                              std::uint32_t shards);

} // namespace rana

#endif // RANA_EDRAM_BANK_SHARDING_HH_
