/**
 * @file
 * Implementation of the retention-time distribution.
 */

#include "edram/retention_distribution.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

namespace {

/** Linear interpolation of y over x in log-log space. */
double
loglogInterp(double x, double x0, double y0, double x1, double y1)
{
    const double lx = std::log(x);
    const double lx0 = std::log(x0);
    const double lx1 = std::log(x1);
    const double ly0 = std::log(y0);
    const double ly1 = std::log(y1);
    const double t = (lx - lx0) / (lx1 - lx0);
    return std::exp(ly0 + t * (ly1 - ly0));
}

} // namespace

RetentionDistribution
RetentionDistribution::typical65nm()
{
    // The first two anchors are quoted in the paper (45us @ 3e-6,
    // 734us @ 1e-5); the remainder extend the curve toward the bulk
    // of the cells with the steepening log-log shape of the measured
    // distribution in Kong et al.
    return RetentionDistribution({
        {45.0 * microSecond, 3e-6},
        {734.0 * microSecond, 1e-5},
        {2.0 * milliSecond, 1e-4},
        {4.5 * milliSecond, 1e-3},
        {9.0 * milliSecond, 1e-2},
        {18.0 * milliSecond, 1e-1},
        {45.0 * milliSecond, 0.9},
    });
}

RetentionDistribution::RetentionDistribution(
    std::vector<RetentionPoint> points)
    : points_(std::move(points))
{
    RANA_ASSERT(points_.size() >= 2,
                "retention distribution needs at least two anchors");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        RANA_ASSERT(points_[i].retentionSeconds > 0.0 &&
                    points_[i].failureRate > 0.0,
                    "retention anchors must be positive");
        if (i > 0) {
            RANA_ASSERT(points_[i].retentionSeconds >
                        points_[i - 1].retentionSeconds,
                        "retention times must be strictly increasing");
            RANA_ASSERT(points_[i].failureRate >
                        points_[i - 1].failureRate,
                        "failure rates must be strictly increasing");
        }
    }
}

double
RetentionDistribution::failureRateAt(double interval_seconds) const
{
    if (interval_seconds <= points_.front().retentionSeconds)
        return points_.front().failureRate;
    if (interval_seconds >= points_.back().retentionSeconds)
        return points_.back().failureRate;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (interval_seconds <= points_[i].retentionSeconds) {
            return loglogInterp(interval_seconds,
                                points_[i - 1].retentionSeconds,
                                points_[i - 1].failureRate,
                                points_[i].retentionSeconds,
                                points_[i].failureRate);
        }
    }
    panic("unreachable in failureRateAt");
}

double
RetentionDistribution::retentionTimeFor(
    double tolerable_failure_rate) const
{
    if (tolerable_failure_rate <= points_.front().failureRate)
        return points_.front().retentionSeconds;
    if (tolerable_failure_rate >= points_.back().failureRate)
        return points_.back().retentionSeconds;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (tolerable_failure_rate <= points_[i].failureRate) {
            return loglogInterp(tolerable_failure_rate,
                                points_[i - 1].failureRate,
                                points_[i - 1].retentionSeconds,
                                points_[i].failureRate,
                                points_[i].retentionSeconds);
        }
    }
    panic("unreachable in retentionTimeFor");
}

double
RetentionDistribution::worstCaseRetention() const
{
    return points_.front().retentionSeconds;
}

double
RetentionDistribution::sampleCellRetention(Rng &rng) const
{
    const double u = rng.uniform();
    if (u >= points_.back().failureRate) {
        // Beyond the last anchor: conservative flat tail.
        return points_.back().retentionSeconds;
    }
    return retentionTimeFor(std::max(u, points_.front().failureRate));
}

} // namespace rana
