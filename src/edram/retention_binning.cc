/**
 * @file
 * Implementation of per-bank retention binning.
 */

#include "edram/retention_binning.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rana {

namespace {

/** Bits per 16-bit word. */
constexpr double bitsPerWord = 16.0;

/** Exponential(1) deviate. */
double
sampleExponential(Rng &rng)
{
    return -std::log(1.0 - rng.uniform());
}

} // namespace

RetentionBinning::RetentionBinning(
    const BufferGeometry &geometry,
    const RetentionDistribution &distribution,
    const RetentionBinningParams &params)
    : geometry_(geometry)
{
    RANA_ASSERT(params.numBins >= 1, "need at least one bin");
    RANA_ASSERT(params.tolerableFailureRate > 0.0,
                "binning needs a positive failure budget");

    uniformInterval_ =
        distribution.retentionTimeFor(params.tolerableFailureRate);

    const double cells_per_bank =
        static_cast<double>(geometry.bankWords()) * bitsPerWord;
    // Tolerated failing cells per bank at the budgeted rate.
    const auto budget = static_cast<std::uint32_t>(
        std::floor(params.tolerableFailureRate * cells_per_bank));

    Rng rng(params.seed);
    capability_.resize(geometry.numBanks);
    for (double &cap : capability_) {
        // The (budget+1)-th weakest cell of the bank: its cumulative
        // failure-rate position is Gamma(budget+1) / cells (the
        // standard order-statistic construction for the extreme
        // tail), mapped back through the inverse distribution.
        double gamma = 0.0;
        for (std::uint32_t i = 0; i <= budget; ++i)
            gamma += sampleExponential(rng);
        const double rate_position = gamma / cells_per_bank;
        cap = distribution.retentionTimeFor(std::max(
            rate_position, distribution.points().front().failureRate));
        // A bank is never operated above the chip-wide budget rate's
        // 99.9th percentile; conservative clamp to 4x uniform keeps
        // the tail sampling inside the characterized region.
        cap = std::min(cap, 4.0 * uniformInterval_);
    }

    // Geometric bin edges between the weakest and strongest bank;
    // each bin refreshes at its weakest member's capability.
    const double lo =
        *std::min_element(capability_.begin(), capability_.end());
    const double hi =
        *std::max_element(capability_.begin(), capability_.end());
    binInterval_.assign(params.numBins, hi);
    bin_.resize(geometry.numBanks);
    const double log_lo = std::log(lo);
    const double log_span = std::max(1e-12, std::log(hi) - log_lo);
    for (std::uint32_t b = 0; b < geometry.numBanks; ++b) {
        const double position =
            (std::log(capability_[b]) - log_lo) / log_span;
        auto bin = static_cast<std::uint32_t>(
            position * params.numBins);
        bin = std::min(bin, params.numBins - 1);
        bin_[b] = bin;
        binInterval_[bin] = std::min(binInterval_[bin],
                                     capability_[b]);
    }
}

double
RetentionBinning::bankCapability(std::uint32_t bank) const
{
    RANA_ASSERT(bank < capability_.size(), "bank index out of range");
    return capability_[bank];
}

std::uint32_t
RetentionBinning::binOf(std::uint32_t bank) const
{
    RANA_ASSERT(bank < bin_.size(), "bank index out of range");
    return bin_[bank];
}

double
RetentionBinning::binInterval(std::uint32_t bin) const
{
    RANA_ASSERT(bin < binInterval_.size(), "bin index out of range");
    return binInterval_[bin];
}

std::uint32_t
RetentionBinning::numBins() const
{
    return static_cast<std::uint32_t>(binInterval_.size());
}

std::uint64_t
RetentionBinning::refreshOpsForLayer(
    const LayerRefreshDemand &demand,
    const std::array<bool, numDataTypes> &flags) const
{
    const std::uint64_t bank_words = geometry_.bankWords();
    std::uint64_t ops = 0;
    std::uint32_t bank = 0;
    for (std::size_t type = 0; type < numDataTypes; ++type) {
        for (std::uint32_t i = 0; i < demand.allocation.banks[type];
             ++i, ++bank) {
            if (!flags[type])
                continue;
            // Refresh at the bank's own bin interval; a bank whose
            // capability exceeds the data lifetime needs no refresh
            // at all (lifetime < its retention).
            const double interval = binInterval_[bin_[bank]];
            if (demand.lifetimeSeconds[type] < interval)
                continue;
            const auto pulses = static_cast<std::uint64_t>(
                std::floor(demand.layerSeconds / interval *
                               (1.0 + 1e-12) +
                           1e-12));
            ops += pulses * bank_words;
        }
    }
    return ops;
}

double
RetentionBinning::conservativeInterval() const
{
    return *std::min_element(capability_.begin(), capability_.end());
}

std::uint64_t
RetentionBinning::uniformRefreshOpsForLayer(
    const LayerRefreshDemand &demand,
    const std::array<bool, numDataTypes> &flags,
    double interval_seconds) const
{
    // A single-interval controller with per-type flags.
    LayerRefreshDemand gated = demand;
    for (std::size_t type = 0; type < numDataTypes; ++type) {
        if (!flags[type])
            gated.lifetimeSeconds[type] = 0.0;
    }
    return ::rana::refreshOpsForLayer(RefreshPolicy::PerBank,
                                      geometry_, gated,
                                      interval_seconds);
}

} // namespace rana
