/**
 * @file
 * Implementation of the programmable clock divider.
 */

#include "edram/clock_divider.hh"

#include <cmath>

#include "util/logging.hh"

namespace rana {

ProgrammableClockDivider::ProgrammableClockDivider(double reference_hz)
    : referenceHz_(reference_hz)
{
    RANA_ASSERT(reference_hz > 0.0,
                "reference clock frequency must be positive");
}

void
ProgrammableClockDivider::setInterval(double interval_seconds)
{
    RANA_ASSERT(interval_seconds > 0.0,
                "refresh interval must be positive");
    const double cycles = interval_seconds * referenceHz_;
    RANA_ASSERT(cycles >= 1.0,
                "refresh interval shorter than one reference cycle");
    divideRatio_ = static_cast<std::uint64_t>(std::floor(cycles));
}

double
ProgrammableClockDivider::pulsePeriod() const
{
    return static_cast<double>(divideRatio_) / referenceHz_;
}

std::uint64_t
ProgrammableClockDivider::pulsesDuring(double duration_seconds) const
{
    if (duration_seconds <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(
        std::floor(duration_seconds / pulsePeriod()));
}

} // namespace rana
