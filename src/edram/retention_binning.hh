/**
 * @file
 * Extension: per-bank retention binning.
 *
 * The paper's controller programs ONE refresh interval (the
 * network's tolerable retention time) for all banks; the per-bank
 * flags only gate refresh on or off. Real eDRAM macros vary from
 * bank to bank, and post-fabrication retention tests can measure
 * each bank's actual capability: the interval at which the bank's
 * own failing-cell count stays within the tolerated budget.
 *
 * This extension models that finer control: each bank's capability
 * is sampled from the retention-time distribution via the order
 * statistic of its (k+1)-th weakest cell (k = tolerated failures
 * per bank), capabilities are quantized into a small number of bins
 * (one programmable divider per bin, Figure 14 generalized), and
 * every bank refreshes at its own bin's interval.
 *
 * The guarantee this buys is *per-bank*: no bank ever exceeds the
 * tolerated failing-cell budget in its own data. The paper's single
 * 734us interval only bounds the chip-wide average failure rate —
 * roughly half the banks individually exceed the budget. A designer
 * who needs the per-bank guarantee without binning must program the
 * weakest measured bank's capability chip-wide (the conservative
 * interval); binning recovers most of that cost: it sits between
 * the aggressive chip-average interval and the conservative
 * weakest-bank interval, approaching the former as bins increase.
 */

#ifndef RANA_EDRAM_RETENTION_BINNING_HH_
#define RANA_EDRAM_RETENTION_BINNING_HH_

#include <cstdint>
#include <vector>

#include "edram/buffer_system.hh"
#include "edram/refresh_controller.hh"
#include "edram/retention_distribution.hh"
#include "util/random.hh"

namespace rana {

/** Parameters of the binned controller. */
struct RetentionBinningParams
{
    /** Tolerated retention failure rate (from Stage 1 training). */
    double tolerableFailureRate = 1e-5;
    /** Number of refresh-interval bins (programmable dividers). */
    std::uint32_t numBins = 4;
    /** Sampling seed (stands in for the per-chip test results). */
    std::uint64_t seed = 1;
};

/** Sampled per-bank retention capabilities and their bins. */
class RetentionBinning
{
  public:
    RetentionBinning(const BufferGeometry &geometry,
                     const RetentionDistribution &distribution,
                     const RetentionBinningParams &params);

    /** Sampled capability of one bank, in seconds. */
    double bankCapability(std::uint32_t bank) const;

    /** Bin index of one bank. */
    std::uint32_t binOf(std::uint32_t bank) const;

    /** Refresh interval of one bin (its weakest member, clamped to
     *  at least the worst-case cell retention). */
    double binInterval(std::uint32_t bin) const;

    /** Number of bins. */
    std::uint32_t numBins() const;

    /** The uniform (chip-wide) tolerable interval for comparison. */
    double uniformInterval() const { return uniformInterval_; }

    /**
     * The conservative single interval delivering the same per-bank
     * guarantee without binning: the weakest bank's capability.
     */
    double conservativeInterval() const;

    /**
     * Refresh operations for one layer when the flagged data types'
     * banks refresh at their own bin intervals. Banks are assigned
     * to data types in allocation order (inputs, outputs, weights,
     * unused).
     */
    std::uint64_t
    refreshOpsForLayer(const LayerRefreshDemand &demand,
                       const std::array<bool, numDataTypes> &flags)
        const;

    /**
     * Refresh operations for the same layer under a single-interval
     * per-bank-flag controller (the paper's RANA* when
     * `interval_seconds` is the chip-average tolerable time; the
     * conservative per-bank-guarantee baseline when it is
     * conservativeInterval()).
     */
    std::uint64_t
    uniformRefreshOpsForLayer(const LayerRefreshDemand &demand,
                              const std::array<bool, numDataTypes>
                                  &flags,
                              double interval_seconds) const;

  private:
    BufferGeometry geometry_;
    double uniformInterval_;
    std::vector<double> capability_;
    std::vector<std::uint32_t> bin_;
    std::vector<double> binInterval_;
};

} // namespace rana

#endif // RANA_EDRAM_RETENTION_BINNING_HH_
