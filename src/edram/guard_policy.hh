/**
 * @file
 * Pluggable decision policies for the runtime reliability guard.
 *
 * The original guard re-enabled a tripped bank group's refresh
 * permanently for the rest of the layer. That is the safe but
 * pessimistic answer: after a transient stall the re-armed banks
 * keep refreshing at the certified interval although their data
 * would once again live comfortably below it — exactly the
 * static-schedule pessimism Refresh Triggered Computation (Jafri et
 * al.) argues against. EDEN's per-bin interval assignment points at
 * the other alternative: fall back to a *bank-specific* divider bin
 * instead of the global certified interval.
 *
 * This header turns the guard's hard-wired reaction into a policy
 * object. The refresh controller reports two kinds of events —
 * overage trips and clean refresh intervals of guard-armed groups —
 * and the policy answers with a GuardAction: keep the refresh flag
 * armed, re-disarm it, or escalate the group onto its own
 * (typically shorter) divider-bin refresh period. Three
 * implementations ship:
 *
 *  - PermanentReenable: the historical behaviour, bit-identical
 *    statistics to the pre-policy guard;
 *  - HysteresisRedisarm: re-disarm after K consecutive clean
 *    refresh intervals (a transient stall stops costing refresh
 *    energy once it has passed);
 *  - BinnedEscalation: step the tripped group through a ladder of
 *    retention-binning divider intervals, longest first, one step
 *    per re-trip, until the shortest bin is exhausted.
 *
 * Policies are consulted from the single-threaded simulation loop;
 * they keep per-data-type state and need no synchronization.
 */

#ifndef RANA_EDRAM_GUARD_POLICY_HH_
#define RANA_EDRAM_GUARD_POLICY_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "edram/buffer_system.hh"
#include "edram/retention_distribution.hh"
#include "util/result.hh"

namespace rana {

class RetentionBinning;

/** The selectable guard decision policies. */
enum class GuardPolicyKind {
    /** Re-enable refresh permanently for the rest of the layer. */
    Permanent,
    /** Re-disarm refresh after K clean refresh intervals. */
    Hysteresis,
    /** Escalate through retention-binning divider bins. */
    Binned,
};

/** Name string for a GuardPolicyKind ("permanent", ...). */
const char *guardPolicyKindName(GuardPolicyKind kind);

/** Parse a policy name; fails with InvalidArgument on junk. */
Result<GuardPolicyKind> parseGuardPolicyKind(const std::string &name);

/** What the controller should do with the event's bank group. */
enum class GuardActionKind {
    /** Keep (or arm) the group's refresh flag at the global
     *  interval. */
    KeepArmed,
    /** Clear the guard-armed refresh flag; the group coasts again. */
    Redisarm,
    /** Arm the group on its own divider-bin refresh period. */
    Escalate,
};

/** A policy decision, with the bin period for Escalate. */
struct GuardAction
{
    GuardActionKind kind = GuardActionKind::KeepArmed;
    /** Escalate only: the group's new refresh period in seconds. */
    double intervalSeconds = 0.0;
};

/**
 * Decision interface consulted by the ReliabilityGuard. The guard
 * does all counting; the policy only decides.
 */
class GuardPolicy
{
  public:
    virtual ~GuardPolicy() = default;

    /** Stable policy name for reports and tables. */
    virtual const char *name() const = 0;

    /** The kind this policy implements. */
    virtual GuardPolicyKind kind() const = 0;

    /**
     * A layer's configuration was (re)loaded: per-layer adaptive
     * state (clean streaks, escalation levels) starts over, matching
     * the pre-policy guard's layer-scoped re-enable.
     */
    virtual void beginLayer() {}

    /**
     * An overage of `type`'s bank group was covered by the watchdog
     * fallback. Must answer KeepArmed or Escalate (a trip can never
     * leave the group disarmed).
     */
    virtual GuardAction onTrip(DataType type) = 0;

    /**
     * A guard-armed group of `type` completed one refresh interval
     * without an overage.
     */
    virtual GuardAction onCleanInterval(DataType type) = 0;

    /** Forget all accumulated state (e.g. between scenarios). */
    virtual void reset() {}
};

/** The historical policy: once armed, stay armed. */
class PermanentReenable : public GuardPolicy
{
  public:
    const char *name() const override { return "permanent"; }
    GuardPolicyKind kind() const override
    {
        return GuardPolicyKind::Permanent;
    }
    GuardAction onTrip(DataType type) override;
    GuardAction onCleanInterval(DataType type) override;
};

/**
 * Re-disarm after K consecutive clean refresh intervals; a later
 * overage trips (and re-arms) the group again.
 */
class HysteresisRedisarm : public GuardPolicy
{
  public:
    /** @param clean_intervals K >= 1 clean intervals to re-disarm. */
    explicit HysteresisRedisarm(std::uint32_t clean_intervals);

    const char *name() const override { return "hysteresis"; }
    GuardPolicyKind kind() const override
    {
        return GuardPolicyKind::Hysteresis;
    }
    void beginLayer() override;
    GuardAction onTrip(DataType type) override;
    GuardAction onCleanInterval(DataType type) override;
    void reset() override;

    /** The configured K. */
    std::uint32_t cleanIntervalsToRedisarm() const { return k_; }

  private:
    std::uint32_t k_;
    std::array<std::uint32_t, numDataTypes> streak_ = {0, 0, 0};
};

/**
 * Escalate a tripped group through a ladder of divider-bin refresh
 * periods: the first trip arms the longest (cheapest) bin, every
 * re-trip steps one bin shorter, and once the shortest bin is
 * exhausted further trips keep it armed there.
 */
class BinnedEscalation : public GuardPolicy
{
  public:
    /**
     * @param bin_intervals divider-bin periods in seconds, sorted
     *        ascending (shortest first); must be non-empty.
     */
    explicit BinnedEscalation(std::vector<double> bin_intervals);

    const char *name() const override { return "binned"; }
    GuardPolicyKind kind() const override
    {
        return GuardPolicyKind::Binned;
    }
    void beginLayer() override;
    GuardAction onTrip(DataType type) override;
    GuardAction onCleanInterval(DataType type) override;
    void reset() override;

    /** The ladder, shortest bin first. */
    const std::vector<double> &binIntervals() const { return bins_; }

  private:
    std::vector<double> bins_;
    /** Current ladder position per type; bins_.size() = disarmed. */
    std::array<std::size_t, numDataTypes> level_;
};

/** Selection knobs for building a policy from configuration. */
struct GuardPolicySpec
{
    GuardPolicyKind kind = GuardPolicyKind::Permanent;
    /** HysteresisRedisarm: clean intervals before re-disarm. */
    std::uint32_t hysteresisK = 4;
    /** BinnedEscalation: number of retention-binning divider bins. */
    std::uint32_t bins = 4;
};

/**
 * Build the policy a spec describes. BinnedEscalation's ladder is
 * the bin-interval table of a RetentionBinning sampled for
 * `geometry` under `distribution` at `failure_rate` (0 falls back
 * to the binning default) with `seed`; the other kinds ignore those
 * arguments. Fails with InvalidArgument on a degenerate spec
 * (hysteresisK = 0 or bins = 0).
 */
Result<std::unique_ptr<GuardPolicy>>
makeGuardPolicy(const GuardPolicySpec &spec,
                const BufferGeometry &geometry,
                const RetentionDistribution &distribution,
                double failure_rate, std::uint64_t seed);

/**
 * The escalation ladder of an existing RetentionBinning: its bin
 * intervals sorted ascending with duplicates removed.
 */
std::vector<double> escalationLadder(const RetentionBinning &binning);

} // namespace rana

#endif // RANA_EDRAM_GUARD_POLICY_HH_
