/**
 * @file
 * eDRAM retention-time distribution model (the paper's Figure 8,
 * after Kong et al., ITC 2008).
 *
 * The distribution maps a retention time t to the cumulative
 * fraction of cells whose retention time is at most t (the
 * "retention failure rate" when the refresh interval is t). The
 * paper quotes two anchor points for a 32KB buffer:
 *
 *   - the weakest cell appears at 45us with failure rate 3e-6
 *     (the conventional refresh interval), and
 *   - a 16x longer interval of 734us has failure rate 1e-5.
 *
 * Between and beyond the anchors the model interpolates linearly in
 * log-log space, with a tail steepening toward the bulk of the
 * distribution as in the measured data. Both directions of the
 * mapping are exposed: failure rate at a given interval (used when
 * grading a trained model), and the tolerable retention time for a
 * tolerable failure rate (used to program the refresh interval).
 */

#ifndef RANA_EDRAM_RETENTION_DISTRIBUTION_HH_
#define RANA_EDRAM_RETENTION_DISTRIBUTION_HH_

#include <cstddef>
#include <vector>

#include "util/random.hh"

namespace rana {

/** One (retention time, cumulative failure rate) anchor point. */
struct RetentionPoint
{
    /** Retention time in seconds. */
    double retentionSeconds;
    /** Fraction of cells with retention time <= retentionSeconds. */
    double failureRate;
};

/**
 * Piecewise log-log cumulative retention-time distribution.
 */
class RetentionDistribution
{
  public:
    /** Build the paper's Figure-8 distribution. */
    static RetentionDistribution typical65nm();

    /**
     * Build from explicit anchors.
     *
     * @param points anchors sorted by retention time, with strictly
     *               increasing times and failure rates.
     */
    explicit RetentionDistribution(std::vector<RetentionPoint> points);

    /**
     * Cumulative failure rate at the given refresh interval
     * (fraction of cells that would fail if refreshed every
     * `interval_seconds`). Clamped to the anchor range.
     */
    double failureRateAt(double interval_seconds) const;

    /**
     * Tolerable retention time (refresh interval) for the given
     * tolerable failure rate; the inverse of failureRateAt().
     * A tolerable rate of 0 returns the conventional worst-case
     * interval (the weakest-cell anchor).
     */
    double retentionTimeFor(double tolerable_failure_rate) const;

    /**
     * Conventional refresh interval: the weakest cell's retention
     * time (45us in the paper).
     */
    double worstCaseRetention() const;

    /**
     * Sample the retention time of one random cell by inverse
     * transform from the cumulative distribution. Cells above the
     * last anchor return the last anchor's time scaled by the
     * remaining probability mass (a conservative long tail).
     */
    double sampleCellRetention(Rng &rng) const;

    /** The anchor points. */
    const std::vector<RetentionPoint> &points() const { return points_; }

  private:
    std::vector<RetentionPoint> points_;
};

} // namespace rana

#endif // RANA_EDRAM_RETENTION_DISTRIBUTION_HH_
