#include "edram/bank_sharding.hh"

#include <sstream>

namespace rana {

std::string
BankShard::describe() const
{
    std::ostringstream oss;
    oss << "banks " << firstBank << "-" << (endBank() - 1);
    return oss.str();
}

Result<std::vector<BankShard>>
partitionBanks(std::uint32_t total_banks, std::uint32_t shards)
{
    if (shards == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "bank partition needs at least one shard");
    }
    if (shards > total_banks) {
        return makeError(ErrorCode::InvalidArgument,
                         "cannot split ", total_banks, " banks into ",
                         shards, " shards of at least one bank");
    }
    const std::uint32_t base = total_banks / shards;
    const std::uint32_t remainder = total_banks % shards;
    std::vector<BankShard> result;
    result.reserve(shards);
    std::uint32_t next = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
        BankShard shard;
        shard.firstBank = next;
        shard.banks = base + (i < remainder ? 1 : 0);
        next += shard.banks;
        result.push_back(shard);
    }
    return result;
}

} // namespace rana
