/**
 * @file
 * Implementation of the reliability-guard decision policies.
 */

#include "edram/guard_policy.hh"

#include <algorithm>

#include "edram/retention_binning.hh"
#include "util/logging.hh"

namespace rana {

const char *
guardPolicyKindName(GuardPolicyKind kind)
{
    switch (kind) {
      case GuardPolicyKind::Permanent:
        return "permanent";
      case GuardPolicyKind::Hysteresis:
        return "hysteresis";
      case GuardPolicyKind::Binned:
        return "binned";
    }
    panic("unreachable guard policy kind");
}

Result<GuardPolicyKind>
parseGuardPolicyKind(const std::string &name)
{
    if (name == "permanent")
        return GuardPolicyKind::Permanent;
    if (name == "hysteresis")
        return GuardPolicyKind::Hysteresis;
    if (name == "binned")
        return GuardPolicyKind::Binned;
    return makeError(ErrorCode::InvalidArgument,
                     "unknown guard policy '", name,
                     "' (expected permanent, hysteresis or binned)");
}

// ----------------------------------------------------------------
// PermanentReenable
// ----------------------------------------------------------------

GuardAction
PermanentReenable::onTrip(DataType)
{
    return {GuardActionKind::KeepArmed, 0.0};
}

GuardAction
PermanentReenable::onCleanInterval(DataType)
{
    return {GuardActionKind::KeepArmed, 0.0};
}

// ----------------------------------------------------------------
// HysteresisRedisarm
// ----------------------------------------------------------------

HysteresisRedisarm::HysteresisRedisarm(std::uint32_t clean_intervals)
    : k_(clean_intervals)
{
    RANA_ASSERT(clean_intervals >= 1,
                "hysteresis needs at least one clean interval");
}

void
HysteresisRedisarm::beginLayer()
{
    streak_ = {0, 0, 0};
}

GuardAction
HysteresisRedisarm::onTrip(DataType type)
{
    streak_[static_cast<std::size_t>(type)] = 0;
    return {GuardActionKind::KeepArmed, 0.0};
}

GuardAction
HysteresisRedisarm::onCleanInterval(DataType type)
{
    auto &streak = streak_[static_cast<std::size_t>(type)];
    if (++streak >= k_) {
        streak = 0;
        return {GuardActionKind::Redisarm, 0.0};
    }
    return {GuardActionKind::KeepArmed, 0.0};
}

void
HysteresisRedisarm::reset()
{
    streak_ = {0, 0, 0};
}

// ----------------------------------------------------------------
// BinnedEscalation
// ----------------------------------------------------------------

BinnedEscalation::BinnedEscalation(std::vector<double> bin_intervals)
    : bins_(std::move(bin_intervals))
{
    RANA_ASSERT(!bins_.empty(),
                "binned escalation needs at least one bin");
    RANA_ASSERT(std::is_sorted(bins_.begin(), bins_.end()),
                "bin intervals must be sorted ascending");
    RANA_ASSERT(bins_.front() > 0.0,
                "bin intervals must be positive");
    level_.fill(bins_.size());
}

void
BinnedEscalation::beginLayer()
{
    level_.fill(bins_.size());
}

GuardAction
BinnedEscalation::onTrip(DataType type)
{
    auto &level = level_[static_cast<std::size_t>(type)];
    if (level == 0) {
        // The shortest bin is exhausted: nothing shorter to step
        // into, the group stays armed where it is.
        return {GuardActionKind::KeepArmed, 0.0};
    }
    --level;
    return {GuardActionKind::Escalate, bins_[level]};
}

GuardAction
BinnedEscalation::onCleanInterval(DataType)
{
    return {GuardActionKind::KeepArmed, 0.0};
}

void
BinnedEscalation::reset()
{
    level_.fill(bins_.size());
}

// ----------------------------------------------------------------
// Factory
// ----------------------------------------------------------------

std::vector<double>
escalationLadder(const RetentionBinning &binning)
{
    std::vector<double> ladder;
    ladder.reserve(binning.numBins());
    for (std::uint32_t bin = 0; bin < binning.numBins(); ++bin)
        ladder.push_back(binning.binInterval(bin));
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()),
                 ladder.end());
    return ladder;
}

Result<std::unique_ptr<GuardPolicy>>
makeGuardPolicy(const GuardPolicySpec &spec,
                const BufferGeometry &geometry,
                const RetentionDistribution &distribution,
                double failure_rate, std::uint64_t seed)
{
    switch (spec.kind) {
      case GuardPolicyKind::Permanent:
        return std::unique_ptr<GuardPolicy>(new PermanentReenable());
      case GuardPolicyKind::Hysteresis:
        if (spec.hysteresisK == 0) {
            return makeError(ErrorCode::InvalidArgument,
                             "guard hysteresis K must be >= 1");
        }
        return std::unique_ptr<GuardPolicy>(
            new HysteresisRedisarm(spec.hysteresisK));
      case GuardPolicyKind::Binned: {
        if (spec.bins == 0) {
            return makeError(ErrorCode::InvalidArgument,
                             "guard escalation needs >= 1 bin");
        }
        RetentionBinningParams params;
        if (failure_rate > 0.0)
            params.tolerableFailureRate = failure_rate;
        params.numBins = spec.bins;
        params.seed = seed;
        const RetentionBinning binning(geometry, distribution,
                                       params);
        return std::unique_ptr<GuardPolicy>(
            new BinnedEscalation(escalationLadder(binning)));
      }
    }
    panic("unreachable guard policy kind in makeGuardPolicy");
}

} // namespace rana
