/**
 * @file
 * Implementation of the runtime reliability guard.
 */

#include "edram/reliability_guard.hh"

#include <algorithm>
#include <sstream>

#include "obs/metrics_registry.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

ReliabilityGuard::ReliabilityGuard(double tolerable_retention_seconds)
    : tolerable_(tolerable_retention_seconds)
{
    RANA_ASSERT(tolerable_retention_seconds > 0.0,
                "tolerable retention time must be positive");
}

void
ReliabilityGuard::recordTrip(DataType type,
                             double observed_lifetime_seconds,
                             std::uint32_t banks, bool reenabled,
                             std::uint64_t refresh_ops)
{
    ++stats_.trips;
    ++stats_.tripsByType[static_cast<std::size_t>(type)];
    if (reenabled)
        stats_.banksReenabled += banks;
    stats_.fallbackRefreshOps += refresh_ops;
    stats_.worstObservedLifetimeSeconds =
        std::max(stats_.worstObservedLifetimeSeconds,
                 observed_lifetime_seconds);

    MetricsRegistry &registry = MetricsRegistry::global();
    registry.counter("edram_guard_trips_total").add();
    if (reenabled) {
        registry.counter("edram_guard_banks_reenabled_total")
            .add(banks);
    }
    registry.gauge("edram_guard_worst_lifetime_seconds")
        .setMax(observed_lifetime_seconds);
}

void
ReliabilityGuard::reset()
{
    stats_ = Stats{};
}

std::string
ReliabilityGuard::describe() const
{
    std::ostringstream oss;
    oss << "guard[" << formatTime(tolerable_) << "]: " << stats_.trips
        << " trips, " << stats_.banksReenabled << " banks re-enabled, "
        << stats_.fallbackRefreshOps << " fallback refresh ops";
    if (stats_.trips > 0) {
        oss << ", worst lifetime "
            << formatTime(stats_.worstObservedLifetimeSeconds);
    }
    return oss.str();
}

} // namespace rana
