/**
 * @file
 * Implementation of the runtime reliability guard.
 */

#include "edram/reliability_guard.hh"

#include <algorithm>
#include <sstream>

#include "obs/metrics_registry.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

ReliabilityGuard::ReliabilityGuard(double tolerable_retention_seconds,
                                   std::unique_ptr<GuardPolicy> policy)
    : tolerable_(tolerable_retention_seconds),
      policy_(std::move(policy))
{
    RANA_ASSERT(tolerable_retention_seconds > 0.0,
                "tolerable retention time must be positive");
    if (!policy_)
        policy_ = std::make_unique<PermanentReenable>();
}

void
ReliabilityGuard::recordTrip(DataType type,
                             double observed_lifetime_seconds,
                             std::uint32_t banks, bool reenabled,
                             std::uint64_t refresh_ops)
{
    ++stats_.trips;
    ++stats_.tripsByType[static_cast<std::size_t>(type)];
    if (reenabled)
        stats_.banksReenabled += banks;
    stats_.fallbackRefreshOps += refresh_ops;
    stats_.worstObservedLifetimeSeconds =
        std::max(stats_.worstObservedLifetimeSeconds,
                 observed_lifetime_seconds);

    MetricsRegistry &registry = MetricsRegistry::global();
    registry.counter("edram_guard_trips_total").add();
    if (reenabled) {
        registry.counter("edram_guard_banks_reenabled_total")
            .add(banks);
    }
    registry.gauge("edram_guard_worst_lifetime_seconds")
        .setMax(observed_lifetime_seconds);
}

GuardAction
ReliabilityGuard::coverTrip(DataType type,
                            double observed_lifetime_seconds,
                            std::uint32_t banks, bool reenabled,
                            std::uint64_t refresh_ops)
{
    recordTrip(type, observed_lifetime_seconds, banks, reenabled,
               refresh_ops);
    GuardAction action = policy_->onTrip(type);
    RANA_ASSERT(action.kind != GuardActionKind::Redisarm,
                "a trip can never leave the group disarmed");
    if (action.kind == GuardActionKind::Escalate) {
        RANA_ASSERT(action.intervalSeconds > 0.0,
                    "escalation needs a positive bin period");
        ++stats_.escalations;
        MetricsRegistry::global()
            .counter("edram_guard_escalations_total").add();
    }
    return action;
}

GuardAction
ReliabilityGuard::cleanInterval(DataType type, std::uint32_t banks)
{
    ++stats_.cleanIntervals;
    MetricsRegistry &registry = MetricsRegistry::global();
    registry.counter("edram_guard_clean_intervals_total").add();
    GuardAction action = policy_->onCleanInterval(type);
    RANA_ASSERT(action.kind != GuardActionKind::Escalate,
                "a clean interval can never escalate");
    if (action.kind == GuardActionKind::Redisarm) {
        stats_.redisarms += banks;
        registry.counter("edram_guard_redisarms_total").add(banks);
    }
    return action;
}

void
ReliabilityGuard::recordArmedRefresh(std::uint64_t refresh_ops)
{
    stats_.armedRefreshOps += refresh_ops;
    MetricsRegistry::global()
        .counter("edram_guard_armed_refresh_words_total")
        .add(refresh_ops);
}

void
ReliabilityGuard::beginLayer()
{
    policy_->beginLayer();
}

void
ReliabilityGuard::reset()
{
    stats_ = Stats{};
    policy_->reset();
}

std::string
ReliabilityGuard::describe() const
{
    std::ostringstream oss;
    oss << "guard[" << formatTime(tolerable_) << ", "
        << policy_->name() << "]: " << stats_.trips << " trips, "
        << stats_.banksReenabled << " banks re-enabled, "
        << stats_.fallbackRefreshOps << " fallback refresh ops";
    if (stats_.redisarms > 0)
        oss << ", " << stats_.redisarms << " re-disarms";
    if (stats_.escalations > 0)
        oss << ", " << stats_.escalations << " escalations";
    if (stats_.trips > 0) {
        oss << ", worst lifetime "
            << formatTime(stats_.worstObservedLifetimeSeconds);
    }
    return oss.str();
}

} // namespace rana
