/**
 * @file
 * Implementation of the refresh controllers.
 */

#include "edram/refresh_controller.hh"

#include <algorithm>
#include <cmath>

#include "obs/metrics_registry.hh"
#include "util/logging.hh"

namespace rana {

namespace {

/** Registry instruments for refresh activity (created once). */
struct RefreshMetrics
{
    MetricsRegistry::Counter &pulsesIssued;
    MetricsRegistry::Counter &pulsesSuppressed;
    MetricsRegistry::Counter &words;

    static RefreshMetrics &
    get()
    {
        static RefreshMetrics *metrics = new RefreshMetrics{
            MetricsRegistry::global().counter(
                "edram_refresh_pulses_issued_total"),
            MetricsRegistry::global().counter(
                "edram_refresh_pulses_suppressed_total"),
            MetricsRegistry::global().counter(
                "edram_refresh_words_total"),
        };
        return *metrics;
    }
};

} // namespace

const char *
refreshPolicyName(RefreshPolicy policy)
{
    switch (policy) {
      case RefreshPolicy::None:
        return "none";
      case RefreshPolicy::ConventionalAll:
        return "conventional";
      case RefreshPolicy::GatedGlobal:
        return "gated-global";
      case RefreshPolicy::PerBank:
        return "per-bank";
    }
    panic("unreachable refresh policy");
}

bool
dataNeedsRefresh(const LayerRefreshDemand &demand, DataType type,
                 double interval_seconds)
{
    const auto index = static_cast<std::size_t>(type);
    return demand.allocation.words[index] > 0 &&
           demand.lifetimeSeconds[index] >= interval_seconds;
}

std::uint64_t
refreshOpsForLayer(RefreshPolicy policy, const BufferGeometry &geometry,
                   const LayerRefreshDemand &demand,
                   double interval_seconds)
{
    if (policy == RefreshPolicy::None ||
        !macroParams(geometry.technology).needsRefresh) {
        return 0;
    }
    RANA_ASSERT(interval_seconds > 0.0,
                "refresh interval must be positive");

    // The epsilon absorbs floating-point quotient jitter so exact
    // multiples of the interval count their final pulse (matching
    // the event-driven controller).
    const auto pulses = static_cast<std::uint64_t>(std::floor(
        demand.layerSeconds / interval_seconds * (1.0 + 1e-12) +
        1e-12));
    if (pulses == 0)
        return 0;

    const std::uint64_t bank_words = geometry.bankWords();
    switch (policy) {
      case RefreshPolicy::ConventionalAll:
        return geometry.capacityWords() * pulses;
      case RefreshPolicy::GatedGlobal: {
        bool any_needed = false;
        for (std::size_t i = 0; i < numDataTypes; ++i) {
            any_needed |= dataNeedsRefresh(
                demand, static_cast<DataType>(i), interval_seconds);
        }
        return any_needed ? geometry.capacityWords() * pulses : 0;
      }
      case RefreshPolicy::PerBank: {
        std::uint64_t words = 0;
        for (std::size_t i = 0; i < numDataTypes; ++i) {
            if (dataNeedsRefresh(demand, static_cast<DataType>(i),
                                 interval_seconds)) {
                words += static_cast<std::uint64_t>(
                             demand.allocation.banks[i]) *
                         bank_words;
            }
        }
        return words * pulses;
      }
      case RefreshPolicy::None:
        break;
    }
    panic("unreachable refresh policy in refreshOpsForLayer");
}

std::array<bool, numDataTypes>
refreshFlagsForLayer(const LayerRefreshDemand &demand,
                     double interval_seconds)
{
    std::array<bool, numDataTypes> flags = {false, false, false};
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        flags[i] = dataNeedsRefresh(demand, static_cast<DataType>(i),
                                    interval_seconds);
    }
    return flags;
}

RefreshControllerSim::RefreshControllerSim(const BufferGeometry &geometry,
                                           RefreshPolicy policy,
                                           double reference_hz,
                                           double interval_seconds)
    : geometry_(geometry),
      policy_(policy),
      divider_(reference_hz)
{
    if (policy_ != RefreshPolicy::None)
        divider_.setInterval(interval_seconds);
    unusedBanks_ = geometry.numBanks;
    nextPulse_ = divider_.pulsePeriod();
}

void
RefreshControllerSim::beginLayer(const BankAllocation &allocation,
                                 const std::array<bool, numDataTypes> &flags,
                                 bool gate_on, double now)
{
    advanceTo(now);
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        types_[i].banks = allocation.banks[i];
        types_[i].refreshFlag = flags[i];
        types_[i].holdsData = false;
        types_[i].lastRefresh = now;
        types_[i].refreshed = false;
        types_[i].guardArmed = false;
        types_[i].ownInterval = 0.0;
        types_[i].nextOwnPulse = 0.0;
        types_[i].cleanSinceRefresh = true;
    }
    unusedBanks_ = allocation.unusedBanks;
    if (guard_ != nullptr)
        guard_->beginLayer();
    gateOn_ = gate_on;
    // The controller restarts its pulse counter when a layer's
    // configuration is loaded.
    nextPulse_ = now + divider_.pulsePeriod();
}

void
RefreshControllerSim::onWrite(DataType type, double now)
{
    advanceTo(now);
    types_[static_cast<std::size_t>(type)].holdsData = true;
}

void
RefreshControllerSim::onRead(DataType type, double now,
                             double data_write_time)
{
    advanceTo(now);
    if (policy_ == RefreshPolicy::None)
        return;
    auto &state = types_[static_cast<std::size_t>(type)];
    if (!state.holdsData)
        return;
    // The data's last recharge is the later of its own write and the
    // last refresh pulse covering its banks. Reading it older than
    // the tolerable retention time (= the programmed interval) would
    // observe retention failures beyond the tolerated rate.
    double last_recharge = data_write_time;
    if (state.refreshed)
        last_recharge = std::max(last_recharge, state.lastRefresh);
    const double period = divider_.pulsePeriod();
    if (now - last_recharge > period * (1.0 + 1e-9)) {
        if (guard_ != nullptr) {
            // Watchdog fallback: a per-bank watchdog armed at the
            // data's last recharge would have refreshed the banks
            // once per tolerable retention time, keeping every read
            // within tolerance. Account those pulses, re-enable the
            // type's refresh flag, and record the trip instead of a
            // violation.
            const auto pulses = static_cast<std::uint64_t>(
                std::floor((now - last_recharge) / period));
            const std::uint64_t ops =
                static_cast<std::uint64_t>(state.banks) *
                geometry_.bankWords() * pulses;
            refreshOps_ += ops;
            RefreshMetrics::get().words.add(ops);
            const bool reenabled = !state.refreshFlag;
            state.refreshFlag = true;
            state.lastRefresh =
                last_recharge + static_cast<double>(pulses) * period;
            state.refreshed = true;
            if (reenabled)
                state.guardArmed = true;
            state.cleanSinceRefresh = false;
            const GuardAction action = guard_->coverTrip(
                type, now - last_recharge, state.banks, reenabled,
                ops);
            if (action.kind == GuardActionKind::Escalate) {
                // The group moves onto its own divider-bin pulse
                // train; global pulses skip it from here on. The
                // train continues from the watchdog's last recharge.
                state.ownInterval = action.intervalSeconds;
                state.nextOwnPulse =
                    state.lastRefresh + state.ownInterval;
                if (state.nextOwnPulse <= now_) {
                    state.nextOwnPulse =
                        now_ + state.ownInterval;
                }
            }
            // KeepArmed changes nothing: a group already escalated
            // stays on its bin (the exhausted shortest bin), a
            // global-armed group stays on the global train.
        } else {
            ++violations_;
        }
    }
}

void
RefreshControllerSim::advanceTo(double now)
{
    // Tolerate floating-point jitter from differently-associated
    // time computations (a + i*t vs. (a + (i-1)*t) + t).
    const double slack = 1e-9 * std::max(1.0, std::abs(now_));
    RANA_ASSERT(now + slack >= now_, "time must not run backwards");
    if (now < now_)
        now = now_;
    if (policy_ == RefreshPolicy::None) {
        now_ = now;
        return;
    }
    for (;;) {
        // Earliest due event: the global divider tick or an
        // escalated group's own pulse. Ties go to the global pulse,
        // then the lowest type index, so the event order (and with
        // it every counter) is deterministic.
        double when = nextPulse_;
        std::size_t own = numDataTypes;
        for (std::size_t i = 0; i < numDataTypes; ++i) {
            if (types_[i].ownInterval > 0.0 &&
                types_[i].nextOwnPulse < when) {
                when = types_[i].nextOwnPulse;
                own = i;
            }
        }
        if (when > now + 1e-15)
            break;
        now_ = when;
        if (own == numDataTypes) {
            issuePulse();
            nextPulse_ += divider_.pulsePeriod();
        } else {
            issueOwnPulse(own);
        }
    }
    now_ = now;
}

void
RefreshControllerSim::consultCleanInterval(TypeState &state,
                                           DataType type)
{
    const bool clean = state.cleanSinceRefresh;
    state.cleanSinceRefresh = true;
    if (!clean)
        return;
    const GuardAction action =
        guard_->cleanInterval(type, state.banks);
    if (action.kind == GuardActionKind::Redisarm) {
        // Only a guard-armed flag may be cleared; the caller never
        // consults the policy for config-armed groups.
        state.refreshFlag = false;
        state.guardArmed = false;
        state.ownInterval = 0.0;
        state.nextOwnPulse = 0.0;
    }
}

std::uint64_t
RefreshControllerSim::refreshFlaggedType(TypeState &state,
                                         DataType type)
{
    if (!state.refreshFlag || state.banks == 0)
        return 0;
    if (state.ownInterval > 0.0) {
        // Escalated groups refresh on their own pulse train.
        return 0;
    }
    const std::uint64_t words =
        static_cast<std::uint64_t>(state.banks) *
        geometry_.bankWords();
    state.lastRefresh = now_;
    state.refreshed = true;
    if (state.guardArmed && guard_ != nullptr) {
        guard_->recordArmedRefresh(words);
        consultCleanInterval(state, type);
    }
    return words;
}

void
RefreshControllerSim::issueOwnPulse(std::size_t index)
{
    TypeState &state = types_[index];
    state.nextOwnPulse += state.ownInterval;
    if (!state.refreshFlag || state.banks == 0)
        return;
    const std::uint64_t words =
        static_cast<std::uint64_t>(state.banks) *
        geometry_.bankWords();
    state.lastRefresh = now_;
    state.refreshed = true;
    refreshOps_ += words;
    RefreshMetrics &metrics = RefreshMetrics::get();
    metrics.pulsesIssued.add();
    metrics.words.add(words);
    if (guard_ != nullptr) {
        guard_->recordArmedRefresh(words);
        consultCleanInterval(state, static_cast<DataType>(index));
    }
    if (pulseListener_)
        pulseListener_(now_, words);
}

void
RefreshControllerSim::issuePulse()
{
    std::uint64_t words = 0;
    switch (policy_) {
      case RefreshPolicy::None:
        return;
      case RefreshPolicy::ConventionalAll:
        words = geometry_.capacityWords();
        for (auto &state : types_) {
            state.lastRefresh = now_;
            state.refreshed = true;
        }
        break;
      case RefreshPolicy::GatedGlobal:
        if (gateOn_) {
            words = geometry_.capacityWords();
            for (auto &state : types_) {
                state.lastRefresh = now_;
                state.refreshed = true;
            }
        } else {
            // A gated-off layer refreshes nothing by itself, but
            // banks the reliability guard re-enabled fall back to
            // per-bank refresh (with the guard policy consulted on
            // each clean interval).
            for (std::size_t i = 0; i < numDataTypes; ++i) {
                words += refreshFlaggedType(types_[i],
                                            static_cast<DataType>(i));
            }
        }
        break;
      case RefreshPolicy::PerBank:
        for (std::size_t i = 0; i < numDataTypes; ++i) {
            words += refreshFlaggedType(types_[i],
                                        static_cast<DataType>(i));
        }
        break;
    }
    refreshOps_ += words;
    RefreshMetrics &metrics = RefreshMetrics::get();
    if (words > 0) {
        metrics.pulsesIssued.add();
        metrics.words.add(words);
    } else {
        // The divider ticked but the gate was off / no bank was
        // flagged — the energy the optimized controller saves.
        metrics.pulsesSuppressed.add();
    }
    if (pulseListener_)
        pulseListener_(now_, words);
}

} // namespace rana
