/**
 * @file
 * Implementation of the unified buffer system.
 */

#include "edram/buffer_system.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/units.hh"

namespace rana {

const char *
dataTypeName(DataType type)
{
    switch (type) {
      case DataType::Input:
        return "inputs";
      case DataType::Output:
        return "outputs";
      case DataType::Weight:
        return "weights";
    }
    panic("unreachable data type");
}

std::uint64_t
BufferGeometry::bankWords() const
{
    return bankBytes / bytesPerWord;
}

std::uint64_t
BufferGeometry::capacityWords() const
{
    return static_cast<std::uint64_t>(numBanks) * bankWords();
}

std::uint64_t
BufferGeometry::capacityBytes() const
{
    return static_cast<std::uint64_t>(numBanks) * bankBytes;
}

std::string
BufferGeometry::describe() const
{
    std::ostringstream oss;
    oss << numBanks << " x " << formatBytes(bankBytes) << " "
        << memoryTechnologyName(technology) << " ("
        << formatBytes(capacityBytes()) << ")";
    return oss.str();
}

std::uint64_t
BankAllocation::wordsOf(DataType type) const
{
    return words[static_cast<std::size_t>(type)];
}

std::uint32_t
BankAllocation::banksOf(DataType type) const
{
    return banks[static_cast<std::size_t>(type)];
}

std::uint32_t
BankAllocation::totalBanks() const
{
    return banks[0] + banks[1] + banks[2] + unusedBanks;
}

Result<BankAllocation>
allocateBanksChecked(const BufferGeometry &geometry,
                     std::uint64_t input_words,
                     std::uint64_t output_words,
                     std::uint64_t weight_words)
{
    const std::uint64_t bank_words = geometry.bankWords();
    RANA_ASSERT(bank_words > 0, "bank size must be positive");

    BankAllocation alloc;
    alloc.words = {input_words, output_words, weight_words};
    std::uint64_t banks_needed = 0;
    for (std::size_t i = 0; i < numDataTypes; ++i) {
        const std::uint64_t b =
            (alloc.words[i] + bank_words - 1) / bank_words;
        alloc.banks[i] = static_cast<std::uint32_t>(b);
        banks_needed += b;
    }
    if (banks_needed > geometry.numBanks) {
        return makeError(ErrorCode::Infeasible,
                         "bank allocation overflow: need ",
                         banks_needed, " banks but the buffer has ",
                         geometry.numBanks, " (inputs ", input_words,
                         "w, outputs ", output_words, "w, weights ",
                         weight_words, "w)");
    }
    alloc.unusedBanks =
        geometry.numBanks - static_cast<std::uint32_t>(banks_needed);
    return alloc;
}

BankAllocation
allocateBanks(const BufferGeometry &geometry, std::uint64_t input_words,
              std::uint64_t output_words, std::uint64_t weight_words)
{
    return allocateBanksChecked(geometry, input_words, output_words,
                                weight_words)
        .valueOrDie();
}

} // namespace rana
