/**
 * @file
 * Unified on-chip buffer system: bank geometry and per-datatype bank
 * allocation (Section IV-D1).
 *
 * The accelerator's input/output/weight buffers are organized as a
 * single pool of 32KB banks. Before each layer runs, banks are
 * allocated to the three data types according to the layer's buffer
 * storage requirements (which depend on the computation pattern), so
 * e.g. OD layers dedicate most banks to outputs while WD layers
 * dedicate them to weights.
 */

#ifndef RANA_EDRAM_BUFFER_SYSTEM_HH_
#define RANA_EDRAM_BUFFER_SYSTEM_HH_

#include <array>
#include <cstdint>
#include <string>

#include "energy/technology.hh"
#include "util/result.hh"

namespace rana {

/** The three data types a CONV layer keeps in the buffers. */
enum class DataType {
    Input = 0,
    Output = 1,
    Weight = 2,
};

/** Number of DataType values. */
constexpr std::size_t numDataTypes = 3;

/** Name string for a DataType. */
const char *dataTypeName(DataType type);

/** Geometry of the unified buffer. */
struct BufferGeometry
{
    /** Buffer memory technology. */
    MemoryTechnology technology = MemoryTechnology::Edram;
    /** Number of banks in the pool. */
    std::uint32_t numBanks = 0;
    /** Capacity of one bank in bytes. */
    std::uint64_t bankBytes = 32 * 1024;

    /** One bank's capacity in 16-bit words. */
    std::uint64_t bankWords() const;
    /** Total pool capacity in 16-bit words. */
    std::uint64_t capacityWords() const;
    /** Total pool capacity in bytes. */
    std::uint64_t capacityBytes() const;

    /** Human-readable description, e.g. "46 x 32KB eDRAM". */
    std::string describe() const;
};

/**
 * Banks assigned to each data type for one layer.
 *
 * Allocation is bank-granular: a data type holding any words owns a
 * whole number of banks. Banks not owned by any type are unused for
 * the layer (but a conventional controller still refreshes them).
 */
struct BankAllocation
{
    /** Words required per data type (buffer storage requirement). */
    std::array<std::uint64_t, numDataTypes> words = {0, 0, 0};
    /** Banks assigned per data type. */
    std::array<std::uint32_t, numDataTypes> banks = {0, 0, 0};
    /** Banks left unused. */
    std::uint32_t unusedBanks = 0;

    /** Words requirement for one data type. */
    std::uint64_t wordsOf(DataType type) const;
    /** Banks assigned to one data type. */
    std::uint32_t banksOf(DataType type) const;
    /** Total banks in the pool (used + unused). */
    std::uint32_t totalBanks() const;
};

/**
 * Allocate banks for a layer's per-datatype storage requirements.
 *
 * Each data type receives ceil(words / bankWords) banks. Fails with
 * ErrorCode::Infeasible when the requirements do not fit the pool, so
 * exploratory callers (schedulers probing candidate tilings) can
 * reject the candidate instead of aborting the process.
 */
Result<BankAllocation>
allocateBanksChecked(const BufferGeometry &geometry,
                     std::uint64_t input_words,
                     std::uint64_t output_words,
                     std::uint64_t weight_words);

/** allocateBanksChecked, but fatal() on failure: callers that pass
 * pre-validated requirements treat overflow as a scheduling bug. */
BankAllocation allocateBanks(const BufferGeometry &geometry,
                             std::uint64_t input_words,
                             std::uint64_t output_words,
                             std::uint64_t weight_words);

} // namespace rana

#endif // RANA_EDRAM_BUFFER_SYSTEM_HH_
