/**
 * @file
 * eDRAM refresh controllers (Section IV-D2, Figure 14).
 *
 * Three refresh policies are modelled, plus "no refresh" for SRAM:
 *
 *  - ConventionalAll: every bank is refreshed at the programmed
 *    interval for the whole run, whether it stores data or not.
 *    This is the classic pessimistic eDRAM controller.
 *  - GatedGlobal: the controller has a single on/off refresh gate
 *    per layer. RANA's compilation stage sets the gate off when all
 *    of the layer's data lifetimes are below the refresh interval
 *    (the "Data Lifetime < Retention Time" condition), otherwise
 *    every bank refreshes at the interval. Used by the eD+ID,
 *    eD+OD, RANA(0) and RANA(E-5) design points.
 *  - PerBank: the refresh-optimized controller. Each bank has a
 *    refresh flag from the layerwise configuration; only banks whose
 *    own data's lifetime reaches the interval are refreshed, and
 *    unused banks are never refreshed. Used by RANA*(E-5).
 *
 * A refresh operation is counted per 16-bit word refreshed, matching
 * Table III's 48.1pJ per-word refresh energy (0.788uJ per 32KB bank).
 *
 * Two implementations are provided: a closed-form counter used by
 * the scheduler's energy model, and an event-driven simulator
 * (RefreshControllerSim) used by the loop-nest trace simulator,
 * which also detects retention violations (reads of data older than
 * the tolerable retention time without an intervening refresh).
 */

#ifndef RANA_EDRAM_REFRESH_CONTROLLER_HH_
#define RANA_EDRAM_REFRESH_CONTROLLER_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "edram/buffer_system.hh"
#include "edram/clock_divider.hh"
#include "edram/reliability_guard.hh"

namespace rana {

/** Refresh policy of the buffer controller. */
enum class RefreshPolicy {
    /** SRAM: no refresh at all. */
    None,
    /** Refresh all banks at the interval, always. */
    ConventionalAll,
    /** Refresh all banks, gated off for layers that need none. */
    GatedGlobal,
    /** Refresh only flagged banks (refresh-optimized controller). */
    PerBank,
};

/** Name string for a RefreshPolicy. */
const char *refreshPolicyName(RefreshPolicy policy);

/** Per-layer inputs to the refresh-op computation. */
struct LayerRefreshDemand
{
    /** Layer execution time in seconds. */
    double layerSeconds = 0.0;
    /** Data lifetime per data type in seconds (Section III-B2). */
    std::array<double, numDataTypes> lifetimeSeconds = {0.0, 0.0, 0.0};
    /** Bank allocation of the layer. */
    BankAllocation allocation;
};

/**
 * Whether a data type's banks require refresh under the given
 * interval: they hold data, and the data's lifetime reaches the
 * interval.
 */
bool dataNeedsRefresh(const LayerRefreshDemand &demand, DataType type,
                      double interval_seconds);

/**
 * Closed-form refresh operation count (16-bit words refreshed) for
 * one layer under the given policy and refresh interval.
 */
std::uint64_t refreshOpsForLayer(RefreshPolicy policy,
                                 const BufferGeometry &geometry,
                                 const LayerRefreshDemand &demand,
                                 double interval_seconds);

/**
 * Per-bank refresh flags for one layer (the layerwise configuration
 * bits loaded into the refresh-optimized controller): one flag per
 * data type, true when that type's banks must refresh.
 */
std::array<bool, numDataTypes>
refreshFlagsForLayer(const LayerRefreshDemand &demand,
                     double interval_seconds);

/**
 * Event-driven bank-state simulator used by the trace simulator.
 *
 * Banks are owned by data types per layer; writes recharge the
 * owner's banks, refresh pulses recharge flagged banks, and reads
 * verify that the read data is younger than the tolerable retention
 * time (otherwise a retention violation is recorded). Recharge
 * granularity is one data type's bank group, matching the lifetime
 * model's per-type resolution.
 */
class RefreshControllerSim
{
  public:
    /**
     * @param geometry          buffer geometry
     * @param policy            refresh policy
     * @param reference_hz      reference clock for the divider
     * @param interval_seconds  programmed refresh interval
     */
    RefreshControllerSim(const BufferGeometry &geometry,
                         RefreshPolicy policy, double reference_hz,
                         double interval_seconds);

    /**
     * Attach a reliability guard (nullptr detaches; not owned).
     *
     * With a guard attached, a read of data that aged past the
     * tolerable retention time with refresh disabled is covered by
     * the per-bank watchdog fallback instead of counted as a
     * violation: the guard re-enables the type's refresh flag, the
     * watchdog refresh pulses that kept the data within tolerance
     * are charged to the refresh-op counter, and the trip is
     * recorded in the guard's counters. What happens *after* the
     * covering trip is the guard policy's decision: KeepArmed leaves
     * the group refreshing at the programmed interval (the
     * historical per-bank controller fallback), Escalate puts the
     * group on its own divider-bin pulse train, and a later clean
     * refresh interval may answer Redisarm, returning the group to
     * refresh-free coasting.
     */
    void attachGuard(ReliabilityGuard *guard) { guard_ = guard; }

    /**
     * Start a layer at time `now`: install the bank allocation and
     * refresh flags, and mark freshly loaded data as recharged.
     *
     * @param gate_on for GatedGlobal, whether this layer refreshes.
     */
    void beginLayer(const BankAllocation &allocation,
                    const std::array<bool, numDataTypes> &flags,
                    bool gate_on, double now);

    /** Record a (re)write of one data type's banks at time `now`. */
    void onWrite(DataType type, double now);

    /**
     * Record a read at time `now` of data written at
     * `data_write_time`. The data is stale (a retention violation)
     * if it has aged beyond the tolerable retention time since its
     * last recharge, i.e. since the later of its write and the last
     * refresh pulse that covered its banks. The write time is
     * supplied by the caller because recharge granularity is per
     * datum, not per data type (OD's cyclically rewritten partial
     * sums age a full Loop-N pass between their own writes even
     * though the type's banks are written continuously).
     */
    void onRead(DataType type, double now, double data_write_time);

    /**
     * Observer of refresh pulses: called at each divider tick with
     * the simulated time and the words actually refreshed (0 when
     * the pulse was gated off / found no flagged banks). Used by the
     * timeline exporter to draw refresh activity on the simulated-
     * time axis.
     */
    using PulseListener =
        std::function<void(double now, std::uint64_t words)>;

    /** Install the pulse observer (empty function detaches). */
    void setPulseListener(PulseListener listener)
    {
        pulseListener_ = std::move(listener);
    }

    /** Advance simulated time, issuing due refresh pulses. */
    void advanceTo(double now);

    /** Total refresh operations issued (16-bit words). */
    std::uint64_t refreshOps() const { return refreshOps_; }

    /** Total retention violations observed on reads. */
    std::uint64_t violations() const { return violations_; }

    /** The programmed refresh interval realized by the divider. */
    double pulsePeriod() const { return divider_.pulsePeriod(); }

  private:
    struct TypeState
    {
        /** Time of the last refresh pulse covering this type. */
        double lastRefresh = 0.0;
        /** Whether any refresh pulse covered this type yet. */
        bool refreshed = false;
        std::uint32_t banks = 0;
        bool refreshFlag = false;
        bool holdsData = false;
        /** Whether the guard (not the layer config) armed the flag. */
        bool guardArmed = false;
        /** Escalated refresh period (0 = global pulse train). */
        double ownInterval = 0.0;
        /** Next due pulse of the escalated train. */
        double nextOwnPulse = 0.0;
        /** No overage since the last pulse covering this group. */
        bool cleanSinceRefresh = true;
    };

    void issuePulse();
    void issueOwnPulse(std::size_t index);
    std::uint64_t refreshFlaggedType(TypeState &state, DataType type);
    void consultCleanInterval(TypeState &state, DataType type);

    BufferGeometry geometry_;
    RefreshPolicy policy_;
    ProgrammableClockDivider divider_;
    double now_ = 0.0;
    double nextPulse_ = 0.0;
    bool gateOn_ = false;
    std::uint32_t unusedBanks_ = 0;
    std::array<TypeState, numDataTypes> types_;
    std::uint64_t refreshOps_ = 0;
    std::uint64_t violations_ = 0;
    ReliabilityGuard *guard_ = nullptr;
    PulseListener pulseListener_;
};

} // namespace rana

#endif // RANA_EDRAM_REFRESH_CONTROLLER_HH_
