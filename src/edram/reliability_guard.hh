/**
 * @file
 * Runtime reliability guard: graceful per-bank refresh fallback.
 *
 * RANA's compilation stage disables refresh for banks whose predicted
 * data lifetime stays below the tolerable retention time. When the
 * prediction is wrong at runtime (a stalled DRAM channel, a slowed
 * clock, a mis-modelled layer), data would silently age past the
 * tolerable retention time and corrupt. The guard is the runtime
 * safety net: it watches the observed per-bank data age inside the
 * refresh controller, and when a bank's data would be read beyond the
 * tolerable retention time with refresh disabled, it arms that bank's
 * refresh flag again — the paper's per-bank controller fallback —
 * and accounts the watchdog refresh pulses that keep the data within
 * tolerance, instead of recording a retention violation.
 *
 * The pattern follows Refresh Triggered Computation (Jafri et al.):
 * refresh is re-triggered from observed access timing rather than
 * trusted from a static schedule. The guard itself only decides and
 * counts; the event mechanics (recharges, pulse accounting) stay in
 * RefreshControllerSim, which calls into the guard on every overage.
 */

#ifndef RANA_EDRAM_RELIABILITY_GUARD_HH_
#define RANA_EDRAM_RELIABILITY_GUARD_HH_

#include <array>
#include <cstdint>
#include <string>

#include "edram/buffer_system.hh"

namespace rana {

/**
 * Monitors observed data lifetimes and re-enables per-bank refresh
 * when a bank's data ages past the tolerable retention time.
 */
class ReliabilityGuard
{
  public:
    /** Trip and fallback counters of one guarded run. */
    struct Stats
    {
        /** Overage events covered by the watchdog fallback. */
        std::uint64_t trips = 0;
        /** Banks whose refresh flag the guard re-enabled. */
        std::uint64_t banksReenabled = 0;
        /** Refresh operations (16-bit words) issued by the fallback. */
        std::uint64_t fallbackRefreshOps = 0;
        /** Trips per data type. */
        std::array<std::uint64_t, numDataTypes> tripsByType = {0, 0,
                                                               0};
        /** Largest observed data age at a trip, in seconds. */
        double worstObservedLifetimeSeconds = 0.0;
    };

    /**
     * @param tolerable_retention_seconds the certified tolerable
     *        retention time the guard enforces.
     */
    explicit ReliabilityGuard(double tolerable_retention_seconds);

    /**
     * Record one covered overage: `banks` banks of `type` held data
     * for `observed_lifetime_seconds` (beyond the tolerable
     * retention time) and the fallback issued `refresh_ops` word
     * refreshes. `reenabled` is true when this trip armed the type's
     * refresh flag (false when the flag was already armed by an
     * earlier trip in the same layer).
     */
    void recordTrip(DataType type, double observed_lifetime_seconds,
                    std::uint32_t banks, bool reenabled,
                    std::uint64_t refresh_ops);

    /** The tolerable retention time the guard enforces. */
    double tolerableRetentionSeconds() const { return tolerable_; }

    /** Counters accumulated so far. */
    const Stats &stats() const { return stats_; }

    /** Whether any overage was covered. */
    bool tripped() const { return stats_.trips > 0; }

    /** Reset the counters (e.g. between scenarios). */
    void reset();

    /** One-line human-readable summary of the counters. */
    std::string describe() const;

  private:
    double tolerable_;
    Stats stats_;
};

} // namespace rana

#endif // RANA_EDRAM_RELIABILITY_GUARD_HH_
