/**
 * @file
 * Runtime reliability guard: graceful per-bank refresh fallback.
 *
 * RANA's compilation stage disables refresh for banks whose predicted
 * data lifetime stays below the tolerable retention time. When the
 * prediction is wrong at runtime (a stalled DRAM channel, a slowed
 * clock, a mis-modelled layer), data would silently age past the
 * tolerable retention time and corrupt. The guard is the runtime
 * safety net: it watches the observed per-bank data age inside the
 * refresh controller, and when a bank's data would be read beyond the
 * tolerable retention time with refresh disabled, it arms that bank's
 * refresh flag again — the paper's per-bank controller fallback —
 * and accounts the watchdog refresh pulses that keep the data within
 * tolerance, instead of recording a retention violation.
 *
 * The pattern follows Refresh Triggered Computation (Jafri et al.):
 * refresh is re-triggered from observed access timing rather than
 * trusted from a static schedule. The guard counts and delegates the
 * *decision* — keep the flag armed, re-disarm after a clean streak,
 * or escalate onto a divider bin — to a pluggable GuardPolicy; the
 * event mechanics (recharges, pulse accounting) stay in
 * RefreshControllerSim, which calls into the guard on every overage
 * and on every clean refresh interval of a guard-armed group.
 */

#ifndef RANA_EDRAM_RELIABILITY_GUARD_HH_
#define RANA_EDRAM_RELIABILITY_GUARD_HH_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "edram/buffer_system.hh"
#include "edram/guard_policy.hh"

namespace rana {

/**
 * Monitors observed data lifetimes and re-enables per-bank refresh
 * when a bank's data ages past the tolerable retention time.
 */
class ReliabilityGuard
{
  public:
    /** Trip and fallback counters of one guarded run. */
    struct Stats
    {
        /** Overage events covered by the watchdog fallback. */
        std::uint64_t trips = 0;
        /** Banks whose refresh flag the guard re-enabled. */
        std::uint64_t banksReenabled = 0;
        /** Refresh operations (16-bit words) issued by the fallback. */
        std::uint64_t fallbackRefreshOps = 0;
        /** Trips per data type. */
        std::array<std::uint64_t, numDataTypes> tripsByType = {0, 0,
                                                               0};
        /** Largest observed data age at a trip, in seconds. */
        double worstObservedLifetimeSeconds = 0.0;
        /** Guard-armed flags the policy cleared again. */
        std::uint64_t redisarms = 0;
        /** Trips the policy answered with a divider-bin step. */
        std::uint64_t escalations = 0;
        /** Clean refresh intervals of guard-armed groups. */
        std::uint64_t cleanIntervals = 0;
        /** Refresh operations (16-bit words) issued while a group
         *  stayed guard-armed after its covering trip. */
        std::uint64_t armedRefreshOps = 0;
    };

    /**
     * @param tolerable_retention_seconds the certified tolerable
     *        retention time the guard enforces.
     * @param policy decision policy; PermanentReenable when null.
     */
    explicit ReliabilityGuard(double tolerable_retention_seconds,
                              std::unique_ptr<GuardPolicy> policy =
                                  nullptr);

    /**
     * Record one covered overage: `banks` banks of `type` held data
     * for `observed_lifetime_seconds` (beyond the tolerable
     * retention time) and the fallback issued `refresh_ops` word
     * refreshes. `reenabled` is true when this trip armed the type's
     * refresh flag (false when the flag was already armed by an
     * earlier trip in the same layer).
     */
    void recordTrip(DataType type, double observed_lifetime_seconds,
                    std::uint32_t banks, bool reenabled,
                    std::uint64_t refresh_ops);

    /**
     * recordTrip plus a policy consultation: counts the covered
     * overage, then returns the policy's decision for the tripped
     * group (KeepArmed or Escalate; a trip never redisarms).
     */
    GuardAction coverTrip(DataType type,
                          double observed_lifetime_seconds,
                          std::uint32_t banks, bool reenabled,
                          std::uint64_t refresh_ops);

    /**
     * A guard-armed group of `type` (spanning `banks` banks)
     * completed one refresh interval without an overage. Returns the
     * policy's decision (KeepArmed or Redisarm).
     */
    GuardAction cleanInterval(DataType type, std::uint32_t banks);

    /**
     * Account `refresh_ops` word refreshes issued for a group that
     * the guard keeps armed (the steady-state cost of staying armed,
     * as opposed to the covering pulses recorded by the trip).
     */
    void recordArmedRefresh(std::uint64_t refresh_ops);

    /** Forward a layer boundary to the policy's per-layer state. */
    void beginLayer();

    /** The decision policy in use. */
    const GuardPolicy &policy() const { return *policy_; }

    /** The tolerable retention time the guard enforces. */
    double tolerableRetentionSeconds() const { return tolerable_; }

    /** Counters accumulated so far. */
    const Stats &stats() const { return stats_; }

    /** Whether any overage was covered. */
    bool tripped() const { return stats_.trips > 0; }

    /** Reset the counters and the policy (e.g. between scenarios). */
    void reset();

    /** One-line human-readable summary of the counters. */
    std::string describe() const;

  private:
    double tolerable_;
    std::unique_ptr<GuardPolicy> policy_;
    Stats stats_;
};

} // namespace rana

#endif // RANA_EDRAM_RELIABILITY_GUARD_HH_
