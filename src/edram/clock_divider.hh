/**
 * @file
 * Programmable clock divider of the refresh-optimized eDRAM
 * controller (Figure 14).
 *
 * The divider takes the accelerator's reference clock and produces a
 * refresh pulse whose period is programmed to the tolerable
 * retention time obtained from the retention-aware training method.
 * Because the divider counts whole reference cycles, the realized
 * pulse period is the largest integer multiple of the clock period
 * that does not exceed the requested interval (rounding up would
 * over-stretch the refresh interval and violate retention).
 */

#ifndef RANA_EDRAM_CLOCK_DIVIDER_HH_
#define RANA_EDRAM_CLOCK_DIVIDER_HH_

#include <cstdint>

namespace rana {

/** Integer divider from a reference clock to refresh pulses. */
class ProgrammableClockDivider
{
  public:
    /** @param reference_hz accelerator reference clock frequency. */
    explicit ProgrammableClockDivider(double reference_hz);

    /**
     * Program the divider for a refresh pulse period of at most
     * `interval_seconds`. @pre the interval covers at least one
     * reference cycle.
     */
    void setInterval(double interval_seconds);

    /** Programmed divide ratio in reference cycles. */
    std::uint64_t divideRatio() const { return divideRatio_; }

    /** Realized pulse period in seconds. */
    double pulsePeriod() const;

    /**
     * Number of refresh pulses emitted in a window of
     * `duration_seconds` starting aligned to a pulse (the pulse at
     * time zero is not counted; data written at the start of the
     * window is fresh).
     */
    std::uint64_t pulsesDuring(double duration_seconds) const;

  private:
    double referenceHz_;
    std::uint64_t divideRatio_ = 1;
};

} // namespace rana

#endif // RANA_EDRAM_CLOCK_DIVIDER_HH_
