/**
 * @file
 * Multi-tenant serving engine: a deterministic request-level
 * simulation of N tenants sharing one refresh-optimized accelerator.
 *
 * The ROADMAP's "traffic at scale" story: the paper evaluates the
 * eDRAM buffer per-network, but under serving load the buffer is a
 * *contended* resource — refresh behaviour and guard policy shape
 * tail latency, not just energy. The engine models that with a
 * virtual-time event loop:
 *
 *  - each tenant issues inference requests (open-loop Poisson
 *    arrivals at a configured rate, or closed-loop clients with
 *    think time) for one paper benchmark network;
 *  - requests pass admission control: a bounded queue shared by all
 *    tenants plus per-tenant guard state (serving/admission.hh) —
 *    tenants whose reliability guard is armed shed load, tenants on
 *    an escalated divider-bin interval pay a refresh service tax;
 *  - admitted requests coalesce per tenant inside a batching
 *    window; a batch occupies the shared accelerator for the
 *    network's simulated execution time (from the loop-nest trace
 *    simulator) plus a marginal cost per extra lane;
 *  - per batch, a retention overage of the tenant's bank shard
 *    (edram/bank_sharding.hh) is sampled deterministically; an
 *    overage trips the tenant's guard policy and corrupts the
 *    batch's lanes with bit errors;
 *  - completed batches replay on the data plane as one lane-major
 *    batched forward (train/trial_batch.hh) through the tenant's
 *    trained mini model, one distinct request sample per lane, so
 *    served accuracy under corruption is measured end to end.
 *
 * Everything stochastic derives from one seed through per-purpose
 * RNG streams consumed only by the single-threaded event loop, and
 * the parallel data plane writes into per-batch slots — so a run is
 * bit-reproducible for any thread-pool size, which the serving CI
 * gate (deterministic_replay) pins.
 */

#ifndef RANA_SERVING_SERVING_HH_
#define RANA_SERVING_SERVING_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/design_point.hh"
#include "edram/bank_sharding.hh"
#include "edram/guard_policy.hh"
#include "nn/network_model.hh"
#include "robust/fault_campaign.hh"
#include "serving/admission.hh"
#include "train/trainer.hh"
#include "util/result.hh"

namespace rana {

class JsonWriter;
class ServingTimeline;

/** How a tenant generates load. */
enum class ArrivalKind {
    /** Poisson arrivals at `qps`, regardless of completions. */
    OpenLoop,
    /** `clients` clients, each waiting for its reply + think time. */
    ClosedLoop,
};

/** Name string for an ArrivalKind ("open-loop" / "closed-loop"). */
const char *arrivalKindName(ArrivalKind kind);

/** One tenant of the serving simulation. */
struct TenantSpec
{
    /** Display name (metrics + trace tracks). */
    std::string name;
    /** Paper benchmark the tenant serves ("AlexNet", "VGG", ...). */
    std::string network = "AlexNet";
    /** Load generation model. */
    ArrivalKind arrival = ArrivalKind::OpenLoop;
    /**
     * Open-loop mean arrival rate in requests per virtual second.
     * <= 0 resolves to a fair share of ~60% accelerator utilization
     * at the tenant's simulated service time.
     */
    double qps = 0.0;
    /** Closed-loop concurrent clients. */
    std::uint32_t clients = 4;
    /** Closed-loop think time between reply and next request. */
    double thinkSeconds = 0.01;
    /** The tenant's guard decision policy (its QoS class). */
    GuardPolicySpec guardPolicy;
    /**
     * Probability that one batch (or armed-state probe) observes a
     * retention overage in the tenant's bank shard.
     */
    double faultRate = 0.0;
};

/** Configuration of one serving simulation. */
struct ServingConfig
{
    ServingConfig();

    /** The tenants sharing the accelerator. */
    std::vector<TenantSpec> tenants;
    /** Design point of the shared accelerator. */
    DesignKind design = DesignKind::RanaE5;
    /** Cell retention-time distribution of the eDRAM buffer. */
    RetentionDistribution retention =
        RetentionDistribution::typical65nm();
    /** Virtual admission horizon: arrivals stop after this. */
    double durationSeconds = 2.0;
    /**
     * Batch-coalescing window: the first queued request of a tenant
     * opens a window; everything the tenant queues inside it rides
     * the same batched forward. 0 disables coalescing — every
     * request is its own batch, exactly sequential service.
     */
    double batchWindowSeconds = 0.002;
    /** Maximum requests coalesced into one batch (lanes). */
    std::uint32_t maxBatch = 8;
    /** Admission-queue capacity across all tenants. */
    std::uint32_t queueCapacity = 64;
    /** Armed-tenant probe cadence (clean-interval evidence). */
    double guardProbeSeconds = 0.02;
    /** Closed-loop retry backoff after a shed request. */
    double shedRetrySeconds = 0.005;
    /**
     * Marginal service time of each extra batch lane, as a fraction
     * of the batch-of-1 service time (batching amortization).
     */
    double batchLaneCost = 0.25;
    /** TenantGuard escalation tax (see admission.hh). */
    double escalationTax = 0.02;
    /** Per-bit error rate injected into a faulted batch's lanes. */
    double injectedBitErrorRate = 2e-3;
    /**
     * Execute the data plane (batched forwards + accuracy). Off,
     * the run is timing-only: latency metrics are identical, the
     * accuracy columns read zero.
     */
    bool runForwards = true;
    /** Master seed for every RNG stream. */
    std::uint64_t seed = 1;
    /** Worker lanes of the data-plane fan-out (0 = hardware). */
    unsigned jobs = 0;
    /** Stand-in mini-model dataset (serving-tuned defaults). */
    DatasetConfig dataset;
    /** Stand-in mini-model trainer (serving-tuned defaults). */
    TrainerConfig trainer;
};

/**
 * Mixed AlexNet/VGG tenant specs in paper order: tenant i serves
 * AlexNet when i is even, VGG when odd, named "tenant<i>", with
 * `policy` as every tenant's guard policy and `fault_rate` as the
 * per-batch overage probability.
 */
std::vector<TenantSpec>
mixedTenantSpecs(std::uint32_t count, const GuardPolicySpec &policy,
                 double fault_rate);

/** Per-tenant serving statistics. */
struct TenantServingStats
{
    std::string name;
    std::string network;
    std::string policyName;
    std::string arrival;
    /** Resolved open-loop rate (auto-derived when spec.qps <= 0). */
    double qps = 0.0;
    /** The tenant's bank shard. */
    BankShard shard;
    /** Simulated batch-of-1 service time in seconds. */
    double serviceSeconds = 0.0;
    /** Arrival attempts (closed-loop retries count again). */
    std::uint64_t issued = 0;
    /** Requests accepted into the queue. */
    std::uint64_t admitted = 0;
    /** Requests refused because the tenant's guard was shedding. */
    std::uint64_t shedGuard = 0;
    /** Requests refused because the shared queue was full. */
    std::uint64_t shedQueue = 0;
    /** Requests served to completion. */
    std::uint64_t completed = 0;
    /** Batched forwards executed for this tenant. */
    std::uint64_t batches = 0;
    /** Completed requests that shared a batch with others. */
    std::uint64_t coalesced = 0;
    /** Largest batch (lanes) the tenant produced. */
    std::uint64_t maxBatchLanes = 0;
    /** Sampled retention overages in the tenant's shard. */
    std::uint64_t faults = 0;
    /** Guard-policy trips / re-disarms / escalations. */
    std::uint64_t trips = 0;
    std::uint64_t redisarms = 0;
    std::uint64_t escalations = 0;
    /** Requests whose batch was corrupted by an overage. */
    std::uint64_t corruptedRequests = 0;
    /** Corrupted or clean requests answered with a wrong class. */
    std::uint64_t wrongPredictions = 0;
    /** Latency percentiles over completed requests, milliseconds. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
    double meanMs = 0.0;
    /** Completed requests per virtual second of admission horizon. */
    double throughputRps = 0.0;
    /** Served top-1 accuracy (0 when the data plane was off). */
    double accuracy = 0.0;
};

/** Report of one serving run. */
struct ServingReport
{
    std::string designName;
    /** Admission horizon in virtual seconds. */
    double durationSeconds = 0.0;
    /** Virtual time of the last completion (drain included). */
    double horizonSeconds = 0.0;
    /** Completions across all tenants. */
    std::uint64_t totalCompleted = 0;
    /** Sheds across all tenants (guard + queue). */
    std::uint64_t totalShed = 0;
    /** Total completed / durationSeconds. */
    double totalThroughputRps = 0.0;
    /** Worst per-tenant p99 latency in milliseconds. */
    double worstP99Ms = 0.0;
    /** Peak admission-queue depth. */
    std::uint64_t peakQueueDepth = 0;
    /** Whether the data plane ran (accuracy columns meaningful). */
    bool forwardsRan = false;
    /** Per-tenant statistics, in tenant order. */
    std::vector<TenantServingStats> tenants;

    /** One-line human-readable summary. */
    std::string describe() const;

    /**
     * Markdown QoS table: one row per tenant with p50/p95/p99,
     * throughput, shed and guard counters — byte-identical per seed
     * for any thread-pool size.
     */
    std::string markdownTable() const;
};

/**
 * The report in canonical JSON: every field at full precision, in
 * fixed order. Two runs are "the same run" exactly when their
 * canonical bytes match — the determinism contract the tests and
 * the serving CI gate compare.
 */
std::string canonicalServingJson(const ServingReport &report);

/** Append the report's fields to an open JSON object. */
void writeServingReport(JsonWriter &json, const ServingReport &report);

/**
 * A prepared serving simulation: schedules simulated, bank shards
 * partitioned, stand-in models pretrained — the expensive products
 * of prepare() — plus run(), the cheap deterministic event loop, so
 * callers replay the same workload across seeds or thread-pool
 * sizes without re-training.
 */
class ServingSimulation
{
  public:
    /**
     * Prepare `config`: validate it, schedule + trace-simulate each
     * distinct network on the design point (the batch-of-1 service
     * time), partition the buffer's banks across tenants and
     * pretrain one mini model per distinct network. Fails with
     * ErrorCode::InvalidArgument on a degenerate config (no
     * tenants, a non-positive duration, an unknown network, more
     * tenants than banks) and with the scheduler's error when the
     * design cannot run a requested network.
     */
    static Result<ServingSimulation> prepare(ServingConfig config);

    /**
     * Run the virtual-time event loop once and return the report.
     * `jobs_override` > 0 forces that many data-plane lanes;
     * `timeline` (optional) receives per-tenant tracks on the
     * simulated-time axis. Deterministic: the report's canonical
     * JSON depends only on the prepared config and seed.
     */
    Result<ServingReport> run(unsigned jobs_override = 0,
                              ServingTimeline *timeline = nullptr)
        const;

    /** The prepared configuration (auto qps left unresolved). */
    const ServingConfig &config() const { return config_; }

    /** Resolved per-tenant open-loop rates. */
    const std::vector<double> &resolvedQps() const
    {
        return resolvedQps_;
    }

    /** Per-tenant bank shards. */
    const std::vector<BankShard> &shards() const { return shards_; }

    /** Per-tenant batch-of-1 service times in seconds. */
    const std::vector<double> &serviceSeconds() const
    {
        return serviceSeconds_;
    }

  private:
    /** One distinct served network's prepared products. */
    struct ServedModel
    {
        std::string network;
        MiniModelKind kind = MiniModelKind::MiniAlex;
        /** Simulated batch-of-1 inference time in seconds. */
        double executionSeconds = 0.0;
        /** Error-free fixed-point baseline accuracy. */
        double baselineAccuracy = 0.0;
        /** Immutable pre-quantized shared weight store. */
        WeightStore weights;
        /** Held-out test batch requests sample from. */
        Batch test;
        /** Fixed-point format of the store. */
        FixedPointFormat format = {12};
        /** Re-entrant skeleton bound to the shared store. */
        std::shared_ptr<Sequential> skeleton;
    };

    ServingSimulation() = default;

    ServingConfig config_;
    DesignPoint design_;
    /** One entry per distinct network, in first-use order. */
    std::vector<ServedModel> models_;
    /** Tenant index -> models_ index. */
    std::vector<std::size_t> tenantModel_;
    std::vector<BankShard> shards_;
    std::vector<double> serviceSeconds_;
    std::vector<double> resolvedQps_;
};

/** Convenience wrapper: prepare + one run. */
Result<ServingReport> runServing(const ServingConfig &config);

} // namespace rana

#endif // RANA_SERVING_SERVING_HH_
