/**
 * @file
 * Admission control for the multi-tenant serving engine: the bounded
 * request queue and the per-tenant guard state that turns the
 * reliability guard's decisions into QoS actions.
 *
 * Two shedding mechanisms protect the shared accelerator:
 *
 *  - the AdmissionQueue bounds the number of queued requests across
 *    all tenants; an arrival that finds the queue full is shed
 *    (open-loop clients lose the request, closed-loop clients retry
 *    after a backoff);
 *  - the TenantGuard wraps one GuardPolicy per tenant. A retention
 *    overage in the tenant's bank shard trips the policy: policies
 *    that answer KeepArmed (permanent, hysteresis) put the tenant in
 *    a shedding state — its arrivals are refused until the policy
 *    re-disarms — while BinnedEscalation answers Escalate, keeping
 *    the tenant admitted but taxing its service time with the
 *    refresh overhead of the shorter divider-bin interval.
 *
 * Both are consulted only from the single-threaded virtual-time
 * event loop and need no synchronization.
 */

#ifndef RANA_SERVING_ADMISSION_HH_
#define RANA_SERVING_ADMISSION_HH_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "edram/guard_policy.hh"

namespace rana {

/** One admitted inference request. */
struct ServingRequest
{
    /** Owning tenant index. */
    std::uint32_t tenant = 0;
    /** Per-tenant issue number (0-based). */
    std::uint64_t id = 0;
    /** Test-set sample the request asks to classify. */
    std::uint32_t sample = 0;
    /** Issuing closed-loop client (0 for open-loop tenants). */
    std::uint32_t client = 0;
    /** Virtual arrival time in seconds. */
    double arrivalSeconds = 0.0;
    /**
     * Engine-wide unique span id (1-based), threaded from admission
     * through batching to completion so one request's lifetime can
     * be followed across the timeline and the report.
     */
    std::uint64_t span = 0;
};

/** Bounded FIFO of admitted requests, shared by every tenant. */
class AdmissionQueue
{
  public:
    /** @param capacity maximum queued requests (>= 1). */
    explicit AdmissionQueue(std::uint32_t capacity);

    /** Whether the queue is at capacity. */
    bool full() const { return queue_.size() >= capacity_; }

    /** Requests currently queued across all tenants. */
    std::size_t depth() const { return queue_.size(); }

    /** Requests currently queued for one tenant. */
    std::size_t depthFor(std::uint32_t tenant) const;

    /** Largest depth() ever observed. */
    std::uint64_t peakDepth() const { return peak_; }

    /** Admit one request; false (and no change) when full. */
    bool admit(const ServingRequest &request);

    /**
     * Remove and return up to `max_lanes` queued requests of
     * `tenant`, oldest first (the batch-coalescing pull).
     */
    std::vector<ServingRequest> takeTenant(std::uint32_t tenant,
                                           std::uint32_t max_lanes);

  private:
    std::uint32_t capacity_;
    std::deque<ServingRequest> queue_;
    std::vector<std::uint64_t> perTenant_;
    std::uint64_t peak_ = 0;
};

/**
 * Per-tenant guard state: owns the tenant's GuardPolicy and maps its
 * GuardActions onto the two serving-level QoS reactions (shed or
 * escalate). The certified refresh interval is the design point's
 * global interval; an escalated tenant runs its shard at the
 * policy's divider-bin interval instead, which costs extra refresh
 * operations modeled as a multiplicative service-time tax.
 */
class TenantGuard
{
  public:
    /**
     * @param policy            the tenant's decision policy (owned)
     * @param certified_interval the design's refresh interval (s)
     * @param escalation_tax    service-time tax per unit of extra
     *                          refresh rate (interval ratio - 1)
     */
    TenantGuard(std::unique_ptr<GuardPolicy> policy,
                double certified_interval, double escalation_tax);

    /** A retention overage hit the tenant's shard. */
    void onOverage();

    /** One interval passed without an overage (armed tenants only). */
    void onCleanInterval();

    /** Whether new arrivals for this tenant are refused. */
    bool shedding() const { return shedding_; }

    /** Whether the tenant runs on a divider-bin interval. */
    bool escalated() const { return escalated_; }

    /** Whether any guard reaction is active. */
    bool armed() const { return shedding_ || escalated_; }

    /** Service-time multiplier (> 1 only while escalated). */
    double serviceMultiplier() const;

    /** Overage trips delivered to the policy. */
    std::uint64_t trips() const { return trips_; }

    /** Times the policy re-disarmed the tenant. */
    std::uint64_t redisarms() const { return redisarms_; }

    /** Times the policy escalated onto a divider bin. */
    std::uint64_t escalations() const { return escalations_; }

    /** The wrapped policy. */
    const GuardPolicy &policy() const { return *policy_; }

  private:
    void apply(const GuardAction &action);

    std::unique_ptr<GuardPolicy> policy_;
    double certifiedInterval_;
    double escalationTax_;
    bool shedding_ = false;
    bool escalated_ = false;
    double escalatedInterval_ = 0.0;
    std::uint64_t trips_ = 0;
    std::uint64_t redisarms_ = 0;
    std::uint64_t escalations_ = 0;
};

} // namespace rana

#endif // RANA_SERVING_ADMISSION_HH_
