#include "serving/admission.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rana {

AdmissionQueue::AdmissionQueue(std::uint32_t capacity)
    : capacity_(std::max<std::uint32_t>(capacity, 1))
{
}

std::size_t
AdmissionQueue::depthFor(std::uint32_t tenant) const
{
    if (tenant >= perTenant_.size())
        return 0;
    return perTenant_[tenant];
}

bool
AdmissionQueue::admit(const ServingRequest &request)
{
    if (full())
        return false;
    queue_.push_back(request);
    if (request.tenant >= perTenant_.size())
        perTenant_.resize(request.tenant + 1, 0);
    ++perTenant_[request.tenant];
    peak_ = std::max<std::uint64_t>(peak_, queue_.size());
    return true;
}

std::vector<ServingRequest>
AdmissionQueue::takeTenant(std::uint32_t tenant,
                           std::uint32_t max_lanes)
{
    std::vector<ServingRequest> taken;
    if (max_lanes == 0)
        return taken;
    for (auto it = queue_.begin();
         it != queue_.end() && taken.size() < max_lanes;) {
        if (it->tenant == tenant) {
            taken.push_back(*it);
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    if (tenant < perTenant_.size())
        perTenant_[tenant] -= taken.size();
    return taken;
}

TenantGuard::TenantGuard(std::unique_ptr<GuardPolicy> policy,
                         double certified_interval,
                         double escalation_tax)
    : policy_(std::move(policy)),
      certifiedInterval_(certified_interval),
      escalationTax_(escalation_tax)
{
    RANA_ASSERT(policy_ != nullptr, "tenant guard needs a policy");
    RANA_ASSERT(certifiedInterval_ > 0.0,
                "certified refresh interval must be positive");
}

void
TenantGuard::onOverage()
{
    ++trips_;
    // The serving engine treats a tenant's shard as one bank group;
    // activations dominate the buffered working set, so the policy's
    // per-type state is keyed on Output.
    apply(policy_->onTrip(DataType::Output));
    // A trip can never leave the tenant un-guarded: a KeepArmed
    // answer arms the shedding state, an Escalate answer arms the
    // divider-bin state (apply() already did either).
}

void
TenantGuard::onCleanInterval()
{
    if (!armed())
        return;
    apply(policy_->onCleanInterval(DataType::Output));
}

double
TenantGuard::serviceMultiplier() const
{
    if (!escalated_ || escalatedInterval_ <= 0.0)
        return 1.0;
    // Refresh operations scale with 1 / interval: running the shard
    // at the bin interval instead of the certified one multiplies
    // the refresh rate by certified / bin, and the extra pulses
    // steal accelerator cycles in proportion.
    const double extra =
        certifiedInterval_ / escalatedInterval_ - 1.0;
    return 1.0 + escalationTax_ * std::max(extra, 0.0);
}

void
TenantGuard::apply(const GuardAction &action)
{
    switch (action.kind) {
      case GuardActionKind::KeepArmed:
        if (!escalated_)
            shedding_ = true;
        break;
      case GuardActionKind::Redisarm:
        if (shedding_ || escalated_)
            ++redisarms_;
        shedding_ = false;
        escalated_ = false;
        escalatedInterval_ = 0.0;
        break;
      case GuardActionKind::Escalate:
        ++escalations_;
        shedding_ = false;
        escalated_ = true;
        escalatedInterval_ = action.intervalSeconds;
        break;
    }
}

} // namespace rana
