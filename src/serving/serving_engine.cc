#include "serving/serving.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <utility>

#include "nn/model_zoo.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics_registry.hh"
#include "sim/trace_timeline.hh"
#include "train/loss.hh"
#include "train/mini_models.hh"
#include "train/trial_batch.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"

namespace rana {

namespace {

/** Mini model standing in for a paper benchmark network. */
Result<MiniModelKind>
miniModelForNetwork(const std::string &network)
{
    if (network == "AlexNet")
        return MiniModelKind::MiniAlex;
    if (network == "VGG")
        return MiniModelKind::MiniVgg;
    if (network == "GoogLeNet")
        return MiniModelKind::MiniInception;
    if (network == "ResNet")
        return MiniModelKind::MiniRes;
    return makeError(ErrorCode::InvalidArgument,
                     "no serving stand-in model for network '",
                     network,
                     "' (expected AlexNet, VGG, GoogLeNet or ResNet)");
}

/** The kinds of virtual-time events the loop processes. */
enum class EventKind {
    /** A tenant issues (or retries) one request. */
    Arrival,
    /** A tenant's batching window elapsed. */
    WindowClose,
    /** The accelerator finished the running batch. */
    BatchDone,
    /** An armed tenant's shard observed one refresh interval. */
    GuardProbe,
};

/** One scheduled virtual-time event. */
struct Event
{
    double seconds = 0.0;
    /** Monotonic tiebreaker: equal-time events pop in push order. */
    std::uint64_t seq = 0;
    EventKind kind = EventKind::Arrival;
    std::uint32_t tenant = 0;
    /** Closed-loop client of an Arrival. */
    std::uint32_t client = 0;
    /** WindowClose: window generation. BatchDone: batch index. */
    std::uint64_t id = 0;
};

/** Min-heap order on (seconds, seq). */
struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.seconds != b.seconds)
            return a.seconds > b.seconds;
        return a.seq > b.seq;
    }
};

/** One formed batch: the control-plane record the data plane replays. */
struct BatchRecord
{
    std::uint32_t tenant = 0;
    std::vector<ServingRequest> requests;
    double startSeconds = 0.0;
    double endSeconds = 0.0;
    /** A retention overage corrupted this batch's lanes. */
    bool corrupted = false;
    /** Base seed of the batch's per-lane injector streams. */
    std::uint64_t faultSeed = 0;
};

/** Mutable per-tenant control-plane state of one run. */
struct TenantState
{
    TenantState(std::unique_ptr<GuardPolicy> policy,
                double certified_interval, double escalation_tax,
                std::uint64_t arrival_seed, std::uint64_t sample_seed,
                std::uint64_t fault_seed)
        : guard(std::move(policy), certified_interval,
                escalation_tax),
          arrivalRng(arrival_seed), sampleRng(sample_seed),
          faultRng(fault_seed)
    {
    }

    TenantGuard guard;
    Rng arrivalRng;
    Rng sampleRng;
    Rng faultRng;
    bool windowOpen = false;
    std::uint64_t windowGen = 0;
    bool probing = false;
    std::uint64_t nextRequestId = 0;
    std::uint64_t issued = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shedGuard = 0;
    std::uint64_t shedQueue = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t maxBatchLanes = 0;
    std::uint64_t faults = 0;
    std::uint64_t corruptedRequests = 0;
    std::vector<double> latenciesMs;
};

/** Latency histogram bounds in seconds (log scale, 1ms..10s). */
const std::vector<double> &
latencySecondsBounds()
{
    static const std::vector<double> bounds = {
        1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0};
    return bounds;
}

} // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::OpenLoop:
        return "open-loop";
      case ArrivalKind::ClosedLoop:
        return "closed-loop";
    }
    panic("unreachable arrival kind");
}

ServingConfig::ServingConfig()
{
    // Serving-tuned stand-in scale: the engine measures queueing and
    // guard dynamics, not model quality, so the mini models train in
    // seconds (same scale the sharded-sweep bench uses).
    dataset.trainSamples = 256;
    dataset.testSamples = 128;
    dataset.imageSize = 12;
    dataset.numClasses = 4;
    trainer.pretrainEpochs = 6;
    trainer.retrainEpochs = 2;
    trainer.evalRepeats = 2;
}

std::vector<TenantSpec>
mixedTenantSpecs(std::uint32_t count, const GuardPolicySpec &policy,
                 double fault_rate)
{
    std::vector<TenantSpec> specs;
    specs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        TenantSpec spec;
        spec.name = "tenant" + std::to_string(i);
        spec.network = i % 2 == 0 ? "AlexNet" : "VGG";
        spec.guardPolicy = policy;
        spec.faultRate = fault_rate;
        specs.push_back(std::move(spec));
    }
    return specs;
}

Result<ServingSimulation>
ServingSimulation::prepare(ServingConfig config)
{
    if (config.tenants.empty()) {
        return makeError(ErrorCode::InvalidArgument,
                         "serving needs at least one tenant");
    }
    if (config.durationSeconds <= 0.0) {
        return makeError(ErrorCode::InvalidArgument,
                         "serving duration must be positive, got ",
                         config.durationSeconds);
    }
    if (config.maxBatch == 0) {
        return makeError(ErrorCode::InvalidArgument,
                         "serving max batch must be at least 1");
    }
    if (config.batchWindowSeconds < 0.0) {
        return makeError(ErrorCode::InvalidArgument,
                         "serving batch window must be >= 0, got ",
                         config.batchWindowSeconds);
    }
    for (const TenantSpec &spec : config.tenants) {
        if (spec.faultRate < 0.0 || spec.faultRate > 1.0) {
            return makeError(ErrorCode::InvalidArgument,
                             "tenant '", spec.name,
                             "' fault rate must be in [0, 1], got ",
                             spec.faultRate);
        }
        if (spec.arrival == ArrivalKind::ClosedLoop &&
            spec.clients == 0) {
            return makeError(ErrorCode::InvalidArgument,
                             "closed-loop tenant '", spec.name,
                             "' needs at least one client");
        }
    }
    ScopedSpan span("serving", "prepare");

    ServingSimulation sim;
    sim.config_ = std::move(config);
    const ServingConfig &cfg = sim.config_;
    sim.design_ = makeDesignPoint(cfg.design, cfg.retention);

    const std::uint32_t tenant_count =
        static_cast<std::uint32_t>(cfg.tenants.size());
    Result<std::vector<BankShard>> shards = partitionBanks(
        sim.design_.config.buffer.numBanks, tenant_count);
    if (!shards.ok())
        return shards.error();
    sim.shards_ = std::move(shards).value();

    // Every tenant's guard policy is built per run; validate the
    // specs once here so run() cannot fail on configuration.
    for (std::uint32_t t = 0; t < tenant_count; ++t) {
        Result<std::unique_ptr<GuardPolicy>> policy = makeGuardPolicy(
            cfg.tenants[t].guardPolicy, sim.design_.config.buffer,
            cfg.retention, sim.design_.failureRate, cfg.seed + t);
        if (!policy.ok())
            return policy.error();
    }

    // One prepared model per distinct network, in first-use order:
    // the schedule is simulated (the batch-of-1 service time) and
    // the stand-in trained once, however many tenants share it.
    FaultCampaignConfig campaign;
    campaign.dataset = cfg.dataset;
    campaign.trainer = cfg.trainer;
    campaign.trainer.seed = cfg.seed;
    for (std::uint32_t t = 0; t < tenant_count; ++t) {
        const std::string &network = cfg.tenants[t].network;
        std::size_t index = sim.models_.size();
        for (std::size_t m = 0; m < sim.models_.size(); ++m) {
            if (sim.models_[m].network == network)
                index = m;
        }
        if (index == sim.models_.size()) {
            Result<NetworkModel> model = makeBenchmarkChecked(network);
            if (!model.ok())
                return model.error();
            Result<CampaignExposures> exposures = simulateExposures(
                sim.design_, model.value(), campaign);
            if (!exposures.ok())
                return exposures.error();
            Result<MiniModelKind> kind = miniModelForNetwork(network);
            if (!kind.ok())
                return kind.error();

            ServedModel served;
            served.network = network;
            served.kind = kind.value();
            served.executionSeconds =
                exposures.value().executionSeconds;
            served.format = cfg.trainer.format;
            if (cfg.runForwards) {
                RetentionAwareTrainer trainer(served.kind, cfg.dataset,
                                              campaign.trainer);
                served.baselineAccuracy = trainer.pretrain();
                served.weights =
                    trainer.exportWeightsShared(&served.format);
                served.test = trainer.dataset().testBatch();
                // One skeleton serves every batch: eval-mode forward
                // passes are re-entrant and the bound store is
                // immutable, exactly as in the fault campaign.
                Rng skeleton_rng(cfg.seed ^ 0x9e3779b97f4a7c15ULL);
                served.skeleton = makeMiniModel(
                    served.kind, cfg.dataset.imageSize,
                    cfg.dataset.numClasses, skeleton_rng);
                bindSharedWeights(*served.skeleton, *served.weights);
            }
            sim.models_.push_back(std::move(served));
        }
        sim.tenantModel_.push_back(index);
    }

    sim.serviceSeconds_.reserve(tenant_count);
    sim.resolvedQps_.reserve(tenant_count);
    for (std::uint32_t t = 0; t < tenant_count; ++t) {
        const double service =
            sim.models_[sim.tenantModel_[t]].executionSeconds;
        RANA_ASSERT(service > 0.0,
                    "simulated service time must be positive");
        sim.serviceSeconds_.push_back(service);
        const double spec_qps = cfg.tenants[t].qps;
        // Auto rate: split ~60% accelerator utilization evenly, so
        // the default workload queues without collapsing.
        sim.resolvedQps_.push_back(
            spec_qps > 0.0
                ? spec_qps
                : 0.6 / (static_cast<double>(tenant_count) * service));
    }
    return sim;
}

Result<ServingReport>
ServingSimulation::run(unsigned jobs_override,
                       ServingTimeline *timeline) const
{
    ScopedSpan span("serving", "run");
    const ServingConfig &cfg = config_;
    const std::uint32_t tenant_count =
        static_cast<std::uint32_t>(cfg.tenants.size());
    const double duration = cfg.durationSeconds;
    const double retry = std::max(cfg.shedRetrySeconds, 1e-6);

    // --- Control plane: the serial virtual-time event loop. Every
    // stochastic draw happens here, in event order, so the schedule
    // is one deterministic function of the prepared config.
    std::vector<TenantState> tenants;
    tenants.reserve(tenant_count);
    const std::uint64_t base = cfg.seed * 1000003;
    for (std::uint32_t t = 0; t < tenant_count; ++t) {
        Result<std::unique_ptr<GuardPolicy>> policy = makeGuardPolicy(
            cfg.tenants[t].guardPolicy, design_.config.buffer,
            cfg.retention, design_.failureRate, cfg.seed + t);
        RANA_ASSERT(policy.ok(),
                    "guard policy spec validated in prepare()");
        tenants.emplace_back(std::move(policy).value(),
                             design_.options.refreshIntervalSeconds,
                             cfg.escalationTax, base + t * 8 + 1,
                             base + t * 8 + 2, base + t * 8 + 3);
        if (timeline != nullptr)
            timeline->addTenantTrack(t, cfg.tenants[t].name);
    }

    std::priority_queue<Event, std::vector<Event>, EventAfter> events;
    std::uint64_t seq = 0;
    auto push = [&](double seconds, EventKind kind,
                    std::uint32_t tenant, std::uint32_t client = 0,
                    std::uint64_t id = 0) {
        events.push(Event{seconds, seq++, kind, tenant, client, id});
    };

    AdmissionQueue queue(cfg.queueCapacity);
    /** Next request span id; unique across tenants by issue order. */
    std::uint64_t nextSpanId = 1;
    std::vector<BatchRecord> batches;
    /** Formed batches waiting for the accelerator, FIFO. */
    std::deque<std::size_t> ready;
    bool acceleratorBusy = false;
    double horizon = 0.0;

    // Seed the arrival processes.
    for (std::uint32_t t = 0; t < tenant_count; ++t) {
        const TenantSpec &spec = cfg.tenants[t];
        if (spec.arrival == ArrivalKind::OpenLoop) {
            const double gap =
                -std::log(1.0 - tenants[t].arrivalRng.uniform()) /
                resolvedQps_[t];
            if (gap < duration)
                push(gap, EventKind::Arrival, t);
        } else {
            for (std::uint32_t c = 0; c < spec.clients; ++c) {
                const double start = tenants[t].arrivalRng.uniform() *
                                     spec.thinkSeconds;
                push(std::min(start, duration * 0.5),
                     EventKind::Arrival, t, c);
            }
        }
    }

    auto tryStartBatch = [&](double now) {
        if (acceleratorBusy || ready.empty())
            return;
        const std::size_t index = ready.front();
        ready.pop_front();
        BatchRecord &batch = batches[index];
        TenantState &state = tenants[batch.tenant];
        const TenantSpec &spec = cfg.tenants[batch.tenant];

        // The batch occupies the tenant's bank shard for its whole
        // service; one deterministic draw decides whether a weak
        // cell in the shard decayed past the refresh interval.
        batch.faultSeed = base + 500009 * (index + 1);
        batch.corrupted = spec.faultRate > 0.0 &&
                          state.faultRng.uniform() < spec.faultRate;
        if (batch.corrupted) {
            ++state.faults;
            state.guard.onOverage();
            if (timeline != nullptr)
                timeline->instant(batch.tenant, now, "overage");
            if (state.guard.armed() && !state.probing &&
                now + cfg.guardProbeSeconds < duration) {
                state.probing = true;
                push(now + cfg.guardProbeSeconds,
                     EventKind::GuardProbe, batch.tenant);
            }
        } else if (state.guard.armed()) {
            state.guard.onCleanInterval();
        }

        const std::uint32_t lanes =
            static_cast<std::uint32_t>(batch.requests.size());
        const double service =
            serviceSeconds_[batch.tenant] *
            (1.0 + (lanes - 1) * cfg.batchLaneCost) *
            state.guard.serviceMultiplier();
        batch.startSeconds = now;
        batch.endSeconds = now + service;
        acceleratorBusy = true;
        push(batch.endSeconds, EventKind::BatchDone, batch.tenant, 0,
             index);
    };

    auto formBatch = [&](std::uint32_t tenant, double now) {
        TenantState &state = tenants[tenant];
        state.windowOpen = false;
        std::vector<ServingRequest> taken =
            queue.takeTenant(tenant, cfg.maxBatch);
        if (taken.empty())
            return;
        if (timeline != nullptr) {
            timeline->queueDepth(
                now, static_cast<double>(queue.depth()));
        }
        BatchRecord batch;
        batch.tenant = tenant;
        batch.requests = std::move(taken);
        batches.push_back(std::move(batch));
        ready.push_back(batches.size() - 1);
        tryStartBatch(now);
    };

    auto arrive = [&](double now, std::uint32_t tenant,
                      std::uint32_t client) {
        TenantState &state = tenants[tenant];
        const TenantSpec &spec = cfg.tenants[tenant];
        ++state.issued;

        if (state.guard.shedding()) {
            ++state.shedGuard;
            if (timeline != nullptr)
                timeline->instant(tenant, now, "shed-guard");
            if (spec.arrival == ArrivalKind::ClosedLoop &&
                now + retry < duration) {
                push(now + retry, EventKind::Arrival, tenant, client);
            }
            return;
        }
        ServingRequest request;
        request.tenant = tenant;
        request.id = state.nextRequestId++;
        request.sample = static_cast<std::uint32_t>(
            state.sampleRng.uniformInt(cfg.dataset.testSamples));
        request.client = client;
        request.arrivalSeconds = now;
        request.span = nextSpanId++;
        if (!queue.admit(request)) {
            ++state.shedQueue;
            if (timeline != nullptr)
                timeline->instant(tenant, now, "shed-queue");
            if (spec.arrival == ArrivalKind::ClosedLoop &&
                now + retry < duration) {
                push(now + retry, EventKind::Arrival, tenant, client);
            }
            return;
        }
        ++state.admitted;
        if (timeline != nullptr) {
            timeline->queueDepth(
                now, static_cast<double>(queue.depth()));
        }
        if (cfg.batchWindowSeconds <= 0.0) {
            formBatch(tenant, now);
            return;
        }
        if (!state.windowOpen) {
            state.windowOpen = true;
            ++state.windowGen;
            push(now + cfg.batchWindowSeconds, EventKind::WindowClose,
                 tenant, 0, state.windowGen);
        }
        if (queue.depthFor(tenant) >= cfg.maxBatch)
            formBatch(tenant, now);
    };

    while (!events.empty()) {
        const Event event = events.top();
        events.pop();
        const double now = event.seconds;
        TenantState &state = tenants[event.tenant];
        const TenantSpec &spec = cfg.tenants[event.tenant];

        switch (event.kind) {
          case EventKind::Arrival: {
            if (spec.arrival == ArrivalKind::OpenLoop) {
                const double gap =
                    -std::log(1.0 - state.arrivalRng.uniform()) /
                    resolvedQps_[event.tenant];
                if (now + gap < duration) {
                    push(now + gap, EventKind::Arrival, event.tenant);
                }
            }
            arrive(now, event.tenant, event.client);
            break;
          }
          case EventKind::WindowClose: {
            if (state.windowOpen && state.windowGen == event.id)
                formBatch(event.tenant, now);
            break;
          }
          case EventKind::BatchDone: {
            BatchRecord &batch = batches[event.id];
            const std::uint32_t lanes =
                static_cast<std::uint32_t>(batch.requests.size());
            ++state.batches;
            state.maxBatchLanes =
                std::max<std::uint64_t>(state.maxBatchLanes, lanes);
            for (const ServingRequest &request : batch.requests) {
                ++state.completed;
                state.latenciesMs.push_back(
                    (now - request.arrivalSeconds) * 1e3);
                if (timeline != nullptr) {
                    timeline->requestSpan(event.tenant, request.span,
                                          request.arrivalSeconds,
                                          now);
                }
                if (lanes > 1)
                    ++state.coalesced;
                if (batch.corrupted)
                    ++state.corruptedRequests;
                if (spec.arrival == ArrivalKind::ClosedLoop &&
                    now + spec.thinkSeconds < duration) {
                    push(now + spec.thinkSeconds, EventKind::Arrival,
                         event.tenant, request.client);
                }
            }
            if (timeline != nullptr) {
                timeline->batchSpan(
                    event.tenant, batch.startSeconds, now,
                    spec.network + " x" + std::to_string(lanes) +
                        (batch.corrupted ? " (corrupted)" : ""));
            }
            horizon = std::max(horizon, now);
            acceleratorBusy = false;
            tryStartBatch(now);
            break;
          }
          case EventKind::GuardProbe: {
            if (!state.guard.armed()) {
                state.probing = false;
                break;
            }
            if (spec.faultRate > 0.0 &&
                state.faultRng.uniform() < spec.faultRate) {
                ++state.faults;
                state.guard.onOverage();
            } else {
                state.guard.onCleanInterval();
            }
            if (state.guard.armed() &&
                now + cfg.guardProbeSeconds < duration) {
                push(now + cfg.guardProbeSeconds,
                     EventKind::GuardProbe, event.tenant);
            } else {
                state.probing = false;
            }
            break;
          }
        }
    }
    RANA_ASSERT(ready.empty() && !acceleratorBusy,
                "event loop drained with work pending");

    // --- Data plane: replay every batch as one lane-major batched
    // forward. Batches fan out across the pool into per-batch slots,
    // so the accuracy results are independent of the lane count.
    std::vector<std::vector<std::uint8_t>> correct(batches.size());
    if (cfg.runForwards && !batches.empty()) {
        const unsigned jobs =
            jobs_override > 0
                ? jobs_override
                : (cfg.jobs == 0 ? hardwareJobs() : cfg.jobs);
        parallelFor(batches.size(), jobs, [&](std::size_t b) {
            const BatchRecord &batch = batches[b];
            const ServedModel &model =
                models_[tenantModel_[batch.tenant]];
            const std::uint32_t lanes =
                static_cast<std::uint32_t>(batch.requests.size());

            std::vector<BitErrorInjector> act;
            std::vector<BitErrorInjector> weight;
            TrialForwardContext ctx;
            ctx.quant = &model.format;
            ctx.weightsPreQuantized = true;
            if (batch.corrupted) {
                act.reserve(lanes);
                weight.reserve(lanes);
                for (std::uint32_t l = 0; l < lanes; ++l) {
                    act.emplace_back(cfg.injectedBitErrorRate,
                                     batch.faultSeed + l * 2 + 1);
                    weight.emplace_back(cfg.injectedBitErrorRate,
                                        batch.faultSeed + l * 2 + 2);
                }
                for (std::uint32_t l = 0; l < lanes; ++l) {
                    ctx.injectors.push_back(&act[l]);
                    ctx.weightInjectors.push_back(&weight[l]);
                }
            } else {
                ctx.injectors.assign(lanes, nullptr);
                ctx.weightInjectors.assign(lanes, nullptr);
            }

            std::vector<std::uint32_t> samples;
            samples.reserve(lanes);
            for (const ServingRequest &request : batch.requests)
                samples.push_back(request.sample);
            const Tensor stacked =
                packSampleLanes(model.test.images, samples);
            const Tensor logits =
                model.skeleton->forwardTrials(stacked, ctx);
            correct[b].resize(lanes, 0);
            for (std::uint32_t l = 0; l < lanes; ++l) {
                const Tensor lane = extractTrialLane(logits, l);
                const LossResult loss = softmaxCrossEntropy(
                    lane, {model.test.labels[samples[l]]});
                correct[b][l] = loss.correct > 0 ? 1 : 0;
            }
        });
    }

    // --- Report assembly and metrics, serially on this thread so
    // registry contents are identical for any pool size.
    ServingReport report;
    report.designName = design_.name;
    report.durationSeconds = duration;
    report.horizonSeconds = horizon;
    report.peakQueueDepth = queue.peakDepth();
    report.forwardsRan = cfg.runForwards;

    std::vector<std::uint64_t> wrong(tenant_count, 0);
    std::vector<std::uint64_t> evaluated(tenant_count, 0);
    for (std::size_t b = 0; b < batches.size(); ++b) {
        for (std::size_t l = 0; l < correct[b].size(); ++l) {
            ++evaluated[batches[b].tenant];
            if (correct[b][l] == 0)
                ++wrong[batches[b].tenant];
        }
    }

    MetricsRegistry &registry = MetricsRegistry::global();
    MetricsRegistry::Histogram &latency = registry.histogram(
        "serving_latency_seconds", latencySecondsBounds());
    for (std::uint32_t t = 0; t < tenant_count; ++t) {
        const TenantState &state = tenants[t];
        const TenantSpec &spec = cfg.tenants[t];
        TenantServingStats stats;
        stats.name = spec.name;
        stats.network = spec.network;
        stats.policyName = state.guard.policy().name();
        stats.arrival = arrivalKindName(spec.arrival);
        stats.qps = resolvedQps_[t];
        stats.shard = shards_[t];
        stats.serviceSeconds = serviceSeconds_[t];
        stats.issued = state.issued;
        stats.admitted = state.admitted;
        stats.shedGuard = state.shedGuard;
        stats.shedQueue = state.shedQueue;
        stats.completed = state.completed;
        stats.batches = state.batches;
        stats.coalesced = state.coalesced;
        stats.maxBatchLanes = state.maxBatchLanes;
        stats.faults = state.faults;
        stats.trips = state.guard.trips();
        stats.redisarms = state.guard.redisarms();
        stats.escalations = state.guard.escalations();
        stats.corruptedRequests = state.corruptedRequests;
        stats.wrongPredictions = wrong[t];
        if (!state.latenciesMs.empty()) {
            stats.p50Ms = percentile(state.latenciesMs, 50.0);
            stats.p95Ms = percentile(state.latenciesMs, 95.0);
            stats.p99Ms = percentile(state.latenciesMs, 99.0);
            stats.maxMs = *std::max_element(
                state.latenciesMs.begin(), state.latenciesMs.end());
            double sum = 0.0;
            for (const double ms : state.latenciesMs)
                sum += ms;
            stats.meanMs =
                sum / static_cast<double>(state.latenciesMs.size());
        }
        stats.throughputRps =
            static_cast<double>(state.completed) / duration;
        stats.accuracy =
            evaluated[t] > 0
                ? 1.0 - static_cast<double>(wrong[t]) /
                            static_cast<double>(evaluated[t])
                : 0.0;

        report.totalCompleted += stats.completed;
        report.totalShed += stats.shedGuard + stats.shedQueue;
        report.worstP99Ms = std::max(report.worstP99Ms, stats.p99Ms);

        registry.counter("serving_requests_completed_total")
            .add(stats.completed);
        registry.counter("serving_requests_shed_guard_total")
            .add(stats.shedGuard);
        registry.counter("serving_requests_shed_queue_total")
            .add(stats.shedQueue);
        registry.counter("serving_batches_total").add(stats.batches);
        registry.counter("serving_requests_coalesced_total")
            .add(stats.coalesced);
        registry.counter("serving_guard_trips_total")
            .add(stats.trips);
        registry.counter("serving_corrupted_requests_total")
            .add(stats.corruptedRequests);
        registry.counter("serving_tenant_" + spec.name +
                         "_completed_total")
            .add(stats.completed);
        registry.counter("serving_tenant_" + spec.name + "_shed_total")
            .add(stats.shedGuard + stats.shedQueue);
        for (const double ms : state.latenciesMs)
            latency.observe(ms * 1e-3);

        report.tenants.push_back(std::move(stats));
    }
    report.totalThroughputRps =
        static_cast<double>(report.totalCompleted) / duration;
    registry.gauge("serving_queue_depth_peak")
        .setMax(static_cast<double>(report.peakQueueDepth));
    return report;
}

Result<ServingReport>
runServing(const ServingConfig &config)
{
    Result<ServingSimulation> sim = ServingSimulation::prepare(config);
    if (!sim.ok())
        return sim.error();
    return sim.value().run();
}

} // namespace rana
