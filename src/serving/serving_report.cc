#include "serving/serving.hh"

#include <cstdio>
#include <sstream>

#include "util/json_writer.hh"

namespace rana {

namespace {

/** Fixed three-decimal rendering for the markdown QoS table. */
std::string
fixed3(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
    return buffer;
}

void
writeTenantStats(JsonWriter &json, const TenantServingStats &stats)
{
    json.field("name", stats.name);
    json.field("network", stats.network);
    json.field("policy", stats.policyName);
    json.field("arrival", stats.arrival);
    json.field("qps", stats.qps);
    json.field("shard_first_bank",
               static_cast<std::uint64_t>(stats.shard.firstBank));
    json.field("shard_banks",
               static_cast<std::uint64_t>(stats.shard.banks));
    json.field("service_seconds", stats.serviceSeconds);
    json.field("issued", stats.issued);
    json.field("admitted", stats.admitted);
    json.field("shed_guard", stats.shedGuard);
    json.field("shed_queue", stats.shedQueue);
    json.field("completed", stats.completed);
    json.field("batches", stats.batches);
    json.field("coalesced", stats.coalesced);
    json.field("max_batch_lanes", stats.maxBatchLanes);
    json.field("faults", stats.faults);
    json.field("trips", stats.trips);
    json.field("redisarms", stats.redisarms);
    json.field("escalations", stats.escalations);
    json.field("corrupted_requests", stats.corruptedRequests);
    json.field("wrong_predictions", stats.wrongPredictions);
    json.field("p50_ms", stats.p50Ms);
    json.field("p95_ms", stats.p95Ms);
    json.field("p99_ms", stats.p99Ms);
    json.field("max_ms", stats.maxMs);
    json.field("mean_ms", stats.meanMs);
    json.field("throughput_rps", stats.throughputRps);
    json.field("accuracy", stats.accuracy);
}

} // namespace

std::string
ServingReport::describe() const
{
    std::ostringstream oss;
    oss << designName << " served " << tenants.size() << " tenants: "
        << totalCompleted << " requests in " << durationSeconds
        << "s (" << totalThroughputRps << " rps, worst p99 "
        << worstP99Ms << " ms, " << totalShed << " shed, peak queue "
        << peakQueueDepth << ")";
    return oss.str();
}

std::string
ServingReport::markdownTable() const
{
    std::ostringstream oss;
    oss << "| tenant | network | policy | p50 ms | p95 ms | p99 ms "
           "| rps | completed | shed | trips | accuracy |\n";
    oss << "|---|---|---|---|---|---|---|---|---|---|---|\n";
    for (const TenantServingStats &stats : tenants) {
        oss << "| " << stats.name << " | " << stats.network << " | "
            << stats.policyName << " | " << fixed3(stats.p50Ms)
            << " | " << fixed3(stats.p95Ms) << " | "
            << fixed3(stats.p99Ms) << " | "
            << fixed3(stats.throughputRps) << " | " << stats.completed
            << " | " << stats.shedGuard + stats.shedQueue << " | "
            << stats.trips << " | " << fixed3(stats.accuracy)
            << " |\n";
    }
    return oss.str();
}

void
writeServingReport(JsonWriter &json, const ServingReport &report)
{
    json.field("design", report.designName);
    json.field("duration_seconds", report.durationSeconds);
    json.field("horizon_seconds", report.horizonSeconds);
    json.field("total_completed", report.totalCompleted);
    json.field("total_shed", report.totalShed);
    json.field("total_throughput_rps", report.totalThroughputRps);
    json.field("worst_p99_ms", report.worstP99Ms);
    json.field("peak_queue_depth", report.peakQueueDepth);
    json.field("forwards_ran", report.forwardsRan);
    json.beginArray("tenants");
    for (const TenantServingStats &stats : report.tenants) {
        json.beginObject();
        writeTenantStats(json, stats);
        json.endObject();
    }
    json.endArray();
}

std::string
canonicalServingJson(const ServingReport &report)
{
    JsonWriter json;
    json.beginObject();
    writeServingReport(json, report);
    json.endObject();
    return json.str();
}

} // namespace rana
