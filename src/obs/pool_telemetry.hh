/**
 * @file
 * Bridge from ThreadPool's telemetry interface to the metrics
 * registry: queue depth gauge, task count/latency, parallelFor fan-
 * out. util cannot link against obs, so the pool only exposes the
 * observer hook and this module installs the metrics-backed
 * implementation.
 */

#ifndef RANA_OBS_POOL_TELEMETRY_HH_
#define RANA_OBS_POOL_TELEMETRY_HH_

namespace rana {

/**
 * Install the metrics-backed pool observer on ThreadPool (idempotent;
 * the observer lives for the whole process). Feeds:
 *  - gauge pool_queue_depth / pool_queue_depth_peak,
 *  - counter pool_tasks_total,
 *  - histogram pool_task_seconds,
 *  - counters pool_parallel_for_total / pool_parallel_for_items_total.
 */
void installPoolTelemetry();

} // namespace rana

#endif // RANA_OBS_POOL_TELEMETRY_HH_
