/**
 * @file
 * Cross-process telemetry: the payload schemas that carry a worker
 * process's observability state over the subprocess frame protocol,
 * and the snapshot algebra (parse, merge, diff) shared by the sweep
 * coordinator, the rana_obs CLI and the tests.
 *
 * Three JSON document schemas live here:
 *
 *  - "rana-telemetry-1": one worker telemetry export — the worker's
 *    MetricsRegistry snapshot, its flight-recorder ring and the
 *    Chrome-trace events recorded since its previous export. Sent as
 *    a FrameType::Telemetry payload after startup, after every cell
 *    and (with final=true) on clean shutdown.
 *  - "rana-postmortem-1": one crash/timeout incident — the victim's
 *    last-known telemetry plus its exit status and last assignment.
 *    Written by the coordinator under --postmortem-dir.
 *  - "rana-metrics-1" (defined in metrics_registry): parsed here so
 *    rana_obs can diff/merge the files rana_faultsim & friends emit.
 *
 * Everything parses crash-free: frames may be chaos-corrupted and
 * dump files hand-edited, so malformed input returns ParseError,
 * never an assertion.
 */

#ifndef RANA_OBS_TELEMETRY_HH_
#define RANA_OBS_TELEMETRY_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics_registry.hh"
#include "util/result.hh"

namespace rana {

class JsonValue;

/** One worker-process telemetry export (a Telemetry frame payload). */
struct WorkerTelemetry
{
    /** Reporting worker ordinal. */
    std::uint32_t worker = 0;
    /** Frame sequence within this worker incarnation (0-based). */
    std::uint64_t seq = 0;
    /** Whether this is the worker's final frame before a clean exit. */
    bool finalFrame = false;
    /** The worker's cumulative registry snapshot (post-fork deltas). */
    MetricsSnapshot metrics;
    /** The worker's flight-recorder ring at export time. */
    std::vector<FlightEvent> flight;
    /** Trace events recorded since the previous export. */
    std::vector<TraceRecorder::Event> trace;
};

/** Serialize one telemetry export ("rana-telemetry-1"). */
std::string serializeWorkerTelemetry(const WorkerTelemetry &telemetry);

/** Parse a telemetry payload; malformed bytes fail with ParseError. */
Result<WorkerTelemetry> parseWorkerTelemetry(const std::string &text);

/** One postmortem incident dump ("rana-postmortem-1"). */
struct PostmortemReport
{
    /** Victim worker ordinal. */
    std::uint32_t worker = 0;
    /** 1-based incident number within the run. */
    std::uint64_t incident = 0;
    /** Why the coordinator declared the worker dead. */
    std::string reason;
    /** Whether waitpid saw a normal exit (then exitCode is valid). */
    bool exited = false;
    int exitCode = 0;
    /** Whether a signal killed it (then termSignal is valid). */
    bool signaled = false;
    int termSignal = 0;
    /** Whether a cell was in flight when the worker died. */
    bool busy = false;
    std::uint64_t lastCell = 0;
    std::uint64_t lastAttempt = 0;
    /** Telemetry frames received from this incarnation. */
    std::uint64_t telemetryFrames = 0;
    /** The victim's last-known metrics snapshot (may be empty). */
    MetricsSnapshot lastMetrics;
    /** The victim's last-known flight ring (may be empty). */
    std::vector<FlightEvent> flight;
};

/** Serialize one incident dump ("rana-postmortem-1"). */
std::string serializePostmortem(const PostmortemReport &report);

/** Parse an incident dump; malformed bytes fail with ParseError. */
Result<PostmortemReport> parsePostmortem(const std::string &text);

/**
 * Parse the "counters"/"gauges"/"histograms" members of `object`
 * back into a snapshot (the inverse of writeSnapshotMembers).
 */
Result<MetricsSnapshot> parseSnapshotMembers(const JsonValue &object);

/** Parse a standalone "rana-metrics-1" document. */
Result<MetricsSnapshot> parseMetricsDocument(const std::string &text);

/** Render a snapshot as a standalone "rana-metrics-1" document. */
std::string metricsDocumentFromSnapshot(const MetricsSnapshot &snap);

/**
 * Merge snapshots with per-worker-sum semantics: counters add,
 * gauges keep the maximum, histograms with identical bounds add
 * bucket-wise (on a bounds mismatch the first wins).
 */
MetricsSnapshot
mergeSnapshots(const std::vector<MetricsSnapshot> &snapshots);

/** One instrument-level difference between two snapshots. */
struct SnapshotDiffEntry
{
    /** "counter", "gauge", "histogram_count", "histogram_sum", ... */
    std::string kind;
    std::string name;
    /** The differing values (missing instruments read as 0). */
    double a = 0.0;
    double b = 0.0;
};

/**
 * Compare two snapshots. `countersOnly` restricts the comparison to
 * counters; any instrument whose name contains one of
 * `ignoreSubstrings` is skipped (scheduling- and wall-clock-
 * dependent metrics differ between byte-identical runs by
 * construction).
 */
std::vector<SnapshotDiffEntry>
diffSnapshots(const MetricsSnapshot &a, const MetricsSnapshot &b,
              bool countersOnly,
              const std::vector<std::string> &ignoreSubstrings);

/** The value of counter `name` in `snap`, or 0 when absent. */
std::uint64_t counterValue(const MetricsSnapshot &snap,
                           const std::string &name);

/** Whether `snap` has a counter named `name`. */
bool hasCounter(const MetricsSnapshot &snap, const std::string &name);

} // namespace rana

#endif // RANA_OBS_TELEMETRY_HH_
